#!/usr/bin/env python3
"""The Music Player use case, end to end, with a full cost breakdown.

Walks the paper's §4 scenario explicitly — register with the Rights
Issuer, buy a license for a protected track, install it, listen five
times — and prints where every millisecond goes, per phase and per
algorithm, under each architecture variant.

The DRM protocol runs functionally (real AES/SHA-1/RSA on real bytes) at
a reduced content size, and the trace is exactly rescaled to the paper's
3.5 MB — run with ``--functional-size N`` to change the calibration size.

Usage::

    python examples/music_player.py [--functional-size OCTETS]
"""

import argparse

from repro.analysis.formatting import format_ms, format_table
from repro.core.architecture import PAPER_PROFILES, SW_PROFILE
from repro.core.model import PerformanceModel
from repro.core.trace import Phase
from repro.usecases.catalog import music_player
from repro.usecases.workload import run_modeled


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--functional-size", type=int, default=2048,
                        help="content size (octets) for the functional "
                             "calibration pass")
    args = parser.parse_args()

    use_case = music_player()
    print("Use case: %s — %.1f MB DCF, %d playbacks"
          % (use_case.name, use_case.content_octets / 2 ** 20,
             use_case.accesses))

    run = run_modeled(use_case, calibration_octets=args.functional_size)
    print("Protocol executed functionally at %d octets; trace rescaled "
          "to %d octets.\n" % (args.functional_size,
                               use_case.content_octets))

    model = PerformanceModel()

    # Per-phase breakdown under the pure-software architecture.
    breakdown = model.evaluate(run.trace, SW_PROFILE)
    rows = [
        (str(phase), format_ms(ms))
        for phase, ms in sorted(breakdown.ms_by_phase().items(),
                                key=lambda kv: list(Phase).index(kv[0]))
    ]
    rows.append(("TOTAL", format_ms(breakdown.total_ms)))
    print(format_table(("phase", "time [ms]"), rows,
                       title="Software architecture, by phase"))
    print()

    # Per-algorithm breakdown.
    rows = [
        (str(algorithm), format_ms(ms),
         "%.1f%%" % (100 * share))
        for (algorithm, ms), share in zip(
            sorted(breakdown.ms_by_algorithm().items(),
                   key=lambda kv: -kv[1]),
            sorted(breakdown.share_by_algorithm().values(),
                   reverse=True))
    ]
    print(format_table(("algorithm", "time [ms]", "share"), rows,
                       title="Software architecture, by algorithm"))
    print()

    # The Figure 6 comparison.
    rows = []
    for profile in PAPER_PROFILES:
        b = model.evaluate(run.trace, profile)
        rows.append((profile.name, format_ms(b.total_ms),
                     "%.1fx" % (breakdown.total_ms / b.total_ms)))
    print(format_table(("architecture", "time [ms]", "speedup vs SW"),
                       rows, title="Architecture comparison (Figure 6)"))


if __name__ == "__main__":
    main()
