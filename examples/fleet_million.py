#!/usr/bin/env python3
"""Price a Rights Issuer's million-device day, per SoC architecture.

Simulates a large device population against one Rights Issuer: every
device deterministically draws a scenario (ringtone-class, album-track,
audiobook), an arrival slot and — on lossy bearers — bounded retries,
and the engine aggregates exact per-architecture cost statistics with
O(shards) memory. Demonstrates the sharding determinism contract by
re-running the aggregation with a worker pool and comparing.

Usage::

    python examples/fleet_million.py [--devices 1000000] [--workers 4]
                                     [--rsa-bits 1024] [--seed fleet]
                                     [--arrival peaked]
"""

import argparse
import time

from repro.analysis.fleet import FleetAnalysis
from repro.usecases.fleet import (FleetConfig, build_cost_templates,
                                  run_fleet)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--devices", type=int, default=1_000_000)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--rsa-bits", type=int, default=1024)
    parser.add_argument("--seed", default="fleet-million")
    parser.add_argument("--arrival", choices=("uniform", "peaked"),
                        default="peaked")
    parser.add_argument("--skip-equivalence", action="store_true",
                        help="skip the serial re-run comparison")
    args = parser.parse_args()

    config = FleetConfig(devices=args.devices, seed=args.seed,
                         arrival_model=args.arrival,
                         rsa_bits=args.rsa_bits)

    started = time.time()
    templates = build_cost_templates(config)
    print("templates priced in %.1f s (one calibration world)"
          % (time.time() - started))

    started = time.time()
    result = run_fleet(config, workers=args.workers,
                       templates=templates)
    elapsed = time.time() - started
    print("simulated %d devices in %.1f s (%.0f devices/s, %d workers)"
          % (args.devices, elapsed, args.devices / max(elapsed, 1e-9),
             args.workers))
    print()
    print(FleetAnalysis(result=result).render())

    if not args.skip_equivalence:
        serial = run_fleet(config, workers=1, templates=templates)
        identical = serial.accumulator == result.accumulator
        print()
        print("serial re-run bit-identical to %d-worker run: %s"
              % (args.workers, "yes" if identical else "NO"))
        if not identical:
            raise SystemExit(1)


if __name__ == "__main__":
    main()
