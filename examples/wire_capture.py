#!/usr/bin/env python3
"""Capture the ROAP exchange on the wire.

Runs a registration, a domain join, an RO acquisition and a domain leave
through a logged byte pipe and prints every message with its direction
and serialized size — the protocol trace a network analyzer would show
(minus TLS). The paper's authors extracted exactly this "ROAP message
file sizes" information from their Java model.

Usage::

    python examples/wire_capture.py
"""

from repro.analysis.formatting import format_table
from repro.drm.identifiers import domain_id
from repro.drm.rel import play_count
from repro.drm.roap.wire import WireChannel
from repro.usecases.world import DRMWorld

DOMAIN = domain_id("household")


def main():
    world = DRMWorld.create(seed="wire-capture")
    channel = WireChannel(world.ri)

    dcf = world.ci.publish("cid:clip", "video/3gpp", b"\x2a" * 50_000,
                           "http://ri.example/shop")
    world.ri.add_offer("ro:clip", world.ci.negotiate_license("cid:clip"),
                       play_count(10))
    world.ri.create_domain(DOMAIN)

    world.agent.register(channel)
    world.agent.join_domain(channel, DOMAIN)
    protected = world.agent.acquire(channel, "ro:clip")
    world.agent.leave_domain(channel, DOMAIN)
    world.agent.install(protected, dcf)
    world.agent.consume("cid:clip")

    rows = [
        (str(i + 1), record.direction, record.message,
         str(record.octets))
        for i, record in enumerate(channel.log.records)
    ]
    print(format_table(("#", "direction", "message", "octets"), rows,
                       title="ROAP wire capture"))
    print()
    print("total traffic: %d octets across %d messages"
          % (channel.log.total_octets(), len(channel.log.records)))
    print("(content download and DCF superdistribution are out of "
          "band: only rights traffic crosses ROAP)")


if __name__ == "__main__":
    main()
