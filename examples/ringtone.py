#!/usr/bin/env python3
"""The Ringtone use case, executed fully functionally.

Unlike the music player (whose 3.5 MB payload needs the rescaling path),
the 30 KB ringtone is small enough to run end to end with real
cryptography at paper scale: real AES-CBC ringtone bytes, a real ROAP
registration, 25 real accesses with MAC + DCF-hash verification on every
ring — exactly the point the paper makes about small files.

Usage::

    python examples/ringtone.py [--calls N]
"""

import argparse
import time

from repro.analysis.formatting import format_ms, format_table
from repro.core.architecture import PAPER_PROFILES
from repro.core.model import PerformanceModel
from repro.core.trace import Algorithm
from repro.usecases.catalog import ringtone
from repro.usecases.runner import run_functional


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--calls", type=int, default=25,
                        help="number of incoming calls (accesses)")
    args = parser.parse_args()

    use_case = ringtone().scaled(ringtone().content_octets,
                                 accesses=args.calls)
    print("Use case: %s — %d KB DCF, %d calls (fully functional run)"
          % (use_case.name, use_case.content_octets // 1024,
             use_case.accesses))

    started = time.perf_counter()
    run = run_functional(use_case)
    host_seconds = time.perf_counter() - started
    print("Functional run completed in %.1f s of host time "
          "(pure-Python crypto).\n" % host_seconds)

    totals = run.trace.totals_by_algorithm()
    rows = [
        (str(algorithm), str(invocations), str(blocks))
        for algorithm, (invocations, blocks) in sorted(
            totals.items(), key=lambda kv: kv[0].value)
    ]
    print(format_table(("algorithm", "invocations", "128/1024-bit blocks"),
                       rows, title="Recorded cryptographic operations"))
    print()

    model = PerformanceModel()
    rows = []
    for profile in PAPER_PROFILES:
        breakdown = model.evaluate(run.trace, profile)
        rows.append((profile.name, format_ms(breakdown.total_ms)))
    print(format_table(("architecture", "modeled time [ms]"), rows,
                       title="Modeled terminal cost at 200 MHz "
                             "(Figure 7)"))
    print()
    private = totals[Algorithm.RSA_PRIVATE][0]
    public = totals[Algorithm.RSA_PUBLIC][0]
    print("PKI operations at the terminal: %d private, %d public "
          "(paper: 3 + 4)" % (private, public))


if __name__ == "__main__":
    main()
