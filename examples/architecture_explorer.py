#!/usr/bin/env python3
"""Design-space exploration: which hardware macros earn their gates?

The paper closes by questioning whether a PKI hardware cell's transistor
cost is justified. This example sweeps every subset of hardware macros
{AES, SHA-1, RSA} across a range of DCF sizes and access counts and
reports, for each workload, the cheapest macro set that keeps the DRM
processing overhead below a 100 ms-per-access latency budget — the kind
of table a SoC architect would actually want.

Usage::

    python examples/architecture_explorer.py
"""


from repro.analysis.formatting import format_ms, format_table
from repro.core.architecture import custom_profile
from repro.core.model import PerformanceModel
from repro.core.trace import Algorithm
from repro.usecases.scenario import KIB, UseCase
from repro.usecases.workload import WorkloadScaler

MACRO_SETS = {
    "none (SW)": {},
    "AES": {Algorithm.AES_ENCRYPT: True, Algorithm.AES_DECRYPT: True},
    "SHA1": {Algorithm.SHA1: True, Algorithm.HMAC_SHA1: True},
    "RSA": {Algorithm.RSA_PUBLIC: True, Algorithm.RSA_PRIVATE: True},
    "AES+SHA1": {Algorithm.AES_ENCRYPT: True,
                 Algorithm.AES_DECRYPT: True, Algorithm.SHA1: True,
                 Algorithm.HMAC_SHA1: True},
    "AES+RSA": {Algorithm.AES_ENCRYPT: True,
                Algorithm.AES_DECRYPT: True,
                Algorithm.RSA_PUBLIC: True,
                Algorithm.RSA_PRIVATE: True},
    "SHA1+RSA": {Algorithm.SHA1: True, Algorithm.HMAC_SHA1: True,
                 Algorithm.RSA_PUBLIC: True,
                 Algorithm.RSA_PRIVATE: True},
    "all (HW)": {a: True for a in Algorithm},
}

#: Rough relative silicon cost of each macro set (RSA is the big cell).
GATE_COST = {"none (SW)": 0, "AES": 1, "SHA1": 1, "RSA": 5,
             "AES+SHA1": 2, "AES+RSA": 6, "SHA1+RSA": 6, "all (HW)": 7}

WORKLOADS = [
    (30 * KIB, 25, "ringtone-like"),
    (300 * KIB, 10, "podcast-clip"),
    (3584 * KIB, 5, "music-track"),
    (3584 * KIB, 50, "heavy-rotation"),
]


def main():
    model = PerformanceModel()
    profiles = {
        name: custom_profile(name, macros)
        for name, macros in MACRO_SETS.items()
    }
    template = UseCase(name="explore", content_octets=KIB, accesses=1)
    scaler = WorkloadScaler(template)

    rows = []
    for octets, accesses, label in WORKLOADS:
        trace = scaler.trace(content_octets=octets, accesses=accesses)
        totals = {
            name: model.evaluate(trace, profile).total_ms
            for name, profile in profiles.items()
        }
        budget_ms = 100.0 * accesses  # 100 ms of DRM work per access
        within_budget = [name for name, ms in totals.items()
                         if ms <= budget_ms]
        if within_budget:
            affordable = min(within_budget,
                             key=lambda name: GATE_COST[name])
        else:
            affordable = "(none meets budget)"
        rows.append((
            label, "%d KiB x %d" % (octets // KIB, accesses),
            format_ms(totals["none (SW)"]),
            format_ms(min(totals.values())), affordable,
        ))
    print(format_table(
        ("workload", "size x accesses", "SW [ms]", "best [ms]",
         "cheapest set under 100 ms/access"),
        rows, title="Hardware/software partitioning explorer"))
    print()

    # Detail table for the paper's two workloads.
    for octets, accesses, label in WORKLOADS[:1] + WORKLOADS[2:3]:
        trace = scaler.trace(content_octets=octets, accesses=accesses)
        detail = [
            (name, format_ms(model.evaluate(trace, p).total_ms),
             str(GATE_COST[name]))
            for name, p in profiles.items()
        ]
        print(format_table(("macro set", "time [ms]", "gate cost"),
                           detail, title="Breakdown: " + label))
        print()


if __name__ == "__main__":
    main()
