#!/usr/bin/env python3
"""Quickstart: regenerate the paper's headline results in one command.

Runs the full reproduction pipeline — build the OMA DRM 2 world, execute
the two evaluation use cases, price them under the three architecture
variants — and prints every table and figure of the paper next to the
published values.

Usage::

    python examples/quickstart.py
"""

from repro.analysis import claims, figure5, figure6, figure7, table1


def main():
    print("Reproducing: Thull & Sannino, 'Performance Considerations for")
    print("an Embedded Implementation of OMA DRM 2', DATE 2005\n")

    print(table1.generate().render())
    print()
    print(figure5.generate().render())
    print()
    print(figure6.generate().render())
    print()
    print(figure7.generate().render())
    print()
    print(claims.generate().render())


if __name__ == "__main__":
    main()
