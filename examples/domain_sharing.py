#!/usr/bin/env python3
"""Domains: share one license across a family of devices (paper §2.3).

Builds a phone and a portable player, joins both to a domain, buys ONE
Domain Rights Object with the phone, and plays the track on the player —
which never contacts the Rights Issuer for this license (the
"Unconnected Device" scenario). Also shows what happens when an outsider
device tries the same trick.

Usage::

    python examples/domain_sharing.py
"""

from repro.crypto.rng import HmacDrbg
from repro.crypto.rsa import generate_keypair
from repro.drm.agent import DRMAgent
from repro.drm.errors import DRMError
from repro.drm.identifiers import device_id, domain_id
from repro.drm.rel import play_count
from repro.core.meter import PlainCrypto
from repro.usecases.runner import synthetic_content
from repro.usecases.world import DRMWorld

DOMAIN = domain_id("family")


def build_second_device(world, name):
    """A second terminal certified by the same CA."""
    crypto = PlainCrypto(HmacDrbg(name.encode()))
    keys = generate_keypair(1024, crypto.rng)
    identity = device_id(name)
    certificate = world.ca.issue(identity, keys.public_key,
                                 world.clock.now)
    return DRMAgent(
        device_id=identity, keypair=keys, certificate=certificate,
        trust_anchors=[world.ca.root_certificate,
                       world.ocsp.certificate],
        crypto=crypto, clock=world.clock,
    )


def main():
    world = DRMWorld.create(seed="domain-example")
    phone = world.agent
    player = build_second_device(world, "mp3-player")
    print("Built phone (%s) and player (%s)."
          % (phone.device_id, player.device_id))

    # Publish a track and a shareable license.
    track = synthetic_content(64 * 1024)
    dcf = world.ci.publish("cid:album-track", "audio/mpeg", track,
                           "http://ri.example/shop")
    world.ri.add_offer("ro:album-track",
                       world.ci.negotiate_license("cid:album-track"),
                       play_count(100))
    world.ri.create_domain(DOMAIN)

    # Both devices register and join the domain.
    phone.register(world.ri)
    phone.join_domain(world.ri, DOMAIN)
    player.register(world.ri)
    player.join_domain(world.ri, DOMAIN)
    print("Both devices registered and joined %s." % DOMAIN)

    # The phone buys ONE Domain RO.
    protected = phone.acquire(world.ri, "ro:album-track",
                              domain_id=DOMAIN)
    print("Phone acquired a Domain RO (signature present: %s)."
          % (protected.signature is not None))

    # Superdistribution: DCF + RO copied to the player out of band.
    phone.install(protected, dcf)
    player.install(protected, dcf)
    assert phone.consume("cid:album-track").clear_content == track
    assert player.consume("cid:album-track").clear_content == track
    print("Both devices decrypted the track with the shared domain key.")

    # An outsider with a valid certificate but no domain membership.
    outsider = build_second_device(world, "strangers-phone")
    outsider.register(world.ri)
    try:
        outsider.install(protected, dcf)
    except DRMError as exc:
        print("Outsider rejected as expected: %s" % exc)
    else:
        raise AssertionError("outsider must not install a Domain RO")


if __name__ == "__main__":
    main()
