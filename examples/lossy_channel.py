#!/usr/bin/env python3
"""Drive ROAP over a lossy bearer and price what the retries cost.

Runs the 4-pass registration and a 2-pass RO acquisition through a
seeded fault-injection channel at increasing loss rates, with the
resilient session layer retrying on a simulated clock. Prints, per loss
rate: the outcome, attempts, injected faults, simulated seconds spent,
wire traffic, and the metered crypto time per architecture — the
concrete counterpart of the expected-overhead table
(``python -m repro resilience``).

Usage::

    python examples/lossy_channel.py [--rsa-bits 512] [--seed lossy]
"""

import argparse

from repro.analysis.formatting import format_ms, format_table
from repro.core.architecture import PAPER_PROFILES
from repro.core.model import PerformanceModel
from repro.drm.rel import play_count
from repro.drm.roap.faults import FaultPlan, FaultyChannel
from repro.drm.session import RetryPolicy, RoapSession
from repro.usecases.world import DRMWorld

LOSS_RATES = (0.0, 0.1, 0.2, 0.4)


def run_one(seed, rsa_bits, loss_rate):
    world = DRMWorld.create(seed=seed, rsa_bits=rsa_bits)
    world.ci.publish("cid:clip", "audio/mpeg", b"\x2a" * 4096,
                     "http://ri.example/shop")
    world.ri.add_offer("ro:clip",
                       world.ci.negotiate_license("cid:clip"),
                       play_count(10))

    plan = FaultPlan.lossy("%s/%g" % (seed, loss_rate), loss_rate)
    channel = FaultyChannel(world.ri, plan, clock=world.clock)
    session = RoapSession(world.agent, channel,
                          RetryPolicy(max_attempts=8))

    world.agent_crypto.reset_trace()
    started = world.clock.now
    registration = session.register()
    acquisition = session.acquire("ro:clip")
    trace = world.agent_crypto.reset_trace()

    model = PerformanceModel()
    crypto_ms = {
        profile.name: model.evaluate(trace, profile).total_ms
        for profile in PAPER_PROFILES
    }
    outcome = ("ok" if registration.completed and acquisition.completed
               else "ABORTED")
    return (outcome,
            registration.attempts + acquisition.attempts,
            len(channel.faults),
            world.clock.now - started,
            channel.log.total_octets(),
            crypto_ms)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rsa-bits", type=int, default=1024,
                        help="modulus size (512 for a quick run)")
    parser.add_argument("--seed", default="lossy")
    args = parser.parse_args()

    rows = []
    for loss_rate in LOSS_RATES:
        (outcome, attempts, faults, seconds, octets,
         crypto_ms) = run_one(args.seed, args.rsa_bits, loss_rate)
        rows.append((
            "%.0f%%" % (100.0 * loss_rate), outcome, str(attempts),
            str(faults), str(seconds), str(octets),
            format_ms(crypto_ms["SW"]), format_ms(crypto_ms["HW"]),
        ))
    print(format_table(
        ("loss", "outcome", "attempts", "faults", "sim [s]",
         "wire [octets]", "crypto SW [ms]", "crypto HW [ms]"),
        rows,
        title="Registration + acquisition on a lossy bearer "
              "(seeded, reproducible)"))
    print()
    print("every retry re-spends signatures and certificate checks; "
          "the expected overhead per architecture is "
          "`python -m repro resilience`")


if __name__ == "__main__":
    main()
