#!/usr/bin/env python3
"""Battery-life impact of DRM: the paper's motivation, quantified.

The paper's opening frames battery lifetime as a first-class performance
dimension. This example answers the product question directly: with an
850 mAh phone battery, how much charge does DRM protection itself draw
per use case under each architecture, and what is the "DRM tax" relative
to simply playing the media?

Usage::

    python examples/battery_life.py [--capacity-mah N]
"""

import argparse

from repro.analysis.formatting import format_table
from repro.core.architecture import PAPER_PROFILES
from repro.core.battery import Battery, battery_impact, drm_tax_percent
from repro.core.energy import WeightedEnergyModel
from repro.core.model import PerformanceModel
from repro.usecases.catalog import music_player, ringtone
from repro.usecases.workload import run_modeled

#: Rest-of-system playback power and rendering time per use case:
#: ~3.5 minutes of music x 5 listens at ~100 mW; 25 rings of ~15 s at
#: ~150 mW (speaker louder than headphones). Illustrative figures.
PLAYBACK = {
    "Music Player": (0.100, 5 * 210.0),
    "Ringtone": (0.150, 25 * 15.0),
}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--capacity-mah", type=float, default=850.0)
    args = parser.parse_args()

    battery = Battery(capacity_mah=args.capacity_mah)
    model = PerformanceModel()
    energy_model = WeightedEnergyModel()

    print("Battery: %.0f mAh @ %.1f V (%.0f J)\n"
          % (battery.capacity_mah, battery.nominal_volts,
             battery.capacity_joules))

    for use_case in (ringtone(), music_player()):
        trace = run_modeled(use_case).trace
        watts, seconds = PLAYBACK[use_case.name]
        rows = []
        for profile in PAPER_PROFILES:
            breakdown = model.evaluate(trace, profile)
            impact = battery_impact(breakdown, energy_model, battery)
            tax = drm_tax_percent(breakdown, watts, seconds,
                                  energy_model)
            rows.append((
                profile.name,
                "%.2f" % impact.millijoules,
                "%.3f" % impact.microamp_hours,
                "%.0f" % impact.runs_per_charge(),
                "%.3f%%" % tax,
            ))
        print(format_table(
            ("arch", "DRM energy [mJ]", "charge [uAh]",
             "workloads/charge", "DRM tax vs playback"),
            rows, title=use_case.name))
        print()

    print("Reading: in software, unlocking a 3.5 MB track five times "
          "costs real battery;\nwith hardware macros the DRM energy "
          "footprint all but disappears — the paper's\nfuture-work "
          "observation that the hardware gap is even wider for energy.")


if __name__ == "__main__":
    main()
