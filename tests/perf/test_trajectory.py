"""Perf-trajectory pipeline: schema, merge semantics, the gate.

The committed ``BENCH_trajectory.json`` must validate cleanly on any
machine (its references are its own values), and an injected
regression must flip ``python -m repro perfdiff`` to a non-zero exit —
that pair is the CI contract. The harness emitter under
``benchmarks/`` and the loader here share one schema; the round-trip
test keeps them honest.
"""

import json
import pathlib
import sys

import pytest

from repro.cli import main
from repro.perf.trajectory import (Trajectory, TrajectoryError,
                                   load_report, load_trajectory, merge,
                                   validate)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
COMMITTED_TRAJECTORY = REPO_ROOT / "BENCH_trajectory.json"

sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
import harness  # noqa: E402  (the bench-side emitter, not a package)


def report_dict(bench="kernel", value=100.0, tolerance_pct=0.0,
                direction="higher", verdicts=None):
    report = harness.BenchReport(
        bench=bench, seed="seed-x",
        metrics=(harness.Metric("m", value, "events/s",
                                direction=direction,
                                tolerance_pct=tolerance_pct),),
        verdicts={"gate": True} if verdicts is None else verdicts)
    return report.to_dict()


# -- schema round-trip ------------------------------------------------------

def test_harness_report_round_trips_through_loader(tmp_path):
    path = tmp_path / "BENCH_kernel.json"
    report = harness.BenchReport(
        bench="kernel", seed="s",
        metrics=(harness.Metric("a.events", 123, "events",
                                direction="higher", tolerance_pct=0.0),
                 harness.Metric("a.wall", 0.5, "s",
                                direction="lower")),
        verdicts={"replay": True})
    report.write(str(path))
    loaded = load_report(str(path))
    trajectory = merge([loaded])
    point = trajectory.metric("kernel", "a.events")
    assert point.value == 123 and point.reference == 123
    assert point.gated
    assert not trajectory.metric("kernel", "a.wall").gated


def test_metric_validation():
    with pytest.raises(ValueError):
        harness.Metric("m", 1.0, "u", direction="sideways")
    with pytest.raises(ValueError):
        harness.Metric("m", 1.0, "u", tolerance_pct=-1.0)


def test_loader_rejects_malformed_reports(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": 99, "kind": "bench-report"}))
    with pytest.raises(TrajectoryError):
        load_report(str(path))
    path.write_text(json.dumps({"schema": 1, "kind": "other"}))
    with pytest.raises(TrajectoryError):
        load_report(str(path))


# -- merge semantics --------------------------------------------------------

def test_first_seen_metric_references_itself():
    trajectory = merge([report_dict(value=50.0)])
    point = trajectory.metric("kernel", "m")
    assert point.reference == 50.0
    assert not point.regressed


def test_merge_takes_references_from_previous_trajectory():
    previous = merge([report_dict(value=100.0)])
    fresh = merge([report_dict(value=90.0)], previous=previous)
    point = fresh.metric("kernel", "m")
    assert point.reference == 100.0
    assert point.regressed  # higher-is-better dropped with 0% band


def test_merge_rejects_duplicate_benches():
    with pytest.raises(TrajectoryError):
        merge([report_dict(), report_dict()])


# -- regression detection ---------------------------------------------------

def test_tolerance_band_is_direction_aware():
    previous = merge([report_dict(value=100.0, tolerance_pct=5.0)])
    inside = merge([report_dict(value=96.0, tolerance_pct=5.0)],
                   previous=previous)
    assert not inside.regressions()
    outside = merge([report_dict(value=94.0, tolerance_pct=5.0)],
                    previous=previous)
    assert [p.name for p in outside.regressions()] == ["m"]
    # Improvement never regresses, in either direction.
    better = merge([report_dict(value=200.0, tolerance_pct=0.0)],
                   previous=previous)
    assert not better.regressions()


def test_lower_is_better_regresses_upward():
    previous = merge([report_dict(value=10.0, direction="lower",
                                  tolerance_pct=10.0)])
    ok = merge([report_dict(value=10.9, direction="lower",
                            tolerance_pct=10.0)], previous=previous)
    assert not ok.regressions()
    bad = merge([report_dict(value=11.5, direction="lower",
                             tolerance_pct=10.0)], previous=previous)
    assert bad.regressions()


def test_failed_verdict_fails_validation():
    trajectory = merge([report_dict(verdicts={"gate": False})])
    ok, _text = validate(trajectory)
    assert not ok
    assert trajectory.failed_verdicts() == [("kernel", "gate")]


def test_informational_metric_never_gates():
    previous = merge([report_dict(value=100.0, tolerance_pct=None)])
    slower = merge([report_dict(value=1.0, tolerance_pct=None)],
                   previous=previous)
    ok, _text = validate(slower)
    assert ok


# -- the CLI gate -----------------------------------------------------------

def write_trajectory(tmp_path, trajectory: Trajectory) -> str:
    path = tmp_path / "BENCH_trajectory.json"
    trajectory.write(str(path))
    return str(path)


def test_perfdiff_exits_zero_on_clean_trajectory(tmp_path, capsys):
    path = write_trajectory(tmp_path, merge([report_dict()]))
    assert main(["perfdiff", path]) == 0
    assert "PASSED" in capsys.readouterr().out


def test_perfdiff_exits_nonzero_on_injected_regression(tmp_path,
                                                       capsys):
    path = write_trajectory(tmp_path, merge([report_dict()]))
    doc = json.loads(pathlib.Path(path).read_text())
    doc["benches"]["kernel"]["metrics"][0]["value"] = 1.0
    pathlib.Path(path).write_text(json.dumps(doc))
    assert main(["perfdiff", path]) == 1
    out = capsys.readouterr().out
    assert "REGRESSED" in out and "FAILED" in out


def test_perfdiff_merge_writes_trajectory(tmp_path, capsys):
    report_path = tmp_path / "BENCH_kernel.json"
    harness.BenchReport(
        bench="kernel", seed="s",
        metrics=(harness.Metric("m", 100.0, "events/s",
                                direction="higher",
                                tolerance_pct=0.0),),
        verdicts={"gate": True}).write(str(report_path))
    out_path = tmp_path / "BENCH_trajectory.json"
    assert main(["perfdiff", "--merge", str(report_path),
                 "--out", str(out_path)]) == 0
    merged = load_trajectory(str(out_path))
    assert merged.metric("kernel", "m").reference == 100.0


def test_perfdiff_usage_errors_exit_two(tmp_path, capsys):
    assert main(["perfdiff"]) == 2
    missing = str(tmp_path / "nope.json")
    assert main(["perfdiff", missing]) == 2


def test_committed_trajectory_validates_self_contained(capsys):
    """The committed artifact must pass on any machine, as-is."""
    trajectory = load_trajectory(str(COMMITTED_TRAJECTORY))
    ok, _text = validate(trajectory)
    assert ok
    assert main(["perfdiff", str(COMMITTED_TRAJECTORY)]) == 0
    assert {"kernel", "overload", "lint", "obs_overhead"} \
        <= set(trajectory.entries)
