"""World construction: determinism and wiring."""

from repro.core.meter import MeteredCrypto, PlainCrypto
from repro.usecases.world import DRMWorld

BITS = 512


def test_same_seed_same_world():
    a = DRMWorld.create(seed="w", rsa_bits=BITS)
    b = DRMWorld.create(seed="w", rsa_bits=BITS)
    assert a.agent.certificate.to_bytes() == b.agent.certificate.to_bytes()
    assert a.ri.certificate.to_bytes() == b.ri.certificate.to_bytes()
    assert a.agent.secure.kdev == b.agent.secure.kdev


def test_different_seeds_differ():
    a = DRMWorld.create(seed="w1", rsa_bits=BITS)
    b = DRMWorld.create(seed="w2", rsa_bits=BITS)
    assert a.agent.secure.kdev != b.agent.secure.kdev


def test_metered_flag():
    metered = DRMWorld.create(seed="w", rsa_bits=BITS, metered=True)
    plain = DRMWorld.create(seed="w", rsa_bits=BITS, metered=False)
    assert isinstance(metered.agent_crypto, MeteredCrypto)
    assert isinstance(plain.agent_crypto, PlainCrypto)
    assert not isinstance(plain.agent_crypto, MeteredCrypto)


def test_agent_trust_anchors_provisioned():
    world = DRMWorld.create(seed="w", rsa_bits=BITS)
    subjects = {a.subject for a in world.agent.trust_anchors}
    assert world.ca.root_certificate.subject in subjects
    assert world.ocsp.certificate.subject in subjects


def test_certificates_chain_to_ca():
    world = DRMWorld.create(seed="w", rsa_bits=BITS)
    assert world.agent.certificate.issuer \
        == world.ca.root_certificate.subject
    assert world.ri.certificate.issuer \
        == world.ca.root_certificate.subject


def test_servers_never_pollute_agent_trace():
    world = DRMWorld.create(seed="w", rsa_bits=BITS)
    # Server-side work happened during world construction (cert signing),
    # yet the agent's trace must be empty.
    assert len(world.agent_crypto.trace) == 0


def test_add_device_is_trusted_and_functional():
    from repro.drm.rel import play_count
    world = DRMWorld.create(seed="multi", rsa_bits=BITS)
    second = world.add_device("tablet")
    assert second.device_id != world.agent.device_id
    assert second.certificate.issuer == world.ca.root_certificate.subject
    # The new device can run the full lifecycle against the same RI.
    dcf = world.ci.publish("cid:m", "audio/mpeg", b"x" * 128, "u")
    world.ri.add_offer("ro:m", world.ci.negotiate_license("cid:m"),
                       play_count(1))
    second.register(world.ri)
    protected = second.acquire(world.ri, "ro:m")
    second.install(protected, dcf)
    assert second.consume("cid:m").clear_content == b"x" * 128


def test_add_device_metered_has_own_trace():
    world = DRMWorld.create(seed="multi", rsa_bits=BITS)
    second = world.add_device("tablet", metered=True)
    second.register(world.ri)
    assert len(second.crypto.trace) > 0
    assert len(world.agent_crypto.trace) == 0  # first agent unaffected


def test_add_device_clock_skew():
    world = DRMWorld.create(seed="multi", rsa_bits=BITS)
    fast = world.add_device("fast-clock", clock_skew_seconds=3600)
    assert fast.drm_time() == world.clock.now + 3600
    fast.register(world.ri)
    assert fast.drm_time() == world.clock.now  # resynced
