"""The modeled path: exact equivalence with functional execution.

This is the load-bearing validation of the whole reproduction methodology:
a trace produced by rescaling a calibration run must be canonically
identical to the trace of a full functional run at the target size.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trace import Algorithm, Phase
from repro.usecases.catalog import music_player, ringtone
from repro.usecases.runner import run_functional
from repro.usecases.scenario import UseCase
from repro.usecases.workload import (WorkloadScaler,
                                     dcf_octets_for_content,
                                     padded_payload_octets, run_modeled)


def test_padded_payload_octets():
    assert padded_payload_octets(0) == 16
    assert padded_payload_octets(15) == 16
    assert padded_payload_octets(16) == 32
    assert padded_payload_octets(30720) == 30736


def test_dcf_octets_exactness(ringtone_run_small):
    """The size model must reproduce the calibration DCF's own size."""
    run = ringtone_run_small
    predicted = dcf_octets_for_content(run.dcf,
                                       run.clear_content_octets)
    assert predicted == run.dcf_octets


@pytest.mark.parametrize("octets,accesses", [
    (100, 1), (1024, 3), (5000, 2), (16384, 5),
])
def test_modeled_equals_functional(octets, accesses):
    use_case = UseCase(name="equiv", content_octets=octets,
                       accesses=accesses)
    functional = run_functional(use_case, seed="eq")
    modeled = run_modeled(use_case, seed="eq", calibration_octets=512)
    assert functional.trace.canonical() == modeled.trace.canonical()
    assert functional.sizes["dcf"] == modeled.sizes["dcf"]
    assert functional.sizes["encrypted_payload"] \
        == modeled.sizes["encrypted_payload"]


@given(octets=st.integers(min_value=1, max_value=8192),
       accesses=st.integers(min_value=1, max_value=4))
@settings(max_examples=8, deadline=None)
def test_modeled_equals_functional_property(octets, accesses):
    use_case = UseCase(name="equiv", content_octets=octets,
                       accesses=accesses)
    functional = run_functional(use_case, seed="eq-prop")
    modeled = run_modeled(use_case, seed="eq-prop",
                          calibration_octets=256)
    assert functional.trace.canonical() == modeled.trace.canonical()


def test_modeled_with_install_verification():
    """The scaler also rewrites the installation-phase DCF hash."""
    use_case = UseCase(name="vdcf", content_octets=4096, accesses=2)
    functional = run_functional(use_case, seed="v",
                                verify_dcf_on_install=True)
    modeled = run_modeled(use_case, seed="v",
                          verify_dcf_on_install=True,
                          calibration_octets=512)
    assert functional.trace.canonical() == modeled.trace.canonical()


def test_modeled_no_kdev():
    use_case = UseCase(name="nokdev", content_octets=2048, accesses=3)
    functional = run_functional(use_case, seed="nk",
                                kdev_optimization=False)
    modeled = run_modeled(use_case, seed="nk", kdev_optimization=False,
                          calibration_octets=512)
    assert functional.trace.canonical() == modeled.trace.canonical()


def test_scaler_reuses_one_calibration():
    scaler = WorkloadScaler(ringtone(), seed="scaler")
    t1 = scaler.trace(content_octets=1024, accesses=1)
    t2 = scaler.trace(content_octets=2048, accesses=2)
    consumption1 = t1.filter(phase=Phase.CONSUMPTION)
    consumption2 = t2.filter(phase=Phase.CONSUMPTION)
    dec1 = [r for r in consumption1 if r.label == "content-decrypt"][0]
    dec2 = [r for r in consumption2 if r.label == "content-decrypt"][0]
    assert dec1.blocks == padded_payload_octets(1024) // 16
    assert dec2.blocks == padded_payload_octets(2048) // 16 * 2


def test_scaler_defaults_to_template():
    scaler = WorkloadScaler(ringtone(), seed="scaler")
    trace = scaler.trace()
    decrypts = [r for r in trace if r.label == "content-decrypt"]
    assert decrypts[0].invocations == 25


def test_paper_scale_traces_have_expected_magnitudes():
    music = run_modeled(music_player(), seed="mag").trace
    totals = music.totals_by_algorithm()
    # 5 playbacks x ~229k blocks of AES decryption.
    aes_blocks = totals[Algorithm.AES_DECRYPT][1]
    assert 5 * 229_376 <= aes_blocks <= 5 * 229_376 + 10_000
    assert totals[Algorithm.RSA_PRIVATE] == (3, 3)
