"""Use-case descriptions and the paper catalog."""

import pytest

from repro.drm.rel import PermissionType, unlimited
from repro.usecases.catalog import (MUSIC_ACCESSES, MUSIC_CONTENT_OCTETS,
                                    RINGTONE_ACCESSES,
                                    RINGTONE_CONTENT_OCTETS, music_player,
                                    paper_use_cases, ringtone)
from repro.usecases.scenario import KIB, MIB, UseCase


def test_paper_parameters():
    """The §4 workload definitions, verbatim."""
    assert MUSIC_CONTENT_OCTETS == int(3.5 * MIB)
    assert MUSIC_ACCESSES == 5
    assert RINGTONE_CONTENT_OCTETS == 30 * KIB
    assert RINGTONE_ACCESSES == 25


def test_catalog_factories():
    music = music_player()
    ring = ringtone()
    assert music.content_octets == MUSIC_CONTENT_OCTETS
    assert music.accesses == 5
    assert ring.content_octets == RINGTONE_CONTENT_OCTETS
    assert ring.accesses == 25
    assert not music.domain and not ring.domain


def test_paper_use_cases_order():
    """Figure 5 plots Ringtone first, then Music Player."""
    names = [uc.name for uc in paper_use_cases()]
    assert names == ["Ringtone", "Music Player"]


def test_default_rights_match_accesses():
    uc = UseCase(name="t", content_octets=100, accesses=7)
    rights = uc.effective_rights()
    permission = rights.find(PermissionType.PLAY)
    assert permission.constraints[0].count == 7


def test_explicit_rights_pass_through():
    uc = UseCase(name="t", content_octets=100, accesses=7,
                 rights=unlimited())
    assert uc.effective_rights() is uc.rights


def test_scaled_copy():
    uc = music_player()
    small = uc.scaled(1024)
    assert small.content_octets == 1024
    assert small.accesses == uc.accesses
    assert small.name == uc.name
    smaller = uc.scaled(1024, accesses=1)
    assert smaller.accesses == 1


def test_validation():
    with pytest.raises(ValueError):
        UseCase(name="t", content_octets=0, accesses=1)
    with pytest.raises(ValueError):
        UseCase(name="t", content_octets=10, accesses=-1)
