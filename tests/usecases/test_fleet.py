"""Fleet engine: determinism contract, sharding invariance, aggregates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.architecture import PAPER_PROFILES
from repro.usecases.fleet import (ACQUISITION_REQUESTS,
                                  REGISTRATION_REQUESTS, CostTemplates,
                                  FleetAccumulator, FleetConfig,
                                  ScenarioFamily, _run_shard,
                                  build_cost_templates, draw_device,
                                  run_fleet)

SEED = "test-fleet"
BITS = 512

ARCHES = tuple(profile.name for profile in PAPER_PROFILES)


def small_config(devices=600, **overrides):
    overrides.setdefault("shard_size", 100)
    overrides.setdefault("rsa_bits", BITS)
    return FleetConfig(devices=devices, seed=SEED, **overrides)


@pytest.fixture(scope="module")
def config():
    return small_config()


@pytest.fixture(scope="module")
def templates(config):
    return build_cost_templates(config)


@pytest.fixture(scope="module")
def serial_result(config, templates):
    return run_fleet(config, workers=1, templates=templates)


# -- configuration validation ------------------------------------------------

def test_config_rejects_bad_values():
    with pytest.raises(ValueError):
        FleetConfig(devices=0)
    with pytest.raises(ValueError):
        FleetConfig(arrival_model="flash-crowd")
    with pytest.raises(ValueError):
        FleetConfig(lossy_fraction=1.5)
    with pytest.raises(ValueError):
        FleetConfig(loss_rate=1.0)
    with pytest.raises(ValueError):
        FleetConfig(max_attempts=0)
    with pytest.raises(ValueError):
        FleetConfig(shard_size=0)
    with pytest.raises(ValueError):
        ScenarioFamily("empty", 1.0, (), (1,))
    with pytest.raises(ValueError):
        ScenarioFamily("weightless", 0.0, (1024,), (1,))


def test_shard_decomposition_is_worker_independent():
    config = small_config(devices=250, shard_size=100)
    assert config.shards() == [(0, 100), (100, 100), (200, 50)]
    assert sum(count for _, count in config.shards()) == 250


def test_size_buckets_sorted_union(config):
    buckets = config.size_buckets()
    assert buckets == tuple(sorted(set(buckets)))
    for family in config.families:
        for size in family.content_octets_choices:
            assert size in buckets


# -- device draws ------------------------------------------------------------

def test_draws_are_deterministic(config):
    first = [draw_device(config, i) for i in range(50)]
    second = [draw_device(config, i) for i in range(50)]
    assert first == second


def test_draws_depend_on_seed_and_index(config):
    other = small_config()
    reseeded = FleetConfig(devices=other.devices, seed=SEED + "-b",
                           shard_size=other.shard_size,
                           rsa_bits=other.rsa_bits)
    assert draw_device(config, 7) != draw_device(reseeded, 7)
    assert draw_device(config, 7) != draw_device(config, 8)


def test_draw_fields_within_grids(config):
    families = {family.name: family for family in config.families}
    for index in range(200):
        draw = draw_device(config, index)
        family = families[draw.family]
        assert draw.content_octets in family.content_octets_choices
        assert draw.accesses in family.accesses_choices
        assert 0 <= draw.arrival_bin < config.arrival_bins
        assert 1 <= draw.registration_attempts <= config.max_attempts
        if not draw.lossy:
            assert draw.registration_attempts == 1
            assert draw.registered and draw.acquired
        if not draw.registered:
            assert draw.acquisition_attempts == 0
            assert not draw.acquired


def test_clean_fleet_never_retries(templates):
    config = small_config(devices=300, lossy_fraction=0.0)
    result = run_fleet(config, workers=1, templates=templates)
    acc = result.accumulator
    assert acc.retries == 0
    assert acc.failed_registrations == 0
    assert acc.failed_acquisitions == 0
    assert acc.requests == 300 * (REGISTRATION_REQUESTS
                                  + ACQUISITION_REQUESTS)
    assert result.retry_request_fraction() == 0.0


def test_peaked_arrivals_concentrate_mid_window(templates):
    uniform = run_fleet(small_config(devices=2000,
                                     arrival_model="uniform"),
                        workers=1, templates=templates)
    peaked = run_fleet(small_config(devices=2000,
                                    arrival_model="peaked"),
                      workers=1, templates=templates)
    assert peaked.peak_request_rate() > uniform.peak_request_rate()
    middle_bin, _ = peaked.accumulator.peak_request_bin()
    bins = peaked.config.arrival_bins
    assert bins // 4 <= middle_bin <= 3 * bins // 4


# -- templates ---------------------------------------------------------------

def test_templates_price_every_architecture_and_bucket(config, templates):
    for table in (templates.registration_cycles,
                  templates.acquisition_cycles,
                  templates.installation_cycles):
        assert set(table) == set(ARCHES)
        assert all(cycles > 0 for cycles in table.values())
    assert set(templates.access_cycles) == set(config.size_buckets())
    for per_arch in templates.access_cycles.values():
        assert set(per_arch) == set(ARCHES)
        # Hardware is never slower than software for the same access.
        assert per_arch["HW"] <= per_arch["SW"]
    assert templates.registration_octets > 0
    assert templates.acquisition_octets > 0


def test_access_cycles_increase_with_content_size(templates):
    sizes = sorted(templates.access_cycles)
    for arch in ARCHES:
        costs = [templates.access_cycles[size][arch] for size in sizes]
        assert costs == sorted(costs)
        assert costs[0] < costs[-1]


# -- sharding determinism contract -------------------------------------------

def test_shard_invariance_1_2_4_workers(config, templates,
                                        serial_result):
    for workers in (2, 4):
        sharded = run_fleet(config, workers=workers,
                            templates=templates)
        assert sharded.accumulator == serial_result.accumulator
        for theirs, ours in zip(
                sharded.architecture_summaries(),
                serial_result.architecture_summaries()):
            assert theirs.cycles == ours.cycles


def test_shard_size_does_not_change_results(config, templates,
                                            serial_result):
    rechunked = FleetConfig(devices=config.devices, seed=config.seed,
                            shard_size=37, rsa_bits=config.rsa_bits)
    result = run_fleet(rechunked, workers=3, templates=templates)
    assert result.accumulator == serial_result.accumulator


def test_run_shard_is_pure(config, templates):
    spec = (config, templates, 100, 50)
    assert _run_shard(spec) == _run_shard(spec)


def test_more_workers_than_shards(templates):
    config = small_config(devices=120, shard_size=100)
    result = run_fleet(config, workers=8, templates=templates)
    assert result.accumulator.devices == 120


def test_workers_must_be_positive(config, templates):
    with pytest.raises(ValueError):
        run_fleet(config, workers=0, templates=templates)


# -- aggregate consistency ---------------------------------------------------

def test_aggregates_match_per_device_recomputation(config, templates,
                                                  serial_result):
    acc = serial_result.accumulator
    assert acc.devices == config.devices
    assert sum(acc.family_devices.values()) == config.devices
    assert sum(acc.arrival_requests.values()) == acc.requests
    assert acc.octets.count == config.devices
    for arch in ARCHES:
        assert acc.cycles[arch].count == config.devices

    draws = [draw_device(config, i) for i in range(config.devices)]
    expected_requests = sum(
        d.registration_attempts * REGISTRATION_REQUESTS
        + (d.acquisition_attempts * ACQUISITION_REQUESTS
           if d.registered else 0)
        for d in draws)
    assert acc.requests == expected_requests
    assert acc.failed_registrations == sum(not d.registered
                                           for d in draws)
    assert acc.accesses == sum(d.accesses for d in draws if d.acquired)

    sw_total = sum(
        d.registration_attempts * templates.registration_cycles["SW"]
        + (d.acquisition_attempts * templates.acquisition_cycles["SW"]
           if d.registered else 0)
        + ((templates.installation_cycles["SW"]
            + d.accesses
            * templates.access_cycles[d.content_octets]["SW"])
           if d.acquired else 0)
        for d in draws)
    assert acc.cycles["SW"].total == sw_total


def test_rate_summaries(serial_result):
    acc = serial_result.accumulator
    config = serial_result.config
    assert serial_result.mean_request_rate() == pytest.approx(
        acc.requests / config.window_seconds)
    assert (serial_result.peak_request_rate()
            >= serial_result.mean_request_rate())


# -- hypothesis: accumulator merge laws --------------------------------------

@st.composite
def accumulators(draw):
    """Small synthetic accumulators built through the real observe()."""
    config = small_config(devices=10_000)
    templates = _SYNTHETIC_TEMPLATES
    indices = draw(st.lists(
        st.integers(min_value=0, max_value=9_999), max_size=30))
    acc = FleetAccumulator()
    for index in indices:
        acc.observe(draw_device(config, index), config, templates)
    return acc


def _synthetic_templates():
    sizes = small_config().size_buckets()
    return CostTemplates(
        registration_cycles={a: 1000 + i for i, a in enumerate(ARCHES)},
        acquisition_cycles={a: 500 + i for i, a in enumerate(ARCHES)},
        installation_cycles={a: 200 + i for i, a in enumerate(ARCHES)},
        access_cycles={size: {a: size // 16 + i
                              for i, a in enumerate(ARCHES)}
                       for size in sizes},
        registration_octets=4000,
        acquisition_octets=2500,
    )


_SYNTHETIC_TEMPLATES = _synthetic_templates()


@given(a=accumulators(), b=accumulators())
@settings(max_examples=50, deadline=None)
def test_accumulator_merge_commutative(a, b):
    assert a.merge(b) == b.merge(a)


@given(a=accumulators(), b=accumulators(), c=accumulators())
@settings(max_examples=50, deadline=None)
def test_accumulator_merge_associative(a, b, c):
    assert a.merge(b).merge(c) == a.merge(b.merge(c))


@given(a=accumulators())
@settings(max_examples=50, deadline=None)
def test_accumulator_merge_identity(a):
    empty = FleetAccumulator()
    assert a.merge(empty) == a
    assert empty.merge(a) == a


@given(seed=st.text(min_size=1, max_size=12),
       split=st.integers(min_value=0, max_value=40))
@settings(max_examples=25, deadline=None)
def test_any_split_point_merges_exactly(seed, split):
    """Property form of shard invariance: cut anywhere, merge, compare."""
    config = FleetConfig(devices=40, seed=seed, shard_size=40,
                         rsa_bits=BITS)
    templates = _SYNTHETIC_TEMPLATES
    whole = _run_shard((config, templates, 0, 40))
    left = _run_shard((config, templates, 0, split))
    right = _run_shard((config, templates, split, 40 - split))
    assert left.merge(right) == whole


# -- journaled storage and power-loss recovery -------------------------------

def test_crash_rate_requires_journaled_storage():
    with pytest.raises(ValueError):
        FleetConfig(devices=10, crash_rate=0.1)
    with pytest.raises(ValueError):
        FleetConfig(devices=10, journaled=True, crash_rate=1.5)


def test_journaled_fleet_preserves_the_draw_stream():
    """Turning journaling on reprices devices but redraws nothing."""
    volatile = small_config()
    journaled = small_config(journaled=True)
    for index in range(40):
        a = draw_device(volatile, index)
        b = draw_device(journaled, index)
        assert (a.family, a.content_octets, a.accesses, a.lossy,
                a.arrival_bin) == (b.family, b.content_octets,
                                   b.accesses, b.lossy, b.arrival_bin)
        assert not b.crashed  # no crash draws at crash_rate 0


def test_journaled_fleet_costs_strictly_more():
    base = run_fleet(small_config(), workers=1).accumulator
    durable = run_fleet(small_config(journaled=True),
                        workers=1).accumulator
    assert durable.requests == base.requests
    assert durable.accesses == base.accesses
    for arch in ARCHES:
        assert durable.cycles[arch].total > base.cycles[arch].total


def test_crash_recovery_is_worker_and_shard_invariant():
    config = small_config(journaled=True, crash_rate=0.08)
    serial = run_fleet(config, workers=1).accumulator
    assert serial.recoveries > 0
    assert serial.recovery_records > 0
    for workers in (2, 4):
        assert run_fleet(config, workers=workers).accumulator == serial
    resharded = small_config(journaled=True, crash_rate=0.08,
                             shard_size=37)
    assert run_fleet(resharded, workers=3).accumulator == serial


def test_crashed_devices_pay_recovery_cycles():
    quiet = run_fleet(small_config(journaled=True),
                      workers=1).accumulator
    crashy = run_fleet(small_config(journaled=True, crash_rate=0.5),
                       workers=1).accumulator
    assert crashy.recoveries > quiet.recoveries == 0
    for arch in ARCHES:
        assert crashy.cycles[arch].total > quiet.cycles[arch].total


# -- adversary fraction ------------------------------------------------------

def test_adversary_config_validation():
    with pytest.raises(ValueError):
        FleetConfig(devices=10, adversary_fraction=-0.1)
    with pytest.raises(ValueError):
        FleetConfig(devices=10, adversary_fraction=1.01)
    with pytest.raises(ValueError):
        FleetConfig(devices=10, breaker_cutoff=1)


def test_adversary_off_preserves_the_draw_stream():
    """adversary_fraction=0 must not consume any RNG draws: every
    device draw is identical to the pre-adversary engine's."""
    plain = small_config()
    gated = small_config(adversary_fraction=0.0)
    for index in range(60):
        assert draw_device(plain, index) == draw_device(gated, index)


def test_attacked_draws_are_cut_off_and_consistent():
    config = small_config(adversary_fraction=0.5)
    draws = [draw_device(config, index) for index in range(200)]
    attacked = [d for d in draws if d.attacked]
    assert 0 < len(attacked) < len(draws)
    for draw in attacked:
        # The breaker aborts the forged registration after the cut-off;
        # nothing downstream of registration can have happened.
        assert draw.registration_attempts == config.breaker_cutoff
        assert not draw.registered
        assert not draw.acquired and draw.acquisition_attempts == 0
        assert not draw.crashed


def test_attacked_devices_counted_and_shard_invariant():
    config = small_config(adversary_fraction=0.25)
    templates = build_cost_templates(config)
    serial = run_fleet(config, workers=1, templates=templates)
    sharded = run_fleet(config, workers=4, templates=templates)
    acc = serial.accumulator
    assert acc.attacked_devices > 0
    assert acc.failed_registrations >= acc.attacked_devices
    assert acc.metrics().counters["fleet.attacked_devices"] \
        == acc.attacked_devices
    assert sharded.accumulator.attacked_devices == acc.attacked_devices
    assert sharded.accumulator.requests == acc.requests
