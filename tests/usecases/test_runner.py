"""Functional end-to-end runs."""

import pytest

from repro.core.trace import Algorithm, Phase
from repro.usecases.runner import run_functional, synthetic_content
from repro.usecases.scenario import UseCase


def small_case(octets=2048, accesses=2, **kwargs):
    return UseCase(name="test case", content_octets=octets,
                   accesses=accesses, **kwargs)


def test_synthetic_content_properties():
    data = synthetic_content(1000)
    assert len(data) == 1000
    assert synthetic_content(1000) == data  # deterministic
    assert len(synthetic_content(0)) == 0
    assert len(set(synthetic_content(251))) == 251  # full texture


def test_run_covers_all_phases(ringtone_run_small):
    phases = {r.phase for r in ringtone_run_small.trace}
    assert phases == {Phase.REGISTRATION, Phase.ACQUISITION,
                      Phase.INSTALLATION, Phase.CONSUMPTION}


def test_paper_operation_structure(ringtone_run_small):
    """3 RSA private ops and 4 public ops at the terminal, total."""
    totals = ringtone_run_small.trace.totals_by_algorithm()
    assert totals[Algorithm.RSA_PRIVATE] == (3, 3)
    assert totals[Algorithm.RSA_PUBLIC] == (4, 4)


def test_consumption_repeats_per_access(ringtone_run_small):
    consumption = ringtone_run_small.trace.filter(phase=Phase.CONSUMPTION)
    decrypts = [r for r in consumption if r.label == "content-decrypt"]
    assert len(decrypts) == ringtone_run_small.use_case.accesses


def test_sizes_recorded(ringtone_run_small):
    sizes = ringtone_run_small.sizes
    assert sizes["encrypted_payload"] == (4096 // 16 + 1) * 16
    assert sizes["dcf"] > sizes["encrypted_payload"]
    assert sizes["ro_payload"] > 100
    assert ringtone_run_small.dcf_octets == sizes["dcf"]


def test_consume_times_override():
    run = run_functional(small_case(accesses=5), seed="ct",
                         consume_times=1)
    consumption = run.trace.filter(phase=Phase.CONSUMPTION)
    decrypts = [r for r in consumption if r.label == "content-decrypt"]
    assert len(decrypts) == 1


def test_domain_use_case_runs():
    run = run_functional(small_case(domain=True), seed="dom")
    # Domain flow: register sign + join sign + join KEM-decrypt +
    # acquire sign = 4 private ops; installation needs no RSADP because
    # the Domain RO keys unwrap under the symmetric domain key.
    totals = run.trace.totals_by_algorithm()
    private_invocations = totals[Algorithm.RSA_PRIVATE][0]
    assert private_invocations == 4
    # The mandatory Domain-RO signature adds a 5th public-key operation.
    assert totals[Algorithm.RSA_PUBLIC][0] == 6


def test_rights_exhaust_exactly_at_accesses():
    from repro.drm.errors import PermissionDeniedError
    run = run_functional(small_case(accesses=2), seed="exhaust")
    with pytest.raises(PermissionDeniedError):
        run.world.agent.consume("cid:test-case")


def test_run_is_deterministic():
    a = run_functional(small_case(), seed="det")
    b = run_functional(small_case(), seed="det")
    assert a.trace.canonical() == b.trace.canonical()
    assert a.sizes == b.sizes
