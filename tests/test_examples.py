"""Every example script must run end to end.

Examples are executed in-process (import + ``main()``) with arguments
trimmed to test-friendly sizes where they support it.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(
        "example_" + name.replace(".py", ""), str(path))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        module.main()
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py", [])
    out = capsys.readouterr().out
    assert "Figure 6" in out
    assert "all entries match the paper" in out


def test_music_player(capsys):
    run_example("music_player.py", ["--functional-size", "1024"])
    out = capsys.readouterr().out
    assert "Architecture comparison" in out
    assert "registration" in out


def test_ringtone(capsys):
    run_example("ringtone.py", ["--calls", "1"])
    out = capsys.readouterr().out
    assert "paper: 3 + 4" in out


def test_domain_sharing(capsys):
    run_example("domain_sharing.py", [])
    out = capsys.readouterr().out
    assert "shared domain key" in out
    assert "Outsider rejected" in out


def test_architecture_explorer(capsys):
    run_example("architecture_explorer.py", [])
    out = capsys.readouterr().out
    assert "partitioning explorer" in out
    assert "ringtone-like" in out


def test_battery_life(capsys):
    run_example("battery_life.py", [])
    out = capsys.readouterr().out
    assert "workloads/charge" in out


def test_wire_capture(capsys):
    run_example("wire_capture.py", [])
    out = capsys.readouterr().out
    assert "ROAP wire capture" in out
    assert "total traffic" in out


def test_lossy_channel(capsys):
    run_example("lossy_channel.py", ["--rsa-bits", "512"])
    out = capsys.readouterr().out
    assert "lossy bearer" in out
    assert "ok" in out
    assert "crypto SW [ms]" in out


def test_fleet_million(capsys):
    run_example("fleet_million.py",
                ["--devices", "1000", "--workers", "2",
                 "--rsa-bits", "512", "--seed", "example-fleet"])
    out = capsys.readouterr().out
    assert "simulated 1000 devices" in out
    assert "Rights Issuer load" in out
    assert "bit-identical to 2-worker run: yes" in out
