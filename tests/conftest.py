"""Shared fixtures.

World construction costs seconds of RSA key generation, so worlds are
session-scoped wherever tests don't mutate protocol state, and
protocol-mutating tests use the cheaper 512-bit worlds (the DRM logic is
modulus-size independent; paper-scale 1024-bit keys are reserved for the
tests that check size-sensitive accounting).
"""

import copy

import pytest

from repro.core.costs import CostOptions
from repro.usecases.catalog import ringtone
from repro.usecases.runner import run_functional
from repro.usecases.world import DRMWorld

#: Modulus size for protocol-logic tests (fast; logic is size-agnostic).
FAST_RSA_BITS = 512

#: Memoized pristine worlds, deep-copied out to keep tests isolated.
_WORLD_CACHE = {}


def _pristine_world(seed="fixture-fast", **kwargs):
    kwargs.setdefault("rsa_bits", FAST_RSA_BITS)
    key = (seed, tuple(sorted(kwargs.items())))
    if key not in _WORLD_CACHE:
        _WORLD_CACHE[key] = DRMWorld.create(seed=seed, **kwargs)
    return copy.deepcopy(_WORLD_CACHE[key])


@pytest.fixture()
def fast_world():
    """A fresh (copied) 512-bit world per test — cheap and isolated."""
    return _pristine_world("fixture-fast")


@pytest.fixture()
def fast_world_factory():
    """Factory for fresh 512-bit worlds with custom options."""
    return _pristine_world


@pytest.fixture(scope="session")
def paper_world():
    """One shared 1024-bit world for read-only size checks."""
    return DRMWorld.create(seed="fixture-paper")


@pytest.fixture(scope="session")
def ringtone_run_small():
    """A completed small-ringtone functional run (shared, read-only)."""
    use_case = ringtone().scaled(4096)
    return run_functional(use_case, seed="fixture-run",
                          options=CostOptions())
