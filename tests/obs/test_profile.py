"""Deterministic profiler: exact folding, exports, diffs, goldens.

The load-bearing invariant is *exact reconciliation*: the profile
tree's root cumulative cycles equal the tracer's virtual clock, which
equals the :class:`~repro.core.model.CostBreakdown` total of the same
trace under the same architecture — bit-exactly, for real protocol
runs, modeled paper-scale replays, and randomized kernel episodes
(clean, lossy, and outage-scheduled channels alike).

The collapsed-stack and speedscope exports are pinned as goldens
(paper-scale Music Player under SW); regenerate after an intentional
format change with::

    UPDATE_GOLDEN=1 python -m pytest tests/obs/test_profile.py
"""

import json
import os
import pathlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.architecture import HW_PROFILE, SW_PROFILE
from repro.core.model import PerformanceModel
from repro.obs.profile import (ProfileTree, diff, paths_from_collapsed,
                               paths_from_speedscope)
from repro.obs.tracer import Tracer
from repro.sim.roap import EpisodeSpec, run_episode
from repro.usecases.tracing import replay_modeled, run_profile_scenario

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"
GOLDEN_COLLAPSED = GOLDEN_DIR / "music.collapsed.txt"
GOLDEN_SPEEDSCOPE = GOLDEN_DIR / "music.speedscope.json"

SEED = "golden-profile"


def music_tree() -> ProfileTree:
    tracer = Tracer(profile=SW_PROFILE, actor="terminal")
    replay_modeled("music", tracer, seed=SEED)
    return ProfileTree.from_tracer(tracer, architecture="SW",
                                   scenario="music", seed=SEED)


# -- exact reconciliation ---------------------------------------------------

def test_modeled_tree_reconciles_with_cost_breakdown():
    tracer = Tracer(profile=SW_PROFILE, actor="terminal")
    trace = replay_modeled("music", tracer, seed=SEED)
    tree = ProfileTree.from_tracer(tracer)
    breakdown = PerformanceModel().evaluate(trace, SW_PROFILE)
    assert tree.total_cycles == tracer.now
    assert tree.total_cycles == breakdown.total_cycles


def test_protocol_stack_tree_reconciles_with_cost_breakdown():
    tracer = Tracer(profile=SW_PROFILE, actor="terminal")
    trace = run_profile_scenario("registration", tracer, seed=SEED,
                                 rsa_bits=512)
    tree = ProfileTree.from_tracer(tracer)
    breakdown = PerformanceModel().evaluate(trace, SW_PROFILE)
    assert tree.total_cycles == breakdown.total_cycles


def test_tree_folds_siblings_and_counts_calls():
    tracer = Tracer(profile=SW_PROFILE)
    for _ in range(3):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
    tree = ProfileTree.from_tracer(tracer)
    outer = tree.root.children["outer"]
    assert outer.calls == 3
    assert outer.children["inner"].calls == 3


def test_same_seed_trees_are_identical():
    first, second = music_tree(), music_tree()
    assert first.collapsed() == second.collapsed()
    assert first.to_speedscope() == second.to_speedscope()


# -- the Hypothesis property: random episodes reconcile ---------------------

episode_specs = st.builds(
    EpisodeSpec,
    seed=st.sampled_from(["prof-a", "prof-b", "prof-c"]),
    rsa_bits=st.just(512),
    content_octets=st.sampled_from([1024, 4096]),
    plays=st.just(5),
    accesses=st.integers(min_value=0, max_value=2),
    loss_rate=st.sampled_from([0.0, 0.3]),
    outages=st.sampled_from([(), ((0, 30),)]),
    breaker=st.booleans(),
)


@given(spec=episode_specs,
       profile=st.sampled_from([SW_PROFILE, HW_PROFILE]))
@settings(max_examples=10, deadline=None)
def test_episode_tree_cumulative_equals_span_cost_sum(spec, profile):
    """Profile cumulative == sum of tracer span costs, any episode.

    Clean, lossy and outage episodes (with or without a breaker) all
    fold into trees whose root cumulative cycles equal both the sum of
    the tracer's operation-span costs and the cost model's total for
    the same metered trace.
    """
    tracer = Tracer(profile=profile, actor="terminal")
    result = run_episode(spec, tracer=tracer)
    tree = ProfileTree.from_tracer(tracer)
    span_cost_sum = sum(span.args["cycles"]
                        for span in tracer.operation_spans())
    assert tree.total_cycles == span_cost_sum
    assert tree.total_cycles == tracer.now
    assert tree.total_cycles == result.breakdown(profile).total_cycles


# -- exports round-trip and pin as goldens ----------------------------------

def test_collapsed_round_trips_exact_paths():
    tree = music_tree()
    parsed = paths_from_collapsed(tree.collapsed())
    expected = {path: self_cycles
                for path, (self_cycles, _cum, _calls)
                in tree.paths().items() if self_cycles > 0}
    assert parsed == expected


def test_speedscope_round_trips_exact_paths():
    tree = music_tree()
    parsed = paths_from_speedscope(tree.to_speedscope())
    expected = {path: self_cycles
                for path, (self_cycles, _cum, _calls)
                in tree.paths().items() if self_cycles > 0}
    assert parsed == expected


def test_collapsed_matches_golden_snapshot():
    generated = music_tree().collapsed()
    if os.environ.get("UPDATE_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        GOLDEN_COLLAPSED.write_text(generated, encoding="utf-8")
    assert generated == GOLDEN_COLLAPSED.read_text(encoding="utf-8"), \
        "collapsed-stack profile drifted from the golden snapshot; " \
        "if intentional, regenerate with UPDATE_GOLDEN=1."


def test_speedscope_matches_golden_snapshot(tmp_path):
    out = tmp_path / "music.speedscope.json"
    music_tree().write_speedscope(str(out))
    generated = out.read_bytes()
    if os.environ.get("UPDATE_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        GOLDEN_SPEEDSCOPE.write_bytes(generated)
    assert generated == GOLDEN_SPEEDSCOPE.read_bytes(), \
        "speedscope profile drifted from the golden snapshot; if " \
        "intentional, regenerate with UPDATE_GOLDEN=1."


def test_golden_speedscope_is_well_formed():
    document = json.loads(GOLDEN_SPEEDSCOPE.read_text(encoding="utf-8"))
    assert document["profiles"][0]["type"] == "sampled"
    profile = document["profiles"][0]
    assert len(profile["samples"]) == len(profile["weights"])
    frames = document["shared"]["frames"]
    assert all(0 <= index < len(frames)
               for sample in profile["samples"] for index in sample)


# -- diffs ------------------------------------------------------------------

def test_diff_attributes_architecture_deltas():
    sw = music_tree()
    tracer = Tracer(profile=HW_PROFILE, actor="terminal")
    replay_modeled("music", tracer, seed=SEED)
    hw = ProfileTree.from_tracer(tracer, architecture="HW",
                                 scenario="music", seed=SEED)
    delta = diff(sw, hw)
    assert delta.total_delta == hw.total_cycles - sw.total_cycles
    # HW offloads the bulk crypto, so the total must drop...
    assert delta.total_delta < 0
    # ...and the report carries the scenario's top-level path with the
    # exact whole-run delta (diff paths exclude the synthetic root).
    by_path = {d.path: d for d in delta.deltas}
    top = by_path[("music",)]
    assert top.delta == delta.total_delta


def test_diff_of_identical_trees_is_empty():
    delta = diff(music_tree(), music_tree())
    assert delta.total_delta == 0
    assert all(d.delta == 0 for d in delta.deltas)
    assert delta.regressions() == []
