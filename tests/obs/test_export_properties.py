"""Property tests: export round-trips and merge algebra.

Two contracts from the issue, stated as properties:

* Chrome trace export → re-import preserves the operation trace's
  ``canonical()`` form, for any record mix.
* ``MetricsRegistry.merge`` is associative and commutative, and folding
  any shard split of an operation stream equals the single-process
  registry — the invariant the fleet engine's worker-count independence
  rests on.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trace import Algorithm, OperationRecord, OperationTrace, Phase
from repro.obs.export import to_chrome, to_jsonl, trace_from_chrome
from repro.obs.metrics import MetricsRegistry, merge_registries
from repro.obs.tracer import Tracer

records = st.builds(
    OperationRecord,
    algorithm=st.sampled_from(sorted(Algorithm, key=lambda a: a.value)),
    phase=st.sampled_from(sorted(Phase, key=lambda p: p.value)),
    invocations=st.integers(min_value=1, max_value=4),
    blocks=st.integers(min_value=0, max_value=64),
    label=st.text(alphabet="abcdefgh-", min_size=1, max_size=12),
)

record_lists = st.lists(records, max_size=24)


def traced(record_list):
    tracer = Tracer()
    for record in record_list:
        tracer.on_record(record)
    return tracer


@given(record_lists)
@settings(max_examples=40, deadline=None)
def test_chrome_round_trip_preserves_canonical_trace(record_list):
    tracer = traced(record_list)
    document = json.loads(json.dumps(to_chrome(tracer), sort_keys=True))
    rebuilt = trace_from_chrome(document)
    assert rebuilt.canonical() == OperationTrace(record_list).canonical()


@given(record_lists)
@settings(max_examples=25, deadline=None)
def test_jsonl_lines_are_valid_and_ordered(record_list):
    tracer = traced(record_list)
    lines = [json.loads(line) for line in to_jsonl(tracer)]
    assert lines[0]["type"] == "header"
    assert lines[0]["total_cycles"] == tracer.now
    spans = [line for line in lines[1:] if line["type"] == "span"]
    assert len(spans) == len(record_list)
    starts = [span["start"] for span in spans]
    assert starts == sorted(starts)


# -- merge algebra -----------------------------------------------------------

metric_ops = st.lists(
    st.one_of(
        st.tuples(st.just("counter"),
                  st.sampled_from(("ops", "retries", "commits")),
                  st.integers(min_value=0, max_value=9)),
        st.tuples(st.just("gauge"),
                  st.sampled_from(("depth", "peak")),
                  st.integers(min_value=-5, max_value=99)),
        st.tuples(st.just("histogram"),
                  st.sampled_from(("cycles", "octets")),
                  st.integers(min_value=0, max_value=1000)),
    ),
    max_size=30,
)


def registry_from(ops):
    registry = MetricsRegistry()
    for kind, name, value in ops:
        getattr(registry, kind)(name, value)
    return registry


@given(metric_ops, metric_ops)
@settings(max_examples=40, deadline=None)
def test_merge_is_commutative(ops_a, ops_b):
    a, b = registry_from(ops_a), registry_from(ops_b)
    assert a.merge(b) == b.merge(a)


@given(metric_ops, metric_ops, metric_ops)
@settings(max_examples=40, deadline=None)
def test_merge_is_associative(ops_a, ops_b, ops_c):
    a, b, c = (registry_from(ops) for ops in (ops_a, ops_b, ops_c))
    assert a.merge(b).merge(c) == a.merge(b.merge(c))


@given(metric_ops, st.integers(min_value=1, max_value=6))
@settings(max_examples=40, deadline=None)
def test_any_shard_split_equals_single_process_run(ops, shards):
    whole = registry_from(ops)
    split = [ops[i::shards] for i in range(shards)]
    merged = merge_registries(registry_from(part) for part in split)
    assert merged == whole
