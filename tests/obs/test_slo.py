"""SLO engine: burn-rate mechanics, exemplars, determinism, wiring.

The monitor lives on the virtual timebase (ticks in, ticks out), so
every assertion here is exact: alerts open at a computable tick, close
at a computable tick, and two runs of the same seed produce identical
reports — including through the kernel entry points
(:func:`repro.sim.fleet.run_open_load`,
:func:`repro.sim.overload.run_storm`).
"""

import pytest

from repro.core.architecture import SW_PROFILE
from repro.obs.slo import (DEFAULT_OBJECTIVES, MIN_WINDOW_EVENTS,
                           Objective, SLOMonitor)
from repro.sim.fleet import run_open_load
from repro.sim.overload import StormSpec, run_storm

LATENCY = Objective(name="lat", kind="req", threshold_units=10.0,
                    target=0.9, fast_window_units=20,
                    slow_window_units=80, burn_threshold=2.0)


def monitor(slot_ticks=100, objectives=(LATENCY,)):
    return SLOMonitor(slot_ticks=slot_ticks, objectives=objectives)


# -- objective validation ---------------------------------------------------

def test_objective_validation():
    with pytest.raises(ValueError):
        Objective(name="bad", target=0.0)
    with pytest.raises(ValueError):
        Objective(name="bad", target=1.0)
    with pytest.raises(ValueError):
        Objective(name="bad", fast_window_units=300,
                  slow_window_units=60)
    with pytest.raises(ValueError):
        Objective(name="bad", burn_threshold=0.0)


def test_default_objectives_cover_kinds_and_goodput():
    kinds = {obj.kind for obj in DEFAULT_OBJECTIVES}
    assert {"hello", "registration", "acquisition", "*"} <= kinds
    goodput = [obj for obj in DEFAULT_OBJECTIVES
               if obj.threshold_units is None]
    assert len(goodput) == 1


# -- scoring and compliance -------------------------------------------------

def test_latency_threshold_separates_good_from_bad():
    slo = monitor()
    # threshold = 10 units x 100 ticks/unit = 1000 ticks.
    slo.observe("req", now=0, completed=True, latency_ticks=1000)
    slo.observe("req", now=1, completed=True, latency_ticks=1001)
    slo.observe("req", now=2, completed=False, latency_ticks=0)
    report = slo.report().objective("lat")
    assert report.total == 3
    assert report.bad == 2
    assert report.compliance == pytest.approx(1 / 3)


def test_kind_filter_ignores_other_kinds():
    slo = monitor()
    slo.observe("other", now=0, completed=False, latency_ticks=0)
    assert slo.report().objective("lat").total == 0


def test_goodput_objective_scores_any_completion():
    goodput = Objective(name="gp", threshold_units=None, target=0.99)
    slo = monitor(objectives=(goodput,))
    slo.observe("a", now=0, completed=True, latency_ticks=10 ** 9)
    slo.observe("b", now=1, completed=False, latency_ticks=0)
    report = slo.report().objective("gp")
    assert report.total == 2 and report.bad == 1


# -- burn-rate alert mechanics ----------------------------------------------

def burn_storm(slo, bad_from, bad_to, total=400, gap=10):
    """Feed ``total`` requests, bad inside [bad_from, bad_to)."""
    for index in range(total):
        now = index * gap
        bad = bad_from <= index < bad_to
        slo.observe("req", now=now, completed=not bad,
                    latency_ticks=0)


def test_alert_opens_only_after_min_window_events():
    slo = monitor()
    # All-bad traffic: burn rates blow past the threshold immediately,
    # but the alert must wait for MIN_WINDOW_EVENTS observations.
    for index in range(MIN_WINDOW_EVENTS + 2):
        slo.observe("req", now=index * 10, completed=False,
                    latency_ticks=0)
    report = slo.report().objective("lat")
    assert len(report.alerts) == 1
    opened_index = report.alerts[0].opened // 10
    assert opened_index == MIN_WINDOW_EVENTS - 1


def test_alert_opens_during_error_burst_and_closes_after():
    slo = monitor()
    burn_storm(slo, bad_from=100, bad_to=200)
    report = slo.report().objective("lat")
    assert len(report.alerts) == 1
    alert = report.alerts[0]
    assert alert.opened >= 100 * 10
    assert alert.closed is not None and alert.closed > alert.opened
    assert alert.fast_burn >= LATENCY.burn_threshold
    assert alert.slow_burn >= LATENCY.burn_threshold


def test_no_alert_below_budget():
    slo = monitor()
    # 2% bad against a 10% budget: burn rate 0.2, far below 2.0.
    for index in range(500):
        slo.observe("req", now=index * 10,
                    completed=index % 50 != 0, latency_ticks=0)
    report = slo.report().objective("lat")
    assert report.alerts == ()


def test_still_open_alert_reports_closed_none():
    slo = monitor()
    burn_storm(slo, bad_from=300, bad_to=400)
    report = slo.report().objective("lat")
    assert len(report.alerts) == 1
    assert report.alerts[0].closed is None


def test_exemplars_capture_first_breaches_up_to_cap():
    slo = monitor()
    burn_storm(slo, bad_from=0, bad_to=100)
    report = slo.report().objective("lat")
    assert len(report.exemplars) == LATENCY.max_exemplars
    ticks = [exemplar.tick for exemplar in report.exemplars]
    assert ticks == sorted(ticks)
    assert ticks[0] == 0


def test_monitor_is_deterministic():
    def run():
        slo = monitor()
        burn_storm(slo, bad_from=50, bad_to=150)
        return slo.report()
    assert run().to_dict() == run().to_dict()


# -- kernel wiring ----------------------------------------------------------

def test_open_load_attaches_slo_report():
    result = run_open_load("slo-wire", SW_PROFILE,
                           arrivals_per_second=2.0, requests=60)
    slo = result.load.slo
    assert slo is not None
    names = {obj.name for obj in DEFAULT_OBJECTIVES}
    assert {report.name for report in slo.objectives} == names
    total = sum(report.total for report in slo.objectives
                if report.name != "goodput")
    assert total == 60
    assert slo.objective("goodput").total == 60


def test_storm_slo_alerts_are_reproducible():
    spec = StormSpec(seed="slo-storm")
    first = run_storm(spec)
    second = run_storm(spec)
    assert first.slo is not None
    assert first.slo.to_dict() == second.slo.to_dict()
    # The unmitigated storm's answered-in-patience alert never closes:
    # the metastable collapse as an operator-visible page.
    patience = first.slo.objective("answered-in-patience")
    assert patience.alerts
    assert patience.alerts[-1].closed is None


def test_storm_objectives_are_seed_sensitive():
    baseline = run_storm(StormSpec(seed="slo-storm"))
    mitigated = run_storm(StormSpec(seed="slo-storm",
                                    admission="token-bucket",
                                    retry="backoff-jitter",
                                    deadlines=True))
    base_patience = baseline.slo.objective("answered-in-patience")
    good_patience = mitigated.slo.objective("answered-in-patience")
    assert good_patience.compliance > base_patience.compliance
    assert good_patience.alerts[0].closed is not None
