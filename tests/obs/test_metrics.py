"""MetricsRegistry semantics: instruments, exact merge, round trip."""

import pytest

from repro.obs.metrics import MetricsRegistry, merge_registries


def test_counter_accumulates():
    registry = MetricsRegistry()
    registry.counter("ops")
    registry.counter("ops", 4)
    assert registry.counters["ops"] == 5


def test_counter_rejects_bool_and_negative():
    registry = MetricsRegistry()
    with pytest.raises(TypeError):
        registry.counter("ops", True)
    with pytest.raises(ValueError):
        registry.counter("ops", -1)


def test_gauge_is_high_water_mark():
    registry = MetricsRegistry()
    registry.gauge("depth", 3)
    registry.gauge("depth", 7)
    registry.gauge("depth", 5)
    assert registry.gauges["depth"] == 7


def test_gauge_rejects_bool():
    registry = MetricsRegistry()
    with pytest.raises(TypeError):
        registry.gauge("depth", False)


def test_histogram_exact_distribution():
    registry = MetricsRegistry()
    for value in (10, 10, 30):
        registry.histogram("cycles", value)
    registry.histogram("cycles", 50, weight=2)
    stats = registry.histograms["cycles"]
    assert stats.count == 5
    assert stats.total == 150
    assert stats.maximum == 50


def test_merge_is_exact_union():
    a = MetricsRegistry()
    a.counter("ops", 2)
    a.gauge("depth", 3)
    a.histogram("cycles", 10)
    b = MetricsRegistry()
    b.counter("ops", 5)
    b.counter("only-b")
    b.gauge("depth", 1)
    b.histogram("cycles", 10)
    b.histogram("other", 7)
    merged = a.merge(b)
    assert merged.counters == {"ops": 7, "only-b": 1}
    assert merged.gauges == {"depth": 3}
    assert merged.histograms["cycles"].counts == {10: 2}
    assert merged.histograms["other"].counts == {7: 1}
    # merge returns a new object; inputs are untouched
    assert a.counters == {"ops": 2}
    assert b.counters == {"ops": 5, "only-b": 1}


def test_equality_ignores_empty_histograms():
    a = MetricsRegistry()
    b = MetricsRegistry()
    b.histogram("cycles", 1, weight=0)
    assert a == b


def test_to_dict_from_dict_round_trip():
    registry = MetricsRegistry()
    registry.counter("ops", 3)
    registry.gauge("depth", 9)
    registry.histogram("cycles", 10, weight=2)
    registry.histogram("cycles", 40)
    rebuilt = MetricsRegistry.from_dict(registry.to_dict())
    assert rebuilt == registry


def test_from_dict_rejects_foreign_documents():
    with pytest.raises(ValueError):
        MetricsRegistry.from_dict({"kind": "something-else"})
    with pytest.raises(ValueError):
        MetricsRegistry.from_dict({"kind": "metrics-registry",
                                   "schema": 99})


def test_render_is_sorted_and_stable():
    registry = MetricsRegistry()
    registry.counter("b")
    registry.counter("a")
    registry.gauge("g", 2)
    registry.histogram("h", 5)
    text = registry.render()
    assert text.index("counter    a") < text.index("counter    b")
    assert "gauge      g" in text
    assert "histogram  h" in text
    assert registry.render() == text


def test_merge_registries_folds_many():
    shards = []
    for i in range(4):
        shard = MetricsRegistry()
        shard.counter("ops", i + 1)
        shard.histogram("cycles", 10 * (i + 1))
        shards.append(shard)
    merged = merge_registries(shards)
    assert merged.counters["ops"] == 10
    assert merged.histograms["cycles"].count == 4
