"""Golden snapshot of a seeded ``python -m repro trace`` run.

The exported Chrome trace is a published artifact: its bytes are pinned
so that format drift (key order, tid assignment, span args, metadata)
is caught even when the numbers still reconcile. Regenerate after an
intentional format change with::

    UPDATE_GOLDEN=1 python -m pytest tests/obs/test_trace_golden.py
"""

import json
import os
import pathlib

from repro.cli import main
from repro.core.architecture import SW_PROFILE
from repro.core.model import PerformanceModel
from repro.obs.export import trace_from_chrome

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"
GOLDEN_TRACE = GOLDEN_DIR / "registration.trace.json"

SEED = "golden-trace"
ARGS = ("trace", "--scenario", "registration", "--seed", SEED,
        "--arch", "SW", "--rsa-bits", "512")


def export(tmp_path, name):
    trace_path = tmp_path / ("%s.trace.json" % name)
    metrics_path = tmp_path / ("%s.metrics.json" % name)
    code = main(list(ARGS) + ["--output", str(trace_path),
                              "--metrics", str(metrics_path)])
    assert code == 0
    return trace_path, metrics_path


def test_trace_matches_golden_snapshot(tmp_path, capsys):
    trace_path, _ = export(tmp_path, "generated")
    generated = trace_path.read_bytes()
    if os.environ.get("UPDATE_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        GOLDEN_TRACE.write_bytes(generated)
    assert generated == GOLDEN_TRACE.read_bytes(), \
        "Chrome trace drifted from the golden snapshot; if intentional, " \
        "regenerate with UPDATE_GOLDEN=1."


def test_same_seed_exports_are_byte_identical(tmp_path, capsys):
    first, first_metrics = export(tmp_path, "a")
    second, second_metrics = export(tmp_path, "b")
    assert first.read_bytes() == second.read_bytes()
    assert first_metrics.read_bytes() == second_metrics.read_bytes()


def test_golden_trace_is_valid_chrome_json():
    document = json.loads(GOLDEN_TRACE.read_text(encoding="utf-8"))
    events = document["traceEvents"]
    phases = {entry["ph"] for entry in events}
    assert phases <= {"M", "X", "i"}
    assert any(entry["ph"] == "M" and entry["name"] == "process_name"
               for entry in events)
    for entry in events:
        if entry["ph"] == "X":
            assert isinstance(entry["ts"], int)
            assert isinstance(entry["dur"], int)
            assert entry["dur"] >= 0
    other = document["otherData"]
    assert other["kind"] == "repro-cycle-trace"
    assert other["timebase"] == "cycles"
    assert other["profile"] == "SW"


def test_golden_trace_reconciles_with_cost_model():
    document = json.loads(GOLDEN_TRACE.read_text(encoding="utf-8"))
    trace = trace_from_chrome(document)
    breakdown = PerformanceModel().evaluate(trace, SW_PROFILE)
    assert breakdown.total_cycles == document["otherData"]["total_cycles"]
    operation_total = sum(
        entry["dur"] for entry in document["traceEvents"]
        if entry["ph"] == "X" and entry.get("cat") == "operation")
    assert operation_total == breakdown.total_cycles
