"""Tracer semantics: cycle timebase, reconciliation, null overhead."""

import pytest

from repro.core.architecture import HW_PROFILE, PAPER_PROFILES, SW_PROFILE
from repro.core.model import PerformanceModel
from repro.core.trace import Algorithm, OperationRecord, Phase
from repro.obs.tracer import (NULL_TRACER, NullTracer, OPERATION_CATEGORY,
                              Tracer, _NULL_CONTEXT, _NULL_SPAN)
from repro.usecases.tracing import run_scenario
from repro.usecases.world import DRMWorld

SEED = "test-tracer"
BITS = 512


def record(algorithm=Algorithm.SHA1, phase=Phase.REGISTRATION,
           invocations=1, blocks=4, label="probe"):
    return OperationRecord(algorithm=algorithm, phase=phase,
                           invocations=invocations, blocks=blocks,
                           label=label)


def test_on_record_advances_clock_by_priced_cycles():
    tracer = Tracer(profile=SW_PROFILE)
    rec = record()
    span = tracer.on_record(rec)
    expected = tracer.cost_table.cycles(
        rec, SW_PROFILE.implementation(rec.algorithm))
    assert span.duration == expected
    assert tracer.now == expected
    assert span.category == OPERATION_CATEGORY
    assert span.track == "registration"


def test_operation_spans_reconcile_with_cost_model():
    for profile in PAPER_PROFILES:
        tracer = Tracer(profile=profile, actor="terminal")
        world = run_scenario("consume", tracer, seed=SEED,
                             rsa_bits=BITS)
        breakdown = PerformanceModel().evaluate(
            world.agent_crypto.trace, profile)
        assert tracer.now == breakdown.total_cycles
        priced = {algorithm.value: cycles for algorithm, cycles
                  in breakdown.cycles_by_algorithm().items() if cycles}
        assert tracer.cycles_by_algorithm() == priced


def test_structural_span_duration_is_inner_operation_cost():
    tracer = Tracer(profile=HW_PROFILE)
    with tracer.span("outer", track="roap") as outer:
        tracer.on_record(record())
        tracer.on_record(record(blocks=8))
    assert outer.end == tracer.now
    assert outer.duration == tracer.now
    assert outer.args == {}


def test_span_set_attaches_arguments():
    tracer = Tracer()
    with tracer.span("txn", track="store", mode="journaled") as span:
        span.set("outcome", "committed")
    assert span.args == {"mode": "journaled", "outcome": "committed"}


def test_event_stamped_at_current_time_and_counted():
    tracer = Tracer()
    tracer.on_record(record())
    event = tracer.event("session.retry", track="roap", attempt=2)
    assert event.ts == tracer.now
    assert tracer.metrics.counters["events.session.retry"] == 1


def test_tracks_in_first_use_order():
    tracer = Tracer()
    with tracer.span("a", track="roap"):
        tracer.on_record(record())           # registration track
    tracer.event("x", track="store")
    assert tracer.tracks() == ("roap", "registration", "store")


def test_same_seed_runs_are_identical():
    def capture():
        tracer = Tracer(profile=SW_PROFILE, actor="terminal")
        run_scenario("full", tracer, seed=SEED, rsa_bits=BITS)
        return tracer
    a, b = capture(), capture()
    assert [s.__dict__ for s in a.spans] == [s.__dict__ for s in b.spans]
    assert [e.__dict__ for e in a.events] == [e.__dict__ for e in b.events]
    assert a.metrics == b.metrics


def test_null_tracer_is_inert_singleton():
    assert NULL_TRACER.enabled is False
    assert NULL_TRACER.now == 0
    # reusable singletons: no allocation per span/event
    assert NULL_TRACER.span("x", track="y") is _NULL_CONTEXT
    with NULL_TRACER.span("x") as span:
        assert span is _NULL_SPAN
        span.set("k", "v")          # swallowed
    assert NULL_TRACER.event("e", detail=1) is None
    assert NULL_TRACER.on_record(record()) is None
    assert NULL_TRACER.now == 0


def test_null_tracer_does_not_swallow_exceptions():
    with pytest.raises(RuntimeError):
        with NullTracer().span("x"):
            raise RuntimeError("must propagate")


def test_untraced_run_matches_traced_operation_trace():
    """Instrumentation must not change what the meter records."""
    def world_trace(tracer):
        world = DRMWorld.create(seed=SEED, rsa_bits=BITS, tracer=tracer)
        world.ci.publish("cid:x", "audio/mpeg", b"\x11" * 2048,
                         "http://ri.example/shop")
        world.agent.register(world.ri)
        return world.agent_crypto.trace
    untraced = world_trace(None)            # defaults to NULL_TRACER
    traced = world_trace(Tracer(profile=SW_PROFILE))
    assert untraced.canonical() == traced.canonical()
