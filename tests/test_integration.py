"""End-to-end integration stories across the whole stack."""

import pytest

from repro.core.architecture import PAPER_PROFILES, SW_PROFILE
from repro.core.model import PerformanceModel
from repro.core.trace import Phase
from repro.drm.errors import (CertificateRevokedError,
                              PermissionDeniedError)
from repro.drm.rel import (DatetimeConstraint, Permission, PermissionType,
                           Rights, play_count)
from repro.usecases.runner import run_functional, synthetic_content
from repro.usecases.scenario import UseCase
from repro.usecases.world import DRMWorld

BITS = 512


def test_full_story_two_contents_one_registration():
    """One registration serves many acquisitions (the RI Context)."""
    world = DRMWorld.create(seed="story", rsa_bits=BITS)
    song = synthetic_content(3000)
    tone = synthetic_content(800)
    dcf_song = world.ci.publish("cid:song", "audio/mpeg", song, "u")
    dcf_tone = world.ci.publish("cid:tone", "audio/midi", tone, "u")
    world.ri.add_offer("ro:song", world.ci.negotiate_license("cid:song"),
                       play_count(2))
    world.ri.add_offer("ro:tone", world.ci.negotiate_license("cid:tone"),
                       play_count(3))

    world.agent.register(world.ri)
    world.agent.install(world.agent.acquire(world.ri, "ro:song"),
                        dcf_song)
    world.agent.install(world.agent.acquire(world.ri, "ro:tone"),
                        dcf_tone)

    assert world.agent.consume("cid:song").clear_content == song
    assert world.agent.consume("cid:tone").clear_content == tone
    # Registration happened exactly once.
    registrations = world.agent_crypto.trace.filter(
        phase=Phase.REGISTRATION)
    private_ops = [r for r in registrations
                   if r.algorithm.value == "rsa-1024-private"]
    assert len(private_ops) == 1


def test_revocation_mid_lifecycle():
    """A device revoked after registration cannot re-register, but its
    already-installed rights keep working (offline enforcement is the
    CA robustness rules' problem, not ROAP's)."""
    world = DRMWorld.create(seed="revoke", rsa_bits=BITS)
    content = synthetic_content(500)
    dcf = world.ci.publish("cid:c", "audio/mpeg", content, "u")
    world.ri.add_offer("ro:c", world.ci.negotiate_license("cid:c"),
                       play_count(10))
    world.agent.register(world.ri)
    world.agent.install(world.agent.acquire(world.ri, "ro:c"), dcf)

    world.ca.revoke(world.agent.certificate.serial, world.clock.now)
    with pytest.raises(CertificateRevokedError):
        world.agent.register(world.ri)
    # Installed content still plays.
    assert world.agent.consume("cid:c").clear_content == content


def test_time_limited_license_expires():
    world = DRMWorld.create(seed="timed", rsa_bits=BITS)
    content = synthetic_content(400)
    dcf = world.ci.publish("cid:t", "audio/mpeg", content, "u")
    rights = Rights(permissions=(Permission(
        PermissionType.PLAY,
        (DatetimeConstraint(not_after=world.clock.now + 3600),),
    ),))
    world.ri.add_offer("ro:t", world.ci.negotiate_license("cid:t"),
                       rights)
    world.agent.register(world.ri)
    world.agent.install(world.agent.acquire(world.ri, "ro:t"), dcf)

    world.agent.consume("cid:t")
    world.clock.advance(3601)
    with pytest.raises(PermissionDeniedError):
        world.agent.consume("cid:t")


def test_trace_prices_consistently_across_profiles():
    """The same functional run yields the Figure 6/7 ordering."""
    use_case = UseCase(name="priced", content_octets=8192, accesses=3)
    run = run_functional(use_case, seed="priced")
    model = PerformanceModel()
    totals = [model.evaluate(run.trace, p).total_ms
              for p in PAPER_PROFILES]
    assert totals[0] > totals[1] > totals[2]


def test_phase_times_reconstruct_total():
    use_case = UseCase(name="phases", content_octets=4096, accesses=2)
    run = run_functional(use_case, seed="phases")
    breakdown = PerformanceModel().evaluate(run.trace, SW_PROFILE)
    assert sum(breakdown.ms_by_phase().values()) \
        == pytest.approx(breakdown.total_ms)
    assert sum(breakdown.ms_by_algorithm().values()) \
        == pytest.approx(breakdown.total_ms)


def test_superdistribution_requires_own_license():
    """A DCF copied to a second device is useless without an RO."""
    from repro.drm.errors import UnknownContentError
    world_a = DRMWorld.create(seed="alice", rsa_bits=BITS)
    content = synthetic_content(600)
    dcf = world_a.ci.publish("cid:s", "audio/mpeg", content, "u")
    world_a.ri.add_offer("ro:s", world_a.ci.negotiate_license("cid:s"),
                         play_count(5))
    world_a.agent.register(world_a.ri)
    world_a.agent.install(world_a.agent.acquire(world_a.ri, "ro:s"), dcf)

    world_b = DRMWorld.create(seed="bob", rsa_bits=BITS)
    world_b.agent.storage.store_dcf(dcf)  # superdistributed copy
    with pytest.raises(UnknownContentError):
        world_b.agent.consume("cid:s")
