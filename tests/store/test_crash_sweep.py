"""Exhaustive crash-point sweep over install and consume.

Every journal write boundary of each operation, at every torn fraction
(nothing / half / all of the frame persisted), must leave a device that
recovery returns to a sane state. The five invariants checked at every
crash point:

1. **no device-key loss** — the registration context survives (and the
   journal still authenticates under ``K_DEV``, or recovery itself
   would have found nothing);
2. **no double-install** — an RO is either fully installed (RO + DCFs +
   replay-cache entry together) or fully absent; a half-installed RO
   whose re-install passes the replay check cannot exist;
3. **no count reset** — remaining counts never exceed the grant;
4. **no half-applied decrement** — a crashed consume leaves the count
   at exactly the pre- or post-consume value, never in between;
5. **idempotent re-recovery** — recovering the recovered flash again
   changes nothing.

The sweep is fully deterministic: for a fixed seed the per-point
outcomes hash to the same digest in any sweep order.
"""

import copy
import hashlib

import pytest

from repro.drm.errors import DRMError, InstallationError
from repro.drm.identifiers import content_id as make_content_id
from repro.drm.identifiers import rights_object_id
from repro.drm.rel import PermissionType, play_count
from repro.store import (CrashInjector, CrashPoint, PowerLossError,
                         enumerate_crash_points)
from repro.usecases.runner import synthetic_content

GRANTED = 2
CID = make_content_id("sweep-content")
RO_ID = rights_object_id("sweep-license")

#: One injector instance so the memoized pristine-world cache is hit.
_INJECTOR = CrashInjector()


def prepared_world(fast_world_factory):
    """A durable, crashable world, registered and holding the RO offer."""
    world = fast_world_factory("crash-sweep", durable=True,
                               storage_injector=_INJECTOR)
    dcf = world.ci.publish(
        content_id=CID, content_type="audio/midi",
        clear_content=synthetic_content(512),
        rights_issuer_url="http://ri.example/shop")
    world.ri.add_offer(RO_ID, world.ci.negotiate_license(CID),
                       play_count(GRANTED))
    world.agent.register(world.ri)
    protected_ro = world.agent.acquire(world.ri, RO_ID)
    return world, protected_ro, dcf


def storage_digest(storage):
    """Order-independent fingerprint of all durable device state."""
    state = (
        sorted(storage.dcfs),
        sorted((ro_id, sorted((p.value, n) for p, n in
                              ro.state.remaining_counts.items()),
                sorted((p.value, t) for p, t in
                       ro.state.first_use.items()))
               for ro_id, ro in storage.installed_ros.items()),
        sorted(storage.ri_contexts),
        sorted(storage.domain_contexts),
        sorted(map(repr, sorted(storage.replay_cache))),
    )
    return hashlib.sha1(repr(state).encode("utf-8")).hexdigest()


def count_boundaries(base, operation):
    """Journal writes one clean run of ``operation`` performs."""
    world, protected_ro, dcf = copy.deepcopy(base)
    journal = world.agent.storage.journal
    before = journal.records_appended
    operation(world, protected_ro, dcf)
    return journal.records_appended - before


def assert_invariants(world, base_digests):
    """The five recovery invariants; returns the recovered digest."""
    report = world.agent.recover_storage()
    storage = world.agent.storage

    # (1) registration context survived power loss.
    assert sorted(storage.ri_contexts) == base_digests["ri_ids"]

    installed = storage.installed_ros.get(RO_ID)
    guid_remembered = any(guid[0] == RO_ID
                          for guid in storage.replay_cache)
    if installed is None:
        # (2) fully absent: no replay-cache entry blocks re-install.
        assert not guid_remembered
    else:
        # (2) fully present: RO, DCF and replay entry landed together.
        assert guid_remembered
        assert CID in storage.dcfs
        # (3)/(4) counts within the grant, never an impossible value.
        remaining = installed.state.remaining_counts[PermissionType.PLAY]
        assert 0 <= remaining <= GRANTED

    # (5) re-recovery is a fixed point.
    digest = storage_digest(storage)
    world.agent.recover_storage()
    assert storage_digest(world.agent.storage) == digest
    assert world.agent.storage.journal.flash is storage.journal.flash
    return digest


def run_install(world, protected_ro, dcf):
    world.agent.install(protected_ro, dcf)


def run_consume(world, protected_ro, dcf):
    world.agent.consume(CID)


def sweep(base, operation, base_digests):
    """Crash ``operation`` at every point; return outcome mapping."""
    boundaries = count_boundaries(base, operation)
    assert boundaries > 0
    outcomes = {}
    for point in enumerate_crash_points(boundaries):
        world, protected_ro, dcf = copy.deepcopy(base)
        world.agent.storage.journal.flash.injector.arm(point)
        with pytest.raises(PowerLossError):
            operation(world, protected_ro, dcf)
        digest = assert_invariants(world, base_digests)
        outcomes[(point.boundary, point.fraction)] = (
            digest, RO_ID in world.agent.storage.installed_ros,
            world, protected_ro, dcf)
    return boundaries, outcomes


def test_install_crash_sweep(fast_world_factory):
    base = prepared_world(fast_world_factory)
    base_digests = {"ri_ids": sorted(base[0].agent.storage.ri_contexts)}
    boundaries, outcomes = sweep(base, run_install, base_digests)
    # store_ro + store_dcf + remember + commit.
    assert boundaries == 4

    clean_world, clean_ro, clean_dcf = copy.deepcopy(base)
    clean_world.agent.install(clean_ro, clean_dcf)
    for _ in range(GRANTED):
        clean_world.agent.consume(CID)
    final_digest = storage_digest(clean_world.agent.storage)

    for (boundary, fraction), (digest, applied, world, ro, dcf) \
            in outcomes.items():
        # The transaction applies iff the commit record fully persisted.
        expect_applied = (boundary == boundaries - 1 and fraction == 1.0)
        assert applied == expect_applied, (boundary, fraction)
        # Whatever the crash point, the device completes the purchase:
        # a discarded install retries, an applied one refuses replay.
        if applied:
            with pytest.raises(InstallationError):
                world.agent.install(ro, dcf)
        else:
            world.agent.install(ro, dcf)
        for _ in range(GRANTED):
            world.agent.consume(CID)
        with pytest.raises(DRMError):
            world.agent.consume(CID)
        assert storage_digest(world.agent.storage) == final_digest


def test_consume_crash_sweep(fast_world_factory):
    base = prepared_world(fast_world_factory)
    base[0].agent.install(base[1], base[2])
    base_digests = {"ri_ids": sorted(base[0].agent.storage.ri_contexts)}
    boundaries, outcomes = sweep(base, run_consume, base_digests)
    # set_ro_state + commit.
    assert boundaries == 2

    for (boundary, fraction), (digest, applied, world, ro, dcf) \
            in outcomes.items():
        storage = world.agent.storage
        remaining = storage.installed_ros[RO_ID].state \
            .remaining_counts[PermissionType.PLAY]
        expect_applied = (boundary == boundaries - 1 and fraction == 1.0)
        # (4) exactly pre- or post-consume, decided by the commit point.
        assert remaining == GRANTED - (1 if expect_applied else 0), \
            (boundary, fraction)
        # The surviving count is honored precisely: `remaining` more
        # plays succeed, then the constraint is exhausted.
        for _ in range(remaining):
            world.agent.consume(CID)
        with pytest.raises(DRMError):
            world.agent.consume(CID)


def test_sweep_outcomes_are_order_independent(fast_world_factory):
    base = prepared_world(fast_world_factory)
    base_digests = {"ri_ids": sorted(base[0].agent.storage.ri_contexts)}
    boundaries = count_boundaries(base, run_install)

    def digests(points):
        result = {}
        for point in points:
            world, protected_ro, dcf = copy.deepcopy(base)
            world.agent.storage.journal.flash.injector.arm(point)
            with pytest.raises(PowerLossError):
                run_install(world, protected_ro, dcf)
            world.agent.recover_storage()
            result[(point.boundary, point.fraction)] = storage_digest(
                world.agent.storage)
        return result

    points = enumerate_crash_points(boundaries)
    forward = digests(points)
    backward = digests(list(reversed(points)))
    assert forward == backward
    sweep_digest = hashlib.sha1(
        repr(sorted(forward.items())).encode("utf-8")).hexdigest()
    assert sweep_digest == hashlib.sha1(
        repr(sorted(backward.items())).encode("utf-8")).hexdigest()


def test_replay_hazard_regression(fast_world_factory):
    """Crash between store_ro and remember must not wedge the device.

    Before install became one transaction, a failure after ``store_ro``
    but before ``remember`` left an installed RO that a retry would
    re-install (replay check passes — count reset); the reverse order
    would leave a remembered guid with no RO (retry refused — rights
    lost). A crash at any interior boundary now discards both.
    """
    base = prepared_world(fast_world_factory)
    for boundary in (1, 2):  # after store_ro / after store_dcf
        world, protected_ro, dcf = copy.deepcopy(base)
        world.agent.storage.journal.flash.injector.arm(
            CrashPoint(boundary=boundary, fraction=1.0))
        with pytest.raises(PowerLossError):
            world.agent.install(protected_ro, dcf)
        world.agent.recover_storage()
        storage = world.agent.storage
        assert RO_ID not in storage.installed_ros
        assert not any(g[0] == RO_ID for g in storage.replay_cache)
        # The retry succeeds and grants exactly the purchased count.
        installed = world.agent.install(protected_ro, dcf)
        assert installed.state.remaining_counts[
            PermissionType.PLAY] == GRANTED
