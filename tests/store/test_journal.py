"""Journal framing: length prefix, HMAC tag, torn-tail scanning."""

import struct

import pytest

from repro.core.meter import PlainCrypto
from repro.drm import serialize
from repro.store import (COMMIT_OP, CrashInjector, CrashPoint, Flash,
                         Journal, PowerLossError, enumerate_crash_points)
from repro.store.crash import SWEEP_FRACTIONS
from repro.store.journal import LENGTH_OCTETS, TAG_OCTETS

KEY = b"\x42" * 16


def make_journal(injector=None):
    return Journal(PlainCrypto(), KEY, injector=injector)


def test_append_scan_roundtrip():
    journal = make_journal()
    journal.append(1, "remember", {"ro_id": "a", "ro_nonce": "n"})
    journal.append(1, "remove_ro", {"ro_id": "b"})
    journal.commit(1)
    records, valid = journal.scan()
    assert [(r.txn, r.op) for r in records] == [
        (1, "remember"), (1, "remove_ro"), (1, COMMIT_OP)]
    assert records[0].args == {"ro_id": "a", "ro_nonce": "n"}
    assert records[2].is_commit and not records[0].is_commit
    assert valid == len(journal.flash)
    assert journal.records_appended == 3


def test_scan_stops_at_torn_tail():
    journal = make_journal()
    journal.append(1, "remember", {"ro_id": "a", "ro_nonce": "n"})
    full = len(journal.flash)
    journal.commit(1)
    # Every possible torn cut of the second frame: only the first
    # record survives, and the valid prefix is exactly its end.
    for cut in range(full, len(journal.flash)):
        torn = make_journal()
        torn.flash.data = bytearray(journal.flash.data[:cut])
        records, valid = torn.scan()
        assert [r.op for r in records] == ["remember"]
        assert valid == full


def test_scan_rejects_tampered_body():
    journal = make_journal()
    journal.append(1, "remember", {"ro_id": "a", "ro_nonce": "n"})
    journal.commit(1)
    clean, prefix = journal.scan()
    assert len(clean) == 2
    # Flip one octet inside the second frame's body.
    journal.flash.data[len(journal.flash) - TAG_OCTETS - 1] ^= 0x01
    records, valid = journal.scan()
    assert [r.op for r in records] == ["remember"]
    assert valid < prefix


def test_scan_rejects_unauthenticated_garbage():
    journal = make_journal()
    journal.commit(7)
    body = serialize.encode({"txn": 8, "op": "remember", "args": {}})
    # Correct framing but a zeroed tag: must not authenticate.
    journal.flash.data += struct.pack(">I", len(body)) + body \
        + b"\x00" * TAG_OCTETS
    records, valid = journal.scan()
    assert [r.txn for r in records] == [7]


def test_scan_rejects_authenticated_wrong_shape():
    journal = make_journal()
    crypto = journal.crypto
    body = serialize.encode(["not", "a", "record"])
    tag = crypto.hmac_sha1(KEY, body, label="journal-record")
    journal.flash.append(struct.pack(">I", len(body)) + body + tag)
    records, valid = journal.scan()
    assert records == [] and valid == 0


def test_empty_key_rejected():
    with pytest.raises(ValueError):
        Journal(PlainCrypto(), b"")


def test_deterministic_crash_tears_exact_prefix():
    injector = CrashInjector(point=CrashPoint(boundary=1, fraction=0.5))
    journal = make_journal(injector=injector)
    journal.append(1, "remember", {"ro_id": "a", "ro_nonce": "n"})
    first_end = len(journal.flash)
    with pytest.raises(PowerLossError):
        journal.commit(1)
    torn = len(journal.flash) - first_end
    # Half the frame (length prefix + body + tag) persisted.
    body = serialize.encode({"txn": 1, "op": COMMIT_OP, "args": {}})
    assert torn == (LENGTH_OCTETS + len(body) + TAG_OCTETS) // 2
    # A fired injector disarms: the retry lands in full.
    assert injector.fired
    journal.flash.truncate(first_end)
    journal.commit(1)
    records, valid = journal.scan()
    assert [r.op for r in records] == ["remember", COMMIT_OP]


def test_crash_before_any_octet_persists_nothing():
    injector = CrashInjector(point=CrashPoint(boundary=0, fraction=0.0))
    journal = make_journal(injector=injector)
    with pytest.raises(PowerLossError):
        journal.append(1, "remember", {"ro_id": "a", "ro_nonce": "n"})
    assert len(journal.flash) == 0


def test_seeded_injector_is_reproducible():
    def boundaries(seed):
        injector = CrashInjector(seed=seed, crash_rate=0.3)
        flash = Flash(injector=injector)
        fired_at = []
        for index in range(50):
            try:
                flash.append(b"\xAA" * 40)
            except PowerLossError:
                fired_at.append((index, len(flash)))
                injector.fired = False  # keep drawing
        return fired_at

    assert boundaries("soak-1") == boundaries("soak-1")
    assert boundaries("soak-1") != boundaries("soak-2")


def test_enumerate_crash_points_covers_every_pair():
    points = enumerate_crash_points(3)
    assert len(points) == 3 * len(SWEEP_FRACTIONS)
    assert {(p.boundary, p.fraction) for p in points} == {
        (b, f) for b in range(3) for f in SWEEP_FRACTIONS}
    with pytest.raises(ValueError):
        enumerate_crash_points(-1)
    with pytest.raises(ValueError):
        CrashPoint(boundary=0, fraction=1.5)
    with pytest.raises(ValueError):
        CrashInjector(point=CrashPoint(0, 0.0), seed="both")
    with pytest.raises(ValueError):
        CrashInjector(crash_rate=0.5)
