"""Property test: random crash/recover sequences never corrupt state.

Runs straight at the storage layer (no RSA worlds) so hypothesis can
afford many examples: random transactions of random ops execute against
a seeded :class:`CrashInjector`, and after every power loss the
recovered state must equal either the pre- or the post-transaction
shadow state — all-or-nothing, with re-recovery a fixed point.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.meter import PlainCrypto
from repro.drm.storage import DomainContext
from repro.store import (CrashInjector, PowerLossError,
                         TransactionalStorage)

KEY = b"\x42" * 16

_GUIDS = [("ro-%d" % i, "nonce-%d" % i) for i in range(4)]
_DOMAINS = ["domain-%d" % i for i in range(3)]

_OPS = st.one_of(
    st.tuples(st.just("remember"), st.sampled_from(_GUIDS)),
    st.tuples(st.just("store_domain"), st.sampled_from(_DOMAINS),
              st.integers(min_value=0, max_value=10)),
    st.tuples(st.just("remove_domain"), st.sampled_from(_DOMAINS)),
)

_SEQUENCES = st.lists(
    st.lists(_OPS, min_size=1, max_size=4), min_size=1, max_size=6)


def snapshot(storage):
    return (frozenset(storage.replay_cache),
            tuple(sorted((d, c.wrapped_domain_key, c.joined_at)
                         for d, c in storage.domain_contexts.items())))


def shadow_apply(shadow, ops):
    guids = set(shadow[0])
    domains = {d: (w, j) for d, w, j in shadow[1]}
    for op in ops:
        if op[0] == "remember":
            guids.add(op[1])
        elif op[0] == "store_domain":
            domains[op[1]] = (bytes([op[2]]) * 24, op[2])
        else:
            domains.pop(op[1], None)
    return (frozenset(guids),
            tuple(sorted((d, w, j) for d, (w, j) in domains.items())))


def execute(storage, ops):
    with storage.transaction():
        for op in ops:
            if op[0] == "remember":
                storage.remember(op[1])
            elif op[0] == "store_domain":
                storage.store_domain_context(DomainContext(
                    domain_id=op[1], ri_id="ri",
                    wrapped_domain_key=bytes([op[2]]) * 24,
                    joined_at=op[2]))
            else:
                storage.remove_domain_context(op[1])


def run_sequence(transactions, crash_rate, seed_salt):
    crypto = PlainCrypto()
    storage = TransactionalStorage(
        crypto, KEY,
        injector=CrashInjector(seed="soak-%s" % seed_salt,
                               crash_rate=crash_rate))
    shadow = snapshot(storage)
    crashes = 0
    for index, ops in enumerate(transactions):
        before = shadow
        after = shadow_apply(shadow, ops)
        try:
            execute(storage, ops)
            shadow = after
            assert snapshot(storage) == shadow
        except PowerLossError:
            crashes += 1
            flash = storage.journal.flash
            storage, report = TransactionalStorage.recover(
                crypto, KEY, flash)
            recovered = snapshot(storage)
            # All-or-nothing: never a partially applied transaction.
            assert recovered in (before, after), (index, ops)
            shadow = recovered
            # Re-recovery is a fixed point.
            again, _ = TransactionalStorage.recover(crypto, KEY, flash)
            assert snapshot(again) == recovered
            storage = again
            # Fresh injector: keep crashing through the whole sequence.
            storage.journal.flash.injector = CrashInjector(
                seed="soak-%s-%d" % (seed_salt, index),
                crash_rate=crash_rate)
    return crashes


@settings(max_examples=40, deadline=None, derandomize=True)
@given(transactions=_SEQUENCES,
       crash_rate=st.floats(min_value=0.1, max_value=0.9),
       seed_salt=st.integers(min_value=0, max_value=2 ** 16))
def test_random_crash_recover_sequences_are_atomic(
        transactions, crash_rate, seed_salt):
    run_sequence(transactions, crash_rate, seed_salt)


@pytest.mark.slow
@settings(max_examples=300, deadline=None, derandomize=True)
@given(transactions=st.lists(st.lists(_OPS, min_size=1, max_size=6),
                             min_size=1, max_size=12),
       crash_rate=st.floats(min_value=0.05, max_value=0.95),
       seed_salt=st.integers(min_value=0, max_value=2 ** 24))
def test_random_crash_recover_soak(transactions, crash_rate, seed_salt):
    run_sequence(transactions, crash_rate, seed_salt)
