"""TransactionalStorage: buffering, op codec, full-protocol recovery."""

import pytest

from repro.core.meter import PlainCrypto
from repro.drm.identifiers import content_id as make_content_id
from repro.drm.identifiers import rights_object_id
from repro.drm.rel import PermissionType, play_count
from repro.drm.storage import DeviceStorage, DomainContext
from repro.store import COMMIT_OP, TransactionalStorage
from repro.store.crash import JournalCorruptError
from repro.store.transactional import decode_op, encode_op
from repro.usecases.runner import synthetic_content

KEY = b"\x42" * 16


def fresh_storage():
    return TransactionalStorage(PlainCrypto(), KEY)


def recovered_copy(storage, crypto=None):
    crypto = crypto if crypto is not None else PlainCrypto()
    recovered, report = TransactionalStorage.recover(
        crypto, storage.journal.key, storage.journal.flash)
    return recovered, report


# -- transaction buffering ---------------------------------------------------

def test_bare_mutation_is_a_single_op_transaction():
    storage = fresh_storage()
    storage.remember(("ro", "nonce"))
    records, _ = storage.journal.scan()
    assert [r.op for r in records] == ["remember", COMMIT_OP]
    assert storage.seen_before(("ro", "nonce"))


def test_mutations_buffer_until_commit():
    storage = fresh_storage()
    with storage.transaction():
        storage.remember(("ro", "nonce"))
        # Journaled write-ahead, but RAM unchanged until the block exits.
        assert not storage.seen_before(("ro", "nonce"))
        records, _ = storage.journal.scan()
        assert [r.op for r in records] == ["remember"]
    assert storage.seen_before(("ro", "nonce"))
    records, _ = storage.journal.scan()
    assert [r.op for r in records] == ["remember", COMMIT_OP]


def test_exception_discards_transaction():
    storage = fresh_storage()
    with pytest.raises(RuntimeError):
        with storage.transaction():
            storage.remember(("ro", "nonce"))
            raise RuntimeError("abort")
    # RAM untouched; the journaled records carry no commit.
    assert not storage.seen_before(("ro", "nonce"))
    records, _ = storage.journal.scan()
    assert [r.op for r in records] == ["remember"]
    recovered, report = recovered_copy(storage)
    assert not recovered.seen_before(("ro", "nonce"))
    assert report.transactions_discarded == 1


def test_nested_transaction_is_reentrant():
    storage = fresh_storage()
    with storage.transaction():
        storage.remember(("a", "n"))
        with storage.transaction():
            storage.remember(("b", "n"))
        # Inner exit must not commit the outer transaction.
        assert not storage.seen_before(("a", "n"))
    assert storage.seen_before(("a", "n"))
    assert storage.seen_before(("b", "n"))
    records, _ = storage.journal.scan()
    assert [r.op for r in records].count(COMMIT_OP) == 1


def test_empty_transaction_writes_no_commit():
    storage = fresh_storage()
    with storage.transaction():
        pass
    assert len(storage.journal.flash) == 0


def test_volatile_storage_unaffected_by_transactions():
    storage = DeviceStorage()
    with storage.transaction():
        storage.remember(("ro", "nonce"))
        assert not storage.seen_before(("ro", "nonce"))
    assert storage.seen_before(("ro", "nonce"))


# -- op codec ----------------------------------------------------------------

def test_simple_ops_roundtrip_through_codec():
    guid = ("ro-1", "nonce-1")
    assert decode_op("remember", encode_op("remember", (guid,))) == (guid,)
    assert decode_op("remove_ro", encode_op("remove_ro", ("ro-1",))) \
        == ("ro-1",)
    context = DomainContext(domain_id="d", ri_id="ri",
                            wrapped_domain_key=b"\x01" * 24, joined_at=7)
    (decoded,) = decode_op("store_domain_context",
                           encode_op("store_domain_context", (context,)))
    assert decoded == context


def test_codec_rejects_unknown_op_and_malformed_args():
    with pytest.raises(JournalCorruptError):
        encode_op("format_flash", ())
    with pytest.raises(JournalCorruptError):
        decode_op("format_flash", {})
    with pytest.raises(JournalCorruptError):
        decode_op("remember", {"ro_id": "only-half-a-guid"})
    with pytest.raises(JournalCorruptError):
        decode_op("store_dcf", {"dcf": b"\x00garbage"})


# -- full-protocol recovery --------------------------------------------------

def run_protocol(world, accesses=1):
    cid = make_content_id("txn-roundtrip")
    dcf = world.ci.publish(
        content_id=cid, content_type="audio/midi",
        clear_content=synthetic_content(512),
        rights_issuer_url="http://ri.example/shop")
    ro_id = rights_object_id(cid + "-license")
    world.ri.add_offer(ro_id, world.ci.negotiate_license(cid),
                       play_count(5))
    world.agent.register(world.ri)
    protected_ro = world.agent.acquire(world.ri, ro_id)
    world.agent.install(protected_ro, dcf)
    for _ in range(accesses):
        world.agent.consume(cid)
    return cid, ro_id


def test_recovery_rebuilds_full_protocol_state(fast_world_factory):
    world = fast_world_factory("txn-roundtrip", durable=True)
    cid, ro_id = run_protocol(world, accesses=2)
    live = world.agent.storage

    recovered, report = TransactionalStorage.recover(
        world.agent.crypto, world.agent.secure.kdev, live.journal.flash)
    assert recovered.dcfs == live.dcfs
    assert recovered.installed_ros == live.installed_ros
    assert recovered.ri_contexts == live.ri_contexts
    assert recovered.domain_contexts == live.domain_contexts
    assert recovered.replay_cache == live.replay_cache
    assert recovered.installed_ros[ro_id].state.remaining_counts[
        PermissionType.PLAY] == 3
    # registration + installation + 2 accesses
    assert report.transactions_applied == 4
    assert report.transactions_discarded == 0
    assert report.torn_octets_discarded == 0

    # Idempotent: recovering the recovered flash changes nothing.
    again, _ = TransactionalStorage.recover(
        world.agent.crypto, world.agent.secure.kdev,
        recovered.journal.flash)
    assert again.installed_ros == recovered.installed_ros
    assert again.replay_cache == recovered.replay_cache

    # The recovered storage keeps working: consume down to exhaustion.
    world.agent.storage = recovered
    for _ in range(3):
        world.agent.consume(cid)


def test_recovered_txn_ids_do_not_collide(fast_world_factory):
    world = fast_world_factory("txn-roundtrip", durable=True)
    run_protocol(world)
    recovered, _ = TransactionalStorage.recover(
        world.agent.crypto, world.agent.secure.kdev,
        world.agent.storage.journal.flash)
    # New transactions must continue past the replayed ids, or their
    # records would alias committed history on the next recovery.
    highest = max(r.txn for r in recovered.journal.scan()[0])
    recovered.remember(("fresh", "guid"))
    records, _ = recovered.journal.scan()
    assert records[-1].txn > highest
