"""The priced retry-overhead analysis."""

import pytest

from repro.analysis import resilience

BITS = 512
SEED = "test-resilience"
RATES = (0.0, 0.1, 0.2, 0.5, 0.9)


@pytest.fixture(scope="module")
def result():
    return resilience.generate(seed=SEED, loss_rates=RATES,
                               rsa_bits=BITS)


# -- the analytic model ---------------------------------------------------
def test_clean_channel_needs_one_attempt():
    assert resilience.expected_attempts(0.0) == 1.0
    assert resilience.completion_probability(0.0) == 1.0


def test_total_loss_spends_the_whole_budget():
    assert resilience.expected_attempts(1.0, max_attempts=5) == 5.0
    assert resilience.completion_probability(1.0) == 0.0


def test_expected_attempts_monotone_in_loss():
    values = [resilience.expected_attempts(rate / 20.0)
              for rate in range(21)]
    assert all(b >= a for a, b in zip(values, values[1:]))


def test_completion_probability_monotone_decreasing():
    values = [resilience.completion_probability(rate / 20.0)
              for rate in range(21)]
    assert all(b <= a for a, b in zip(values, values[1:]))
    assert all(0.0 <= v <= 1.0 for v in values)


def test_attempt_success_probability():
    assert resilience.attempt_success_probability(0.0) == 1.0
    assert resilience.attempt_success_probability(
        0.5, transmissions=2) == pytest.approx(0.25)
    with pytest.raises(ValueError):
        resilience.attempt_success_probability(1.5)


def test_invalid_budget_rejected():
    with pytest.raises(ValueError):
        resilience.expected_attempts(0.1, max_attempts=0)


# -- the priced sweep -----------------------------------------------------
def test_sweep_covers_all_architectures(result):
    assert result.architectures() == ["SW", "SW/HW", "HW"]
    for architecture in result.architectures():
        assert len(result.rows_for(architecture)) == len(RATES)


def test_overhead_monotone_per_architecture(result):
    for architecture in result.architectures():
        rows = result.rows_for(architecture)
        for metric in ("overhead_cycles", "overhead_ms",
                       "overhead_millijoules", "overhead_octets"):
            values = [getattr(row, metric) for row in rows]
            assert all(b >= a for a, b in zip(values, values[1:])), \
                "%s %s not monotone" % (architecture, metric)


def test_zero_loss_has_zero_overhead(result):
    for architecture in result.architectures():
        clean = result.rows_for(architecture)[0]
        assert clean.loss_rate == 0.0
        assert clean.overhead_cycles == 0.0
        assert clean.overhead_octets == 0.0


def test_hardware_overhead_is_cheapest(result):
    """Retries on the HW profile re-spend far fewer CPU cycles."""
    lossy_sw = result.rows_for("SW")[-1]
    lossy_hw = result.rows_for("HW")[-1]
    assert lossy_hw.overhead_cycles < lossy_sw.overhead_cycles / 10
    # Octets do not depend on the architecture.
    assert lossy_hw.overhead_octets == lossy_sw.overhead_octets


def test_attempt_costs_are_positive(result):
    assert result.attempt_octets > 0
    for architecture in result.architectures():
        assert result.attempt_cycles[architecture] > 0
        assert result.attempt_millijoules[architecture] > 0


def test_render_mentions_every_architecture(result):
    rendered = result.render()
    for architecture in result.architectures():
        assert architecture in rendered
    assert "E[attempts]" in rendered
    assert "overhead [mJ]" in rendered
