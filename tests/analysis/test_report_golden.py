"""Golden snapshot of ``python -m repro report``.

Every published number flows through the report, so its rendered output
is pinned as a golden file: formatting regressions (column drift, float
formatting changes, dropped sections, reordered tables) are caught even
when every underlying number still matches.

The comparison is *normalized* — trailing whitespace and line-ending
differences are ignored, so the snapshot does not break on editor or
platform noise — but every character of content must match.

To regenerate after an intentional change::

    UPDATE_GOLDEN=1 python -m pytest tests/analysis/test_report_golden.py
"""

import difflib
import os
import pathlib

from repro.analysis import report
from repro.analysis.common import DEFAULT_SEED

GOLDEN_PATH = (pathlib.Path(__file__).resolve().parent
               / "golden" / "report.md")

#: Section headings the report contract promises, in order.
EXPECTED_SECTIONS = (
    "## Table 1",
    "## Figure 5",
    "## Figure 6 — Music Player",
    "## Figure 7 — Ringtone",
    "## In-text claims",
    "## ROAP message sizes",
    "## Retry overhead under loss",
    "## Durability overhead and recovery",
    "## Fleet-scale workload",
    "## Rights Issuer saturation",
    "## Overload control and retry storms",
    "## Adversary and outage degradation",
    "## Observability",
    "## Verdict",
)


def normalize(text):
    """Content-only form: universal newlines, no trailing whitespace."""
    lines = text.replace("\r\n", "\n").replace("\r", "\n").split("\n")
    stripped = [line.rstrip() for line in lines]
    while stripped and not stripped[-1]:
        stripped.pop()
    return "\n".join(stripped) + "\n"


def test_report_matches_golden_snapshot():
    generated = normalize(report.generate(seed=DEFAULT_SEED).markdown)
    if os.environ.get("UPDATE_GOLDEN"):
        GOLDEN_PATH.write_text(generated, encoding="utf-8")
    golden = normalize(GOLDEN_PATH.read_text(encoding="utf-8"))
    if generated != golden:
        diff = "\n".join(difflib.unified_diff(
            golden.splitlines(), generated.splitlines(),
            fromfile="golden/report.md", tofile="generated",
            lineterm=""))
        raise AssertionError(
            "report drifted from the golden snapshot; if the change is "
            "intentional, regenerate with UPDATE_GOLDEN=1.\n" + diff)


def test_report_sections_in_order():
    markdown = report.generate(seed=DEFAULT_SEED).markdown
    position = -1
    for heading in EXPECTED_SECTIONS:
        found = markdown.find(heading)
        assert found > position, "missing or misplaced %r" % heading
        position = found


def test_report_write_roundtrip(tmp_path):
    document = report.generate(seed=DEFAULT_SEED)
    path = tmp_path / "report.md"
    document.write(str(path))
    assert path.read_text(encoding="utf-8") == document.markdown
