"""Ablation studies: directions and magnitudes."""

import pytest

from repro.analysis import ablations

SEED = "ablation-tests"


def test_filesize_crossover_direction():
    result = ablations.filesize_crossover(
        sizes_octets=[4 * 1024, 3584 * 1024], seed=SEED)
    winners = [row[-1] for row in result.rows]
    assert winners[0] == "PKI"        # small file: PKI macro wins
    assert winners[-1] == "AES/SHA-1"  # big file: bulk macros win
    assert "DCF size" in result.render()


def test_playback_sensitivity_monotone():
    result = ablations.playback_sensitivity(accesses=(1, 10, 100),
                                            seed=SEED)
    music_ms = [float(row[1]) for row in result.rows]
    ring_ms = [float(row[2]) for row in result.rows]
    assert music_ms == sorted(music_ms)
    assert ring_ms == sorted(ring_ms)
    # Music scales much more steeply than ringtone.
    assert (music_ms[-1] - music_ms[0]) > 50 * (ring_ms[-1] - ring_ms[0])


def test_kdev_ablation_hurts_without_optimization():
    result = ablations.kdev_ablation(seed=SEED)
    slowdowns = {(row[0], row[1]): float(row[4].rstrip("x"))
                 for row in result.rows}
    # Ringtone SW: 25 extra RSADP ops dominate -> big slowdown.
    assert slowdowns[("Ringtone", "SW")] > 1.5
    # Every configuration gets worse without K_DEV.
    assert all(value > 1.0 for value in slowdowns.values())


def test_domain_overhead_is_small():
    result = ablations.domain_overhead(seed=SEED)
    for row in result.rows:
        overhead_pct = float(row[3].rstrip("%"))
        assert overhead_pct >= 0.0
        assert overhead_pct < 50.0  # a few signatures, not a new regime


def test_energy_models_agree_on_sw_only():
    result = ablations.energy_comparison(seed=SEED)
    for row in result.rows:
        if row[1] == "SW":
            assert float(row[3]) == pytest.approx(float(row[4]),
                                                  rel=0.01)


def test_energy_gap_wider_than_time_gap():
    """The paper's future-work observation, quantified."""
    ratios = ablations.energy_gap_ratios(seed=SEED)
    assert ratios["energy_ratio"] > ratios["time_ratio"]


def test_mgf1_effect_is_negligible():
    """The paper's EMSA-PSS approximation is justified: < 0.1 % effect."""
    result = ablations.mgf1_sensitivity(seed=SEED)
    for row in result.rows:
        difference_pct = abs(float(row[4].rstrip("%")))
        assert difference_pct < 0.1
