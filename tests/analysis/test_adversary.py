"""The adversary analysis: invariants, drain arithmetic, determinism."""

import pytest

from repro.analysis import adversary
from repro.core.architecture import PAPER_PROFILES

BITS = 512
SEED = "test-analysis-adversary"


@pytest.fixture(scope="module")
def analysis():
    return adversary.generate(seed=SEED, rsa_bits=BITS)


def test_sweep_inside_the_analysis_is_zero_acceptance(analysis):
    assert not analysis.sweep.accepted
    assert not analysis.sweep.unmounted
    assert len(analysis.sweep.outcomes) >= 10


def test_drain_rows_cover_all_architectures(analysis):
    assert [d.architecture for d in analysis.drains] \
        == [p.name for p in PAPER_PROFILES]
    for drain in analysis.drains:
        assert drain.breaker_attempts < drain.retry_attempts
        assert drain.breaker_cycles < drain.retry_cycles
        assert drain.saved_cycles \
            == drain.retry_cycles - drain.breaker_cycles
        assert 0.0 < drain.saved_fraction < 1.0


def test_outage_stats_shape(analysis):
    outage = analysis.outage
    assert outage.discovery_attempts > 0
    assert outage.fast_fails > 0
    assert outage.completed_after_restore
    assert outage.ocsp_fresh_responses == 1
    assert outage.ocsp_cache_hits == 1
    assert outage.ocsp_unavailable == 1


def test_render_is_deterministic(analysis):
    again = adversary.generate(seed=SEED, rsa_bits=BITS)
    assert again.render() == analysis.render()


def test_render_mentions_every_attack(analysis):
    text = analysis.render()
    for outcome in analysis.sweep.outcomes:
        assert outcome.attack.value in text
    assert "ACCEPTED" not in text
