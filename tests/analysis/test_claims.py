"""The in-text quantitative claims of paper section 4."""

import pytest

from repro.analysis import claims


@pytest.fixture(scope="module")
def result():
    return claims.generate()


def test_pki_totals_roughly_600ms(result):
    """'they total to roughly 600ms' — we allow 600 +/- 30 ms."""
    assert result.pki_ms_music == pytest.approx(600, abs=30)
    assert result.pki_ms_ringtone == pytest.approx(600, abs=30)


def test_pki_identical_across_use_cases(result):
    """'the absolute figures are identical for both use cases'."""
    assert result.pki_identical_across_use_cases
    assert result.pki_ms_music == result.pki_ms_ringtone


def test_exact_pki_cycle_budget(result):
    """3 private + 4 public ops: 121.86 M cycles = 609.3 ms at 200 MHz."""
    expected_ms = (3 * 37_740_000 + 4 * 2_160_000) / 200_000
    assert result.pki_ms_music == pytest.approx(expected_ms)


def test_music_speedup_almost_a_tenth(result):
    assert result.music_sw_over_swhw == pytest.approx(10.0, abs=2.0)


def test_render(result):
    text = result.render()
    assert "~600 ms" in text
    assert "Measured" in text
