"""The overload experiment: contracts, invariance, rendering.

The expensive end-to-end half runs the real sweep once and holds the
experiment's two executable contracts — request conservation and the
metastable headline — at the report seed, plus the ``--jobs``
bit-invariance the engine promises (digests equal for any worker
count). The cheap half drives ``assert_metastable_contract`` and
``assert_conservation`` over fabricated results to prove they actually
reject broken books, which a passing end-to-end run alone cannot show.
"""

import pytest

from repro.analysis.common import DEFAULT_SEED
from repro.analysis.overload import (BASELINE_COMBO, DEFAULT_COMBOS,
                                     MITIGATED_COMBO, OverloadSweep,
                                     generate, sweep)
from repro.sim.overload import StormResult, StormSpec

SMALL_COMBOS = (BASELINE_COMBO, MITIGATED_COMBO)


def _fake(combo, collapse_bins=0, recovery_bin=None, attempts=100,
          pending=0, pre_goodput=10.0):
    admission, retry, deadlines = combo
    spec = StormSpec(admission=admission, retry=retry,
                     deadlines=deadlines)
    served = attempts - pending - 6
    return StormResult(
        spec=spec, slot_ticks=1000, clients=80, attempts=attempts,
        successes=served, gave_up=0, abandoned=0, served=served,
        refused=2, shed=2, timed_out=2, late_served=0,
        pending=pending, retries_denied=0, service_ticks_total=1,
        wasted_service_ticks=0, utilization=0.5, events=1,
        pre_goodput_per_bin=pre_goodput, collapse_bins=collapse_bins,
        recovery_bin=recovery_bin)


def _fake_sweep(baseline_collapse_bins, mitigated_recovery_bin):
    out = OverloadSweep(seed="fake", architecture="SW")
    baseline = _fake(BASELINE_COMBO,
                     collapse_bins=baseline_collapse_bins)
    mitigated = _fake(MITIGATED_COMBO,
                      recovery_bin=mitigated_recovery_bin)
    out.grid[baseline.spec.label] = baseline
    out.grid[mitigated.spec.label] = mitigated
    return out


# -- contract checkers on fabricated books ----------------------------------

def test_conservation_checker_rejects_cooked_books():
    out = _fake_sweep(20, 10)
    out.assert_conservation()
    out.grid["none/naive"].pending += 1  # one attempt vanishes
    with pytest.raises(AssertionError, match="conservation"):
        out.assert_conservation()


def test_metastable_contract_requires_a_lasting_collapse():
    # Baseline recovers after two bins: no metastability, no story.
    out = _fake_sweep(2, 10)
    with pytest.raises(AssertionError, match="no metastable collapse"):
        out.assert_metastable_contract()


def test_metastable_contract_requires_an_escape():
    # 20 bins x 30 units = 600 = the five-spike-duration window, but
    # nothing mitigated ever recovers: the experiment proved overload,
    # not overload *control*.
    out = _fake_sweep(20, None)
    with pytest.raises(AssertionError, match="no mitigation"):
        out.assert_metastable_contract()


def test_metastable_contract_accepts_the_intended_shape():
    # Recovery bin 10 is the first post-spike bin (spike_end 300 /
    # bin_size 30): recovery_time 0, well inside the window.
    out = _fake_sweep(20, 10)
    assert out.recovery_window == 600
    assert [r.spec.label for r in out.recovered()] \
        == ["token-bucket/backoff-jitter+deadline"]
    out.assert_metastable_contract()


# -- the real sweep ---------------------------------------------------------

def test_sweep_rejects_zero_workers():
    with pytest.raises(ValueError):
        sweep(jobs=0)


def test_sweep_is_bit_identical_across_worker_counts():
    serial = sweep(seed="jobs-invariance", combos=SMALL_COMBOS,
                   spike_rhos=(), architectures=(), jobs=1)
    parallel = sweep(seed="jobs-invariance", combos=SMALL_COMBOS,
                     spike_rhos=(), architectures=(), jobs=2)
    assert sorted(serial.grid) == sorted(parallel.grid)
    for label, result in serial.grid.items():
        assert parallel.grid[label].digest() == result.digest()


def test_generate_holds_the_contracts_at_the_report_seed():
    analysis = generate(seed=DEFAULT_SEED, jobs=2)
    swept = analysis.sweep
    # generate() already ran both asserts; pin the shape they proved.
    assert len(swept.grid) == len(DEFAULT_COMBOS) == 24
    assert swept.baseline.spec.label == "none/naive"
    assert swept.baseline.collapse_duration >= swept.recovery_window
    assert swept.recovered()

    rendered = analysis.render()
    assert "admission/retry" in rendered
    assert "none/naive" in rendered
    assert "token-bucket/backoff-jitter+deadline" in rendered
    assert "Spike severity ladder" in rendered
    assert "Architecture cross-check" in rendered
    # The HW RI's OCSP round-trip outlives client patience: no healthy
    # baseline exists there, so collapse/recovery render as n/a.
    assert "n/a" in rendered
