"""The ROAP message-size experiment."""

import pytest

from repro.analysis import messages


@pytest.fixture(scope="module")
def result():
    return messages.generate(seed="msg-tests")


def test_exchange_structure(result):
    totals = result.by_message()
    for name in messages.MESSAGE_ORDER:
        count, octets = totals[name]
        assert count == 1
        assert octets > 0


def test_certificate_messages_dominate(result):
    totals = result.by_message()
    assert totals["RegistrationResponse"][1] == max(
        octets for _, octets in totals.values())
    assert totals["DeviceHello"][1] == min(
        octets for _, octets in totals.values())


def test_sizes_are_plausible(result):
    """Canonical encoding: hellos in the hundreds of octets, the
    certificate/OCSP-bearing response around a kilobyte."""
    totals = result.by_message()
    assert 100 <= totals["DeviceHello"][1] <= 500
    assert 800 <= totals["RegistrationResponse"][1] <= 2500
    assert 2000 <= result.log.total_octets() <= 10_000


def test_render(result):
    text = result.render()
    assert "ROAP message sizes" in text
    assert "TOTAL" in text
    for name in messages.MESSAGE_ORDER:
        assert name in text


def test_deterministic():
    a = messages.generate(seed="same")
    b = messages.generate(seed="same")
    assert a.by_message() == b.by_message()
