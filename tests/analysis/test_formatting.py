"""ASCII rendering helpers."""

import pytest

from repro.analysis.formatting import (deviation_pct, format_log_bars,
                                       format_ms, format_stacked_shares,
                                       format_table)


def test_format_table_alignment():
    text = format_table(("A", "Bee"), [("1", "2"), ("333", "4")],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert lines[2].startswith("A")
    assert "333" in lines[-1]
    # The second column starts at the same offset in header and rows.
    header_offset = lines[2].index("Bee")
    assert lines[4][header_offset] == "2"
    assert lines[5][header_offset] == "4"


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(("A", "B"), [("only-one",)])


def test_format_log_bars_monotone_length():
    text = format_log_bars(["SW", "HW"], [7730.0, 190.0])
    sw_line, hw_line = text.splitlines()
    assert sw_line.count("#") > hw_line.count("#")
    assert "7730.0 ms" in sw_line


def test_format_log_bars_with_paper_values():
    text = format_log_bars(["SW"], [7665.0], paper_values=[7730.0])
    assert "(paper: 7730 ms)" in text


def test_format_log_bars_rejects_nonpositive():
    with pytest.raises(ValueError):
        format_log_bars(["A"], [0.0])
    with pytest.raises(ValueError):
        format_log_bars(["A", "B"], [1.0])


def test_format_stacked_shares():
    text = format_stacked_shares(
        labels=["Ringtone"], categories=["P", "Q"],
        shares=[[0.75, 0.25]], width=40,
    )
    assert "75.0%" in text
    assert "25.0%" in text
    assert "legend:" in text


def test_format_stacked_shares_rejects_zero_total():
    with pytest.raises(ValueError):
        format_stacked_shares(["x"], ["a"], [[0.0]])


def test_format_ms_precision():
    assert format_ms(7730.4) == "7730"
    assert format_ms(12.34) == "12.3"
    assert format_ms(0.0123) == "0.012"


def test_deviation_pct():
    assert deviation_pct(110.0, 100.0) == pytest.approx(10.0)
    assert deviation_pct(90.0, 100.0) == pytest.approx(-10.0)
    with pytest.raises(ValueError):
        deviation_pct(1.0, 0.0)
