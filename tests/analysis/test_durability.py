"""Durability pricing: measurement, templates, rendering."""

import pytest

from repro.analysis import durability
from repro.core.architecture import PAPER_PROFILES
from repro.usecases.durability import (CALIBRATION_ACCESSES,
                                       _cached_measurement,
                                       build_durability_templates,
                                       measure_durability)

SEED = "test-durability"
BITS = 512

ARCHES = tuple(profile.name for profile in PAPER_PROFILES)


@pytest.fixture(scope="module")
def measurement():
    return measure_durability(SEED, rsa_bits=BITS)


def test_journal_overhead_is_positive_everywhere(measurement):
    templates = measurement.templates
    for costs in (templates.registration_overhead_cycles,
                  templates.installation_overhead_cycles,
                  templates.access_overhead_cycles,
                  templates.recovery_cycles):
        assert set(costs) == set(ARCHES)
        assert all(cycles > 0 for cycles in costs.values())


def test_journal_growth_matches_the_transaction_shapes(measurement):
    templates = measurement.templates
    # store_ri_context + commit / store_ro + store_dcf + remember +
    # commit / set_ro_state + commit.
    assert templates.registration_records == 2
    assert templates.install_records == 4
    assert templates.access_records == 2
    assert templates.registration_octets > 0
    assert templates.install_octets > templates.access_octets
    assert templates.recovery_records == (
        templates.registration_records + templates.install_records
        + CALIBRATION_ACCESSES * templates.access_records)


def test_recovery_replay_applied_every_transaction(measurement):
    # registration + installation + the calibration accesses.
    assert measurement.recovery_transactions_applied == \
        2 + CALIBRATION_ACCESSES


def test_recovery_cost_scales_linearly_and_exactly(measurement):
    templates = measurement.templates
    for arch in ARCHES:
        per_journal = templates.recovery_cycles[arch]
        assert templates.recovery_cycles_for(arch, 0) == 0
        doubled = templates.recovery_cycles_for(
            arch, 2 * templates.recovery_records)
        assert doubled == 2 * per_journal
        assert isinstance(
            templates.recovery_cycles_for(arch, 37), int)
    with pytest.raises(ValueError):
        templates.recovery_cycles_for("SW", -1)


def test_measurement_is_deterministic():
    first = measure_durability(SEED, rsa_bits=BITS)
    _cached_measurement.cache_clear()
    second = measure_durability(SEED, rsa_bits=BITS)
    assert first == second


def test_templates_helper_matches_measurement(measurement):
    assert build_durability_templates(SEED, rsa_bits=BITS) \
        == measurement.templates


def test_generate_covers_every_phase_and_length():
    result = durability.generate(SEED, rsa_bits=BITS)
    assert len(result.overheads) == 3 * len(ARCHES)
    assert len(result.projections) == \
        len(durability.DEFAULT_JOURNAL_LENGTHS) * len(ARCHES)
    for arch in ARCHES:
        phases = [o.phase for o in result.overheads_for(arch)]
        assert phases == ["registration", "installation", "access"]
    for overhead in result.overheads:
        assert overhead.baseline_cycles > 0
        assert 0.0 < overhead.overhead_fraction < 1.0


def test_render_includes_both_tables():
    rendered = durability.generate(SEED, rsa_bits=BITS).render()
    assert "Write-ahead journal overhead per phase" in rendered
    assert "Power-loss recovery replay cost vs journal length" in rendered
    for arch in ARCHES:
        assert arch in rendered
