"""Figures 5, 6 and 7: shapes, orderings and closeness to the paper.

Reproduction tolerance: our substrate regenerates the workload from the
protocol structure rather than the authors' Java model, so absolute values
may drift a few percent; every assertion here allows 10 % except where the
paper's claim is qualitative (orderings, dominance), which must hold
exactly.
"""

import pytest

from repro.analysis import figure5, figure6, figure7

TOLERANCE = 0.10


@pytest.fixture(scope="module")
def fig5():
    return figure5.generate()


@pytest.fixture(scope="module")
def fig6():
    return figure6.generate()


@pytest.fixture(scope="module")
def fig7():
    return figure7.generate()


# -- Figure 5 --------------------------------------------------------------

def test_fig5_shares_sum_to_one(fig5):
    for label in ("Ringtone", "Music Player"):
        assert sum(fig5.shares[label].values()) == pytest.approx(1.0)


def test_fig5_ringtone_dominated_by_pki_private(fig5):
    shares = fig5.shares["Ringtone"]
    assert shares["PKI Private Key Operation"] == max(shares.values())
    assert shares["PKI Private Key Operation"] > 0.5


def test_fig5_music_dominated_by_bulk_crypto(fig5):
    shares = fig5.shares["Music Player"]
    assert shares["AES Decryption"] == max(shares.values())
    assert shares["AES Decryption"] + shares["SHA-1"] > 0.85
    assert shares["PKI Public Key Operation"] < 0.02


def test_fig5_close_to_paper_reading(fig5):
    for use_case, expected in figure5.PAPER_SHARES.items():
        for category, share in expected.items():
            measured = fig5.shares[use_case][category]
            assert measured == pytest.approx(share, abs=0.05), \
                "%s / %s" % (use_case, category)


def test_fig5_render(fig5):
    text = fig5.render()
    assert "Ringtone" in text and "Music Player" in text
    assert "PKI Private Key Operation" in text


# -- Figure 6 --------------------------------------------------------------

def test_fig6_within_tolerance(fig6):
    for name, paper_value in figure6.PAPER_MS.items():
        measured = fig6.measured_ms[name]
        assert abs(measured - paper_value) / paper_value < TOLERANCE, \
            "%s: %.1f vs paper %.1f" % (name, measured, paper_value)


def test_fig6_ordering(fig6):
    assert fig6.measured_ms["SW"] > fig6.measured_ms["SW/HW"] \
        > fig6.measured_ms["HW"]


def test_fig6_aes_sha_macros_cut_to_a_tenth(fig6):
    """'total processing time can be cut to almost a tenth' (paper §4)."""
    ratio = fig6.measured_ms["SW"] / fig6.measured_ms["SW/HW"]
    assert 8.0 < ratio < 12.0


def test_fig6_render(fig6):
    text = fig6.render()
    assert "Figure 6" in text
    assert "paper: 7730" in text
    assert "deviation" in text


# -- Figure 7 --------------------------------------------------------------

def test_fig7_within_tolerance(fig7):
    for name, paper_value in figure7.PAPER_MS.items():
        measured = fig7.measured_ms[name]
        assert abs(measured - paper_value) / paper_value < TOLERANCE, \
            "%s: %.1f vs paper %.1f" % (name, measured, paper_value)


def test_fig7_significant_step_is_pki_hardware(fig7):
    """'the significant step occurs when providing PKI hardware support'."""
    sw_to_swhw = fig7.measured_ms["SW"] / fig7.measured_ms["SW/HW"]
    swhw_to_hw = fig7.measured_ms["SW/HW"] / fig7.measured_ms["HW"]
    assert swhw_to_hw > 10 * sw_to_swhw


def test_fig7_pki_times_identical_to_fig6_registration(fig6, fig7):
    """PKI work is DCF-size independent: the SW/HW bars differ only by
    the (small) hardware-accelerated bulk work."""
    assert fig7.measured_ms["SW/HW"] < fig6.measured_ms["SW/HW"]


def test_fig7_render(fig7):
    text = fig7.render()
    assert "Figure 7" in text
    assert "paper: 12" in text


# -- cross-figure consistency ----------------------------------------------

def test_music_slower_than_ringtone_everywhere(fig6, fig7):
    for name in ("SW", "SW/HW", "HW"):
        assert fig6.measured_ms[name] > fig7.measured_ms[name]
