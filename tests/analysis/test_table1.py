"""Experiment table1: the rendered table matches the paper."""

from repro.analysis import table1
from repro.core.costs import CostTable, LinearCost, SOFTWARE_COSTS
from repro.core.trace import Algorithm


def test_generate_matches_paper():
    result = table1.generate()
    assert result.matches_paper
    assert result.mismatches == []
    assert len(result.rows) == 6


def test_render_contains_all_rows():
    text = table1.generate().render()
    for name in ("AES Encryption", "AES Decryption", "SHA-1",
                 "HMAC SHA-1", "RSA 1024 Public Key Op",
                 "RSA 1024 Private Key Op"):
        assert name in text
    assert "all entries match the paper" in text
    assert "360 + 830/128 bit" in text
    assert "37740000/1024 bit" in text


def test_detects_database_drift():
    """A corrupted cost table is flagged, not silently rendered."""
    corrupted = CostTable(
        software={**SOFTWARE_COSTS,
                  Algorithm.SHA1: LinearCost(0, 999)},
    )
    result = table1.generate(corrupted)
    assert not result.matches_paper
    assert any("SHA-1" in m for m in result.mismatches)
    assert "MISMATCHES" in result.render()
