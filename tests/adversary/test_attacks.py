"""AdversaryChannel mechanics and per-attack defense mapping."""

import pytest

from repro.adversary.attacks import (ALL_ATTACKS, AdversaryChannel,
                                     AttackKind)
from repro.crypto.errors import SignatureError
from repro.drm.errors import (NonceMismatchError, RegistrationError,
                              TrustError)
from repro.usecases.world import DRMWorld

BITS = 512


@pytest.fixture()
def world():
    return DRMWorld.create("test-attacks", rsa_bits=BITS)


def test_unarmed_channel_is_transparent(world):
    channel = AdversaryChannel(world.ri)
    context = world.agent.register(channel)
    assert context.ri_id
    assert len(channel.attacks) == 0


def test_channel_captures_passing_responses(world):
    channel = AdversaryChannel(world.ri)
    world.agent.register(channel)
    assert "RIHello" in channel.captured
    assert "RegistrationResponse" in channel.captured


def test_arm_disarm_and_attack_log(world):
    channel = AdversaryChannel(world.ri)
    channel.arm(AttackKind.FORGE_SIGNATURE)
    with pytest.raises(SignatureError):
        world.agent.register(channel)
    channel.disarm()
    assert channel.armed is None
    assert channel.attacks.count(AttackKind.FORGE_SIGNATURE) == 1
    assert channel.attacks.count() == 1
    # Disarmed again, the channel passes traffic through untouched.
    world.agent.register(channel)
    assert channel.attacks.count() == 1


def test_forged_signature_rejected_by_pss(world):
    channel = AdversaryChannel(world.ri)
    channel.arm(AttackKind.FORGE_SIGNATURE)
    with pytest.raises(SignatureError):
        world.agent.register(channel)


def test_downgrade_rejected_before_any_crypto(world):
    channel = AdversaryChannel(world.ri)
    channel.arm(AttackKind.DOWNGRADE_VERSION)
    with pytest.raises(RegistrationError, match="1.0"):
        world.agent.register(channel)


def test_time_rollback_rejected_by_resync_bound(world):
    channel = AdversaryChannel(world.ri)
    # The rollback bound protects previously *synced* DRM Time, so the
    # realistic target is a device the RI has already corrected once.
    world.agent.register(channel)
    channel.arm(AttackKind.TIME_ROLLBACK)
    with pytest.raises(TrustError, match="rollback"):
        world.agent.register(channel)


def test_cert_substitution_fails_anchor_lookup(world):
    channel = AdversaryChannel(world.ri)
    channel.arm(AttackKind.CERT_SUBSTITUTION)
    with pytest.raises(TrustError, match="evil-root"):
        world.agent.register(channel)


def test_cert_substitution_failure_is_byte_identical(world):
    """The forgery cut-off keys on identical (type, message) pairs."""
    channel = AdversaryChannel(world.ri)
    channel.arm(AttackKind.CERT_SUBSTITUTION)
    messages = set()
    for _ in range(3):
        with pytest.raises(TrustError) as excinfo:
            world.agent.register(channel)
        messages.add(str(excinfo.value))
    assert len(messages) == 1


def test_replay_rejected_by_nonce_echo(world):
    channel = AdversaryChannel(world.ri)
    world.agent.register(channel)          # the tapped clean flow
    world.agent.register(channel)          # a second capture to replay
    channel.arm(AttackKind.REPLAY_RESPONSE)
    with pytest.raises(NonceMismatchError):
        world.agent.register(channel)


def test_attacks_are_deterministic_per_seed():
    """Same seed, same world, same attack -> identical rejection."""
    details = []
    for _ in range(2):
        world = DRMWorld.create("test-attacks-det", rsa_bits=BITS)
        channel = AdversaryChannel(world.ri, seed="det")
        channel.arm(AttackKind.FORGE_SIGNATURE)
        with pytest.raises(SignatureError) as excinfo:
            world.agent.register(channel)
        details.append((str(excinfo.value),
                        channel.attacks.events[0].detail))
    assert details[0] == details[1]


def test_corpus_enumerates_every_kind():
    assert set(ALL_ATTACKS) == set(AttackKind)
    assert len(ALL_ATTACKS) >= 10
