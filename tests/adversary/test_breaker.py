"""Circuit breaker: state machine, forgery cut-off, outage fast-fail.

The breaker unit tests need no worlds; the integration tests drive
:class:`~repro.drm.session.RoapSession` against the adversary and
outage channels and pin the breaker's measurable value: fewer attempts,
fewer priced crypto operations, recovery after restore.
"""

import pytest

from repro.adversary.attacks import AdversaryChannel, AttackKind
from repro.adversary.outage import (OutageRIChannel, OutageSchedule,
                                    OutageWindow)
from repro.drm.clock import SimulationClock
from repro.drm.session import (BreakerPolicy, BreakerState,
                               CircuitBreaker, RoapSession)
from repro.usecases.world import DRMWorld

BITS = 512


# -- the state machine, no worlds needed -------------------------------------

def test_policy_validation():
    with pytest.raises(ValueError):
        BreakerPolicy(identical_trust_failures=1)
    with pytest.raises(ValueError):
        BreakerPolicy(failure_threshold=0)
    with pytest.raises(ValueError):
        BreakerPolicy(open_seconds=-1)


def test_breaker_trips_open_at_threshold():
    clock = SimulationClock()
    breaker = CircuitBreaker(clock, BreakerPolicy(failure_threshold=3))
    for _ in range(2):
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert breaker.times_opened == 1


def test_open_breaker_fast_fails_then_half_opens():
    clock = SimulationClock()
    breaker = CircuitBreaker(clock, BreakerPolicy(open_seconds=100))
    breaker.trip_open()
    assert not breaker.allow_attempt()
    assert breaker.fast_fails == 1
    assert breaker.seconds_until_probe() == 100
    clock.advance(100)
    assert breaker.allow_attempt()          # the half-open probe
    assert breaker.state is BreakerState.HALF_OPEN


def test_failed_probe_reopens_successful_probe_recloses():
    clock = SimulationClock()
    breaker = CircuitBreaker(clock, BreakerPolicy(open_seconds=10))
    breaker.trip_open()
    clock.advance(10)
    assert breaker.allow_attempt()
    breaker.record_failure()                # probe failed
    assert breaker.state is BreakerState.OPEN
    assert breaker.times_opened == 2
    clock.advance(10)
    assert breaker.allow_attempt()
    breaker.record_success()                # probe succeeded
    assert breaker.state is BreakerState.CLOSED
    assert breaker.consecutive_failures == 0


def test_record_forgery_counts_and_opens():
    breaker = CircuitBreaker(SimulationClock())
    breaker.record_forgery()
    assert breaker.forgeries_detected == 1
    assert breaker.state is BreakerState.OPEN


# -- forgery cut-off against the live adversary ------------------------------

def _forged_registration(use_breaker):
    world = DRMWorld.create("test-breaker-forgery", metered=True,
                            rsa_bits=BITS)
    channel = AdversaryChannel(world.ri, seed="forgery")
    channel.arm(AttackKind.CERT_SUBSTITUTION)
    breaker = CircuitBreaker(world.clock) if use_breaker else None
    session = RoapSession(world.agent, channel, breaker=breaker)
    world.agent_crypto.reset_trace()
    outcome = session.register()
    return outcome, len(world.agent_crypto.reset_trace()), breaker


def test_forgery_cut_off_spends_less_than_plain_retry():
    plain, plain_ops, _ = _forged_registration(use_breaker=False)
    cut, cut_ops, breaker = _forged_registration(use_breaker=True)
    assert not plain.completed and not cut.completed
    assert plain.attempts == 5              # PR-1 policy: full budget
    assert cut.attempts == 2                # two identical TrustErrors
    assert "consistent forgery" in cut.reason
    assert cut_ops < plain_ops              # strictly fewer priced ops
    assert breaker.forgeries_detected == 1


def test_signature_failures_do_not_trigger_the_forgery_cut_off():
    """FORGE_SIGNATURE raises SignatureError (not TrustError): the
    forgery cut-off must not fire. The *generic* failure threshold (3
    consecutive failures) still opens the breaker — one attempt later
    than the trust-specific cut-off, and without a forgery verdict."""
    world = DRMWorld.create("test-breaker-sig", metered=True,
                            rsa_bits=BITS)
    channel = AdversaryChannel(world.ri, seed="sig")
    channel.arm(AttackKind.FORGE_SIGNATURE)
    breaker = CircuitBreaker(world.clock)
    session = RoapSession(world.agent, channel, breaker=breaker)
    outcome = session.register()
    assert not outcome.completed
    assert outcome.attempts == breaker.policy.failure_threshold == 3
    assert "consistent forgery" not in outcome.reason
    assert breaker.forgeries_detected == 0


# -- outage fast-fail and recovery -------------------------------------------

def test_outage_fast_fail_and_recovery_after_restore():
    world = DRMWorld.create("test-breaker-outage", metered=True,
                            rsa_bits=BITS)
    start = world.clock.now
    schedule = OutageSchedule([OutageWindow(start, start + 3600)])
    channel = OutageRIChannel(world.ri, schedule, world.clock)
    breaker = CircuitBreaker(world.clock,
                             BreakerPolicy(open_seconds=300))
    session = RoapSession(world.agent, channel, breaker=breaker)

    discovery = session.register()
    assert not discovery.completed
    assert discovery.attempts == 3          # tripped at the threshold
    assert breaker.state is BreakerState.OPEN

    world.agent_crypto.reset_trace()
    fast = session.register()
    assert not fast.completed
    assert fast.attempts == 0               # refused before any attempt
    assert "circuit open" in fast.reason
    assert len(world.agent_crypto.reset_trace()) == 0   # zero crypto

    world.clock.advance(
        schedule.seconds_until_restore(world.clock.now))
    restored = session.register()
    assert restored.completed
    assert restored.attempts == 1           # one half-open probe
    assert breaker.state is BreakerState.CLOSED
