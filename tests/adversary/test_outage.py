"""Outage schedules, the outage RI channel, and the OCSP cache."""

import pytest

from repro.adversary.outage import (CachingOCSPResponder, OutageRIChannel,
                                    OutageSchedule, OutageWindow)
from repro.drm.clock import DAY
from repro.drm.errors import ServiceUnavailableError
from repro.usecases.world import DRMWorld

BITS = 512


# -- schedules ---------------------------------------------------------------

def test_window_validation_and_membership():
    with pytest.raises(ValueError):
        OutageWindow(100, 100)
    window = OutageWindow(100, 200)
    assert window.seconds == 100
    assert window.contains(100) and window.contains(199)
    assert not window.contains(99) and not window.contains(200)


def test_schedule_rejects_overlap_and_sorts():
    with pytest.raises(ValueError):
        OutageSchedule([OutageWindow(0, 100), OutageWindow(50, 150)])
    schedule = OutageSchedule([OutageWindow(300, 400),
                               OutageWindow(0, 100)])
    assert [w.start for w in schedule.windows] == [0, 300]
    assert schedule.is_down(50) and schedule.is_down(350)
    assert not schedule.is_down(200)
    assert schedule.seconds_until_restore(350) == 50
    assert schedule.seconds_until_restore(200) == 0
    assert schedule.total_downtime() == 200


def test_periodic_schedule():
    schedule = OutageSchedule.periodic(1000, down_seconds=60,
                                       up_seconds=240, count=3)
    assert len(schedule.windows) == 3
    assert schedule.windows[1].start == 1300
    assert schedule.total_downtime() == 180
    with pytest.raises(ValueError):
        OutageSchedule.periodic(0, down_seconds=0, up_seconds=1, count=1)


# -- the RI outage channel ---------------------------------------------------

def test_ri_channel_rejects_during_downtime_and_recovers():
    world = DRMWorld.create("test-outage-ri", rsa_bits=BITS)
    start = world.clock.now
    schedule = OutageSchedule([OutageWindow(start + 50, start + 150)])
    channel = OutageRIChannel(world.ri, schedule, world.clock)

    world.agent.register(channel)          # before the window: fine
    world.clock.advance(60)                # inside the window
    with pytest.raises(ServiceUnavailableError, match="restore in"):
        world.agent.register(channel)
    assert channel.rejected_requests == 1
    world.clock.advance(schedule.seconds_until_restore(world.clock.now))
    context = world.agent.register(channel)  # after restore: fine again
    assert context.ri_id


# -- the caching OCSP front-end ----------------------------------------------

@pytest.fixture()
def ocsp_world():
    return DRMWorld.create("test-outage-ocsp", rsa_bits=BITS)


def test_cache_serves_inside_validity_window(ocsp_world):
    world = ocsp_world
    start = world.clock.now
    schedule = OutageSchedule([OutageWindow(start + 10,
                                            start + 10 + 30 * DAY)])
    caching = CachingOCSPResponder(world.ocsp, schedule)
    assert caching.name == world.ocsp.name
    assert caching.certificate is world.ocsp.certificate
    world.ri._ocsp = caching

    world.agent.register(world.ri)         # responder up: fresh + cached
    assert caching.fresh_responses == 1
    world.clock.advance(DAY)               # down, cache still valid
    world.agent.register(world.ri)
    assert caching.cache_hits == 1
    assert caching.unavailable == 0


def test_cache_refuses_beyond_validity_window(ocsp_world):
    world = ocsp_world
    start = world.clock.now
    schedule = OutageSchedule([OutageWindow(start + 10,
                                            start + 10 + 30 * DAY)])
    caching = CachingOCSPResponder(world.ocsp, schedule)
    world.ri._ocsp = caching

    world.agent.register(world.ri)
    world.clock.advance(10 * DAY)          # past the 7-day next_update
    with pytest.raises(ServiceUnavailableError, match="OCSP"):
        world.agent.register(world.ri)
    assert caching.unavailable == 1
    # Degradation never serves a provably stale assertion: the cache
    # hit counter did not move.
    assert caching.cache_hits == 0


def test_cold_cache_during_downtime_is_unavailable(ocsp_world):
    world = ocsp_world
    start = world.clock.now
    schedule = OutageSchedule([OutageWindow(start, start + 100)])
    caching = CachingOCSPResponder(world.ocsp, schedule)
    world.ri._ocsp = caching
    with pytest.raises(ServiceUnavailableError):
        world.agent.register(world.ri)
    assert caching.unavailable == 1
