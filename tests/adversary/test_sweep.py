"""The zero-acceptance sweep: full corpus, every architecture priced."""

import pytest

from repro.adversary.attacks import ALL_ATTACKS, AttackKind
from repro.adversary.sweep import (AttackOutcome, SweepResult,
                                   run_attack_sweep)
from repro.core.architecture import PAPER_PROFILES

BITS = 512

#: The defense each attack must die on (exception type name).
EXPECTED_DEFENSE = {
    AttackKind.FORGE_SIGNATURE: "SignatureError",
    AttackKind.TAMPER_RO_RIGHTS: "SignatureError",
    AttackKind.TAMPER_CEK: "SignatureError",
    AttackKind.REPLAY_RESPONSE: "NonceMismatchError",
    AttackKind.SWAP_NONCE: "NonceMismatchError",
    AttackKind.STALE_OCSP: "SignatureError",
    AttackKind.FUTURE_OCSP: "SignatureError",
    AttackKind.DOWNGRADE_VERSION: "RegistrationError",
    AttackKind.WRONG_RECIPIENT: "NonceMismatchError",
    AttackKind.CERT_SUBSTITUTION: "TrustError",
    AttackKind.TIME_ROLLBACK: "TrustError",
}


@pytest.fixture(scope="module")
def sweep():
    return run_attack_sweep(seed="test-sweep", rsa_bits=BITS)


def test_zero_acceptance_over_full_corpus(sweep):
    sweep.assert_zero_acceptance()
    assert len(sweep.outcomes) == len(ALL_ATTACKS) >= 10


def test_every_attack_mounted_exactly_once(sweep):
    for outcome in sweep.outcomes:
        assert outcome.mounted == 1, outcome.attack


def test_defense_mapping_is_stable(sweep):
    for outcome in sweep.outcomes:
        assert outcome.defense == EXPECTED_DEFENSE[outcome.attack], \
            (outcome.attack, outcome.defense, outcome.detail)


def test_every_outcome_priced_for_all_architectures(sweep):
    names = {profile.name for profile in PAPER_PROFILES}
    for outcome in sweep.outcomes:
        assert set(outcome.defender_cycles) == names
        # The downgrade attack dies before any terminal crypto; every
        # other attack costs the defender real cycles before rejection.
        if outcome.attack is not AttackKind.DOWNGRADE_VERSION:
            assert all(cycles > 0
                       for cycles in outcome.defender_cycles.values())


def test_sweep_is_deterministic(sweep):
    again = run_attack_sweep(seed="test-sweep", rsa_bits=BITS,
                             attacks=(AttackKind.CERT_SUBSTITUTION,))
    matching = [o for o in sweep.outcomes
                if o.attack is AttackKind.CERT_SUBSTITUTION]
    assert matching == list(again.outcomes)


def test_assert_zero_acceptance_flags_accepted_and_unmounted():
    accepted = AttackOutcome(
        attack=AttackKind.FORGE_SIGNATURE, flow="register", mounted=1,
        rejected=False, defense="", detail="", defender_cycles={})
    unmounted = AttackOutcome(
        attack=AttackKind.SWAP_NONCE, flow="register", mounted=0,
        rejected=True, defense="NonceMismatchError", detail="",
        defender_cycles={})
    result = SweepResult(seed="s", rsa_bits=BITS,
                         outcomes=(accepted, unmounted))
    assert accepted.accepted
    with pytest.raises(AssertionError) as excinfo:
        result.assert_zero_acceptance()
    assert "ACCEPTED" in str(excinfo.value)
    assert "never mounted" in str(excinfo.value)
