"""Unit contracts of the discrete-event kernel.

Mechanics only: command validation, FIFO resource semantics, bounded
queues, pause/resume bookkeeping, stream derivation. The statistical
contracts (queueing laws) and the whole-system determinism properties
live in ``test_queueing_laws.py`` and ``test_determinism.py``.
"""

import pytest

from repro.sim.kernel import (REJECTED, Acquire, Kernel, Release,
                              Resource, Wait, drain)


def test_wait_rejects_negative_ticks():
    with pytest.raises(ValueError):
        Wait(-1)


def test_wait_rejects_non_integer_ticks():
    with pytest.raises(TypeError):
        Wait(1.5)
    with pytest.raises(TypeError):
        Wait(True)


def test_spawn_rejects_duplicate_names():
    kernel = Kernel(seed="unit")
    kernel.spawn("p", iter(()))
    with pytest.raises(ValueError):
        kernel.spawn("p", iter(()))


def test_spawn_rejects_negative_start():
    kernel = Kernel(seed="unit")
    with pytest.raises(ValueError):
        kernel.spawn("p", iter(()), at=-1)


def test_run_rejects_past_deadline():
    kernel = Kernel(seed="unit")

    def body():
        yield Wait(10)

    kernel.spawn("p", body())
    kernel.run()
    with pytest.raises(ValueError):
        kernel.run(until=5)


def test_process_yielding_garbage_is_a_type_error():
    kernel = Kernel(seed="unit")

    def body():
        yield "not a command"

    kernel.spawn("p", body())
    with pytest.raises(TypeError):
        kernel.run()


def test_wait_advances_virtual_time_and_counts_events():
    kernel = Kernel(seed="unit")

    def body():
        yield Wait(7)
        yield Wait(3)
        return "done"

    process = kernel.spawn("p", body())
    assert drain(kernel) == 10
    assert kernel.now == 10
    assert process.state == "done"
    assert process.result == "done"
    # start + resume-after-first-wait + resume-after-second-wait.
    assert kernel.events_executed == 3


def test_run_until_pauses_without_executing_future_events():
    kernel = Kernel(seed="unit")
    seen = []

    def body():
        yield Wait(100)
        seen.append(kernel.now)

    kernel.spawn("p", body())
    assert kernel.run(until=50) == 50
    assert kernel.now == 50
    assert seen == []
    assert kernel.run() == 100
    assert seen == [100]


def test_run_until_advances_clock_past_an_empty_heap():
    kernel = Kernel(seed="unit")
    assert kernel.run(until=25) == 25
    assert kernel.now == 25


def test_midrun_spawn_executes_at_current_time_plus_offset():
    kernel = Kernel(seed="unit")
    order = []

    def child(name):
        order.append((name, kernel.now))
        return None
        yield  # pragma: no cover - makes this a generator

    def parent():
        yield Wait(5)
        kernel.spawn("child/late", child("late"), at=10)
        kernel.spawn("child/now", child("now"))
        yield Wait(0)

    kernel.spawn("parent", parent())
    kernel.run()
    assert order == [("now", 5), ("late", 15)]


def test_resource_validation():
    kernel = Kernel(seed="unit")
    with pytest.raises(ValueError):
        Resource(kernel, "r", capacity=0)
    with pytest.raises(ValueError):
        Resource(kernel, "r", queue_limit=-1)


def test_release_without_grant_is_an_error():
    kernel = Kernel(seed="unit")
    resource = Resource(kernel, "r")

    def body():
        yield Release(resource)

    kernel.spawn("p", body())
    with pytest.raises(ValueError):
        kernel.run()


def _worker(resource, holds, order, name):
    grant = yield Acquire(resource)
    assert grant is resource
    order.append(("grant", name, resource.kernel.now))
    yield Wait(holds)
    yield Release(resource)
    order.append(("done", name, resource.kernel.now))


def test_single_server_grants_fifo_in_spawn_order():
    kernel = Kernel(seed="unit")
    resource = Resource(kernel, "r")
    order = []
    for name in ("a", "b", "c"):
        kernel.spawn(name, _worker(resource, 10, order, name))
    kernel.run()
    assert order == [
        ("grant", "a", 0), ("done", "a", 10),
        ("grant", "b", 10), ("done", "b", 20),
        ("grant", "c", 20), ("done", "c", 30),
    ]
    assert resource.grants == 3
    assert resource.rejections == 0
    assert resource.busy == 0
    assert resource.queued == 0
    # Exact occupancy: one server busy for all 30 ticks.
    assert resource.utilization() == 1.0
    # Waits: 0, 10 and 20 ticks.
    assert resource.wait_ticks.summary().total == 30


def test_multi_server_capacity_serves_concurrently():
    kernel = Kernel(seed="unit")
    resource = Resource(kernel, "r", capacity=2)
    order = []
    for name in ("a", "b", "c"):
        kernel.spawn(name, _worker(resource, 10, order, name))
    kernel.run()
    # a and b run together; c waits for the first release.
    assert kernel.now == 20
    assert [entry for entry in order if entry[0] == "grant"] == [
        ("grant", "a", 0), ("grant", "b", 0), ("grant", "c", 10)]


def test_bounded_queue_rejects_beyond_the_limit():
    kernel = Kernel(seed="unit")
    resource = Resource(kernel, "r", capacity=1, queue_limit=1)
    outcomes = {}

    def body(name):
        grant = yield Acquire(resource)
        if grant is REJECTED:
            outcomes[name] = "rejected"
            return None
        yield Wait(10)
        yield Release(resource)
        outcomes[name] = "served"

    for name in ("a", "b", "c"):
        kernel.spawn(name, body(name))
    kernel.run()
    assert outcomes == {"a": "served", "b": "served", "c": "rejected"}
    assert resource.grants == 2
    assert resource.rejections == 1


def test_zero_queue_limit_refuses_any_waiting():
    kernel = Kernel(seed="unit")
    resource = Resource(kernel, "r", capacity=1, queue_limit=0)
    outcomes = {}

    def body(name):
        grant = yield Acquire(resource)
        outcomes[name] = "rejected" if grant is REJECTED else "served"
        if grant is not REJECTED:
            yield Wait(1)
            yield Release(resource)

    for name in ("a", "b"):
        kernel.spawn(name, body(name))
    kernel.run()
    assert outcomes == {"a": "served", "b": "rejected"}


def test_utilization_of_untouched_resource_is_zero():
    kernel = Kernel(seed="unit")
    resource = Resource(kernel, "r")
    assert resource.utilization() == 0.0
    assert resource.mean_queue_depth() == 0.0


def test_streams_are_memoized_and_name_derived():
    kernel = Kernel(seed="unit")
    assert kernel.stream("a") is kernel.stream("a")
    # Same (seed, name) in a fresh kernel replays the same draws ...
    fresh = Kernel(seed="unit")
    assert [kernel.stream("a").random() for _ in range(4)] == \
        [fresh.stream("a").random() for _ in range(4)]
    # ... and a different name is a different stream.
    assert kernel.stream("b").random() != fresh.stream("a").random()


def test_event_log_records_the_full_lifecycle():
    kernel = Kernel(seed="unit")
    resource = Resource(kernel, "r")
    order = []
    kernel.spawn("a", _worker(resource, 5, order, "a"))
    kernel.spawn("b", _worker(resource, 5, order, "b"))
    kernel.run()
    kinds = [entry[1] for entry in kernel.event_log()]
    assert kinds.count("spawn") == 2
    assert kinds.count("grant") == 2
    assert kinds.count("release") == 2
    assert kinds.count("exit") == 2
    assert kinds.count("enqueue") == 1  # b queued behind a


def test_record_log_false_keeps_the_log_empty():
    kernel = Kernel(seed="unit", record_log=False)

    def body():
        yield Wait(1)

    kernel.spawn("p", body())
    kernel.run()
    assert kernel.event_log() == ()


def test_state_digest_distinguishes_and_matches_states():
    def build():
        kernel = Kernel(seed="unit")
        resource = Resource(kernel, "r")
        order = []
        for name in ("a", "b"):
            kernel.spawn(name, _worker(resource, 10, order, name))
        return kernel

    one, two = build(), build()
    assert one.state_digest() == two.state_digest()
    one.run(until=5)
    assert one.state_digest() != two.state_digest()
    two.run(until=5)
    assert one.state_digest() == two.state_digest()
    one.run()
    two.run()
    assert one.state_digest() == two.state_digest()


def test_process_lookup_returns_registered_process():
    kernel = Kernel(seed="unit")
    process = kernel.spawn("p", iter(()))
    assert kernel.process("p") is process
