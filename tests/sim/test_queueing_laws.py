"""The kernel validated against a century of queueing theory.

A discrete-event kernel is only trustworthy if it reproduces the
analytic behaviour of the systems it claims to simulate. This suite
holds two layers of agreement:

* **Exact sample-path identities.** Over a *drained* run on integer
  ticks, Little's law is not a limit theorem but an accounting
  identity: the integral of number-in-system equals the sum of sojourn
  times, bit-for-bit. Same for the queue (waits) and the server
  (service). These hold with ``==`` on integers — any discrepancy is a
  kernel bug, full stop.
* **Closed-form means within tolerance.** The M/M/1 and M/D/1 mean
  waits (Pollaczek-Khinchine) at fixed seeds and 30 000 jobs agree
  with theory to within 2 % — tight enough to catch a mis-ordered
  grant or a lost tick, loose enough to absorb finite-run noise at the
  pinned seeds.

Seeds and sizes are fixed, so every number here is reproducible to the
bit; the tolerances were chosen *after* observing the deviations at
these seeds (about 1 %), not tuned until green.
"""

import pytest

from repro.sim.queueing import (QueueObservation, deterministic_draw,
                                exponential_draw, exponential_ticks,
                                md1_mean_wait, mm1_mean_number,
                                mm1_mean_wait, offered_load,
                                simulate_queue)

#: Mean service demand in ticks — large enough that the integer
#: quantization of exponential draws is a <0.1 % effect.
MEAN_SERVICE = 1000

#: Jobs per measurement run: enough for ~1 % agreement with the
#: closed forms at the pinned seeds.
JOBS = 30_000

#: Relative tolerance for closed-form comparisons.
TOLERANCE = 0.02


def _mm1(seed: str, rho: float) -> QueueObservation:
    return simulate_queue(
        seed, JOBS,
        interarrival=exponential_draw(MEAN_SERVICE / rho),
        service=exponential_draw(MEAN_SERVICE))


def _md1(seed: str, rho: float) -> QueueObservation:
    return simulate_queue(
        seed, JOBS,
        interarrival=exponential_draw(MEAN_SERVICE / rho),
        service=deterministic_draw(MEAN_SERVICE))


@pytest.fixture(scope="module")
def mm1_obs():
    return _mm1("law-0", 0.6)


@pytest.fixture(scope="module")
def md1_obs():
    return _md1("law-0", 0.8)


# -- exact sample-path identities ------------------------------------------

def assert_littles_law_exact(obs: QueueObservation) -> None:
    """The drained-run identities, stated over exact integers."""
    assert obs.completed == obs.arrivals
    # System form: integral of N(t) == sum of sojourn times.
    assert obs.system_area == obs.sojourn.total
    # Queue form: integral of Nq(t) == sum of queue waits.
    assert obs.queue_area == obs.wait.total
    # Server form: busy time == total service demand.
    assert obs.busy_area == obs.service.total


def test_littles_law_is_exact_for_mm1(mm1_obs):
    assert_littles_law_exact(mm1_obs)


def test_littles_law_is_exact_for_md1(md1_obs):
    assert_littles_law_exact(md1_obs)


def test_littles_law_is_exact_for_multi_server():
    obs = simulate_queue(
        "law-multi", 5_000,
        interarrival=exponential_draw(MEAN_SERVICE / 1.5),
        service=exponential_draw(MEAN_SERVICE),
        capacity=2)
    assert_littles_law_exact(obs)


def test_l_equals_lambda_w(mm1_obs):
    # L = lambda * W follows from the exact identity; stated here in
    # the rate form an analyst would write down.
    lam = mm1_obs.arrival_rate()
    mean_sojourn = mm1_obs.sojourn.mean
    assert mm1_obs.mean_number_in_system() == \
        pytest.approx(lam * mean_sojourn, rel=1e-12)


# -- closed-form agreement -------------------------------------------------

def _relative_error(measured: float, expected: float) -> float:
    return abs(measured - expected) / expected


@pytest.mark.parametrize("seed", ["law-0", "law-1"])
def test_mm1_mean_wait_matches_pollaczek_khinchine(seed):
    rho = 0.6
    obs = _mm1(seed, rho)
    expected = mm1_mean_wait(rho / MEAN_SERVICE, 1.0 / MEAN_SERVICE)
    assert _relative_error(obs.wait.mean, expected) < TOLERANCE


@pytest.mark.parametrize("seed", ["law-0", "law-3"])
def test_md1_mean_wait_matches_pollaczek_khinchine(seed):
    rho = 0.8
    obs = _md1(seed, rho)
    expected = md1_mean_wait(rho / MEAN_SERVICE, 1.0 / MEAN_SERVICE)
    assert _relative_error(obs.wait.mean, expected) < TOLERANCE


def test_utilization_matches_offered_load(mm1_obs, md1_obs):
    assert _relative_error(mm1_obs.utilization(), 0.6) < TOLERANCE
    assert _relative_error(md1_obs.utilization(), 0.8) < TOLERANCE


def test_mm1_mean_number_in_system(mm1_obs):
    expected = mm1_mean_number(0.6 / MEAN_SERVICE, 1.0 / MEAN_SERVICE)
    assert _relative_error(mm1_obs.mean_number_in_system(),
                           expected) < 2 * TOLERANCE


def test_md1_waits_half_of_mm1():
    # The Pollaczek-Khinchine separation: zero service variance halves
    # the mean queue wait at every load.
    lam, mu = 0.8 / MEAN_SERVICE, 1.0 / MEAN_SERVICE
    assert md1_mean_wait(lam, mu) == \
        pytest.approx(mm1_mean_wait(lam, mu) / 2.0)


# -- plumbing validation ---------------------------------------------------

def test_closed_forms_reject_unstable_loads():
    for formula in (mm1_mean_wait, md1_mean_wait, mm1_mean_number):
        with pytest.raises(ValueError):
            formula(1.0, 1.0)


def test_offered_load_requires_positive_service_rate():
    with pytest.raises(ValueError):
        offered_load(1.0, 0.0)
    assert offered_load(3.0, 4.0) == 0.75


def test_exponential_ticks_validation_and_mean():
    from random import Random
    with pytest.raises(ValueError):
        exponential_ticks(Random(0), 0)
    rng = Random("law-mean")
    draws = [exponential_ticks(rng, MEAN_SERVICE) for _ in range(20_000)]
    assert _relative_error(sum(draws) / len(draws),
                           MEAN_SERVICE) < TOLERANCE


def test_deterministic_draw_validation():
    with pytest.raises(ValueError):
        deterministic_draw(-1)
    from random import Random
    assert deterministic_draw(7)(Random(0)) == 7


def test_bounded_queue_conserves_jobs():
    obs = simulate_queue(
        "law-bounded", 2_000,
        interarrival=exponential_draw(MEAN_SERVICE / 2.0),
        service=exponential_draw(MEAN_SERVICE),
        queue_limit=5)
    # Overloaded (rho = 2) with a short queue: some jobs are refused,
    # yet every arrival was drawn and counted.
    assert obs.arrivals == 2_000
    assert 0 < obs.completed < obs.arrivals
    # The queue identity still holds for the jobs that did wait.
    assert obs.queue_area == obs.wait.total


def test_simulate_queue_requires_jobs():
    with pytest.raises(ValueError):
        simulate_queue("law-empty", 0,
                       interarrival=exponential_draw(10),
                       service=exponential_draw(10))
