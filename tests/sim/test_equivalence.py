"""Kernel x existing machinery: fidelity costs nothing.

The kernel adds concurrency to the repository; this suite proves the
addition is *conservative* — every number the pre-kernel machinery
produces survives the kernel unchanged:

* **Episode equivalence** — a contention-free single device run as a
  kernel process produces the bit-identical metered trace, and hence
  the exact same :class:`~repro.core.model.CostBreakdown` under every
  architecture, as the sequential reference — for clean, lossy, and
  outage-plus-circuit-breaker channels (PR 1's fault machinery and
  PR 6's outage engine compose with the kernel unchanged).
* **Fleet conservation** — the ``--kernel`` fleet pass replays the
  sequential engine's drawn population exactly: served + refused on
  the shared RI equals the sequential accumulator's request count, the
  sequential accumulator itself is untouched, and the whole result is
  bit-identical for any worker count.
* **Golden saturation snapshot** — the rendered saturation artifact is
  pinned, so formatting or measurement drift is caught even when every
  underlying invariant still holds. Regenerate intentionally with
  ``UPDATE_GOLDEN=1 python -m pytest tests/sim/test_equivalence.py``.
"""

import difflib
import os
import pathlib

import pytest

from repro.core.architecture import PAPER_PROFILES
from repro.analysis.saturation import SaturationAnalysis, sweep
from repro.sim.fleet import run_fleet_kernel
from repro.sim.ri import RICapacity
from repro.sim.roap import EpisodeSpec, run_episode, run_kernel_episode
from repro.usecases.fleet import FleetConfig

from ..conftest import FAST_RSA_BITS

GOLDEN_PATH = (pathlib.Path(__file__).resolve().parent
               / "golden" / "saturation.md")

#: The channel conditions the equivalence claim is held under.
EPISODE_SPECS = {
    "clean": EpisodeSpec(seed="eq-clean", rsa_bits=FAST_RSA_BITS),
    "lossy": EpisodeSpec(seed="eq-lossy", rsa_bits=FAST_RSA_BITS,
                         loss_rate=0.25),
    "outage-breaker": EpisodeSpec(seed="eq-outage",
                                  rsa_bits=FAST_RSA_BITS,
                                  outages=((0, 40),), breaker=True),
}


@pytest.mark.parametrize("label", sorted(EPISODE_SPECS))
def test_kernel_episode_is_bit_identical_to_sequential(label):
    spec = EPISODE_SPECS[label]
    sequential = run_episode(spec)
    kernel = run_kernel_episode(spec)
    # The metered traces are the same records in the same order ...
    assert kernel.trace.records == sequential.trace.records
    # ... so every architecture prices them identically, exactly.
    for profile in PAPER_PROFILES:
        assert kernel.breakdown(profile) == \
            sequential.breakdown(profile)
    # And the protocol outcomes and timings agree too.
    assert kernel.installed == sequential.installed
    assert kernel.accesses == sequential.accesses
    assert kernel.elapsed_seconds == sequential.elapsed_seconds
    assert kernel.flow_seconds == sequential.flow_seconds
    assert kernel.register.completed == sequential.register.completed


def test_lossy_episode_actually_retried():
    # The lossy equivalence case must not be vacuous: the channel has
    # to have dropped messages (costing retries and backoff seconds).
    result = run_kernel_episode(EPISODE_SPECS["lossy"])
    assert result.installed
    assert result.elapsed_seconds > 0


def test_outage_episode_actually_failed_fast():
    # Nor the outage case: the window must cover the registration
    # attempts, and the breaker must have fast-failed the episode.
    result = run_kernel_episode(EPISODE_SPECS["outage-breaker"])
    assert not result.register.completed
    assert not result.installed


FLEET_CONFIG = FleetConfig(devices=150, seed="eq-fleet",
                           rsa_bits=FAST_RSA_BITS,
                           window_seconds=600, arrival_bins=12)


@pytest.fixture(scope="module")
def kernel_fleet():
    return run_fleet_kernel(FLEET_CONFIG)


def test_fleet_kernel_conserves_requests(kernel_fleet):
    # Every request the sequential accumulator charged is accounted
    # for on the shared RI — served or refused, never lost, for every
    # architecture.
    expected = kernel_fleet.base.accumulator.requests
    assert expected > 0
    for name, arch in kernel_fleet.architectures.items():
        assert arch.served + arch.refused == expected, name
        assert arch.refused == 0  # unbounded queue refuses nothing


def test_fleet_kernel_leaves_sequential_result_untouched(kernel_fleet):
    from repro.usecases.fleet import run_fleet
    plain = run_fleet(FLEET_CONFIG)
    assert kernel_fleet.base.accumulator == plain.accumulator


def test_fleet_kernel_is_worker_independent(kernel_fleet):
    sharded = run_fleet_kernel(FLEET_CONFIG, workers=2)
    assert sharded.base.accumulator == kernel_fleet.base.accumulator
    assert sharded.architectures == kernel_fleet.architectures


def test_fleet_kernel_shows_the_architecture_gap(kernel_fleet):
    # The same population loads a software RI orders of magnitude
    # harder than a hardware one — the paper's Table 1 story, now as
    # server-side occupancy.
    archs = kernel_fleet.architectures
    assert archs["SW"].utilization > 10 * archs["HW"].utilization


def test_bounded_fleet_kernel_refuses_only_overflow():
    capacity = RICapacity(signing_units=1, queue_limit=0)
    bounded = run_fleet_kernel(FLEET_CONFIG, capacity=capacity)
    expected = bounded.base.accumulator.requests
    for name, arch in bounded.architectures.items():
        assert arch.served + arch.refused == expected, name
    # The zero-length queue must have refused something on the slow
    # architecture for the bound to be exercised at all.
    assert bounded.architectures["SW"].refused > 0


# -- the golden saturation artifact ----------------------------------------

def _normalize(text):
    lines = text.replace("\r\n", "\n").replace("\r", "\n").split("\n")
    stripped = [line.rstrip() for line in lines]
    while stripped and not stripped[-1]:
        stripped.pop()
    return "\n".join(stripped) + "\n"


def test_saturation_matches_golden_snapshot():
    ladder = sweep(seed="golden-saturation", requests=300)
    ladder.assert_monotone_utilization()
    generated = _normalize(SaturationAnalysis(sweep=ladder).render())
    if os.environ.get("UPDATE_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(generated, encoding="utf-8")
    golden = _normalize(GOLDEN_PATH.read_text(encoding="utf-8"))
    if generated != golden:
        diff = "\n".join(difflib.unified_diff(
            golden.splitlines(), generated.splitlines(),
            fromfile="golden/saturation.md", tofile="generated",
            lineterm=""))
        raise AssertionError(
            "saturation artifact drifted from the golden snapshot; if "
            "intentional, regenerate with UPDATE_GOLDEN=1.\n" + diff)


def test_episode_spec_validation():
    with pytest.raises(ValueError):
        EpisodeSpec(plays=0)
    with pytest.raises(ValueError):
        EpisodeSpec(accesses=-1)
    with pytest.raises(ValueError):
        EpisodeSpec(plays=2, accesses=3)


def test_open_load_validation():
    from repro.core.architecture import HW_PROFILE
    from repro.sim.fleet import nominal_service_ticks, run_open_load
    with pytest.raises(ValueError):
        run_open_load("eq", HW_PROFILE, arrivals_per_second=0,
                      requests=10)
    with pytest.raises(ValueError):
        run_open_load("eq", HW_PROFILE, arrivals_per_second=1.0,
                      requests=0)
    with pytest.raises(ValueError):
        nominal_service_ticks(HW_PROFILE, mix={"hello": 0.0})


def test_sweep_validation():
    with pytest.raises(ValueError):
        sweep(rhos=())
    with pytest.raises(ValueError):
        sweep(rhos=(0.5, -0.1))


def test_monotone_gate_rejects_a_doctored_sweep():
    ladder = sweep(seed="golden-saturation", requests=120,
                   rhos=(0.3, 0.7))
    for curve in ladder.points.values():
        curve.reverse()
    with pytest.raises(AssertionError):
        ladder.assert_monotone_utilization()
