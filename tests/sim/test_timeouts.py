"""Acquire timeouts and priorities: in-queue expiry, held exactly.

The deadline-propagation substrate the overload work stands on:
an :class:`~repro.sim.kernel.Acquire` can arm a ``timeout`` (the
waiter resumes with :data:`~repro.sim.kernel.TIMED_OUT` if no server
frees up in time, consuming zero service) and a ``priority`` (lower
values overtake the FIFO queue; equal values preserve it). The unit
half pins each mechanism at hand-checkable schedules; the Hypothesis
half holds the queue-discipline and conservation properties across
schedules no hand-written case would try, plus the determinism
contract with expiry timers in the heap.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import (REJECTED, TIMED_OUT, Acquire, Kernel,
                              Release, Resource, Wait, drain)


def _holder(resource, hold):
    """Take the single server and hold it for ``hold`` ticks."""
    grant = yield Acquire(resource)
    assert grant is not REJECTED and grant is not TIMED_OUT
    yield Wait(hold)
    yield Release(resource)


def _contender(resource, trail, name, timeout=None, priority=0,
               hold=0):
    grant = yield Acquire(resource, timeout=timeout,
                          priority=priority)
    if grant is REJECTED:
        trail.append((name, resource.kernel.now, "rejected"))
        return None
    if grant is TIMED_OUT:
        trail.append((name, resource.kernel.now, "timed-out"))
        return None
    trail.append((name, resource.kernel.now, "granted"))
    yield Wait(hold)
    yield Release(resource)
    return None


# -- validation -------------------------------------------------------------

def test_acquire_rejects_bad_timeouts_and_priorities():
    with pytest.raises(ValueError):
        Acquire(None, timeout=-1)
    with pytest.raises(TypeError):
        Acquire(None, timeout=1.5)
    with pytest.raises(TypeError):
        Acquire(None, timeout=True)
    with pytest.raises(TypeError):
        Acquire(None, priority=1.5)
    with pytest.raises(TypeError):
        Acquire(None, priority=True)


# -- unit schedules ---------------------------------------------------------

def test_timeout_zero_expires_immediately_when_busy():
    kernel = Kernel(seed="unit")
    resource = Resource(kernel, "r")
    trail = []
    kernel.spawn("a", _holder(resource, 10))
    kernel.spawn("b", _contender(resource, trail, "b", timeout=0))
    drain(kernel)
    assert trail == [("b", 0, "timed-out")]
    assert resource.timeouts == 1
    assert resource.grants == 1  # the holder only


def test_timeout_zero_grants_when_a_server_is_free():
    kernel = Kernel(seed="unit")
    resource = Resource(kernel, "r")
    trail = []
    kernel.spawn("a", _contender(resource, trail, "a", timeout=0))
    drain(kernel)
    assert trail == [("a", 0, "granted")]
    assert resource.timeouts == 0


def test_waiter_expires_in_queue_at_its_deadline():
    kernel = Kernel(seed="unit")
    resource = Resource(kernel, "r")
    trail = []
    kernel.spawn("a", _holder(resource, 10))
    kernel.spawn("b", _contender(resource, trail, "b", timeout=4))
    drain(kernel)
    assert trail == [("b", 4, "timed-out")]
    assert resource.timeouts == 1
    assert (4, "timeout", "b", "r", 4) in kernel.event_log()
    # The expired waiter consumed zero service: the holder's span is
    # the only occupancy the resource ever saw.
    assert resource.busy_servers.area_until(10) == 10


def test_grant_before_timeout_leaves_no_trace_of_the_timer():
    def run(timeout):
        kernel = Kernel(seed="unit")
        resource = Resource(kernel, "r")
        trail = []
        kernel.spawn("a", _holder(resource, 3))
        kernel.spawn("b", _contender(resource, trail, "b",
                                     timeout=timeout))
        drain(kernel)
        return kernel, resource, tuple(trail)

    timed = run(timeout=50)
    untimed = run(timeout=None)
    # The timer never fired, so the runs are observationally identical:
    # same event log, same event count, same grants.
    assert timed[0].event_log() == untimed[0].event_log()
    assert timed[0].events_executed == untimed[0].events_executed
    assert timed[2] == untimed[2] == (("b", 3, "granted"),)
    assert timed[1].timeouts == 0


def test_priority_overtakes_fifo_and_equal_priority_preserves_it():
    kernel = Kernel(seed="unit")
    resource = Resource(kernel, "r")
    trail = []
    kernel.spawn("a", _holder(resource, 10))
    # b queues first at priority 2; c queues later at priority 0 and
    # overtakes it; d queues last at priority 2 and stays behind b.
    kernel.spawn("b", _contender(resource, trail, "b", priority=2),
                 at=1)
    kernel.spawn("c", _contender(resource, trail, "c", priority=0),
                 at=2)
    kernel.spawn("d", _contender(resource, trail, "d", priority=2),
                 at=3)
    drain(kernel)
    assert [name for name, _at, _what in trail] == ["c", "b", "d"]


def test_expired_waiter_frees_its_queue_slot():
    kernel = Kernel(seed="unit")
    resource = Resource(kernel, "r", queue_limit=1)
    trail = []
    kernel.spawn("a", _holder(resource, 50))
    kernel.spawn("b", _contender(resource, trail, "b", timeout=5),
                 at=1)
    # The queue is full while b waits, so c bounces...
    kernel.spawn("c", _contender(resource, trail, "c"), at=3)
    # ...but after b expires at t=6 the slot is free again for d.
    kernel.spawn("d", _contender(resource, trail, "d"), at=7)
    drain(kernel)
    assert trail == [("c", 3, "rejected"), ("b", 6, "timed-out"),
                     ("d", 50, "granted")]


def test_state_digest_tracks_armed_and_cancelled_timers():
    def paused(timeout):
        kernel = Kernel(seed="unit")
        resource = Resource(kernel, "r")
        kernel.spawn("a", _holder(resource, 10))
        kernel.spawn("b", _contender(resource, [], "b",
                                     timeout=timeout))
        kernel.run(until=2)
        return kernel.state_digest()

    # Mid-flight, an armed expiry timer is real state: a kernel that
    # will expire its waiter must not digest equal to one that won't.
    assert paused(timeout=4) != paused(timeout=None)
    assert paused(timeout=4) == paused(timeout=4)


def test_close_silences_suspended_processes():
    kernel = Kernel(seed="unit")
    resource = Resource(kernel, "r")

    def guarded(name):
        grant = yield Acquire(resource)
        if grant is REJECTED or grant is TIMED_OUT:
            return None
        try:
            yield Wait(100)
        finally:
            yield Release(resource)

    kernel.spawn("a", guarded("a"))
    kernel.spawn("b", guarded("b"))
    kernel.run(until=10)
    # a holds the server inside its try block; b sits in the queue.
    # close() must wind both down without raising, even though a's
    # ``finally: yield Release`` fires during the close.
    kernel.close()
    kernel.close()  # idempotent


# -- properties -------------------------------------------------------------

#: One contender: (start, timeout-or-None, hold).
CONTENDERS = st.dictionaries(
    st.sampled_from(["a", "b", "c", "d", "e", "f"]),
    st.tuples(st.integers(min_value=0, max_value=25),
              st.one_of(st.none(),
                        st.integers(min_value=0, max_value=15)),
              st.integers(min_value=0, max_value=20)),
    min_size=1, max_size=6)

QUEUE_LIMITS = st.one_of(st.none(),
                         st.integers(min_value=0, max_value=3))


def _run_contention(spawn_set, order, queue_limit):
    kernel = Kernel(seed="prop")
    resource = Resource(kernel, "r", queue_limit=queue_limit)
    trail = []
    for name in order:
        start, timeout, hold = spawn_set[name]
        kernel.spawn(name, _contender(resource, trail, name,
                                      timeout=timeout, hold=hold),
                     at=start)
    drain(kernel)
    return kernel, resource, tuple(trail)


@settings(max_examples=40, deadline=None)
@given(spawn_set=CONTENDERS, queue_limit=QUEUE_LIMITS, data=st.data())
def test_expiring_waiters_keep_the_run_deterministic(spawn_set,
                                                     queue_limit,
                                                     data):
    names = sorted(spawn_set)
    permuted = data.draw(st.permutations(names))
    kernel, _resource, trail = _run_contention(spawn_set, names,
                                               queue_limit)
    kernel2, _resource2, trail2 = _run_contention(spawn_set, permuted,
                                                  queue_limit)
    assert kernel2.event_log() == kernel.event_log()
    assert trail2 == trail
    assert kernel2.state_digest() == kernel.state_digest()


@settings(max_examples=40, deadline=None)
@given(spawn_set=CONTENDERS, queue_limit=QUEUE_LIMITS)
def test_every_acquire_resolves_exactly_once(spawn_set, queue_limit):
    _kernel, resource, trail = _run_contention(spawn_set,
                                               sorted(spawn_set),
                                               queue_limit)
    # Conservation: each contender's one Acquire ends in exactly one
    # of granted / rejected / timed-out, and the resource's counters
    # agree with the processes' own observations.
    assert len(trail) == len(spawn_set)
    outcomes = [what for _name, _at, what in trail]
    assert resource.grants == outcomes.count("granted")
    assert resource.rejections == outcomes.count("rejected")
    assert resource.timeouts == outcomes.count("timed-out")
    assert resource.busy == 0 and resource.queued == 0


@settings(max_examples=40, deadline=None)
@given(spawn_set=CONTENDERS, queue_limit=QUEUE_LIMITS)
def test_fifo_order_survives_expiring_waiters(spawn_set, queue_limit):
    kernel, _resource, _trail = _run_contention(spawn_set,
                                                sorted(spawn_set),
                                                queue_limit)
    log = kernel.event_log()
    # Among same-priority waiters that reached the queue and were
    # eventually granted, grants must come in enqueue order — a waiter
    # expiring ahead of them must not reshuffle the survivors.
    enqueued = [entry[2] for entry in log if entry[1] == "enqueue"]
    granted = {entry[2] for entry in log if entry[1] == "grant"}
    queued_grants = [entry[2] for entry in log
                     if entry[1] == "grant" and entry[2] in enqueued]
    survivors = [name for name in enqueued if name in granted]
    assert queued_grants == survivors
