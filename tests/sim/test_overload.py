"""Admission control and the retry-storm engine.

Two layers. The policy layer pins each admission policy's shedding
decision against hand-computed budgets (token refills, CoDel
intervals, per-class bounds) and ``serve_request``'s four terminal
statuses on small schedules. The storm layer asserts the experiment's
headline at the pinned seed: with no admission control and naive
retries the goodput collapse outlives the spike by at least five
spike durations, while the fully mitigated cell recovers on the spot
— plus request conservation and digest-level determinism, the
contracts the analysis sweep and CI smoke gate build on.
"""

import pytest

from repro.core.architecture import HW_PROFILE, SW_PROFILE
from repro.obs.metrics import MetricsRegistry
from repro.sim.admission import (ADMISSION_POLICIES, AdmitAll,
                                 CoDelShedder, PriorityAdmission,
                                 TokenBucket, make_admission)
from repro.sim.kernel import Kernel, drain
from repro.sim.overload import (RETRY_DISCIPLINES, RETRY_POLICIES,
                                RetryBudget, StormSpec, run_storm)
from repro.sim.ri import RIServer


def _server(admission=None, profile=SW_PROFILE, **kwargs):
    kernel = Kernel(seed="overload-unit", record_log=False)
    return kernel, RIServer(kernel, profile, admission=admission,
                            **kwargs)


def _drive(kernel, ri, plans):
    """Run one ``serve_request`` per plan; returns outcomes in order."""
    outcomes = {}

    def request(index, kind, kwargs):
        outcome = yield from ri.serve_request(kind, **kwargs)
        outcomes[index] = outcome

    for index, (at, kind, kwargs) in enumerate(plans):
        kernel.spawn("req-%02d" % index, request(index, kind, kwargs),
                     at=at)
    drain(kernel)
    return [outcomes[index] for index in sorted(outcomes)]


# -- policy construction ----------------------------------------------------

def test_make_admission_spells_every_policy():
    assert make_admission("none") is None
    for name in ADMISSION_POLICIES[1:]:
        policy = make_admission(name)
        assert policy is not None and policy.name == name
    with pytest.raises(ValueError):
        make_admission("leaky-bucket")


def test_policy_validation():
    with pytest.raises(ValueError):
        TokenBucket(rate_fraction=0.0)
    with pytest.raises(ValueError):
        TokenBucket(burst=0)
    with pytest.raises(ValueError):
        CoDelShedder(target_services=0.0)
    with pytest.raises(ValueError):
        PriorityAdmission(class_limits={0: 0})


# -- token bucket -----------------------------------------------------------

def test_token_bucket_sheds_exactly_past_the_burst():
    _kernel, ri = _server()
    bucket = TokenBucket(rate_fraction=1.0, burst=3)
    bucket.bind(ri)
    verdicts = [bucket.admit(ri, "acquisition", 0) for _ in range(4)]
    assert verdicts[:3] == [None, None, None]
    assert "token-bucket" in verdicts[3]


def test_token_bucket_refills_one_token_per_period():
    _kernel, ri = _server()
    bucket = TokenBucket(rate_fraction=1.0, burst=1)
    bucket.bind(ri)
    # One token per nominal service time at rate_fraction=1.0.
    assert bucket.ticks_per_token == \
        int(round(ri.nominal_service_ticks()))
    assert bucket.admit(ri, "acquisition", 0) is None
    assert bucket.admit(ri, "acquisition", 0) is not None
    later = bucket.ticks_per_token
    assert bucket.admit(ri, "acquisition", later) is None
    assert bucket.admit(ri, "acquisition", later) is not None


# -- CoDel ------------------------------------------------------------------

def test_codel_sheds_only_after_a_sustained_standing_queue():
    _kernel, ri = _server()
    codel = CoDelShedder(target_services=1.0, interval_services=2.0)
    codel.bind(ri)
    # Push the work backlog past one service unit of implied delay.
    while codel._implied_delay_ticks(ri) <= codel.target_ticks:
        codel.on_admitted(ri, "registration", 0)
    # Above target, but not yet for a full interval: admit.
    assert codel.admit(ri, "acquisition", 0) is None
    assert codel.admit(ri, "acquisition",
                       codel.interval_ticks - 1) is None
    # A full interval above target: shed.
    verdict = codel.admit(ri, "acquisition", codel.interval_ticks)
    assert verdict is not None and "codel" in verdict
    # Draining the backlog under target re-opens admission.
    while codel._implied_delay_ticks(ri) > codel.target_ticks:
        codel.on_departed(ri, "registration",
                          codel.interval_ticks, "granted")
    assert codel.admit(ri, "acquisition",
                       codel.interval_ticks + 1) is None


# -- priority classes -------------------------------------------------------

def test_priority_admission_bounds_each_class_separately():
    _kernel, ri = _server()
    policy = PriorityAdmission(class_limits={0: 1, 1: 1, 2: 1})
    policy.bind(ri)
    assert policy.admit(ri, "acquisition", 0) is None
    policy.on_admitted(ri, "acquisition", 0)
    # The acquisition class is full; registrations still get in.
    assert "priority" in policy.admit(ri, "acquisition", 0)
    assert policy.admit(ri, "registration", 0) is None
    policy.on_departed(ri, "acquisition", 5, "granted")
    assert policy.admit(ri, "acquisition", 5) is None


def test_priority_classes_order_registration_first():
    policy = PriorityAdmission()
    assert policy.priority("registration") == 0
    assert policy.priority("domain-join") == 1
    assert policy.priority("acquisition") == 2
    # Unknown kinds rank below every configured class.
    assert policy.priority("mystery") == 3


def test_admit_all_is_a_no_op():
    _kernel, ri = _server()
    policy = AdmitAll()
    policy.bind(ri)
    assert policy.admit(ri, "acquisition", 0) is None
    assert policy.priority("registration") == 0


# -- serve_request terminal statuses ----------------------------------------

def test_serve_request_statuses_served_and_refused():
    from repro.sim.ri import RICapacity
    kernel, ri = _server(capacity=RICapacity(signing_units=1,
                                             queue_limit=0))
    outcomes = _drive(kernel, ri, [
        (0, "hello", {}),
        (1, "hello", {}),  # server busy, zero queue: refused
    ])
    assert [o.status for o in outcomes] == ["served", "refused"]
    assert outcomes[0].service_ticks == ri.base_ticks("hello")
    assert outcomes[1].finished == outcomes[1].arrived == 1
    assert (ri.served, ri.refused) == (1, 1)


def test_serve_request_timeout_expires_in_queue():
    kernel, ri = _server()
    outcomes = _drive(kernel, ri, [
        (0, "registration", {}),
        (1, "hello", {"timeout": 10}),
    ])
    assert [o.status for o in outcomes] == ["served", "timed-out"]
    expired = outcomes[1]
    assert expired.waited == 10 and expired.latency == 10
    assert expired.service_ticks == 0
    assert ri.timed_out == 1


def test_serve_request_deadline_in_the_past_resolves_on_arrival():
    kernel, ri = _server()
    outcomes = _drive(kernel, ri, [
        (5, "hello", {"deadline": 3}),
    ])
    assert outcomes[0].status == "timed-out"
    assert outcomes[0].finished == outcomes[0].arrived == 5
    # Never reached the queue: the kernel saw no expiry either.
    assert ri.signing.timeouts == 0 and ri.timed_out == 1


def test_serve_request_deadline_caps_the_timeout():
    kernel, ri = _server()
    outcomes = _drive(kernel, ri, [
        (0, "registration", {}),
        (2, "hello", {"deadline": 9, "timeout": 50}),
    ])
    expired = [o for o in outcomes if o.status == "timed-out"][0]
    # The tighter bound wins: deadline 9 beats patience 50.
    assert expired.finished == 9


def test_serve_request_shed_spends_no_queue_slot():
    kernel, ri = _server(admission=TokenBucket(rate_fraction=1.0,
                                               burst=1))
    outcomes = _drive(kernel, ri, [
        (0, "hello", {}),
        (0, "hello", {}),  # bucket dry: shed before the queue
    ])
    assert [o.status for o in outcomes] == ["served", "shed"]
    shed = outcomes[1]
    assert "token-bucket" in shed.shed_reason
    assert shed.finished == shed.arrived
    assert ri.shed == 1 and ri.signing.rejections == 0


def test_serve_wrapper_preserves_the_pr7_surface():
    kernel, ri = _server()
    results = {}

    def via_serve(name, kind):
        results[name] = yield from ri.serve(kind)

    kernel.spawn("a", via_serve("a", "hello"))
    drain(kernel)
    assert results["a"] == ri.base_ticks("hello")


# -- retry budget -----------------------------------------------------------

def test_retry_budget_validation():
    with pytest.raises(ValueError):
        RetryBudget(fresh_per_token=0)
    with pytest.raises(ValueError):
        RetryBudget(burst=0)


def test_retry_budget_refills_from_fresh_arrivals_only():
    budget = RetryBudget(fresh_per_token=2, burst=2)
    assert budget.take() and budget.take()
    assert not budget.take()  # dry
    budget.on_fresh()
    assert not budget.take()  # one fresh is not enough
    budget.on_fresh()
    assert budget.take()      # two fresh arrivals minted one token
    assert (budget.granted, budget.denied) == (3, 2)


# -- storm specs ------------------------------------------------------------

def test_storm_spec_validation():
    with pytest.raises(ValueError):
        StormSpec(architecture="FPGA")
    with pytest.raises(ValueError):
        StormSpec(admission="leaky-bucket")
    with pytest.raises(ValueError):
        StormSpec(retry="panic")
    with pytest.raises(ValueError):
        StormSpec(spike_start=500, spike_end=400)
    with pytest.raises(ValueError):
        StormSpec(horizon=959)  # not a whole number of bins
    with pytest.raises(ValueError):
        StormSpec(patience=0)


def test_storm_spec_labels():
    assert StormSpec().label == "none/naive"
    assert StormSpec(admission="token-bucket", retry="backoff-jitter",
                     deadlines=True).label \
        == "token-bucket/backoff-jitter+deadline"
    assert StormSpec().spike_duration == 120


def test_retry_disciplines_have_policies():
    assert set(RETRY_POLICIES) == set(RETRY_DISCIPLINES)
    naive = RETRY_POLICIES["naive"]
    # The anti-pattern on purpose: fixed delay, no jitter, deep budget.
    assert naive.jitter_seconds == 0
    assert naive.backoff_seconds(1) == naive.backoff_seconds(7)


# -- the storm itself -------------------------------------------------------

def test_unmitigated_storm_is_metastable_at_the_pinned_seed():
    spec = StormSpec()  # none/naive, the 1990s client stack
    result = run_storm(spec)
    window = 5 * spec.spike_duration
    # The headline: goodput stays collapsed for five spike durations
    # after the overload passed, and never recovers by the horizon.
    assert result.pre_goodput_per_bin > 0
    assert result.collapse_duration >= window
    assert result.recovery_bin is None
    # The mechanism: the server is busy serving abandoned requests.
    assert result.late_served > 0
    assert result.wasted_share > 0.5
    assert result.abandoned > result.successes


def test_mitigated_storm_recovers_at_the_pinned_seed():
    spec = StormSpec(admission="token-bucket", retry="backoff-jitter",
                     deadlines=True)
    result = run_storm(spec)
    assert result.recovered_within(5 * spec.spike_duration)
    assert result.goodput_ratio > 0.5
    assert result.shed > 0            # admission did real work
    assert result.wasted_share < 0.1  # deadlines killed the waste


def test_storm_conserves_every_attempt():
    for admission, retry, deadlines in (
            ("none", "naive", False),
            ("codel", "backoff-jitter", True),
            ("priority", "retry-budget", True)):
        result = run_storm(StormSpec(admission=admission, retry=retry,
                                     deadlines=deadlines))
        resolved = (result.served + result.refused + result.shed
                    + result.timed_out)
        assert resolved + result.pending == result.attempts
        if retry == "retry-budget":
            assert result.retries_denied > 0


def test_storm_digest_is_reproducible_and_seed_sensitive():
    spec = StormSpec()
    assert run_storm(spec).digest() == run_storm(spec).digest()
    other = run_storm(StormSpec(seed="repro-storm-2"))
    assert other.digest() != run_storm(spec).digest()


def test_storm_times_scale_in_ticks_not_in_service_units():
    sw = run_storm(StormSpec(architecture="SW", horizon=240,
                             spike_start=60, spike_end=90))
    hw = run_storm(StormSpec(architecture="HW", horizon=240,
                             spike_start=60, spike_end=90))
    # One service unit is priced per architecture from Table 1: the
    # software RI's RSA-bound slot dwarfs the hardware one.
    assert sw.slot_ticks > 100 * hw.slot_ticks
    ratio = RIServer(Kernel(seed="probe", record_log=False),
                     SW_PROFILE).nominal_service_ticks() \
        / RIServer(Kernel(seed="probe2", record_log=False),
                   HW_PROFILE).nominal_service_ticks()
    assert sw.slot_ticks / hw.slot_ticks == pytest.approx(ratio,
                                                          rel=0.01)


def test_storm_feeds_the_metrics_registry():
    registry = MetricsRegistry()
    run_storm(StormSpec(horizon=240, spike_start=60, spike_end=90),
              metrics=registry)
    counters = registry.counters
    assert counters["storm.clients"] > 0
    assert counters.get("storm.abandoned", 0) > 0
