"""The concurrent Rights Issuer: pricing, state, refusal, telemetry.

Everything here cross-checks :class:`repro.sim.ri.RIServer` against the
*existing* cost machinery — the same :class:`~repro.core.costs
.CostTable` and :class:`~repro.core.architecture.ArchitectureProfile`
that price the terminal side — so the RI cannot drift onto a private
notion of what crypto costs.
"""

import pytest

from repro.core.architecture import (HW_PROFILE, PAPER_PROFILES,
                                     SW_PROFILE)
from repro.core.costs import PAPER_TABLE1
from repro.obs.tracer import Tracer
from repro.sim.kernel import Kernel
from repro.sim.ri import (REQUEST_KINDS, RICapacity, RIServer,
                          service_records)

HW = HW_PROFILE


def _server(profile=SW_PROFILE, **kwargs):
    kernel = Kernel(seed="ri-unit", record_log=False)
    return kernel, RIServer(kernel, profile, **kwargs)


# -- pricing ----------------------------------------------------------------

@pytest.mark.parametrize("profile", PAPER_PROFILES,
                         ids=lambda p: p.name)
@pytest.mark.parametrize("kind", REQUEST_KINDS)
def test_base_ticks_are_table1_sums(profile, kind):
    _, ri = _server(profile)
    expected = sum(
        PAPER_TABLE1.cycles(record,
                            profile.implementation(record.algorithm))
        for record in service_records(kind))
    assert ri.base_ticks(kind) == expected
    assert expected > 0


def test_signing_dominates_registration_in_software():
    # The architecture story in one assertion: the software RI's
    # registration demand is dominated by the 37.74 Mcycle RSA private
    # operation; hardware cuts the same request by more than 100x.
    _, sw = _server(SW_PROFILE)
    _, hw = _server(HW)
    assert sw.base_ticks("registration") > 37_000_000
    assert sw.base_ticks("registration") > \
        100 * hw.base_ticks("registration")


def test_service_records_rejects_unknown_kind():
    with pytest.raises(ValueError):
        service_records("teardown")


def test_hello_is_hash_only():
    records = service_records("hello")
    assert len(records) == 1
    assert records[0].algorithm.name == "SHA1"


# -- stateful terms ---------------------------------------------------------

def test_ocsp_refresh_charged_once_per_validity_window():
    kernel, ri = _server(ocsp_fetch_ms=50.0, ocsp_validity_seconds=300)
    base = ri.base_ticks("registration")
    probe = ri.replay_probe_ticks()
    first = ri.service_ticks("registration")
    assert first == base + probe + ri.ocsp_fetch_ticks
    assert ri.ocsp_fetches == 1
    # Within the validity window: no refresh.
    second = ri.service_ticks("registration")
    assert second == base + probe
    assert ri.ocsp_fetches == 1
    # Age the cached assertion out and the fetch recurs.
    kernel.now += ri.ocsp_validity_ticks + 1
    third = ri.service_ticks("registration")
    assert third == first
    assert ri.ocsp_fetches == 2


def test_replay_probe_grows_logarithmically():
    _, ri = _server()
    assert ri.replay_probe_ticks() > 0  # the HMAC floor
    empty = ri.replay_probe_ticks()
    ri.replay_entries = 1
    one = ri.replay_probe_ticks()
    ri.replay_entries = 1_000_000
    million = ri.replay_probe_ticks()
    assert empty < one < million
    # Depth is ceil(log2(n + 1)): 20 levels at a million entries, so
    # the growth is gentle — pressure, not collapse.
    ri.replay_entries = 2_000_000
    assert ri.replay_probe_ticks() - million <= million - empty


def test_replay_pressure_can_be_disabled():
    _, ri = _server(replay_pressure=False)
    assert ri.service_ticks("acquisition") == \
        ri.base_ticks("acquisition")


# -- the serving protocol ---------------------------------------------------

def _drive(ri, kinds):
    """Spawn one process per request, all arriving at tick zero."""
    latencies = {}

    def request(index, kind):
        latencies[index] = yield from ri.serve(kind)

    for index, kind in enumerate(kinds):
        ri.kernel.spawn("req/%d" % index, request(index, kind))
    ri.kernel.run()
    return latencies


def test_serve_records_latency_and_replay_growth():
    _, ri = _server(HW)
    latencies = _drive(ri, ["hello", "registration", "acquisition"])
    assert ri.served == 3
    assert ri.refused == 0
    # hello does not populate the replay cache; the others do.
    assert ri.replay_entries == 2
    assert ri.latency.count == 3
    assert all(value > 0 for value in latencies.values())
    # Simultaneous arrivals on one signing unit: each latency includes
    # the queue wait behind its predecessors.
    assert latencies[0] < latencies[1] < latencies[2]
    counters = ri.metrics.to_dict()["counters"]
    assert counters["ri.served"] == 3
    assert counters["ri.served.hello"] == 1


def test_bounded_queue_refuses_and_counts():
    _, ri = _server(HW, capacity=RICapacity(signing_units=1,
                                            queue_limit=1))
    latencies = _drive(ri, ["hello"] * 3)
    assert ri.served == 2
    assert ri.refused == 1
    assert latencies[2] is None  # last arrival found the queue full
    counters = ri.metrics.to_dict()["counters"]
    assert counters["ri.refused"] == 1
    assert counters["ri.refused.hello"] == 1


def test_serve_rejects_unknown_kind():
    _, ri = _server()
    with pytest.raises(ValueError):
        next(ri.serve("teardown"))


def test_latency_ms_converts_ticks_at_the_profile_clock():
    _, ri = _server(HW)
    _drive(ri, ["hello"])
    expected = ri.latency.summary().mean * 1000.0 / HW.clock_hz
    assert ri.latency_ms("mean") == pytest.approx(expected)
    assert ri.utilization() > 0
    assert ri.mean_queue_depth() == 0.0


def test_serve_emits_spans_on_the_virtual_clock():
    kernel = Kernel(seed="ri-spans", record_log=False)
    tracer = Tracer(profile=HW, actor="ri")
    ri = RIServer(kernel, HW, tracer=tracer)
    _drive(ri, ["registration", "acquisition"])
    spans = [span for span in tracer.spans
             if span.name.startswith("ri.serve.")]
    assert [span.name for span in spans] == \
        ["ri.serve.registration", "ri.serve.acquisition"]
    for span in spans:
        assert span.args["service_ticks"] > 0
        assert span.end is not None
        assert span.duration == span.args["service_ticks"]


def test_capacity_validation():
    with pytest.raises(ValueError):
        RICapacity(signing_units=0)
    with pytest.raises(ValueError):
        RICapacity(queue_limit=-1)
