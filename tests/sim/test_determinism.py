"""Determinism contract of the kernel, held under Hypothesis.

Three properties make a kernel run a pure function of
``(seed, registered processes)``:

* **Registration-order invariance** — any permutation of the same
  pre-run spawn set produces a bit-identical event log and final state
  digest (pre-run spawns are sorted by ``(start, name)`` before seq
  assignment).
* **FIFO tie-breaking** — simultaneous contenders for a resource are
  granted in schedule order, never hash or arrival-of-generator order.
* **Pause/resume transparency** — ``run(until=t)`` followed by
  ``run()`` replays exactly the schedule an unpaused ``run()``
  executes; the pause is invisible in the log, the digest and every
  statistic.

The process bodies are generated from small command scripts (waits,
acquire/hold/release rounds, stream draws), so the properties are
exercised across schedules no hand-written case would think to try.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import (REJECTED, Acquire, Kernel, Release,
                              Resource, Wait)

#: One process's script: a start offset plus (pre-wait, hold) rounds.
SCRIPTS = st.lists(
    st.tuples(st.integers(min_value=0, max_value=30),
              st.integers(min_value=0, max_value=20)),
    min_size=0, max_size=4)

#: A spawn set: unique names mapped to (start, script).
SPAWN_SETS = st.dictionaries(
    st.sampled_from(["a", "b", "c", "d", "e", "f"]),
    st.tuples(st.integers(min_value=0, max_value=25), SCRIPTS),
    min_size=1, max_size=6)


def _body(kernel, resource, name, script, trail):
    """A process that waits, contends and draws per its script."""
    rng = kernel.stream(name)
    for pre_wait, hold in script:
        yield Wait(pre_wait)
        grant = yield Acquire(resource)
        if grant is REJECTED:
            trail.append((name, kernel.now, "rejected"))
            continue
        trail.append((name, kernel.now, "granted", rng.randrange(100)))
        yield Wait(hold)
        yield Release(resource)
    trail.append((name, kernel.now, "exit"))


def _run(spawn_set, order, seed="prop", queue_limit=None, until=None):
    """One complete run; returns (event log, trail, digest, now)."""
    kernel = Kernel(seed=seed)
    resource = Resource(kernel, "r", queue_limit=queue_limit)
    trail = []
    for name in order:
        start, script = spawn_set[name]
        kernel.spawn(name, _body(kernel, resource, name, script, trail),
                     at=start)
    if until is not None:
        kernel.run(until=until)
    kernel.run()
    return (kernel.event_log(), tuple(trail), kernel.state_digest(),
            kernel.now)


@settings(max_examples=40, deadline=None)
@given(spawn_set=SPAWN_SETS, data=st.data())
def test_registration_order_is_immaterial(spawn_set, data):
    names = sorted(spawn_set)
    permuted = data.draw(st.permutations(names))
    reference = _run(spawn_set, names)
    shuffled = _run(spawn_set, permuted)
    assert shuffled == reference


@settings(max_examples=40, deadline=None)
@given(spawn_set=SPAWN_SETS, data=st.data())
def test_bounded_queues_preserve_order_invariance(spawn_set, data):
    # Rejection decisions depend on queue occupancy at arrival, the
    # most schedule-sensitive part of the kernel — registration order
    # still must not matter.
    names = sorted(spawn_set)
    permuted = data.draw(st.permutations(names))
    reference = _run(spawn_set, names, queue_limit=1)
    shuffled = _run(spawn_set, permuted, queue_limit=1)
    assert shuffled == reference


@settings(max_examples=30, deadline=None)
@given(names=st.lists(
    st.sampled_from(["a", "b", "c", "d", "e"]),
    min_size=2, max_size=5, unique=True))
def test_simultaneous_contenders_grant_fifo(names):
    # All contenders arrive at tick 0; grants must follow the
    # deterministic schedule order — sorted by (start, name) — and
    # never overlap on the single server.
    kernel = Kernel(seed="fifo")
    resource = Resource(kernel, "r")
    grants = []

    def contender(name):
        yield Acquire(resource)
        grants.append((name, kernel.now))
        yield Wait(10)
        yield Release(resource)

    for name in names:
        kernel.spawn(name, contender(name))
    kernel.run()
    expected = [(name, 10 * rank)
                for rank, name in enumerate(sorted(names))]
    assert grants == expected


@settings(max_examples=40, deadline=None)
@given(spawn_set=SPAWN_SETS,
       until=st.integers(min_value=0, max_value=120))
def test_pause_resume_is_invisible(spawn_set, until):
    names = sorted(spawn_set)
    unpaused = _run(spawn_set, names)
    paused = _run(spawn_set, names, until=until)
    # Log and trail are pause-blind unconditionally.
    assert paused[:2] == unpaused[:2]
    # The clock (and hence the digest, which includes it) differs only
    # when the pause deadline outlived the schedule — run(until)
    # advances an idle clock to the deadline.
    assert paused[3] == max(unpaused[3], until)
    if until <= unpaused[3]:
        assert paused[2] == unpaused[2]


@settings(max_examples=25, deadline=None)
@given(spawn_set=SPAWN_SETS,
       until=st.integers(min_value=0, max_value=120))
def test_paused_digest_appears_on_the_unpaused_timeline(spawn_set,
                                                        until):
    # A paused kernel is byte-for-byte the kernel an unpaused run
    # passes through: advancing a fresh kernel to the same boundary
    # reproduces the digest exactly.
    names = sorted(spawn_set)

    def build():
        kernel = Kernel(seed="prop")
        resource = Resource(kernel, "r")
        trail = []
        for name in names:
            start, script = spawn_set[name]
            kernel.spawn(name,
                         _body(kernel, resource, name, script, trail),
                         at=start)
        return kernel

    paused = build()
    paused.run(until=until)
    checkpoint = paused.state_digest()

    replay = build()
    replay.run(until=until)
    assert replay.state_digest() == checkpoint

    paused.run()
    replay.run()
    assert replay.state_digest() == paused.state_digest()
    assert replay.event_log() == paused.event_log()
