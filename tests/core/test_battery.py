"""Battery-life impact calculations."""

import pytest

from repro.core.architecture import HW_PROFILE, SW_PROFILE
from repro.core.battery import (Battery, battery_impact, drm_tax_percent)
from repro.core.energy import ProportionalEnergyModel
from repro.core.model import PerformanceModel
from repro.core.trace import (Algorithm, OperationRecord, OperationTrace,
                              Phase)


@pytest.fixture()
def breakdown():
    trace = OperationTrace([
        OperationRecord(Algorithm.RSA_PRIVATE, Phase.REGISTRATION, 3, 3),
        OperationRecord(Algorithm.AES_DECRYPT, Phase.CONSUMPTION, 5,
                        1_000_000),
    ])
    return PerformanceModel().evaluate(trace, SW_PROFILE)


def test_battery_capacity_joules():
    battery = Battery(capacity_mah=1000, nominal_volts=3.6)
    assert battery.capacity_joules == pytest.approx(1.0 * 3600 * 3.6)


def test_fraction_used_bounds():
    battery = Battery()
    assert battery.fraction_used(0.0) == 0.0
    assert battery.fraction_used(battery.capacity_joules) \
        == pytest.approx(1.0)
    with pytest.raises(ValueError):
        battery.fraction_used(-1.0)


def test_impact_consistency(breakdown):
    impact = battery_impact(breakdown,
                            ProportionalEnergyModel(power_watts=0.1))
    assert impact.joules == pytest.approx(
        breakdown.total_seconds * 0.1)
    assert impact.millijoules == pytest.approx(impact.joules * 1000)
    assert impact.charge_fraction \
        == pytest.approx(impact.joules
                         / impact.battery.capacity_joules)
    assert impact.runs_per_charge() \
        == pytest.approx(1.0 / impact.charge_fraction)


def test_microamp_hours(breakdown):
    impact = battery_impact(breakdown)
    # Cross-check: uAh * V * 3600 / 1e6 == joules.
    reconstructed = (impact.microamp_hours / 1e6 * 3600
                     * impact.battery.nominal_volts)
    assert reconstructed == pytest.approx(impact.joules)


def test_hardware_extends_battery(breakdown):
    trace = OperationTrace([op.record for op in breakdown.operations])
    model = PerformanceModel()
    sw_impact = battery_impact(model.evaluate(trace, SW_PROFILE))
    hw_impact = battery_impact(model.evaluate(trace, HW_PROFILE))
    assert hw_impact.runs_per_charge() > 100 * sw_impact.runs_per_charge()


def test_drm_tax(breakdown):
    # A 3.5 MB track is ~3.5 minutes of audio at 128 kbit/s; assume
    # 100 mW of playback power.
    tax = drm_tax_percent(breakdown, playback_watts=0.1,
                          playback_seconds=210.0,
                          energy_model=ProportionalEnergyModel(0.1))
    expected = 100.0 * breakdown.total_seconds / 210.0
    assert tax == pytest.approx(expected)
    with pytest.raises(ValueError):
        drm_tax_percent(breakdown, playback_watts=0.0,
                        playback_seconds=10.0)


def test_zero_energy_runs_forever():
    from repro.core.model import CostBreakdown
    empty = PerformanceModel().evaluate(OperationTrace(), SW_PROFILE)
    assert isinstance(empty, CostBreakdown)
    impact = battery_impact(empty)
    assert impact.runs_per_charge() == float("inf")
