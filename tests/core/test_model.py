"""Trace pricing: CostBreakdown arithmetic and profile comparison."""

import pytest

from repro.core.architecture import HW_PROFILE, PAPER_PROFILES, SW_PROFILE
from repro.core.costs import Implementation
from repro.core.model import PerformanceModel
from repro.core.trace import (Algorithm, OperationRecord, OperationTrace,
                              Phase)


@pytest.fixture()
def trace():
    return OperationTrace([
        OperationRecord(Algorithm.RSA_PRIVATE, Phase.REGISTRATION, 1, 1),
        OperationRecord(Algorithm.SHA1, Phase.CONSUMPTION, 1, 1920),
        OperationRecord(Algorithm.AES_DECRYPT, Phase.CONSUMPTION, 1,
                        1920),
    ])


def test_evaluate_total_cycles_sw(trace):
    breakdown = PerformanceModel().evaluate(trace, SW_PROFILE)
    expected = 37_740_000 + 1920 * 400 + (950 + 1920 * 830)
    assert breakdown.total_cycles == expected
    assert breakdown.total_ms == pytest.approx(expected / 200_000)
    assert breakdown.total_seconds == pytest.approx(expected / 2e8)


def test_evaluate_total_cycles_hw(trace):
    breakdown = PerformanceModel().evaluate(trace, HW_PROFILE)
    expected = 260_000 + 1920 * 20 + (10 + 1920 * 10)
    assert breakdown.total_cycles == expected


def test_implementation_attribution(trace):
    breakdown = PerformanceModel().evaluate(trace, SW_PROFILE)
    assert all(op.implementation == Implementation.SOFTWARE
               for op in breakdown.operations)
    hw = PerformanceModel().evaluate(trace, HW_PROFILE)
    assert all(op.implementation == Implementation.HARDWARE
               for op in hw.operations)


def test_cycles_by_algorithm(trace):
    breakdown = PerformanceModel().evaluate(trace, SW_PROFILE)
    by_algorithm = breakdown.cycles_by_algorithm()
    assert by_algorithm[Algorithm.RSA_PRIVATE] == 37_740_000
    assert by_algorithm[Algorithm.SHA1] == 768_000


def test_cycles_by_phase(trace):
    breakdown = PerformanceModel().evaluate(trace, SW_PROFILE)
    by_phase = breakdown.cycles_by_phase()
    assert by_phase[Phase.REGISTRATION] == 37_740_000
    assert by_phase[Phase.CONSUMPTION] \
        == breakdown.total_cycles - 37_740_000
    ms = breakdown.ms_by_phase()
    assert ms[Phase.REGISTRATION] == pytest.approx(188.7)


def test_share_by_algorithm_sums_to_one(trace):
    shares = PerformanceModel().evaluate(trace,
                                         SW_PROFILE).share_by_algorithm()
    assert sum(shares.values()) == pytest.approx(1.0)


def test_empty_trace():
    breakdown = PerformanceModel().evaluate(OperationTrace(), SW_PROFILE)
    assert breakdown.total_cycles == 0
    assert breakdown.total_ms == 0.0
    assert breakdown.share_by_algorithm() == {}


def test_compare_returns_one_breakdown_per_profile(trace):
    breakdowns = PerformanceModel().compare(trace, PAPER_PROFILES)
    assert [b.profile.name for b in breakdowns] == ["SW", "SW/HW", "HW"]
    totals = [b.total_cycles for b in breakdowns]
    assert totals[0] > totals[1] > totals[2]
