"""Trace and breakdown JSON serialization."""

import json

import pytest

from repro.core.architecture import SW_PROFILE
from repro.core.model import PerformanceModel
from repro.core.serialization import (breakdown_to_dict, dump_breakdown,
                                      dump_trace, load_trace,
                                      trace_from_dict, trace_to_dict)
from repro.core.trace import (Algorithm, OperationRecord, OperationTrace,
                              Phase)


@pytest.fixture()
def trace():
    return OperationTrace([
        OperationRecord(Algorithm.SHA1, Phase.CONSUMPTION, 1, 1920,
                        "dcf-hash"),
        OperationRecord(Algorithm.RSA_PRIVATE, Phase.REGISTRATION, 1, 1,
                        "sign"),
    ])


def test_dict_roundtrip(trace):
    rebuilt = trace_from_dict(trace_to_dict(trace))
    assert rebuilt.records == trace.records


def test_file_roundtrip(trace, tmp_path):
    path = str(tmp_path / "trace.json")
    dump_trace(trace, path)
    rebuilt = load_trace(path)
    assert rebuilt.records == trace.records
    # And the file is real, valid JSON.
    with open(path) as handle:
        raw = json.load(handle)
    assert raw["kind"] == "operation-trace"


def test_rejects_wrong_kind(trace):
    data = trace_to_dict(trace)
    data["kind"] = "something-else"
    with pytest.raises(ValueError):
        trace_from_dict(data)


def test_rejects_wrong_schema(trace):
    data = trace_to_dict(trace)
    data["schema"] = 99
    with pytest.raises(ValueError):
        trace_from_dict(data)


def test_rejects_malformed_record(trace):
    data = trace_to_dict(trace)
    data["records"][0]["algorithm"] = "rot13"
    with pytest.raises(ValueError):
        trace_from_dict(data)
    data = trace_to_dict(trace)
    del data["records"][0]["blocks"]
    with pytest.raises(ValueError):
        trace_from_dict(data)


def test_empty_trace_roundtrip():
    rebuilt = trace_from_dict(trace_to_dict(OperationTrace()))
    assert len(rebuilt) == 0


def test_breakdown_export(trace, tmp_path):
    breakdown = PerformanceModel().evaluate(trace, SW_PROFILE)
    data = breakdown_to_dict(breakdown)
    assert data["profile"] == "SW"
    assert data["total_cycles"] == breakdown.total_cycles
    assert data["by_algorithm_cycles"]["rsa-1024-private"] == 37_740_000
    assert data["by_phase_cycles"]["registration"] == 37_740_000
    assert len(data["operations"]) == 2
    path = str(tmp_path / "breakdown.json")
    dump_breakdown(breakdown, path)
    with open(path) as handle:
        assert json.load(handle)["kind"] == "cost-breakdown"


def test_serialized_trace_reprices_identically(trace, tmp_path):
    """The exchange-currency property: price before == price after."""
    model = PerformanceModel()
    before = model.evaluate(trace, SW_PROFILE).total_cycles
    path = str(tmp_path / "t.json")
    dump_trace(trace, path)
    after = model.evaluate(load_trace(path), SW_PROFILE).total_cycles
    assert before == after
