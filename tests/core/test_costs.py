"""The Table 1 cost database and linear cost arithmetic."""

import pytest

from repro.core.costs import (CostTable, HARDWARE_COSTS, Implementation,
                              LinearCost, PAPER_TABLE1, SOFTWARE_COSTS)
from repro.core.trace import Algorithm, OperationRecord, Phase


def test_linear_cost_formula():
    cost = LinearCost(offset_cycles=360, cycles_per_block=830)
    assert cost.cycles(0, 0) == 0
    assert cost.cycles(1, 0) == 360
    assert cost.cycles(1, 1) == 1190
    assert cost.cycles(2, 100) == 2 * 360 + 100 * 830


def test_linear_cost_rejects_negative():
    with pytest.raises(ValueError):
        LinearCost(10, 10).cycles(-1, 0)


def test_table1_software_values():
    assert SOFTWARE_COSTS[Algorithm.AES_ENCRYPT] == LinearCost(360, 830)
    assert SOFTWARE_COSTS[Algorithm.AES_DECRYPT] == LinearCost(950, 830)
    assert SOFTWARE_COSTS[Algorithm.SHA1] == LinearCost(0, 400)
    assert SOFTWARE_COSTS[Algorithm.HMAC_SHA1] == LinearCost(1200, 400)
    assert SOFTWARE_COSTS[Algorithm.RSA_PUBLIC].cycles_per_block \
        == 2_160_000
    assert SOFTWARE_COSTS[Algorithm.RSA_PRIVATE].cycles_per_block \
        == 37_740_000


def test_table1_hardware_values():
    assert HARDWARE_COSTS[Algorithm.AES_ENCRYPT] == LinearCost(0, 10)
    assert HARDWARE_COSTS[Algorithm.AES_DECRYPT] == LinearCost(10, 10)
    assert HARDWARE_COSTS[Algorithm.SHA1] == LinearCost(0, 20)
    assert HARDWARE_COSTS[Algorithm.HMAC_SHA1] == LinearCost(240, 20)
    assert HARDWARE_COSTS[Algorithm.RSA_PUBLIC].cycles_per_block == 10_000
    assert HARDWARE_COSTS[Algorithm.RSA_PRIVATE].cycles_per_block \
        == 260_000


def test_rsa_block_unit_is_1024_bits():
    for table in (SOFTWARE_COSTS, HARDWARE_COSTS):
        assert table[Algorithm.RSA_PUBLIC].block_bits == 1024
        assert table[Algorithm.RSA_PRIVATE].block_bits == 1024
        assert table[Algorithm.SHA1].block_bits == 128


def test_cost_lookup_and_pricing():
    record = OperationRecord(Algorithm.SHA1, Phase.CONSUMPTION,
                             invocations=1, blocks=1920)
    assert PAPER_TABLE1.cycles(record, Implementation.SOFTWARE) \
        == 1920 * 400
    assert PAPER_TABLE1.cycles(record, Implementation.HARDWARE) \
        == 1920 * 20


def test_unknown_implementation_rejected():
    with pytest.raises(KeyError):
        PAPER_TABLE1.cost(Algorithm.SHA1, "fpga")


def test_rows_cover_every_algorithm():
    rows = PAPER_TABLE1.rows()
    assert set(rows) == set(Algorithm)
    for sw, hw in rows.values():
        assert sw.cycles(1, 1) > hw.cycles(1, 1)  # hardware always wins


def test_custom_table_overrides():
    custom = CostTable(
        software=dict(SOFTWARE_COSTS),
        hardware={**HARDWARE_COSTS,
                  Algorithm.RSA_PRIVATE: LinearCost(0, 100_000,
                                                    block_bits=1024)},
    )
    record = OperationRecord(Algorithm.RSA_PRIVATE, Phase.REGISTRATION,
                             1, 1)
    assert custom.cycles(record, Implementation.HARDWARE) == 100_000
    assert PAPER_TABLE1.cycles(record, Implementation.HARDWARE) == 260_000


def test_private_public_ratio_sanity():
    """The ~17x CRT ratio that justifies the typo correction."""
    ratio = (SOFTWARE_COSTS[Algorithm.RSA_PRIVATE].cycles_per_block
             / SOFTWARE_COSTS[Algorithm.RSA_PUBLIC].cycles_per_block)
    assert 15 < ratio < 20


def test_override_replaces_one_entry():
    faster = PAPER_TABLE1.override(
        Algorithm.RSA_PRIVATE, Implementation.HARDWARE,
        LinearCost(0, 130_000, block_bits=1024))
    record = OperationRecord(Algorithm.RSA_PRIVATE, Phase.REGISTRATION,
                             1, 1)
    assert faster.cycles(record, Implementation.HARDWARE) == 130_000
    # The original table and the other entries are untouched.
    assert PAPER_TABLE1.cycles(record, Implementation.HARDWARE) \
        == 260_000
    other = OperationRecord(Algorithm.SHA1, Phase.CONSUMPTION, 1, 1)
    assert faster.cycles(other, Implementation.HARDWARE) \
        == PAPER_TABLE1.cycles(other, Implementation.HARDWARE)


def test_override_rejects_unknown_implementation():
    with pytest.raises(KeyError):
        PAPER_TABLE1.override(Algorithm.SHA1, "fpga", LinearCost(0, 1))


def test_scaled_software_only():
    slower = PAPER_TABLE1.scaled(Implementation.SOFTWARE, 2.0)
    record = OperationRecord(Algorithm.AES_ENCRYPT, Phase.CONSUMPTION,
                             1, 10)
    assert slower.cycles(record, Implementation.SOFTWARE) \
        == 2 * PAPER_TABLE1.cycles(record, Implementation.SOFTWARE)
    assert slower.cycles(record, Implementation.HARDWARE) \
        == PAPER_TABLE1.cycles(record, Implementation.HARDWARE)


def test_scaled_rejects_bad_factor():
    with pytest.raises(ValueError):
        PAPER_TABLE1.scaled(Implementation.SOFTWARE, 0)
