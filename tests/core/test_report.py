"""Report helpers: Figure 5 grouping and architecture comparisons."""

import pytest

from repro.core.architecture import PAPER_PROFILES, SW_PROFILE
from repro.core.model import PerformanceModel
from repro.core.report import (FIGURE5_CATEGORIES, FIGURE5_GROUPING,
                               category_cycles, category_shares,
                               compare_architectures)
from repro.core.trace import (Algorithm, OperationRecord, OperationTrace,
                              Phase)


@pytest.fixture()
def trace():
    return OperationTrace([
        OperationRecord(Algorithm.RSA_PUBLIC, Phase.REGISTRATION, 4, 4),
        OperationRecord(Algorithm.RSA_PRIVATE, Phase.REGISTRATION, 3, 3),
        OperationRecord(Algorithm.AES_DECRYPT, Phase.CONSUMPTION, 1,
                        1000),
        OperationRecord(Algorithm.AES_ENCRYPT, Phase.INSTALLATION, 12,
                        12),
        OperationRecord(Algorithm.SHA1, Phase.CONSUMPTION, 1, 1000),
        OperationRecord(Algorithm.HMAC_SHA1, Phase.CONSUMPTION, 1, 20),
    ])


def test_grouping_covers_all_algorithms():
    assert set(FIGURE5_GROUPING) == set(Algorithm)
    assert set(FIGURE5_GROUPING.values()) == set(FIGURE5_CATEGORIES)


def test_hmac_folds_into_sha1(trace):
    breakdown = PerformanceModel().evaluate(trace, SW_PROFILE)
    cycles = category_cycles(breakdown)
    sha_direct = breakdown.cycles_by_algorithm()[Algorithm.SHA1]
    hmac = breakdown.cycles_by_algorithm()[Algorithm.HMAC_SHA1]
    assert cycles["SHA-1"] == sha_direct + hmac


def test_aes_encrypt_folds_into_decryption(trace):
    breakdown = PerformanceModel().evaluate(trace, SW_PROFILE)
    cycles = category_cycles(breakdown)
    by_algorithm = breakdown.cycles_by_algorithm()
    assert cycles["AES Decryption"] \
        == by_algorithm[Algorithm.AES_DECRYPT] \
        + by_algorithm[Algorithm.AES_ENCRYPT]


def test_shares_sum_to_one(trace):
    breakdown = PerformanceModel().evaluate(trace, SW_PROFILE)
    shares = category_shares(breakdown)
    assert sum(shares.values()) == pytest.approx(1.0)
    assert set(shares) == set(FIGURE5_CATEGORIES)


def test_empty_breakdown_shares():
    breakdown = PerformanceModel().evaluate(OperationTrace(), SW_PROFILE)
    shares = category_shares(breakdown)
    assert all(v == 0.0 for v in shares.values())


def test_compare_architectures(trace):
    comparison = compare_architectures(trace, PAPER_PROFILES,
                                       use_case="test")
    assert comparison.labels() == ["SW", "SW/HW", "HW"]
    series = comparison.series_ms()
    assert series[0] > series[1] > series[2]
    speedups = comparison.speedup_over_software()
    assert speedups[0] == pytest.approx(1.0)
    assert speedups[2] > speedups[1] > 1.0
