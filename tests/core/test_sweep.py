"""Workload sweeps and CSV export."""

import pytest

from repro.core.sweep import (SweepPoint, WorkloadSweep, points_to_csv,
                              write_csv)
from repro.usecases.scenario import UseCase
from repro.usecases.workload import WorkloadScaler


@pytest.fixture(scope="module")
def scaler():
    template = UseCase(name="sweep", content_octets=1024, accesses=1)
    return WorkloadScaler(template, seed="sweep-tests")


def test_grid_shape(scaler):
    sweep = WorkloadSweep(scaler)
    points = sweep.run(sizes_octets=[1024, 4096], accesses=[1, 5])
    assert len(points) == 2 * 2 * 3  # sizes x accesses x architectures
    architectures = {p.architecture for p in points}
    assert architectures == {"SW", "SW/HW", "HW"}


def test_monotonicity(scaler):
    sweep = WorkloadSweep(scaler)
    points = sweep.run(sizes_octets=[1024, 65536], accesses=[1])
    sw = {p.content_octets: p.total_ms for p in points
          if p.architecture == "SW"}
    assert sw[65536] > sw[1024]


def test_cycles_time_consistency(scaler):
    sweep = WorkloadSweep(scaler)
    for point in sweep.run(sizes_octets=[2048], accesses=[3]):
        assert point.total_ms == pytest.approx(
            point.total_cycles / 200_000)


def test_csv_rendering():
    points = [SweepPoint(1024, 5, "SW", 12.5, 2_500_000)]
    text = points_to_csv(points)
    lines = text.strip().splitlines()
    assert lines[0] == ("content_octets,accesses,architecture,"
                        "total_ms,total_cycles")
    assert lines[1] == "1024,5,SW,12.500000,2500000"


def test_write_csv(tmp_path, scaler):
    sweep = WorkloadSweep(scaler)
    points = sweep.run(sizes_octets=[1024], accesses=[1])
    path = str(tmp_path / "sweep.csv")
    write_csv(points, path)
    with open(path) as handle:
        content = handle.read()
    assert content.count("\n") == len(points) + 1
    assert "SW/HW" in content
