"""Operation traces: records, aggregation, canonical form."""

import pytest

from repro.core.trace import (Algorithm, OperationRecord, OperationTrace,
                              Phase)


def record(algorithm=Algorithm.SHA1, phase=Phase.CONSUMPTION,
           invocations=1, blocks=10, label="x"):
    return OperationRecord(algorithm=algorithm, phase=phase,
                           invocations=invocations, blocks=blocks,
                           label=label)


def test_record_rejects_negative_counts():
    with pytest.raises(ValueError):
        record(invocations=-1)
    with pytest.raises(ValueError):
        record(blocks=-1)


def test_record_scaled():
    scaled = record(invocations=2, blocks=5).scaled(3)
    assert scaled.invocations == 6
    assert scaled.blocks == 15
    assert scaled.algorithm is Algorithm.SHA1
    with pytest.raises(ValueError):
        record().scaled(-1)


def test_trace_append_extend_len_iter():
    trace = OperationTrace()
    trace.append(record())
    trace.extend([record(), record()])
    assert len(trace) == 3
    assert all(r.label == "x" for r in trace)


def test_trace_concatenation():
    a = OperationTrace([record(label="a")])
    b = OperationTrace([record(label="b")])
    combined = a + b
    assert [r.label for r in combined] == ["a", "b"]
    assert len(a) == 1  # originals untouched


def test_filter_by_algorithm_and_phase():
    trace = OperationTrace([
        record(Algorithm.SHA1, Phase.REGISTRATION),
        record(Algorithm.SHA1, Phase.CONSUMPTION),
        record(Algorithm.AES_DECRYPT, Phase.CONSUMPTION),
    ])
    assert len(trace.filter(algorithm=Algorithm.SHA1)) == 2
    assert len(trace.filter(phase=Phase.CONSUMPTION)) == 2
    assert len(trace.filter(algorithm=Algorithm.SHA1,
                            phase=Phase.CONSUMPTION)) == 1


def test_totals_by_algorithm():
    trace = OperationTrace([
        record(Algorithm.SHA1, invocations=1, blocks=10),
        record(Algorithm.SHA1, invocations=2, blocks=20),
        record(Algorithm.RSA_PRIVATE, invocations=1, blocks=1),
    ])
    totals = trace.totals_by_algorithm()
    assert totals[Algorithm.SHA1] == (3, 30)
    assert totals[Algorithm.RSA_PRIVATE] == (1, 1)


def test_totals_by_phase():
    trace = OperationTrace([
        record(phase=Phase.REGISTRATION, blocks=5),
        record(phase=Phase.REGISTRATION, blocks=7),
        record(phase=Phase.INSTALLATION, blocks=1),
    ])
    totals = trace.totals_by_phase()
    assert totals[Phase.REGISTRATION] == (2, 12)
    assert totals[Phase.INSTALLATION] == (1, 1)


def test_aggregated_merges_same_key_preserving_order():
    trace = OperationTrace([
        record(label="a", blocks=1),
        record(label="b", blocks=2),
        record(label="a", blocks=3),
    ])
    aggregated = trace.aggregated()
    assert len(aggregated) == 2
    assert aggregated.records[0].label == "a"
    assert aggregated.records[0].blocks == 4
    assert aggregated.records[1].label == "b"


def test_canonical_ignores_labels_and_batching():
    a = OperationTrace([record(label="x", blocks=3),
                        record(label="y", blocks=4)])
    b = OperationTrace([record(label="z", invocations=2, blocks=7)])
    assert a.canonical() == b.canonical()


def test_canonical_distinguishes_work():
    a = OperationTrace([record(blocks=3)])
    b = OperationTrace([record(blocks=4)])
    assert a.canonical() != b.canonical()
