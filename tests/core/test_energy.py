"""Energy models: the proportional baseline and per-unit weighting."""

import pytest

from repro.core.architecture import HW_PROFILE, SW_PROFILE
from repro.core.costs import Implementation
from repro.core.energy import (DEFAULT_CPU_POWER_WATTS,
                               DEFAULT_MACRO_POWER_WATTS,
                               ProportionalEnergyModel,
                               WeightedEnergyModel)
from repro.core.model import PerformanceModel
from repro.core.trace import (Algorithm, OperationRecord, OperationTrace,
                              Phase)


@pytest.fixture()
def trace():
    return OperationTrace([
        OperationRecord(Algorithm.RSA_PRIVATE, Phase.REGISTRATION, 1, 1),
        OperationRecord(Algorithm.AES_DECRYPT, Phase.CONSUMPTION, 1,
                        10_000),
    ])


def test_proportional_is_time_times_power(trace):
    breakdown = PerformanceModel().evaluate(trace, SW_PROFILE)
    model = ProportionalEnergyModel(power_watts=0.5)
    assert model.joules(breakdown) \
        == pytest.approx(breakdown.total_seconds * 0.5)


def test_proportional_preserves_time_ratio(trace):
    """Under the paper's assumption, energy ratios equal time ratios."""
    pm = PerformanceModel()
    sw = pm.evaluate(trace, SW_PROFILE)
    hw = pm.evaluate(trace, HW_PROFILE)
    model = ProportionalEnergyModel()
    assert model.joules(sw) / model.joules(hw) \
        == pytest.approx(sw.total_ms / hw.total_ms)


def test_weighted_widens_the_gap(trace):
    """The paper's future-work claim: HW saves more energy than time."""
    pm = PerformanceModel()
    sw = pm.evaluate(trace, SW_PROFILE)
    hw = pm.evaluate(trace, HW_PROFILE)
    model = WeightedEnergyModel()
    time_ratio = sw.total_ms / hw.total_ms
    energy_ratio = model.joules(sw) / model.joules(hw)
    assert energy_ratio > time_ratio


def test_weighted_equals_proportional_for_pure_software(trace):
    breakdown = PerformanceModel().evaluate(trace, SW_PROFILE)
    weighted = WeightedEnergyModel()
    proportional = ProportionalEnergyModel(DEFAULT_CPU_POWER_WATTS)
    assert weighted.joules(breakdown) \
        == pytest.approx(proportional.joules(breakdown))


def test_joules_by_unit_split():
    trace = OperationTrace([
        OperationRecord(Algorithm.RSA_PRIVATE, Phase.REGISTRATION, 1, 1),
        OperationRecord(Algorithm.SHA1, Phase.CONSUMPTION, 1, 1000),
    ])
    from repro.core.architecture import SW_HW_PROFILE
    breakdown = PerformanceModel().evaluate(trace, SW_HW_PROFILE)
    split = WeightedEnergyModel().joules_by_unit(breakdown)
    assert set(split) == {Implementation.SOFTWARE,
                          Implementation.HARDWARE}
    assert split[Implementation.SOFTWARE] > split[Implementation.HARDWARE]


def test_default_powers_are_ordered():
    assert DEFAULT_MACRO_POWER_WATTS < DEFAULT_CPU_POWER_WATTS


def test_custom_unit_powers():
    trace = OperationTrace([
        OperationRecord(Algorithm.SHA1, Phase.CONSUMPTION, 1, 2000),
    ])
    breakdown = PerformanceModel().evaluate(trace, HW_PROFILE)
    model = WeightedEnergyModel(unit_power_watts={
        Implementation.SOFTWARE: 1.0, Implementation.HARDWARE: 2.0,
    })
    expected = breakdown.total_seconds * 2.0
    assert model.joules(breakdown) == pytest.approx(expected)
