"""The metering provider: every primitive records the right work."""

import pytest

from repro.core.costs import CostOptions
from repro.core.meter import MeteredCrypto, PlainCrypto, units_128
from repro.core.trace import Algorithm, Phase
from repro.crypto.rng import HmacDrbg
from repro.crypto.rsa import generate_keypair


@pytest.fixture()
def meter():
    return MeteredCrypto(HmacDrbg(b"meter-tests"))


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(1024, HmacDrbg(b"meter-keys"))


def only_record(meter):
    assert len(meter.trace) == 1
    return meter.trace.records[0]


def test_units_128():
    assert units_128(0) == 0
    assert units_128(1) == 1
    assert units_128(16) == 1
    assert units_128(17) == 2
    assert units_128(30720) == 1920
    with pytest.raises(ValueError):
        units_128(-1)


def test_sha1_metering(meter):
    meter.sha1(b"x" * 100, label="t")
    rec = only_record(meter)
    assert rec.algorithm is Algorithm.SHA1
    assert rec.invocations == 1
    assert rec.blocks == 7  # ceil(100/16)
    assert rec.label == "t"


def test_hmac_metering(meter):
    meter.hmac_sha1(b"k", b"x" * 32)
    rec = only_record(meter)
    assert rec.algorithm is Algorithm.HMAC_SHA1
    assert (rec.invocations, rec.blocks) == (1, 2)


def test_hmac_verify_metering(meter):
    tag = PlainCrypto().hmac_sha1(b"k", b"data")
    assert meter.hmac_verify(b"k", b"data", tag)
    assert only_record(meter).algorithm is Algorithm.HMAC_SHA1


def test_cbc_encrypt_metering_counts_padded_blocks(meter):
    meter.aes_cbc_encrypt(b"k" * 16, b"i" * 16, b"x" * 16)
    rec = only_record(meter)
    assert rec.algorithm is Algorithm.AES_ENCRYPT
    assert (rec.invocations, rec.blocks) == (1, 2)  # 16B -> 32B padded


def test_cbc_decrypt_metering(meter):
    ct = PlainCrypto().aes_cbc_encrypt(b"k" * 16, b"i" * 16, b"x" * 100)
    meter.aes_cbc_decrypt(b"k" * 16, b"i" * 16, ct)
    rec = only_record(meter)
    assert rec.algorithm is Algorithm.AES_DECRYPT
    assert (rec.invocations, rec.blocks) == (1, len(ct) // 16)


def test_wrap_metering_is_6n(meter):
    meter.aes_wrap(b"k" * 16, b"d" * 32)  # n = 4 registers
    rec = only_record(meter)
    assert rec.algorithm is Algorithm.AES_ENCRYPT
    assert (rec.invocations, rec.blocks) == (24, 24)


def test_unwrap_metering_is_6n(meter):
    wrapped = PlainCrypto().aes_wrap(b"k" * 16, b"d" * 16)  # n = 2
    meter.aes_unwrap(b"k" * 16, wrapped)
    rec = only_record(meter)
    assert rec.algorithm is Algorithm.AES_DECRYPT
    assert (rec.invocations, rec.blocks) == (12, 12)


def test_pss_sign_metering_paper_approximation(meter, keypair):
    meter.pss_sign(keypair, b"m" * 1600)
    records = meter.trace.records
    assert [r.algorithm for r in records] \
        == [Algorithm.SHA1, Algorithm.RSA_PRIVATE]
    assert records[0].blocks == 100  # the message hash
    assert records[1].blocks == 1


def test_pss_verify_metering(meter, keypair):
    signature = PlainCrypto(HmacDrbg(b"s")).pss_sign(keypair, b"m")
    meter.pss_verify(keypair.public_key, b"m", signature)
    algorithms = [r.algorithm for r in meter.trace.records]
    assert algorithms == [Algorithm.SHA1, Algorithm.RSA_PUBLIC]


def test_pss_mgf1_option_adds_fixed_hashes(keypair):
    meter = MeteredCrypto(HmacDrbg(b"m"),
                          options=CostOptions(count_mgf1=True))
    meter.pss_sign(keypair, b"m")
    algorithms = [r.algorithm for r in meter.trace.records]
    # message hash, M' hash, MGF1 hashes, RSA private.
    assert algorithms == [Algorithm.SHA1, Algorithm.SHA1, Algorithm.SHA1,
                          Algorithm.RSA_PRIVATE]
    mgf1 = meter.trace.records[2]
    assert mgf1.invocations == 6  # 107-octet mask over SHA-1


def test_kem_encrypt_metering(meter, keypair):
    meter.kem_encrypt(keypair.public_key, b"M" * 32)
    by_algorithm = meter.trace.totals_by_algorithm()
    assert by_algorithm[Algorithm.RSA_PUBLIC] == (1, 1)
    assert by_algorithm[Algorithm.AES_ENCRYPT] == (24, 24)
    # KDF2: one hash over Z(128) + counter(4) = 9 blocks.
    assert by_algorithm[Algorithm.SHA1] == (1, 9)


def test_kem_decrypt_metering(meter, keypair):
    ciphertext = PlainCrypto(HmacDrbg(b"e")).kem_encrypt(
        keypair.public_key, b"M" * 32)
    meter.kem_decrypt(keypair, ciphertext)
    by_algorithm = meter.trace.totals_by_algorithm()
    assert by_algorithm[Algorithm.RSA_PRIVATE] == (1, 1)
    assert by_algorithm[Algorithm.AES_DECRYPT] == (24, 24)


def test_phase_tagging(meter):
    meter.sha1(b"outside")
    with meter.in_phase(Phase.CONSUMPTION):
        meter.sha1(b"inside")
        with meter.in_phase(Phase.INSTALLATION):
            meter.sha1(b"nested")
        meter.sha1(b"back")
    phases = [r.phase for r in meter.trace.records]
    assert phases == [Phase.REGISTRATION, Phase.CONSUMPTION,
                      Phase.INSTALLATION, Phase.CONSUMPTION]


def test_phase_restored_on_exception(meter):
    with pytest.raises(RuntimeError):
        with meter.in_phase(Phase.CONSUMPTION):
            raise RuntimeError("boom")
    assert meter.phase is Phase.REGISTRATION


def test_reset_trace(meter):
    meter.sha1(b"one")
    first = meter.reset_trace()
    meter.sha1(b"two")
    assert len(first) == 1
    assert len(meter.trace) == 1


def test_random_bytes_not_metered(meter):
    meter.random_bytes(64)
    assert len(meter.trace) == 0


def test_plain_crypto_in_phase_is_noop():
    plain = PlainCrypto()
    with plain.in_phase(Phase.CONSUMPTION) as inner:
        assert inner is plain


def test_metered_results_match_plain(keypair):
    """Metering must never change functional results."""
    plain = PlainCrypto(HmacDrbg(b"same"))
    metered = MeteredCrypto(HmacDrbg(b"same"))
    assert plain.sha1(b"x") == metered.sha1(b"x")
    assert plain.hmac_sha1(b"k", b"x") == metered.hmac_sha1(b"k", b"x")
    assert plain.aes_cbc_encrypt(b"k" * 16, b"i" * 16, b"pt") \
        == metered.aes_cbc_encrypt(b"k" * 16, b"i" * 16, b"pt")
    assert plain.aes_wrap(b"k" * 16, b"d" * 16) \
        == metered.aes_wrap(b"k" * 16, b"d" * 16)
    assert plain.pss_sign(keypair, b"m") == metered.pss_sign(keypair,
                                                             b"m")
