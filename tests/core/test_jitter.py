"""The shared jitter/seed helper: one derivation, bit-exact forever.

Two subsystems used to carry private copies of the same idiom — the
session layer's SHA-1 backoff jitter and the kernel's per-entity
stream seeds. :mod:`repro.core.jitter` is now the single definition,
and these tests pin it byte-for-byte to both historical formats: any
drift would silently re-time every seeded artifact in the repo.
"""

from random import Random

import pytest

from repro.core.jitter import derive, deterministic_jitter, stream_seed
from repro.crypto.sha1 import sha1
from repro.drm.session import RetryPolicy
from repro.sim.kernel import Kernel


def test_derive_is_the_slash_join_idiom():
    assert derive("seed", "name") == "seed/name"
    assert derive("salt", 3) == "salt/3"
    # Deliberately not injective across part boundaries: historical
    # formats pre-compose their salts.
    assert derive("a/b") == derive("a", "b")


def test_stream_seed_matches_the_kernel_derivation():
    kernel = Kernel(seed="prop")
    draws = [kernel.stream("dev-1").random() for _ in range(3)]
    # The historical formula: Random("%s/%s" % (seed, name)).
    reference = Random(stream_seed("prop", "dev-1"))
    assert stream_seed("prop", "dev-1") == "prop/dev-1"
    assert draws == [reference.random() for _ in range(3)]


def test_jitter_is_the_first_sha1_octet_mod_spread():
    for attempt in (1, 2, 7):
        expected = sha1(("dev-a/%d" % attempt).encode("utf-8"))[0] % 4
        assert deterministic_jitter("dev-a", attempt, 3) == expected


def test_jitter_bounds_and_validation():
    values = {deterministic_jitter("salt", n, 5) for n in range(1, 50)}
    assert values <= set(range(6))
    assert len(values) > 1  # it does actually spread
    assert deterministic_jitter("salt", 1, 0) == 0
    with pytest.raises(ValueError):
        deterministic_jitter("salt", 1, -1)


def test_retry_policy_backoff_decomposes_over_the_helper():
    policy = RetryPolicy(base_backoff_seconds=2,
                         backoff_multiplier=2.0,
                         max_backoff_seconds=64, jitter_seconds=3)
    for attempt in range(1, 8):
        base = min(int(2 * 2.0 ** (attempt - 1)), 64)
        assert policy.backoff_seconds(attempt, salt="dev-a") \
            == base + deterministic_jitter("dev-a", attempt, 3)
