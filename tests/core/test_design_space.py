"""Design-space enumeration and Pareto extraction."""

import pytest

from repro.core.design_space import (DesignPoint, MACRO_AES, MACRO_BLOCKS,
                                     MACRO_RSA, MACRO_SHA1, MacroCosts,
                                     cheapest_within_budget,
                                     enumerate_design_points,
                                     marginal_value, pareto_frontier,
                                     profile_for_macros)
from repro.core.costs import Implementation
from repro.core.trace import (Algorithm, OperationRecord, OperationTrace,
                              Phase)


@pytest.fixture()
def trace():
    """A workload with meaningful RSA and bulk components."""
    return OperationTrace([
        OperationRecord(Algorithm.RSA_PRIVATE, Phase.REGISTRATION, 3, 3),
        OperationRecord(Algorithm.RSA_PUBLIC, Phase.REGISTRATION, 4, 4),
        OperationRecord(Algorithm.AES_DECRYPT, Phase.CONSUMPTION, 5,
                        100_000),
        OperationRecord(Algorithm.SHA1, Phase.CONSUMPTION, 5, 100_000),
    ])


def test_macro_blocks_cover_all_algorithms():
    covered = {a for algorithms in MACRO_BLOCKS.values()
               for a in algorithms}
    assert covered == set(Algorithm)


def test_profile_for_macros():
    profile = profile_for_macros([MACRO_AES])
    assert profile.implementation(Algorithm.AES_DECRYPT) \
        == Implementation.HARDWARE
    assert profile.implementation(Algorithm.RSA_PRIVATE) \
        == Implementation.SOFTWARE
    assert profile.name == "AES"
    assert profile_for_macros([]).name == "SW-only"


def test_enumerate_produces_all_subsets(trace):
    points = enumerate_design_points(trace)
    assert len(points) == 8
    names = {p.name for p in points}
    assert "SW-only" in names
    assert "AES+RSA+SHA1" in names


def test_gate_costs(trace):
    costs = MacroCosts(aes_kgates=10, sha1_kgates=5, rsa_kgates=50)
    points = enumerate_design_points(trace, costs=costs)
    by_name = {p.name: p for p in points}
    assert by_name["SW-only"].kgates == 0
    assert by_name["AES"].kgates == 10
    assert by_name["AES+RSA+SHA1"].kgates == 65


def test_full_hardware_is_fastest(trace):
    points = enumerate_design_points(trace)
    fastest = min(points, key=lambda p: p.time_ms)
    assert fastest.name == "AES+RSA+SHA1"
    slowest = max(points, key=lambda p: p.time_ms)
    assert slowest.name == "SW-only"


def test_pareto_frontier_properties(trace):
    points = enumerate_design_points(trace)
    frontier = pareto_frontier(points)
    # Monotone: gates strictly increase, time strictly decreases.
    for earlier, later in zip(frontier, frontier[1:]):
        assert later.kgates > earlier.kgates
        assert later.time_ms < earlier.time_ms
    # Endpoints: SW-only is always Pareto (0 gates); full HW is fastest.
    assert frontier[0].name == "SW-only"
    assert frontier[-1].time_ms == min(p.time_ms for p in points)
    # Every non-frontier point is dominated.
    for point in points:
        if point in frontier:
            continue
        assert any(f.kgates <= point.kgates
                   and f.time_ms <= point.time_ms for f in frontier)


def test_pareto_energy_objective(trace):
    points = enumerate_design_points(trace)
    frontier = pareto_frontier(points, objective="energy")
    for earlier, later in zip(frontier, frontier[1:]):
        assert later.energy_mj < earlier.energy_mj
    with pytest.raises(ValueError):
        pareto_frontier(points, objective="gates")


def test_cheapest_within_budget(trace):
    points = enumerate_design_points(trace)
    by_name = {p.name: p for p in points}
    generous = cheapest_within_budget(
        points, budget_ms=by_name["SW-only"].time_ms + 1)
    assert generous.name == "SW-only"
    none = cheapest_within_budget(points, budget_ms=0.0)
    assert none is None
    tight = cheapest_within_budget(
        points, budget_ms=by_name["AES+RSA+SHA1"].time_ms * 1.01)
    assert tight is not None


def test_marginal_value_shape(trace):
    values = marginal_value(enumerate_design_points(trace))
    assert set(values) == {MACRO_AES, MACRO_SHA1, MACRO_RSA}
    for stats in values.values():
        assert stats["speedup"] > 1.0
        assert stats["saved_ms"] > 0.0
        assert stats["saved_ms_per_kgate"] > 0.0


def test_marginal_value_matches_workload_shape(trace):
    """The fixture workload (121.9M RSA vs 83M AES cycles) values the
    RSA macro most; a truly bulk-heavy one flips to AES."""
    values = marginal_value(enumerate_design_points(trace))
    assert values[MACRO_RSA]["saved_ms"] > values[MACRO_AES]["saved_ms"]

    bulk_heavy = OperationTrace([
        OperationRecord(Algorithm.RSA_PRIVATE, Phase.REGISTRATION, 3, 3),
        OperationRecord(Algorithm.AES_DECRYPT, Phase.CONSUMPTION, 5,
                        1_000_000),
    ])
    bulk_values = marginal_value(enumerate_design_points(bulk_heavy))
    assert bulk_values[MACRO_AES]["saved_ms"] \
        > bulk_values[MACRO_RSA]["saved_ms"]


def test_design_point_name():
    point = DesignPoint(macros=(), kgates=0, time_ms=1, energy_mj=1)
    assert point.name == "SW-only"
