"""Architecture profiles: the paper's three variants and custom ones."""

import pytest

from repro.core.architecture import (ArchitectureProfile, DEFAULT_CLOCK_HZ,
                                     HW_PROFILE, PAPER_PROFILES,
                                     SW_HW_PROFILE, SW_PROFILE,
                                     custom_profile)
from repro.core.costs import Implementation
from repro.core.trace import Algorithm


def test_paper_profiles_order_and_names():
    assert [p.name for p in PAPER_PROFILES] == ["SW", "SW/HW", "HW"]


def test_sw_profile_all_software():
    assert all(SW_PROFILE.implementation(a) == Implementation.SOFTWARE
               for a in Algorithm)
    assert SW_PROFILE.hardware_algorithms() == {}


def test_hw_profile_all_hardware():
    assert all(HW_PROFILE.implementation(a) == Implementation.HARDWARE
               for a in Algorithm)


def test_sw_hw_profile_partitioning():
    """AES and SHA-1 (and HMAC) in hardware; RSA in software (paper §3)."""
    hw = {Algorithm.AES_ENCRYPT, Algorithm.AES_DECRYPT, Algorithm.SHA1,
          Algorithm.HMAC_SHA1}
    for algorithm in Algorithm:
        expected = (Implementation.HARDWARE if algorithm in hw
                    else Implementation.SOFTWARE)
        assert SW_HW_PROFILE.implementation(algorithm) == expected


def test_default_clock_is_200mhz():
    assert DEFAULT_CLOCK_HZ == 200_000_000
    for profile in PAPER_PROFILES:
        assert profile.clock_hz == DEFAULT_CLOCK_HZ


def test_cycles_to_ms():
    assert SW_PROFILE.cycles_to_ms(200_000_000) == 1000.0
    assert SW_PROFILE.cycles_to_ms(200_000) == 1.0


def test_profile_requires_full_assignment():
    with pytest.raises(ValueError):
        ArchitectureProfile(
            name="partial",
            assignment={Algorithm.SHA1: Implementation.HARDWARE},
        )


def test_profile_rejects_invalid_implementation():
    assignment = {a: Implementation.SOFTWARE for a in Algorithm}
    assignment[Algorithm.SHA1] = "quantum"
    with pytest.raises(ValueError):
        ArchitectureProfile(name="bad", assignment=assignment)


def test_profile_rejects_bad_clock():
    assignment = {a: Implementation.SOFTWARE for a in Algorithm}
    with pytest.raises(ValueError):
        ArchitectureProfile(name="x", assignment=assignment, clock_hz=0)


def test_custom_profile_defaults_to_software():
    profile = custom_profile("aes-only",
                             {Algorithm.AES_DECRYPT: True})
    assert profile.implementation(Algorithm.AES_DECRYPT) \
        == Implementation.HARDWARE
    assert profile.implementation(Algorithm.SHA1) \
        == Implementation.SOFTWARE
    assert set(profile.hardware_algorithms()) == {Algorithm.AES_DECRYPT}


def test_custom_profile_clock_override():
    profile = custom_profile("slow", {}, clock_hz=100_000_000)
    assert profile.cycles_to_ms(100_000_000) == 1000.0
