"""Hypothesis property tests on the core data structures.

Invariants the whole pricing pipeline rests on: trace aggregation
preserves totals, canonical form is batching-invariant, pricing is
additive and scale-linear, and the workload scaler is homogeneous in
the access count.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.architecture import (HW_PROFILE, SW_HW_PROFILE,
                                     SW_PROFILE)
from repro.core.model import PerformanceModel
from repro.core.trace import (Algorithm, OperationRecord, OperationTrace,
                              Phase)

records = st.builds(
    OperationRecord,
    algorithm=st.sampled_from(list(Algorithm)),
    phase=st.sampled_from(list(Phase)),
    invocations=st.integers(min_value=0, max_value=10_000),
    blocks=st.integers(min_value=0, max_value=1_000_000),
    label=st.sampled_from(["a", "b", "dcf-hash", "content-decrypt"]),
)
traces = st.lists(records, min_size=0, max_size=30).map(OperationTrace)

MODEL = PerformanceModel()
PROFILES = (SW_PROFILE, SW_HW_PROFILE, HW_PROFILE)


@given(trace=traces)
@settings(max_examples=200, deadline=None)
def test_aggregation_preserves_totals(trace):
    aggregated = trace.aggregated()
    assert aggregated.totals_by_algorithm() == trace.totals_by_algorithm()
    assert aggregated.totals_by_phase() == trace.totals_by_phase()
    assert aggregated.canonical() == trace.canonical()


@given(trace=traces)
@settings(max_examples=200, deadline=None)
def test_aggregation_never_grows(trace):
    assert len(trace.aggregated()) <= len(trace)


@given(trace=traces)
@settings(max_examples=100, deadline=None)
def test_pricing_invariant_under_aggregation(trace):
    """Batching must never change the bill."""
    for profile in PROFILES:
        assert MODEL.evaluate(trace, profile).total_cycles \
            == MODEL.evaluate(trace.aggregated(), profile).total_cycles


@given(a=traces, b=traces)
@settings(max_examples=100, deadline=None)
def test_pricing_is_additive(a, b):
    for profile in PROFILES:
        combined = MODEL.evaluate(a + b, profile).total_cycles
        separate = (MODEL.evaluate(a, profile).total_cycles
                    + MODEL.evaluate(b, profile).total_cycles)
        assert combined == separate


@given(record=records, factor=st.integers(min_value=0, max_value=50))
@settings(max_examples=200, deadline=None)
def test_record_scaling_is_linear(record, factor):
    scaled = record.scaled(factor)
    for profile in PROFILES:
        single = MODEL.evaluate(OperationTrace([record]),
                                profile).total_cycles
        multiple = MODEL.evaluate(OperationTrace([scaled]),
                                  profile).total_cycles
        assert multiple == factor * single


@given(trace=traces)
@settings(max_examples=100, deadline=None)
def test_hardware_never_slower(trace):
    """With Table 1 costs, full hardware is never slower than any other
    assignment, and full software never faster."""
    sw = MODEL.evaluate(trace, SW_PROFILE).total_cycles
    mixed = MODEL.evaluate(trace, SW_HW_PROFILE).total_cycles
    hw = MODEL.evaluate(trace, HW_PROFILE).total_cycles
    assert hw <= mixed <= sw


@given(trace=traces)
@settings(max_examples=100, deadline=None)
def test_phase_totals_partition_the_bill(trace):
    for profile in PROFILES:
        breakdown = MODEL.evaluate(trace, profile)
        assert sum(breakdown.cycles_by_phase().values()) \
            == breakdown.total_cycles
        assert sum(breakdown.cycles_by_algorithm().values()) \
            == breakdown.total_cycles


@given(accesses=st.integers(min_value=1, max_value=40),
       blocks=st.integers(min_value=1, max_value=100_000))
@settings(max_examples=100, deadline=None)
def test_scale_trace_homogeneous_in_accesses(accesses, blocks):
    """Scaling consumption by N multiplies exactly the consumption
    phase's cycles by N."""
    from repro.usecases.workload import scale_trace
    base = OperationTrace([
        OperationRecord(Algorithm.RSA_PRIVATE, Phase.REGISTRATION, 1, 1),
        OperationRecord(Algorithm.AES_DECRYPT, Phase.CONSUMPTION, 1,
                        blocks, "content-decrypt"),
        OperationRecord(Algorithm.SHA1, Phase.CONSUMPTION, 1, blocks,
                        "dcf-hash"),
    ])
    scaled = scale_trace(base, target_dcf_octets=blocks * 16,
                         target_payload_octets=blocks * 16,
                         accesses=accesses)
    base_consumption = base.filter(
        phase=Phase.CONSUMPTION).totals_by_algorithm()
    scaled_consumption = scaled.filter(
        phase=Phase.CONSUMPTION).totals_by_algorithm()
    for algorithm, (inv, blk) in base_consumption.items():
        assert scaled_consumption[algorithm] \
            == (inv * accesses, blk * accesses)
    # Non-consumption phases pass through untouched.
    assert scaled.filter(phase=Phase.REGISTRATION).canonical() \
        == base.filter(phase=Phase.REGISTRATION).canonical()
