"""Streaming stats: exactness, percentiles, and the merge laws."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import StreamingStats, histogram, merge_all

observations = st.lists(st.integers(min_value=0, max_value=10_000),
                        max_size=200)


def folded(values):
    stats = StreamingStats()
    stats.extend(values)
    return stats


def test_empty_stats():
    stats = StreamingStats()
    assert stats.count == 0
    assert stats.total == 0
    assert stats.mean == 0.0
    assert stats.minimum is None and stats.maximum is None
    assert stats.percentile(50.0) is None
    summary = stats.summary()
    assert summary.count == 0 and summary.p99 is None


def test_basic_statistics():
    stats = folded([1, 2, 2, 3, 100])
    assert stats.count == 5
    assert stats.total == 108
    assert stats.mean == pytest.approx(21.6)
    assert stats.minimum == 1
    assert stats.maximum == 100
    assert stats.percentile(50.0) == 2
    assert stats.percentile(100.0) == 100


def test_weighted_add():
    stats = StreamingStats()
    stats.add(7, weight=1000)
    stats.add(9, weight=0)  # no-op
    assert stats.count == 1000
    assert stats.total == 7000
    assert stats.maximum == 7


def test_rejects_non_integer_observations():
    stats = StreamingStats()
    with pytest.raises(TypeError):
        stats.add(1.5)
    with pytest.raises(TypeError):
        stats.add(True)
    with pytest.raises(ValueError):
        stats.add(1, weight=-1)


def test_percentile_bounds():
    stats = folded([1, 2, 3])
    with pytest.raises(ValueError):
        stats.percentile(0.0)
    with pytest.raises(ValueError):
        stats.percentile(101.0)


def test_percentile_nearest_rank():
    # 100 observations 1..100: nearest-rank p95 is the 95th value.
    stats = folded(list(range(1, 101)))
    assert stats.percentile(50.0) == 50
    assert stats.percentile(95.0) == 95
    assert stats.percentile(99.0) == 99
    assert stats.percentile(1.0) == 1


def test_percentile_single_sample():
    # Any percentile of one observation is that observation: the rank
    # is ceil(p/100 * 1) == 1 for every p in (0, 100].
    stats = folded([42])
    for p in (0.1, 1.0, 50.0, 99.9, 100.0):
        assert stats.percentile(p) == 42


def test_percentile_all_equal():
    stats = folded([7] * 1000)
    for p in (0.1, 50.0, 99.9, 100.0):
        assert stats.percentile(p) == 7


def test_percentile_fractional_p_does_not_truncate():
    # ceil(50.25/100 * 2) == ceil(1.005) == 2 — the second value. The
    # historical int(p * count) // 100 spelling truncated 100.5 -> 100
    # before the ceiling, yielding rank 1.
    stats = folded([1, 2])
    assert stats.percentile(50.25) == 2
    # ceil(0.5/100 * 2) == 1 — fractional p below one rank stays at 1.
    assert stats.percentile(0.5) == 1


def test_percentile_float_epsilon_does_not_round_up():
    # 64.1 is not exactly representable: 64.1/100 * 1000 floats to an
    # epsilon above 641, so a float ceil would return the 642nd value.
    # The exact rank is ceil(641.0) == 641.
    stats = folded(list(range(1, 1001)))
    assert stats.percentile(64.1) == 641
    assert stats.percentile(29.7) == 297


def test_percentile_nearest_rank_matches_sorted_reference():
    values = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5]
    stats = folded(values)
    ordered = sorted(values)
    for p in (10.0, 25.0, 33.3, 50.0, 66.6, 75.0, 90.0, 100.0):
        exact = Fraction(repr(p)) * len(values) / 100
        rank = max(1, math.ceil(exact))
        assert stats.percentile(p) == ordered[rank - 1]


def test_summary_scaled_is_linear():
    stats = folded([10, 20, 30, 40])
    summary = stats.summary()
    mean, p50, p95, p99 = summary.scaled(0.5)
    assert mean == pytest.approx(summary.mean * 0.5)
    assert p50 == summary.p50 * 0.5
    assert p99 == summary.p99 * 0.5


def test_histogram_bins_cover_everything():
    stats = folded([0, 5, 5, 9, 100])
    bins = histogram(stats, bins=4)
    assert sum(bins.values()) == stats.count
    assert histogram(StreamingStats()) == {}
    assert histogram(folded([3, 3])) == {(3, 3): 2}


@given(values=observations)
@settings(max_examples=200, deadline=None)
def test_merge_equals_single_pass(values):
    """Splitting anywhere and merging matches one pass over the union."""
    for split in (0, len(values) // 2, len(values)):
        left, right = values[:split], values[split:]
        merged = folded(left).merge(folded(right))
        assert merged == folded(values)
        assert merged.summary() == folded(values).summary()


@given(a=observations, b=observations)
@settings(max_examples=200, deadline=None)
def test_merge_commutative(a, b):
    assert folded(a).merge(folded(b)) == folded(b).merge(folded(a))


@given(a=observations, b=observations, c=observations)
@settings(max_examples=200, deadline=None)
def test_merge_associative(a, b, c):
    sa, sb, sc = folded(a), folded(b), folded(c)
    assert sa.merge(sb).merge(sc) == sa.merge(sb.merge(sc))


@given(a=observations)
@settings(max_examples=100, deadline=None)
def test_merge_identity(a):
    stats = folded(a)
    assert stats.merge(StreamingStats()) == stats
    assert StreamingStats().merge(stats) == stats


@given(chunks=st.lists(observations, max_size=6))
@settings(max_examples=100, deadline=None)
def test_merge_all_matches_flat_fold(chunks):
    flat = [value for chunk in chunks for value in chunk]
    assert merge_all(folded(chunk) for chunk in chunks) == folded(flat)


@given(values=st.lists(st.integers(min_value=0, max_value=10_000),
                       min_size=1, max_size=200),
       p=st.floats(min_value=0.01, max_value=100.0))
@settings(max_examples=200, deadline=None)
def test_percentile_matches_sorted_reference(values, p):
    """Nearest-rank percentile agrees with the sorted-list definition.

    The reference rank is ceil(p/100 * N) computed in exact rational
    arithmetic over the decimal the caller wrote (``repr(p)``), the
    same definition ``percentile`` implements — float spellings of the
    ceiling disagree with it on fractional percentiles.
    """
    stats = folded(values)
    ordered = sorted(values)
    rank = max(1, math.ceil(Fraction(repr(p)) * len(values) / 100))
    assert stats.percentile(p) == ordered[rank - 1]
