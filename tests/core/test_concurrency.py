"""CPU-offload concurrency model."""

import pytest

from repro.core.architecture import (HW_PROFILE, SW_HW_PROFILE,
                                     SW_PROFILE)
from repro.core.concurrency import analyze
from repro.core.model import PerformanceModel
from repro.core.trace import (Algorithm, OperationRecord, OperationTrace,
                              Phase)


@pytest.fixture()
def trace():
    return OperationTrace([
        OperationRecord(Algorithm.RSA_PRIVATE, Phase.REGISTRATION, 1, 1),
        OperationRecord(Algorithm.AES_DECRYPT, Phase.CONSUMPTION, 2,
                        50_000),
    ])


def test_pure_software_has_no_macro_time(trace):
    breakdown = PerformanceModel().evaluate(trace, SW_PROFILE)
    result = analyze(breakdown)
    assert result.macro_cycles == 0
    assert result.dispatch_cycles == 0
    assert result.cpu_cycles == breakdown.total_cycles
    assert result.cpu_freed_fraction == 0.0
    assert result.wall_clock_cycles == breakdown.total_cycles


def test_pure_hardware_frees_the_cpu(trace):
    breakdown = PerformanceModel().evaluate(trace, HW_PROFILE)
    result = analyze(breakdown)
    assert result.cpu_cycles == 0
    assert result.macro_cycles == breakdown.total_cycles
    # Dispatch: 200 cycles x 3 invocations.
    assert result.dispatch_cycles == 200 * 3
    assert result.cpu_freed_fraction > 0.99


def test_mixed_profile_split(trace):
    breakdown = PerformanceModel().evaluate(trace, SW_HW_PROFILE)
    result = analyze(breakdown)
    by_algorithm = breakdown.cycles_by_algorithm()
    assert result.cpu_cycles == by_algorithm[Algorithm.RSA_PRIVATE]
    assert result.macro_cycles == by_algorithm[Algorithm.AES_DECRYPT]


def test_overlap_bounds(trace):
    breakdown = PerformanceModel().evaluate(trace, SW_HW_PROFILE)
    blocking = analyze(breakdown, overlap=0.0)
    perfect = analyze(breakdown, overlap=1.0)
    half = analyze(breakdown, overlap=0.5)
    assert blocking.wall_clock_cycles == blocking.serial_cycles
    assert perfect.wall_clock_cycles \
        == max(perfect.cpu_busy_cycles, perfect.macro_cycles)
    assert perfect.wall_clock_cycles < half.wall_clock_cycles \
        < blocking.wall_clock_cycles


def test_invalid_parameters(trace):
    breakdown = PerformanceModel().evaluate(trace, SW_PROFILE)
    with pytest.raises(ValueError):
        analyze(breakdown, overlap=1.5)
    with pytest.raises(ValueError):
        analyze(breakdown, dispatch_cycles_per_op=-1)


def test_wall_clock_ms(trace):
    breakdown = PerformanceModel().evaluate(trace, SW_PROFILE)
    result = analyze(breakdown)
    assert result.wall_clock_ms \
        == pytest.approx(breakdown.total_ms)
    assert result.cpu_busy_ms == pytest.approx(breakdown.total_ms)


def test_empty_breakdown():
    breakdown = PerformanceModel().evaluate(OperationTrace(), SW_PROFILE)
    result = analyze(breakdown)
    assert result.wall_clock_cycles == 0
    assert result.cpu_freed_fraction == 0.0
