"""Power-on known-answer self-tests."""

from repro.crypto import selftest


def test_all_self_tests_pass():
    report = selftest.run_self_tests()
    assert report.passed
    assert report.failures == []
    assert len(report.results) == len(selftest.SELF_TESTS)


def test_report_names_failures(monkeypatch):
    monkeypatch.setitem(selftest.SELF_TESTS, "sha1", lambda: False)
    report = selftest.run_self_tests()
    assert not report.passed
    assert report.failures == ["sha1"]


def test_exceptions_count_as_failures(monkeypatch):
    def boom():
        raise RuntimeError("corrupted table")
    monkeypatch.setitem(selftest.SELF_TESTS, "aes-encrypt", boom)
    report = selftest.run_self_tests()
    assert "aes-encrypt" in report.failures


def test_self_tests_are_fast():
    import time
    start = time.perf_counter()
    selftest.run_self_tests()
    assert time.perf_counter() - start < 0.5
