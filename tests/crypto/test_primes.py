"""Primality testing and prime generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.primes import generate_prime, is_probable_prime
from repro.crypto.rng import HmacDrbg

SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 97, 101, 997]
SMALL_COMPOSITES = [0, 1, 4, 6, 8, 9, 15, 21, 25, 27, 33, 91, 100, 999]

# Carmichael numbers fool Fermat tests; Miller-Rabin must reject them.
CARMICHAEL = [561, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 62745]

# Known large primes (2^89-1 and 2^107-1 are Mersenne primes).
LARGE_PRIMES = [
    (1 << 89) - 1,
    (1 << 107) - 1,
    2 ** 255 - 19,  # the Curve25519 prime
]


@pytest.mark.parametrize("n", SMALL_PRIMES)
def test_small_primes(n):
    assert is_probable_prime(n)


@pytest.mark.parametrize("n", SMALL_COMPOSITES)
def test_small_composites(n):
    assert not is_probable_prime(n)


@pytest.mark.parametrize("n", CARMICHAEL)
def test_carmichael_numbers_rejected(n):
    assert not is_probable_prime(n)


@pytest.mark.parametrize("n", LARGE_PRIMES)
def test_large_primes(n):
    assert is_probable_prime(n, HmacDrbg(b"witnesses"))


def test_large_composite_rejected():
    composite = ((1 << 89) - 1) * ((1 << 107) - 1)
    assert not is_probable_prime(composite, HmacDrbg(b"witnesses"))


def test_negative_rejected():
    assert not is_probable_prime(-7)


@pytest.mark.parametrize("bits", [16, 64, 256, 512])
def test_generate_prime_bit_length(bits):
    rng = HmacDrbg(b"prime-gen")
    p = generate_prime(bits, rng)
    assert p.bit_length() == bits
    assert p % 2 == 1
    assert is_probable_prime(p, rng)


def test_generate_prime_deterministic():
    assert generate_prime(128, HmacDrbg(b"x")) \
        == generate_prime(128, HmacDrbg(b"x"))


def test_generate_prime_rejects_tiny():
    with pytest.raises(ValueError):
        generate_prime(4, HmacDrbg(b"x"))


@given(st.integers(min_value=2, max_value=10_000))
@settings(max_examples=200, deadline=None)
def test_agrees_with_trial_division(n):
    def trial(n):
        if n < 2:
            return False
        d = 2
        while d * d <= n:
            if n % d == 0:
                return False
            d += 1
        return True

    assert is_probable_prime(n) == trial(n)
