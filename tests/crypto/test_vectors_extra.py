"""Additional published test vectors across the substrate.

Beyond each module's own KATs: NIST CAVP-style SHA-1 short messages,
the remaining SP 800-38A CBC vectors (192/256-bit keys), and SP 800-38A
ECB single blocks exercised through the raw block interface.
"""

import pytest

from repro.crypto.aes import AES
from repro.crypto.modes import cbc_encrypt_raw
from repro.crypto.sha1 import sha1

# NIST CAVP SHA1ShortMsg.rsp selections (length in octets, msg, digest).
SHA1_SHORT_VECTORS = [
    ("36", "c1dfd96eea8cc2b62785275bca38ac261256e278"),
    ("195a", "0a1c2d555bbe431ad6288af5a54f93e0449c9232"),
    ("df4bd2", "bf36ed5d74727dfd5d7854ec6b1d49468d8ee8aa"),
    ("549e959e", "b78bae6d14338ffccfd5d5b5674a275f6ef9c717"),
    ("f7fb1be205", "60b7d5bb560a1acf6fa45721bd0abb419a841a89"),
    ("c0e5abeaea63", "a6d338459780c08363090fd8fc7d28dc80e8e01f"),
    ("63bfc1ed7f78ab", "860328d80509500c1783169ebf0ba0c4b94da5e5"),
    ("7e3d7b3eada98866", "24a2c34b976305277ce58c2f42d5092031572520"),
    ("9e61e55d9ed37b1c20", "411ccee1f6e3677df12698411eb09d3ff580af97"),
    ("9777cf90dd7c7e863506", "05c915b5ed4e4c4afffc202961f3174371e90b5c"),
]

# SP 800-38A F.2.3 / F.2.5: CBC with 192- and 256-bit keys.
CBC_192_KEY = "8e73b0f7da0e6452c810f32b809079e562f8ead2522c6b7b"
CBC_256_KEY = ("603deb1015ca71be2b73aef0857d7781"
               "1f352c073b6108d72d9810a30914dff4")
CBC_IV = "000102030405060708090a0b0c0d0e0f"
CBC_PLAIN = ("6bc1bee22e409f96e93d7e117393172a"
             "ae2d8a571e03ac9c9eb76fac45af8e51")
CBC_192_CIPHER = ("4f021db243bc633d7178183a9fa071e8"
                  "b4d9ada9ad7dedf4e5e738763f69145a")
CBC_256_CIPHER = ("f58c4c04d6e5f1ba779eabfb5f7bfbd6"
                  "9cfc4e967edb808d679f777bc6702c7d")

# SP 800-38A ECB single-block vectors (first block of F.1.1/F.1.3/F.1.5).
ECB_VECTORS = [
    ("2b7e151628aed2a6abf7158809cf4f3c",
     "6bc1bee22e409f96e93d7e117393172a",
     "3ad77bb40d7a3660a89ecaf32466ef97"),
    ("8e73b0f7da0e6452c810f32b809079e562f8ead2522c6b7b",
     "6bc1bee22e409f96e93d7e117393172a",
     "bd334f1d6e45f25ff712a214571fa5cc"),
    ("603deb1015ca71be2b73aef0857d7781"
     "1f352c073b6108d72d9810a30914dff4",
     "6bc1bee22e409f96e93d7e117393172a",
     "f3eed1bdb5d2a03c064b5a7e3db181f8"),
]


@pytest.mark.parametrize("message_hex,digest_hex", SHA1_SHORT_VECTORS,
                         ids=["len%d" % (len(m) // 2)
                              for m, _ in SHA1_SHORT_VECTORS])
def test_sha1_cavp_short_messages(message_hex, digest_hex):
    assert sha1(bytes.fromhex(message_hex)).hex() == digest_hex


def test_cbc_192_vector():
    out = cbc_encrypt_raw(bytes.fromhex(CBC_192_KEY),
                          bytes.fromhex(CBC_IV),
                          bytes.fromhex(CBC_PLAIN))
    assert out.hex() == CBC_192_CIPHER


def test_cbc_256_vector():
    out = cbc_encrypt_raw(bytes.fromhex(CBC_256_KEY),
                          bytes.fromhex(CBC_IV),
                          bytes.fromhex(CBC_PLAIN))
    assert out.hex() == CBC_256_CIPHER


@pytest.mark.parametrize("key_hex,plain_hex,cipher_hex", ECB_VECTORS,
                         ids=["ecb128", "ecb192", "ecb256"])
def test_ecb_single_blocks(key_hex, plain_hex, cipher_hex):
    cipher = AES(bytes.fromhex(key_hex))
    assert cipher.encrypt_block(bytes.fromhex(plain_hex)).hex() \
        == cipher_hex
    assert cipher.decrypt_block(bytes.fromhex(cipher_hex)).hex() \
        == plain_hex


def test_sha1_iterated_contraction():
    """A Monte-Carlo-style chain: digest feeding the next message."""
    seed = bytes(20)
    digest = seed
    for _ in range(1000):
        digest = sha1(digest)
    # Value independently computed with hashlib.
    import hashlib
    expected = bytes(20)
    for _ in range(1000):
        expected = hashlib.sha1(expected).digest()
    assert digest == expected
