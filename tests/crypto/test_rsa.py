"""RSA key generation and the four PKCS#1 primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.errors import (DecryptionError, KeyGenerationError,
                                 MessageTooLongError)
from repro.crypto.rng import HmacDrbg
from repro.crypto.rsa import (DEFAULT_PUBLIC_EXPONENT, generate_keypair,
                              rsadp, rsaep, rsasp1, rsavp1)

KEY_BITS = 512  # primitive laws are modulus-size independent


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(KEY_BITS, HmacDrbg(b"rsa-tests"))


def test_modulus_size(keypair):
    assert keypair.modulus_bits == KEY_BITS
    assert keypair.modulus_octets == KEY_BITS // 8


def test_key_structure(keypair):
    assert keypair.n == keypair.p * keypair.q
    assert keypair.p != keypair.q
    assert keypair.p > keypair.q
    assert keypair.e == DEFAULT_PUBLIC_EXPONENT
    phi = (keypair.p - 1) * (keypair.q - 1)
    assert (keypair.e * keypair.d) % phi == 1
    assert keypair.d_p == keypair.d % (keypair.p - 1)
    assert keypair.d_q == keypair.d % (keypair.q - 1)
    assert (keypair.q_inv * keypair.q) % keypair.p == 1


def test_encrypt_decrypt_roundtrip(keypair):
    message = 0x1234567890ABCDEF
    assert rsadp(keypair, rsaep(keypair.public_key, message)) == message


def test_sign_verify_roundtrip(keypair):
    message = 0xCAFEBABE
    assert rsavp1(keypair.public_key, rsasp1(keypair, message)) == message


def test_crt_matches_plain_exponentiation(keypair):
    """The CRT shortcut must equal the textbook c^d mod n."""
    ciphertext = 0x1337 ** 3
    assert rsadp(keypair, ciphertext) \
        == pow(ciphertext, keypair.d, keypair.n)


def test_rsaep_rejects_out_of_range(keypair):
    with pytest.raises(MessageTooLongError):
        rsaep(keypair.public_key, keypair.n)
    with pytest.raises(MessageTooLongError):
        rsaep(keypair.public_key, -1)


def test_private_primitives_reject_out_of_range(keypair):
    with pytest.raises(DecryptionError):
        rsadp(keypair, keypair.n)
    with pytest.raises(DecryptionError):
        rsasp1(keypair, -1)
    with pytest.raises(DecryptionError):
        rsavp1(keypair.public_key, keypair.n + 5)


def test_deterministic_generation():
    a = generate_keypair(KEY_BITS, HmacDrbg(b"same-seed"))
    b = generate_keypair(KEY_BITS, HmacDrbg(b"same-seed"))
    assert a.n == b.n and a.d == b.d


def test_different_seeds_different_keys():
    a = generate_keypair(KEY_BITS, HmacDrbg(b"seed-a"))
    b = generate_keypair(KEY_BITS, HmacDrbg(b"seed-b"))
    assert a.n != b.n


def test_rejects_tiny_modulus():
    with pytest.raises(KeyGenerationError):
        generate_keypair(32, HmacDrbg(b"x"))


def test_rejects_even_exponent():
    with pytest.raises(KeyGenerationError):
        generate_keypair(KEY_BITS, HmacDrbg(b"x"), public_exponent=4)


def test_alternate_exponent():
    keypair = generate_keypair(KEY_BITS, HmacDrbg(b"e3"),
                               public_exponent=3)
    assert keypair.e == 3
    message = 42
    assert rsadp(keypair, rsaep(keypair.public_key, message)) == message


def test_1024_bit_generation():
    """The DRM-mandated size works and has the full bit length."""
    keypair = generate_keypair(1024, HmacDrbg(b"kilokey"))
    assert keypair.modulus_bits == 1024
    message = 2 ** 1000 + 7
    assert rsadp(keypair, rsaep(keypair.public_key, message)) == message


@given(message=st.integers(min_value=0))
@settings(max_examples=50, deadline=None)
def test_roundtrip_property(keypair, message):
    message %= keypair.n
    assert rsadp(keypair, rsaep(keypair.public_key, message)) == message
    assert rsavp1(keypair.public_key, rsasp1(keypair, message)) == message
