"""HMAC-DRBG: determinism, reseeding and range helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rng import HmacDrbg, default_rng


def test_same_seed_same_stream():
    a = HmacDrbg(b"seed")
    b = HmacDrbg(b"seed")
    assert a.random_bytes(64) == b.random_bytes(64)


def test_different_seeds_differ():
    assert HmacDrbg(b"s1").random_bytes(32) \
        != HmacDrbg(b"s2").random_bytes(32)


def test_personalization_differs():
    assert HmacDrbg(b"s", b"p1").random_bytes(32) \
        != HmacDrbg(b"s", b"p2").random_bytes(32)


def test_chunked_draws_differ_from_restart():
    """The generator advances: two draws never repeat."""
    rng = HmacDrbg(b"seed")
    assert rng.random_bytes(16) != rng.random_bytes(16)


def test_reseed_changes_stream():
    a = HmacDrbg(b"seed")
    b = HmacDrbg(b"seed")
    a.random_bytes(16)
    b.random_bytes(16)
    a.reseed(b"fresh entropy")
    assert a.random_bytes(16) != b.random_bytes(16)


def test_empty_seed_rejected():
    with pytest.raises(ValueError):
        HmacDrbg(b"")


def test_zero_length_draw():
    assert HmacDrbg(b"s").random_bytes(0) == b""


def test_negative_length_rejected():
    with pytest.raises(ValueError):
        HmacDrbg(b"s").random_bytes(-1)


def test_random_int_bit_bound():
    rng = HmacDrbg(b"s")
    for bits in (1, 7, 8, 9, 128, 1024):
        value = rng.random_int(bits)
        assert 0 <= value < (1 << bits)


def test_random_odd_int_properties():
    rng = HmacDrbg(b"s")
    for _ in range(20):
        value = rng.random_odd_int(64)
        assert value % 2 == 1
        assert value.bit_length() == 64


def test_random_range_bounds():
    rng = HmacDrbg(b"s")
    for _ in range(50):
        value = rng.random_range(10, 20)
        assert 10 <= value < 20


def test_random_range_rejects_empty():
    with pytest.raises(ValueError):
        HmacDrbg(b"s").random_range(5, 5)


def test_default_rng_is_deterministic():
    assert default_rng().random_bytes(8) == default_rng().random_bytes(8)
    assert default_rng("a").random_bytes(8) \
        != default_rng("b").random_bytes(8)


@given(st.integers(min_value=1, max_value=2048))
@settings(max_examples=50, deadline=None)
def test_draw_length_property(length):
    assert len(HmacDrbg(b"s").random_bytes(length)) == length


@given(lower=st.integers(min_value=0, max_value=1000),
       span=st.integers(min_value=1, max_value=1000))
@settings(max_examples=50, deadline=None)
def test_range_property(lower, span):
    value = HmacDrbg(b"s").random_range(lower, lower + span)
    assert lower <= value < lower + span
