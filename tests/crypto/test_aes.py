"""AES: FIPS-197 appendix C known-answer vectors and block-cipher laws."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES, BLOCK_SIZE
from repro.crypto.errors import InvalidBlockError, InvalidKeyError

PLAIN = bytes.fromhex("00112233445566778899aabbccddeeff")

# FIPS-197 appendix C example vectors for the three key sizes.
FIPS_VECTORS = [
    ("000102030405060708090a0b0c0d0e0f",
     "69c4e0d86a7b0430d8cdb78070b4c55a"),
    ("000102030405060708090a0b0c0d0e0f1011121314151617",
     "dda97ca4864cdfe06eaf70a0ec0d7191"),
    ("000102030405060708090a0b0c0d0e0f"
     "101112131415161718191a1b1c1d1e1f",
     "8ea2b7ca516745bfeafc49904b496089"),
]


@pytest.mark.parametrize("key_hex,cipher_hex", FIPS_VECTORS,
                         ids=["aes128", "aes192", "aes256"])
def test_fips197_encrypt(key_hex, cipher_hex):
    cipher = AES(bytes.fromhex(key_hex))
    assert cipher.encrypt_block(PLAIN).hex() == cipher_hex


@pytest.mark.parametrize("key_hex,cipher_hex", FIPS_VECTORS,
                         ids=["aes128", "aes192", "aes256"])
def test_fips197_decrypt(key_hex, cipher_hex):
    cipher = AES(bytes.fromhex(key_hex))
    assert cipher.decrypt_block(bytes.fromhex(cipher_hex)) == PLAIN


def test_fips197_appendix_b_vector():
    """The worked example of FIPS-197 appendix B (different key)."""
    cipher = AES(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
    out = cipher.encrypt_block(
        bytes.fromhex("3243f6a8885a308d313198a2e0370734"))
    assert out.hex() == "3925841d02dc09fbdc118597196a0b32"


@pytest.mark.parametrize("key_size,rounds", [(16, 10), (24, 12), (32, 14)])
def test_round_counts(key_size, rounds):
    assert AES(b"\x00" * key_size).rounds == rounds


@pytest.mark.parametrize("bad_size", [0, 1, 15, 17, 23, 25, 31, 33, 64])
def test_rejects_bad_key_sizes(bad_size):
    with pytest.raises(InvalidKeyError):
        AES(b"\x00" * bad_size)


def test_rejects_non_bytes_key():
    with pytest.raises(InvalidKeyError):
        AES("0123456789abcdef")


@pytest.mark.parametrize("bad_size", [0, 15, 17, 32])
def test_rejects_bad_block_sizes(bad_size):
    cipher = AES(b"k" * 16)
    with pytest.raises(InvalidBlockError):
        cipher.encrypt_block(b"\x00" * bad_size)
    with pytest.raises(InvalidBlockError):
        cipher.decrypt_block(b"\x00" * bad_size)


def test_encryption_is_not_identity():
    cipher = AES(b"k" * 16)
    assert cipher.encrypt_block(PLAIN) != PLAIN


def test_different_keys_give_different_ciphertexts():
    assert AES(b"a" * 16).encrypt_block(PLAIN) \
        != AES(b"b" * 16).encrypt_block(PLAIN)


def test_block_size_constant():
    assert BLOCK_SIZE == 16


@given(key=st.binary(min_size=16, max_size=16),
       block=st.binary(min_size=16, max_size=16))
@settings(max_examples=100, deadline=None)
def test_decrypt_inverts_encrypt_128(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@given(key=st.binary(min_size=32, max_size=32),
       block=st.binary(min_size=16, max_size=16))
@settings(max_examples=50, deadline=None)
def test_decrypt_inverts_encrypt_256(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@given(block=st.binary(min_size=16, max_size=16))
@settings(max_examples=50, deadline=None)
def test_instance_is_reusable(block):
    """One key schedule serves many block operations (Table 1's offset)."""
    cipher = AES(b"reuse-key-123456")
    first = cipher.encrypt_block(block)
    second = cipher.encrypt_block(block)
    assert first == second
