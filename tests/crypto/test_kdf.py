"""KDF2: structure, determinism and the cost-model invocation count."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.encoding import i2osp
from repro.crypto.kdf import kdf2, kdf2_hash_invocations
from repro.crypto.sha1 import DIGEST_SIZE, sha1


def test_output_length():
    for length in (0, 1, 16, 20, 21, 40, 100):
        assert len(kdf2(b"secret", length)) == length


def test_counter_starts_at_one():
    """KDF2's defining property versus KDF1: counter begins at 1."""
    secret = b"Z" * 16
    assert kdf2(secret, DIGEST_SIZE) == sha1(secret + i2osp(1, 4))


def test_second_block_uses_counter_two():
    secret = b"Z" * 16
    expected = sha1(secret + i2osp(1, 4)) + sha1(secret + i2osp(2, 4))
    assert kdf2(secret, 2 * DIGEST_SIZE) == expected


def test_truncation_of_final_block():
    secret = b"Z" * 16
    assert kdf2(secret, 25) == (
        sha1(secret + i2osp(1, 4)) + sha1(secret + i2osp(2, 4)))[:25]


def test_other_info_changes_output():
    assert kdf2(b"s", 16, b"ctx-a") != kdf2(b"s", 16, b"ctx-b")
    assert kdf2(b"s", 16) != kdf2(b"s", 16, b"ctx-a")


def test_deterministic():
    assert kdf2(b"same", 32) == kdf2(b"same", 32)


def test_negative_length_rejected():
    with pytest.raises(ValueError):
        kdf2(b"s", -1)


@pytest.mark.parametrize("length,expected", [
    (0, 0), (1, 1), (20, 1), (21, 2), (40, 2), (41, 3),
])
def test_hash_invocations(length, expected):
    assert kdf2_hash_invocations(length) == expected


@given(secret=st.binary(min_size=1, max_size=200),
       length=st.integers(min_value=0, max_value=200))
@settings(max_examples=100, deadline=None)
def test_prefix_property(secret, length):
    """Shorter derivations are prefixes of longer ones (same inputs)."""
    longer = kdf2(secret, 200)
    assert kdf2(secret, length) == longer[:length]
