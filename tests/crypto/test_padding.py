"""PKCS#7 padding: boundaries and malformed-pad detection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.errors import PaddingError
from repro.crypto.padding import pad, unpad


def test_pad_always_appends():
    assert pad(b"", 16) == b"\x10" * 16
    assert pad(b"x" * 16, 16) == b"x" * 16 + b"\x10" * 16


def test_pad_partial_block():
    assert pad(b"abc", 8) == b"abc\x05\x05\x05\x05\x05"


def test_unpad_rejects_empty():
    with pytest.raises(PaddingError):
        unpad(b"", 16)


def test_unpad_rejects_unaligned():
    with pytest.raises(PaddingError):
        unpad(b"x" * 15, 16)


def test_unpad_rejects_zero_pad_byte():
    with pytest.raises(PaddingError):
        unpad(b"x" * 15 + b"\x00", 16)


def test_unpad_rejects_oversized_pad_byte():
    with pytest.raises(PaddingError):
        unpad(b"x" * 15 + b"\x11", 16)


def test_unpad_rejects_inconsistent_padding():
    data = b"x" * 13 + b"\x02\x01\x03"
    with pytest.raises(PaddingError):
        unpad(data, 16)


@pytest.mark.parametrize("block_size", [0, 256, -1])
def test_invalid_block_size(block_size):
    with pytest.raises(ValueError):
        pad(b"x", block_size)
    with pytest.raises(ValueError):
        unpad(b"x", block_size)


@given(data=st.binary(min_size=0, max_size=300),
       block_size=st.integers(min_value=1, max_value=255))
@settings(max_examples=200, deadline=None)
def test_roundtrip(data, block_size):
    padded = pad(data, block_size)
    assert len(padded) % block_size == 0
    assert len(padded) > len(data)
    assert len(padded) - len(data) <= block_size
    assert unpad(padded, block_size) == data
