"""RSASSA-PSS: sign/verify laws, tamper detection, encoding edge cases."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.errors import MessageTooLongError, SignatureError
from repro.crypto.pss import (DEFAULT_SALT_LENGTH, emsa_pss_encode,
                              emsa_pss_verify, mgf1, pss_sign, pss_verify,
                              sign_accounting)
from repro.crypto.rng import HmacDrbg
from repro.crypto.rsa import generate_keypair
from repro.crypto.sha1 import DIGEST_SIZE, sha1


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(768, HmacDrbg(b"pss-tests"))


@pytest.fixture()
def rng():
    return HmacDrbg(b"pss-salt")


def test_sign_verify_roundtrip(keypair, rng):
    signature = pss_sign(keypair, b"the message", rng)
    assert len(signature) == keypair.modulus_octets
    pss_verify(keypair.public_key, b"the message", signature)


def test_verify_rejects_modified_message(keypair, rng):
    signature = pss_sign(keypair, b"the message", rng)
    with pytest.raises(SignatureError):
        pss_verify(keypair.public_key, b"the massage", signature)


def test_verify_rejects_bitflipped_signature(keypair, rng):
    signature = bytearray(pss_sign(keypair, b"m", rng))
    signature[10] ^= 0x01
    with pytest.raises(SignatureError):
        pss_verify(keypair.public_key, b"m", bytes(signature))


def test_verify_rejects_wrong_key(keypair, rng):
    other = generate_keypair(768, HmacDrbg(b"other-key"))
    signature = pss_sign(keypair, b"m", rng)
    with pytest.raises(SignatureError):
        pss_verify(other.public_key, b"m", signature)


def test_verify_rejects_wrong_length(keypair, rng):
    signature = pss_sign(keypair, b"m", rng)
    with pytest.raises(SignatureError):
        pss_verify(keypair.public_key, b"m", signature[:-1])


def test_signatures_are_randomized(keypair, rng):
    """PSS salting: two signatures of one message differ, both verify."""
    s1 = pss_sign(keypair, b"m", rng)
    s2 = pss_sign(keypair, b"m", rng)
    assert s1 != s2
    pss_verify(keypair.public_key, b"m", s1)
    pss_verify(keypair.public_key, b"m", s2)


def test_zero_salt_is_deterministic(keypair, rng):
    s1 = pss_sign(keypair, b"m", rng, salt_length=0)
    s2 = pss_sign(keypair, b"m", rng, salt_length=0)
    assert s1 == s2
    pss_verify(keypair.public_key, b"m", s1, salt_length=0)


def test_salt_length_must_match_on_verify(keypair, rng):
    signature = pss_sign(keypair, b"m", rng, salt_length=8)
    pss_verify(keypair.public_key, b"m", signature, salt_length=8)
    with pytest.raises(SignatureError):
        pss_verify(keypair.public_key, b"m", signature,
                   salt_length=DEFAULT_SALT_LENGTH)


def test_empty_message(keypair, rng):
    signature = pss_sign(keypair, b"", rng)
    pss_verify(keypair.public_key, b"", signature)


def test_large_message(keypair, rng):
    message = b"x" * 100_000
    signature = pss_sign(keypair, message, rng)
    pss_verify(keypair.public_key, message, signature)


# -- encoding internals ---------------------------------------------------

def test_encode_trailer_byte():
    encoded = emsa_pss_encode(b"m", 511, b"s" * 20)
    assert encoded[-1] == 0xBC


def test_encode_rejects_small_modulus():
    with pytest.raises(MessageTooLongError):
        emsa_pss_encode(b"m", 100, b"s" * 20)


def test_encode_verify_consistency():
    encoded = emsa_pss_encode(b"msg", 511, b"s" * 20)
    assert emsa_pss_verify(b"msg", encoded, 511, 20)
    assert not emsa_pss_verify(b"other", encoded, 511, 20)


def test_verify_rejects_bad_trailer():
    encoded = bytearray(emsa_pss_encode(b"m", 511, b"s" * 20))
    encoded[-1] = 0xCC
    assert not emsa_pss_verify(b"m", bytes(encoded), 511, 20)


def test_mgf1_known_structure():
    """MGF1 is counter-mode SHA-1 with a 4-octet big-endian counter."""
    seed = b"seed"
    assert mgf1(seed, 20) == sha1(seed + b"\x00\x00\x00\x00")
    assert mgf1(seed, 40) == (sha1(seed + b"\x00\x00\x00\x00")
                              + sha1(seed + b"\x00\x00\x00\x01"))
    assert mgf1(seed, 25) == mgf1(seed, 40)[:25]


def test_mgf1_zero_length():
    assert mgf1(b"seed", 0) == b""


def test_sign_accounting():
    acc = sign_accounting(message_octets=1000, modulus_bits=1024)
    assert acc.message_octets == 1000
    assert acc.fixed_hash_invocations == 1
    # em_len = 128, mask = 128 - 20 - 1 = 107 octets -> 6 SHA-1 calls.
    assert acc.mgf1_hash_invocations == 6


@given(message=st.binary(min_size=0, max_size=512))
@settings(max_examples=30, deadline=None)
def test_roundtrip_property(keypair, message):
    rng = HmacDrbg(b"prop" + message[:8] + bytes([len(message) % 251]))
    signature = pss_sign(keypair, message, rng)
    pss_verify(keypair.public_key, message, signature)
    if message:
        with pytest.raises(SignatureError):
            pss_verify(keypair.public_key, message + b"!", signature)


def test_digest_size_constant():
    assert DIGEST_SIZE == 20
