"""AES-CBC: NIST SP 800-38A vectors, padding integration, tamper effects."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.errors import InvalidBlockError, PaddingError
from repro.crypto.modes import (cbc_decrypt, cbc_decrypt_raw, cbc_encrypt,
                                cbc_encrypt_raw)

# NIST SP 800-38A F.2.1: AES-128-CBC encryption.
NIST_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
NIST_IV = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
NIST_PLAIN = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710")
NIST_CIPHER = bytes.fromhex(
    "7649abac8119b246cee98e9b12e9197d"
    "5086cb9b507219ee95db113a917678b2"
    "73bed6b8e3c1743b7116e69e22229516"
    "3ff1caa1681fac09120eca307586e1a7")


def test_nist_cbc_encrypt_vector():
    assert cbc_encrypt_raw(NIST_KEY, NIST_IV, NIST_PLAIN) == NIST_CIPHER


def test_nist_cbc_decrypt_vector():
    assert cbc_decrypt_raw(NIST_KEY, NIST_IV, NIST_CIPHER) == NIST_PLAIN


def test_padded_roundtrip_short_message():
    ct = cbc_encrypt(b"k" * 16, b"i" * 16, b"hi")
    assert len(ct) == 16
    assert cbc_decrypt(b"k" * 16, b"i" * 16, ct) == b"hi"


def test_padded_roundtrip_exact_block():
    """A block-aligned message still gains one full padding block."""
    message = b"x" * 32
    ct = cbc_encrypt(b"k" * 16, b"i" * 16, message)
    assert len(ct) == 48
    assert cbc_decrypt(b"k" * 16, b"i" * 16, ct) == message


def test_empty_message_roundtrip():
    ct = cbc_encrypt(b"k" * 16, b"i" * 16, b"")
    assert len(ct) == 16
    assert cbc_decrypt(b"k" * 16, b"i" * 16, ct) == b""


def test_raw_rejects_unaligned_input():
    with pytest.raises(InvalidBlockError):
        cbc_encrypt_raw(b"k" * 16, b"i" * 16, b"short")
    with pytest.raises(InvalidBlockError):
        cbc_decrypt_raw(b"k" * 16, b"i" * 16, b"x" * 17)


@pytest.mark.parametrize("iv_len", [0, 8, 15, 17, 32])
def test_rejects_bad_iv(iv_len):
    with pytest.raises(InvalidBlockError):
        cbc_encrypt(b"k" * 16, b"i" * iv_len, b"data")


def test_wrong_key_fails_or_garbles():
    ct = cbc_encrypt(b"k" * 16, b"i" * 16, b"secret content here!")
    try:
        out = cbc_decrypt(b"K" * 16, b"i" * 16, ct)
    except PaddingError:
        return  # padding check caught it
    assert out != b"secret content here!"


def test_iv_affects_first_block_only_raw():
    pt = b"A" * 32
    c1 = cbc_encrypt_raw(b"k" * 16, b"\x00" * 16, pt)
    c2 = cbc_encrypt_raw(b"k" * 16, b"\x01" + b"\x00" * 15, pt)
    assert c1 != c2
    assert c1[:16] != c2[:16]


def test_identical_blocks_encrypt_differently():
    """CBC chaining: equal plaintext blocks give distinct ciphertext."""
    ct = cbc_encrypt_raw(b"k" * 16, b"i" * 16, b"B" * 48)
    blocks = [ct[i:i + 16] for i in range(0, 48, 16)]
    assert len(set(blocks)) == 3


@given(key=st.binary(min_size=16, max_size=16),
       iv=st.binary(min_size=16, max_size=16),
       plaintext=st.binary(min_size=0, max_size=1024))
@settings(max_examples=75, deadline=None)
def test_roundtrip_property(key, iv, plaintext):
    ct = cbc_encrypt(key, iv, plaintext)
    assert len(ct) % 16 == 0
    assert len(ct) == (len(plaintext) // 16 + 1) * 16
    assert cbc_decrypt(key, iv, ct) == plaintext
