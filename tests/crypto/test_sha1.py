"""SHA-1: FIPS 180 known-answer vectors, streaming behaviour, properties."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.sha1 import BLOCK_SIZE, DIGEST_SIZE, SHA1, sha1, sha1_hex

# FIPS 180 / RFC 3174 test vectors.
KNOWN_VECTORS = [
    (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
    (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
    (b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
     "84983e441c3bd26ebaae4aa1f95129e5e54670f1"),
    (b"The quick brown fox jumps over the lazy dog",
     "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"),
    (b"a" * 1_000_000, "34aa973cd4c4daa4f61eeb2bdbad27316534016f"),
]


@pytest.mark.parametrize("message,expected", KNOWN_VECTORS,
                         ids=["empty", "abc", "two-blocks", "fox",
                              "million-a"])
def test_known_vectors(message, expected):
    assert sha1(message).hex() == expected


def test_hexdigest_matches_digest():
    assert sha1_hex(b"abc") == sha1(b"abc").hex()


def test_digest_size_constant():
    assert len(sha1(b"anything")) == DIGEST_SIZE == 20
    assert SHA1.block_size == BLOCK_SIZE == 64


def test_streaming_equals_one_shot():
    h = SHA1()
    h.update(b"ab")
    h.update(b"c")
    assert h.digest() == sha1(b"abc")


def test_digest_is_idempotent():
    h = SHA1(b"data")
    first = h.digest()
    assert h.digest() == first
    h.update(b"more")
    assert h.digest() != first


def test_copy_is_independent():
    h = SHA1(b"prefix")
    clone = h.copy()
    h.update(b"-a")
    clone.update(b"-b")
    assert h.digest() == sha1(b"prefix-a")
    assert clone.digest() == sha1(b"prefix-b")


def test_update_rejects_text():
    h = SHA1()
    with pytest.raises(TypeError):
        h.update("not bytes")


def test_update_accepts_bytearray_and_memoryview():
    assert sha1(b"xyz") == SHA1(bytearray(b"xyz")).digest()
    h = SHA1()
    h.update(memoryview(b"xyz"))
    assert h.digest() == sha1(b"xyz")


@pytest.mark.parametrize("length", [0, 1, 55, 56, 57, 63, 64, 65, 119,
                                    120, 121, 127, 128, 129])
def test_padding_boundaries_match_hashlib(length):
    """Lengths around the Merkle-Damgard padding boundaries."""
    message = bytes(range(256))[:1] * length
    assert sha1(message) == hashlib.sha1(message).digest()


@given(st.binary(min_size=0, max_size=2048))
@settings(max_examples=200, deadline=None)
def test_matches_hashlib(data):
    assert sha1(data) == hashlib.sha1(data).digest()


@given(st.lists(st.binary(min_size=0, max_size=200), min_size=0,
                max_size=10))
@settings(max_examples=100, deadline=None)
def test_chunked_updates_equal_concatenation(chunks):
    h = SHA1()
    for chunk in chunks:
        h.update(chunk)
    assert h.digest() == sha1(b"".join(chunks))
