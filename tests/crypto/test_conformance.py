"""Differential conformance: repro.crypto vs independent oracles.

The whole cost model stands on :mod:`repro.crypto`; this suite verifies
the substrate systematically rather than by spot checks:

* **Stdlib differential** — SHA-1 and HMAC-SHA1 against ``hashlib`` /
  ``hmac`` over structured edge cases (block boundaries, chunked
  streaming) and Hypothesis-generated inputs.
* **Official known-answer vectors** — FIPS 197 Appendix B/C (AES
  cipher, all three key sizes), NIST SP 800-38A (AES-128-CBC), RFC
  3394 section 4 (AES Key Wrap), FIPS 198 / RFC 2104 (HMAC-SHA1), and
  FIPS 180 (SHA-1 "abc" family).
* **Third-party differential** — AES-CBC against the ``cryptography``
  package when it happens to be installed (skipped otherwise; the
  stdlib ships no AES oracle).
"""

import hashlib
import hmac as stdlib_hmac

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES
from repro.crypto.hmac import HMACSHA1, hmac_sha1
from repro.crypto.keywrap import unwrap, wrap
from repro.crypto.modes import (cbc_decrypt, cbc_decrypt_raw,
                                cbc_encrypt, cbc_encrypt_raw)
from repro.crypto.sha1 import SHA1, sha1

# ---------------------------------------------------------------------------
# SHA-1 vs hashlib
# ---------------------------------------------------------------------------

#: Structured edge cases: empty, sub-block, exact block, padding
#: boundaries (55/56/63/64 octets decide where the length field lands),
#: and multi-block messages.
SHA1_EDGE_LENGTHS = (0, 1, 20, 55, 56, 57, 63, 64, 65, 127, 128, 1000)


@pytest.mark.parametrize("length", SHA1_EDGE_LENGTHS)
def test_sha1_matches_hashlib_at_boundaries(length):
    message = bytes(i % 251 for i in range(length))
    assert sha1(message) == hashlib.sha1(message).digest()


def test_sha1_streaming_matches_hashlib():
    message = b"embedded OMA DRM 2 " * 97
    ours, theirs = SHA1(), hashlib.sha1()
    for cut in (0, 1, 7, 64, 100, len(message)):
        ours.update(message[:cut])
        theirs.update(message[:cut])
    assert ours.digest() == theirs.digest()
    assert ours.hexdigest() == theirs.hexdigest()


@given(data=st.binary(max_size=512))
@settings(max_examples=300, deadline=None)
def test_sha1_differential(data):
    assert sha1(data) == hashlib.sha1(data).digest()


@given(chunks=st.lists(st.binary(max_size=100), max_size=8))
@settings(max_examples=150, deadline=None)
def test_sha1_chunked_differential(chunks):
    ours, theirs = SHA1(), hashlib.sha1()
    for chunk in chunks:
        ours.update(chunk)
        theirs.update(chunk)
    assert ours.digest() == theirs.digest()


#: FIPS 180 reference digests.
SHA1_KAT = [
    (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
    (b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
     "84983e441c3bd26ebaae4aa1f95129e5e54670f1"),
    (b"a" * 1_000_000, "34aa973cd4c4daa4f61eeb2bdbad27316534016f"),
]


@pytest.mark.parametrize("message,digest_hex", SHA1_KAT,
                         ids=["abc", "two-block", "million-a"])
def test_sha1_fips180_vectors(message, digest_hex):
    assert sha1(message).hex() == digest_hex


# ---------------------------------------------------------------------------
# HMAC-SHA1 vs stdlib hmac and FIPS 198 / RFC 2104
# ---------------------------------------------------------------------------

@given(key=st.binary(min_size=1, max_size=128),
       message=st.binary(max_size=512))
@settings(max_examples=300, deadline=None)
def test_hmac_differential(key, message):
    expected = stdlib_hmac.new(key, message, hashlib.sha1).digest()
    assert hmac_sha1(key, message) == expected


@pytest.mark.parametrize("key_length", (0, 1, 63, 64, 65, 100, 200),
                         ids=lambda n: "key%d" % n)
def test_hmac_key_length_boundaries(key_length):
    """Keys shorter/equal/longer than the SHA-1 block size (64)."""
    key = bytes(range(256))[:key_length] * 1
    message = b"key-length boundary"
    expected = stdlib_hmac.new(key, message, hashlib.sha1).digest()
    assert hmac_sha1(key, message) == expected


def test_hmac_streaming_matches_stdlib():
    key = b"\x0b" * 20
    ours = HMACSHA1(key)
    theirs = stdlib_hmac.new(key, None, hashlib.sha1)
    for chunk in (b"Hi", b" ", b"There", b"!" * 200):
        ours.update(chunk)
        theirs.update(chunk)
    assert ours.digest() == theirs.digest()


#: RFC 2104 section "Test Vectors" (the original HMAC paper's cases,
#: FIPS 198-style keyed-hash checks).
RFC2104_KAT = [
    (b"\x0b" * 16, b"Hi There",
     "675b0b3a1b4ddf4e124872da6c2f632bfed957e9"),
    (b"Jefe", b"what do ya want for nothing?",
     "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"),
    (b"\xaa" * 16, b"\xdd" * 50,
     "d730594d167e35d5956fd8003d0db3d3f46dc7bb"),
]


@pytest.mark.parametrize("key,message,tag_hex", RFC2104_KAT,
                         ids=["hi-there", "jefe", "dd-block"])
def test_hmac_rfc2104_vectors(key, message, tag_hex):
    assert hmac_sha1(key, message).hex() == tag_hex


# ---------------------------------------------------------------------------
# AES block cipher: FIPS 197 known answers
# ---------------------------------------------------------------------------

#: FIPS 197 Appendix C example vectors: same plaintext, the three key
#: sizes; Appendix B is the worked 128-bit example.
FIPS197_KAT = [
    ("000102030405060708090a0b0c0d0e0f",
     "00112233445566778899aabbccddeeff",
     "69c4e0d86a7b0430d8cdb78070b4c55a"),
    ("000102030405060708090a0b0c0d0e0f1011121314151617",
     "00112233445566778899aabbccddeeff",
     "dda97ca4864cdfe06eaf70a0ec0d7191"),
    ("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
     "00112233445566778899aabbccddeeff",
     "8ea2b7ca516745bfeafc49904b496089"),
    ("2b7e151628aed2a6abf7158809cf4f3c",
     "3243f6a8885a308d313198a2e0370734",
     "3925841d02dc09fbdc118597196a0b32"),
]


@pytest.mark.parametrize("key_hex,plain_hex,cipher_hex", FIPS197_KAT,
                         ids=["appC-128", "appC-192", "appC-256",
                              "appB-128"])
def test_aes_fips197_vectors(key_hex, plain_hex, cipher_hex):
    cipher = AES(bytes.fromhex(key_hex))
    plain = bytes.fromhex(plain_hex)
    encrypted = cipher.encrypt_block(plain)
    assert encrypted.hex() == cipher_hex
    assert cipher.decrypt_block(encrypted) == plain


# ---------------------------------------------------------------------------
# AES-CBC: NIST SP 800-38A vectors and optional third-party oracle
# ---------------------------------------------------------------------------

#: SP 800-38A section F.2.1/F.2.2 — CBC-AES128, four chained blocks.
SP800_38A_KEY = "2b7e151628aed2a6abf7158809cf4f3c"
SP800_38A_IV = "000102030405060708090a0b0c0d0e0f"
SP800_38A_PLAIN = (
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710")
SP800_38A_CIPHER = (
    "7649abac8119b246cee98e9b12e9197d"
    "5086cb9b507219ee95db113a917678b2"
    "73bed6b8e3c1743b7116e69e22229516"
    "3ff1caa1681fac09120eca307586e1a7")


def test_cbc_sp800_38a_encrypt():
    out = cbc_encrypt_raw(bytes.fromhex(SP800_38A_KEY),
                          bytes.fromhex(SP800_38A_IV),
                          bytes.fromhex(SP800_38A_PLAIN))
    assert out.hex() == SP800_38A_CIPHER


def test_cbc_sp800_38a_decrypt():
    out = cbc_decrypt_raw(bytes.fromhex(SP800_38A_KEY),
                          bytes.fromhex(SP800_38A_IV),
                          bytes.fromhex(SP800_38A_CIPHER))
    assert out.hex() == SP800_38A_PLAIN


@given(key=st.binary(min_size=16, max_size=16),
       iv=st.binary(min_size=16, max_size=16),
       plaintext=st.binary(max_size=256))
@settings(max_examples=150, deadline=None)
def test_cbc_roundtrip_with_padding(key, iv, plaintext):
    assert cbc_decrypt(key, iv, cbc_encrypt(key, iv, plaintext)) \
        == plaintext


def _cryptography_oracle():
    try:
        from cryptography.hazmat.primitives.ciphers import (
            Cipher, algorithms, modes as crypto_modes)
    except ImportError:  # pragma: no cover - optional oracle
        return None

    def oracle(key, iv, plaintext):
        encryptor = Cipher(algorithms.AES(key),
                           crypto_modes.CBC(iv)).encryptor()
        return encryptor.update(plaintext) + encryptor.finalize()
    return oracle


@pytest.mark.skipif(_cryptography_oracle() is None,
                    reason="the 'cryptography' package is not installed"
                           " (stdlib has no AES oracle)")
@given(key=st.binary(min_size=16, max_size=16),
       iv=st.binary(min_size=16, max_size=16),
       blocks=st.integers(min_value=0, max_value=8),
       data=st.data())
@settings(max_examples=100, deadline=None)
def test_cbc_differential_vs_cryptography(key, iv, blocks, data):
    oracle = _cryptography_oracle()
    plaintext = data.draw(st.binary(min_size=16 * blocks,
                                    max_size=16 * blocks))
    assert cbc_encrypt_raw(key, iv, plaintext) \
        == oracle(key, iv, plaintext)


# ---------------------------------------------------------------------------
# AES Key Wrap: RFC 3394 section 4 official vectors
# ---------------------------------------------------------------------------

#: RFC 3394 sections 4.1-4.6: every KEK/key-data size combination.
RFC3394_KAT = [
    ("000102030405060708090a0b0c0d0e0f",
     "00112233445566778899aabbccddeeff",
     "1fa68b0a8112b447aef34bd8fb5a7b829d3e862371d2cfe5"),
    ("000102030405060708090a0b0c0d0e0f1011121314151617",
     "00112233445566778899aabbccddeeff",
     "96778b25ae6ca435f92b5b97c050aed2468ab8a17ad84e5d"),
    ("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
     "00112233445566778899aabbccddeeff",
     "64e8c3f9ce0f5ba263e9777905818a2a93c8191e7d6e8ae7"),
    ("000102030405060708090a0b0c0d0e0f1011121314151617",
     "00112233445566778899aabbccddeeff0001020304050607",
     "031d33264e15d33268f24ec260743edce1c6c7ddee725a936ba814915c6762d2"),
    ("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
     "00112233445566778899aabbccddeeff0001020304050607",
     "a8f9bc1612c68b3ff6e6f4fbe30e71e4769c8b80a32cb8958cd5d17d6b254da1"),
    ("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
     "00112233445566778899aabbccddeeff000102030405060708090a0b0c0d0e0f",
     "28c9f404c4b810f4cbccb35cfb87f8263f5786e2d80ed326"
     "cbc7f0e71a99f43bfb988b9b7a02dd21"),
]

_RFC3394_IDS = ["4.1-128kek", "4.2-192kek", "4.3-256kek",
                "4.4-192key", "4.5-192key-256kek", "4.6-256key"]


@pytest.mark.parametrize("kek_hex,key_hex,wrapped_hex", RFC3394_KAT,
                         ids=_RFC3394_IDS)
def test_keywrap_rfc3394_conformance(kek_hex, key_hex, wrapped_hex):
    kek = bytes.fromhex(kek_hex)
    key_data = bytes.fromhex(key_hex)
    wrapped = wrap(kek, key_data)
    assert wrapped.hex() == wrapped_hex
    assert unwrap(kek, wrapped) == key_data


@given(kek=st.binary(min_size=16, max_size=16),
       semiblocks=st.integers(min_value=2, max_value=8),
       data=st.data())
@settings(max_examples=100, deadline=None)
def test_keywrap_roundtrip(kek, semiblocks, data):
    key_data = data.draw(st.binary(min_size=8 * semiblocks,
                                   max_size=8 * semiblocks))
    assert unwrap(kek, wrap(kek, key_data)) == key_data
