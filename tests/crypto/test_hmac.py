"""HMAC-SHA1: RFC 2202 known-answer vectors and interface behaviour."""

import hashlib
import hmac as stdlib_hmac

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hmac import HMACSHA1, hmac_sha1, verify_hmac_sha1

# RFC 2202 section 3 — all seven HMAC-SHA1 test cases.
RFC2202_VECTORS = [
    (b"\x0b" * 20, b"Hi There",
     "b617318655057264e28bc0b6fb378c8ef146be00"),
    (b"Jefe", b"what do ya want for nothing?",
     "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"),
    (b"\xaa" * 20, b"\xdd" * 50,
     "125d7342b9ac11cd91a39af48aa17b4f63f175d3"),
    (bytes(range(1, 26)), b"\xcd" * 50,
     "4c9007f4026250c6bc8414f9bf50c86c2d7235da"),
    (b"\x0c" * 20, b"Test With Truncation",
     "4c1a03424b55e07fe7f27be1d58bb9324a9a5a04"),
    (b"\xaa" * 80, b"Test Using Larger Than Block-Size Key - Hash Key "
     b"First", "aa4ae5e15272d00e95705637ce8a3b55ed402112"),
    (b"\xaa" * 80, b"Test Using Larger Than Block-Size Key and Larger "
     b"Than One Block-Size Data",
     "e8e99d0f45237d786d6bbaa7965c7808bbff1a91"),
]


@pytest.mark.parametrize("key,message,expected", RFC2202_VECTORS,
                         ids=["tc%d" % i for i in range(1, 8)])
def test_rfc2202_vectors(key, message, expected):
    assert hmac_sha1(key, message).hex() == expected


def test_verify_accepts_valid_tag():
    tag = hmac_sha1(b"key", b"message")
    assert verify_hmac_sha1(b"key", b"message", tag)


def test_verify_rejects_wrong_tag():
    tag = hmac_sha1(b"key", b"message")
    bad = bytes([tag[0] ^ 1]) + tag[1:]
    assert not verify_hmac_sha1(b"key", b"message", bad)


def test_verify_rejects_wrong_length_tag():
    tag = hmac_sha1(b"key", b"message")
    assert not verify_hmac_sha1(b"key", b"message", tag[:-1])


def test_streaming_equals_one_shot():
    h = HMACSHA1(b"key")
    h.update(b"mes")
    h.update(b"sage")
    assert h.digest() == hmac_sha1(b"key", b"message")


def test_copy_is_independent():
    h = HMACSHA1(b"key", b"prefix")
    clone = h.copy()
    h.update(b"-a")
    clone.update(b"-b")
    assert h.digest() == hmac_sha1(b"key", b"prefix-a")
    assert clone.digest() == hmac_sha1(b"key", b"prefix-b")


def test_hexdigest():
    assert HMACSHA1(b"k", b"m").hexdigest() == hmac_sha1(b"k", b"m").hex()


def test_rejects_non_bytes_key():
    with pytest.raises(TypeError):
        HMACSHA1("string-key")


def test_exact_block_size_key_is_used_verbatim():
    """A 64-octet key must not be hashed (RFC 2104 hashes only longer)."""
    key = b"K" * 64
    assert hmac_sha1(key, b"msg") == stdlib_hmac.new(
        key, b"msg", hashlib.sha1).digest()


@given(st.binary(min_size=0, max_size=128),
       st.binary(min_size=0, max_size=1024))
@settings(max_examples=150, deadline=None)
def test_matches_stdlib(key, message):
    assert hmac_sha1(key, message) == stdlib_hmac.new(
        key, message, hashlib.sha1).digest()
