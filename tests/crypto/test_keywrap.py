"""AES Key Wrap: RFC 3394 section 4 vectors and integrity behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.errors import InvalidKeyError, UnwrapError
from repro.crypto.keywrap import (DEFAULT_IV, unwrap, wrap,
                                  wrap_invocation_count)

# RFC 3394 section 4 test vectors: (kek, key data, expected ciphertext).
RFC3394_VECTORS = [
    # 4.1: 128 bits of key data with a 128-bit KEK.
    ("000102030405060708090A0B0C0D0E0F",
     "00112233445566778899AABBCCDDEEFF",
     "1FA68B0A8112B447AEF34BD8FB5A7B829D3E862371D2CFE5"),
    # 4.2: 128 bits of key data with a 192-bit KEK.
    ("000102030405060708090A0B0C0D0E0F1011121314151617",
     "00112233445566778899AABBCCDDEEFF",
     "96778B25AE6CA435F92B5B97C050AED2468AB8A17AD84E5D"),
    # 4.3: 128 bits of key data with a 256-bit KEK.
    ("000102030405060708090A0B0C0D0E0F"
     "101112131415161718191A1B1C1D1E1F",
     "00112233445566778899AABBCCDDEEFF",
     "64E8C3F9CE0F5BA263E9777905818A2A93C8191E7D6E8AE7"),
    # 4.4: 192 bits of key data with a 192-bit KEK.
    ("000102030405060708090A0B0C0D0E0F1011121314151617",
     "00112233445566778899AABBCCDDEEFF0001020304050607",
     "031D33264E15D33268F24EC260743EDCE1C6C7DDEE725A93"
     "6BA814915C6762D2"),
    # 4.6: 256 bits of key data with a 256-bit KEK.
    ("000102030405060708090A0B0C0D0E0F"
     "101112131415161718191A1B1C1D1E1F",
     "00112233445566778899AABBCCDDEEFF"
     "000102030405060708090A0B0C0D0E0F",
     "28C9F404C4B810F4CBCCB35CFB87F8263F5786E2D80ED326"
     "CBC7F0E71A99F43BFB988B9B7A02DD21"),
]


@pytest.mark.parametrize("kek_hex,key_hex,wrapped_hex", RFC3394_VECTORS,
                         ids=["4.1", "4.2", "4.3", "4.4", "4.6"])
def test_rfc3394_wrap(kek_hex, key_hex, wrapped_hex):
    out = wrap(bytes.fromhex(kek_hex), bytes.fromhex(key_hex))
    assert out.hex().upper() == wrapped_hex


@pytest.mark.parametrize("kek_hex,key_hex,wrapped_hex", RFC3394_VECTORS,
                         ids=["4.1", "4.2", "4.3", "4.4", "4.6"])
def test_rfc3394_unwrap(kek_hex, key_hex, wrapped_hex):
    out = unwrap(bytes.fromhex(kek_hex), bytes.fromhex(wrapped_hex))
    assert out.hex().upper() == key_hex


def test_wrap_extends_by_8_octets():
    assert len(wrap(b"k" * 16, b"d" * 32)) == 40


def test_unwrap_detects_single_bit_tamper():
    wrapped = bytearray(wrap(b"k" * 16, b"d" * 16))
    wrapped[3] ^= 0x40
    with pytest.raises(UnwrapError):
        unwrap(b"k" * 16, bytes(wrapped))


def test_unwrap_detects_wrong_kek():
    wrapped = wrap(b"k" * 16, b"d" * 16)
    with pytest.raises(UnwrapError):
        unwrap(b"K" * 16, wrapped)


def test_unwrap_detects_truncation():
    wrapped = wrap(b"k" * 16, b"d" * 24)
    with pytest.raises((UnwrapError, InvalidKeyError)):
        unwrap(b"k" * 16, wrapped[:-8])


@pytest.mark.parametrize("bad_len", [0, 8, 9, 17])
def test_wrap_rejects_bad_key_lengths(bad_len):
    with pytest.raises(InvalidKeyError):
        wrap(b"k" * 16, b"d" * bad_len)


def test_wrap_rejects_bad_iv():
    with pytest.raises(InvalidKeyError):
        wrap(b"k" * 16, b"d" * 16, iv=b"short")


def test_custom_iv_roundtrip():
    iv = b"\x13\x37" * 4
    wrapped = wrap(b"k" * 16, b"d" * 16, iv=iv)
    assert unwrap(b"k" * 16, wrapped, iv=iv) == b"d" * 16
    with pytest.raises(UnwrapError):
        unwrap(b"k" * 16, wrapped)  # default IV no longer matches


def test_default_iv_value():
    assert DEFAULT_IV == b"\xA6" * 8


@pytest.mark.parametrize("octets,expected", [(16, 12), (32, 24), (40, 30)])
def test_invocation_count(octets, expected):
    """6n block operations for n 64-bit registers — the cost-model hook."""
    assert wrap_invocation_count(octets) == expected


def test_invocation_count_rejects_unaligned():
    with pytest.raises(ValueError):
        wrap_invocation_count(17)


@given(kek=st.binary(min_size=16, max_size=16),
       key=st.binary(min_size=16, max_size=64).filter(
           lambda b: len(b) % 8 == 0))
@settings(max_examples=75, deadline=None)
def test_roundtrip_property(kek, key):
    assert unwrap(kek, wrap(kek, key)) == key
