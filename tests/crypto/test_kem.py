"""RSAES-KEM + AES-WRAP: the Figure 3 key-transport chain."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.errors import CryptoError, DecryptionError, UnwrapError
from repro.crypto.kem import (KEK_LENGTH, KemCiphertext, kem_decrypt,
                              kem_encrypt)
from repro.crypto.rng import HmacDrbg
from repro.crypto.rsa import generate_keypair

#: The standard payload: K_MAC || K_REK, two 128-bit keys.
KEY_MATERIAL = b"M" * 16 + b"R" * 16


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(1024, HmacDrbg(b"kem-tests"))


@pytest.fixture()
def rng():
    return HmacDrbg(b"kem-encaps")


def test_roundtrip(keypair, rng):
    ciphertext = kem_encrypt(keypair.public_key, KEY_MATERIAL, rng)
    assert kem_decrypt(keypair, ciphertext) == KEY_MATERIAL


def test_figure3_sizes(keypair, rng):
    """C1 is exactly 1024 bits; C2 is the 256-bit payload + 64-bit IV."""
    ciphertext = kem_encrypt(keypair.public_key, KEY_MATERIAL, rng)
    assert len(ciphertext.c1) == 128
    assert len(ciphertext.c2) == 40
    assert len(ciphertext.concatenation()) == 168


def test_split_concatenation(keypair, rng):
    ciphertext = kem_encrypt(keypair.public_key, KEY_MATERIAL, rng)
    rebuilt = KemCiphertext.split(ciphertext.concatenation(),
                                  keypair.modulus_octets)
    assert rebuilt == ciphertext
    assert kem_decrypt(keypair, rebuilt) == KEY_MATERIAL


def test_split_rejects_short_blob(keypair):
    with pytest.raises(DecryptionError):
        KemCiphertext.split(b"x" * 100, keypair.modulus_octets)


def test_tampered_c1_fails(keypair, rng):
    ciphertext = kem_encrypt(keypair.public_key, KEY_MATERIAL, rng)
    bad_c1 = bytearray(ciphertext.c1)
    bad_c1[50] ^= 0x01
    tampered = KemCiphertext(c1=bytes(bad_c1), c2=ciphertext.c2)
    with pytest.raises(CryptoError):
        kem_decrypt(keypair, tampered)


def test_tampered_c2_fails(keypair, rng):
    ciphertext = kem_encrypt(keypair.public_key, KEY_MATERIAL, rng)
    bad_c2 = bytearray(ciphertext.c2)
    bad_c2[10] ^= 0x01
    tampered = KemCiphertext(c1=ciphertext.c1, c2=bytes(bad_c2))
    with pytest.raises(UnwrapError):
        kem_decrypt(keypair, tampered)


def test_wrong_private_key_fails(keypair, rng):
    other = generate_keypair(1024, HmacDrbg(b"other"))
    ciphertext = kem_encrypt(keypair.public_key, KEY_MATERIAL, rng)
    with pytest.raises(CryptoError):
        kem_decrypt(other, ciphertext)


def test_wrong_c1_length_rejected(keypair, rng):
    ciphertext = kem_encrypt(keypair.public_key, KEY_MATERIAL, rng)
    truncated = KemCiphertext(c1=ciphertext.c1[:-1], c2=ciphertext.c2)
    with pytest.raises(DecryptionError):
        kem_decrypt(keypair, truncated)


def test_encapsulations_are_randomized(keypair, rng):
    c1 = kem_encrypt(keypair.public_key, KEY_MATERIAL, rng)
    c2 = kem_encrypt(keypair.public_key, KEY_MATERIAL, rng)
    assert c1.c1 != c2.c1  # fresh Z each time
    assert kem_decrypt(keypair, c1) == kem_decrypt(keypair, c2)


def test_kek_length_constant():
    assert KEK_LENGTH == 16


@given(payload=st.binary(min_size=16, max_size=48).filter(
    lambda b: len(b) % 8 == 0))
@settings(max_examples=20, deadline=None)
def test_roundtrip_property(keypair, payload):
    rng = HmacDrbg(b"prop" + bytes([len(payload)]))
    ciphertext = kem_encrypt(keypair.public_key, payload, rng)
    assert kem_decrypt(keypair, ciphertext) == payload
