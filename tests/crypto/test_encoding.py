"""PKCS#1 integer/octet-string primitives and byte utilities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.encoding import (byte_length, constant_time_equal, i2osp,
                                   os2ip, xor_bytes)
from repro.crypto.errors import MessageTooLongError


def test_i2osp_known_values():
    assert i2osp(0, 1) == b"\x00"
    assert i2osp(255, 1) == b"\xff"
    assert i2osp(256, 2) == b"\x01\x00"
    assert i2osp(0, 4) == b"\x00\x00\x00\x00"


def test_i2osp_rejects_overflow():
    with pytest.raises(MessageTooLongError):
        i2osp(256, 1)


def test_i2osp_rejects_negative():
    with pytest.raises(ValueError):
        i2osp(-1, 4)
    with pytest.raises(ValueError):
        i2osp(1, -1)


def test_os2ip_known_values():
    assert os2ip(b"\x01\x00") == 256
    assert os2ip(b"") == 0
    assert os2ip(b"\x00\x00\xff") == 255


def test_byte_length():
    assert byte_length(0) == 1
    assert byte_length(255) == 1
    assert byte_length(256) == 2
    assert byte_length(1 << 1023) == 128
    with pytest.raises(ValueError):
        byte_length(-1)


def test_xor_bytes():
    assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"
    with pytest.raises(ValueError):
        xor_bytes(b"a", b"ab")


def test_constant_time_equal():
    assert constant_time_equal(b"same", b"same")
    assert not constant_time_equal(b"same", b"Same")
    assert not constant_time_equal(b"short", b"longer")
    assert constant_time_equal(b"", b"")


@given(value=st.integers(min_value=0, max_value=(1 << 256) - 1))
@settings(max_examples=100, deadline=None)
def test_i2osp_os2ip_roundtrip(value):
    assert os2ip(i2osp(value, 32)) == value


@given(data=st.binary(min_size=0, max_size=64))
@settings(max_examples=100, deadline=None)
def test_os2ip_i2osp_roundtrip(data):
    # Leading zeros are not preserved by the integer, so compare stripped.
    value = os2ip(data)
    assert i2osp(value, len(data) or 1).lstrip(b"\x00") \
        == data.lstrip(b"\x00")


@given(a=st.binary(min_size=0, max_size=64))
@settings(max_examples=50, deadline=None)
def test_xor_self_is_zero(a):
    assert xor_bytes(a, a) == bytes(len(a))
