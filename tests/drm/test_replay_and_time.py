"""RO replay protection and DRM Time synchronization."""

import pytest

from repro.drm.errors import (InstallationError, PermissionDeniedError)
from repro.drm.rel import (DatetimeConstraint, Permission, PermissionType,
                           Rights, play_count)


def listed(world, count=2):
    dcf = world.ci.publish("cid:r", "audio/mpeg", b"x" * 256, "u")
    world.ri.add_offer("ro:r", world.ci.negotiate_license("cid:r"),
                       play_count(count))
    world.agent.register(world.ri)
    return dcf


# -- replay protection -----------------------------------------------------

def test_reinstalling_same_ro_rejected(fast_world):
    """The count-reset attack: exhaust the RO, install it again."""
    dcf = listed(fast_world, count=1)
    protected = fast_world.agent.acquire(fast_world.ri, "ro:r")
    fast_world.agent.install(protected, dcf)
    fast_world.agent.consume("cid:r")
    with pytest.raises(PermissionDeniedError):
        fast_world.agent.consume("cid:r")
    with pytest.raises(InstallationError):
        fast_world.agent.install(protected, dcf)  # replay blocked
    with pytest.raises(PermissionDeniedError):
        fast_world.agent.consume("cid:r")  # still exhausted


def test_freshly_acquired_ro_installs_fine(fast_world):
    """A genuinely new purchase (fresh mint) is not a replay."""
    dcf = listed(fast_world, count=1)
    first = fast_world.agent.acquire(fast_world.ri, "ro:r")
    fast_world.agent.install(first, dcf)
    fast_world.agent.consume("cid:r")
    second = fast_world.agent.acquire(fast_world.ri, "ro:r")
    assert second.ro.guid != first.ro.guid
    fast_world.agent.install(second, dcf)
    fast_world.agent.consume("cid:r")


def test_ro_nonce_is_fresh_per_mint(fast_world):
    listed(fast_world)
    a = fast_world.agent.acquire(fast_world.ri, "ro:r")
    b = fast_world.agent.acquire(fast_world.ri, "ro:r")
    assert a.ro.ro_nonce != b.ro.ro_nonce
    assert len(a.ro.ro_nonce) == 8


# -- DRM Time ----------------------------------------------------------------

def test_registration_resyncs_drifted_clock(fast_world_factory):
    """A device one year fast still registers; afterwards its DRM Time
    matches the infrastructure clock."""
    world = fast_world_factory(seed="skewed")
    world.agent._time_offset = 365 * 86_400
    assert world.agent.drm_time() != world.clock.now
    world.agent.register(world.ri)
    assert world.agent.drm_time() == world.clock.now


def test_wound_back_clock_cannot_stretch_rights(fast_world_factory):
    """Winding the clock back before registration does not extend a
    datetime-constrained license: registration resyncs time first."""
    world = fast_world_factory(seed="rewound")
    dcf = world.ci.publish("cid:w", "audio/mpeg", b"x" * 128, "u")
    expiry = world.clock.now + 1000
    rights = Rights(permissions=(Permission(
        PermissionType.PLAY, (DatetimeConstraint(not_after=expiry),),
    ),))
    world.ri.add_offer("ro:w", world.ci.negotiate_license("cid:w"),
                       rights)
    world.agent._time_offset = -10 * 86_400  # user wound the clock back
    world.agent.register(world.ri)           # ...but ROAP resyncs it
    protected = world.agent.acquire(world.ri, "ro:w")
    world.agent.install(protected, dcf)
    world.agent.consume("cid:w")
    world.clock.advance(1001)
    with pytest.raises(PermissionDeniedError):
        world.agent.consume("cid:w")


def test_drm_time_used_for_context_expiry(fast_world):
    """RI-context validity follows DRM Time, not the raw local clock."""
    fast_world.agent.register(fast_world.ri)
    fast_world.agent._time_offset = 2 * 365 * 86_400  # drift forward
    from repro.drm.errors import NotRegisteredError
    with pytest.raises(NotRegisteredError):
        fast_world.agent.storage.get_ri_context(
            fast_world.ri.ri_id, fast_world.agent.drm_time())
