"""Domains: shared licenses across a group of devices (paper §2.3)."""

import pytest

from repro.drm.domain import DomainManager
from repro.drm.errors import DomainError
from repro.drm.identifiers import domain_id
from repro.drm.rel import play_count

DOMAIN = domain_id("family")


def setup_domain_license(world, content=b"shared" * 100, count=50):
    dcf = world.ci.publish("cid:shared", "audio/mpeg", content,
                           "http://ri.example")
    world.ri.add_offer("ro:shared",
                       world.ci.negotiate_license("cid:shared"),
                       play_count(count))
    world.ri.create_domain(DOMAIN)
    return dcf


def test_join_domain_stores_context(fast_world):
    setup_domain_license(fast_world)
    fast_world.agent.register(fast_world.ri)
    context = fast_world.agent.join_domain(fast_world.ri, DOMAIN)
    assert context.domain_id == DOMAIN
    stored = fast_world.agent.storage.get_domain_context(DOMAIN)
    assert stored is context
    assert fast_world.ri.domains.is_member(DOMAIN,
                                           fast_world.agent.device_id)


def test_domain_key_is_wrapped_at_rest(fast_world):
    setup_domain_license(fast_world)
    fast_world.agent.register(fast_world.ri)
    context = fast_world.agent.join_domain(fast_world.ri, DOMAIN)
    domain_key = fast_world.agent_crypto.aes_unwrap(
        fast_world.agent.secure.kdev, context.wrapped_domain_key)
    assert domain_key == fast_world.ri.domains.get(DOMAIN).key


def test_domain_ro_full_lifecycle(fast_world):
    dcf = setup_domain_license(fast_world)
    fast_world.agent.register(fast_world.ri)
    fast_world.agent.join_domain(fast_world.ri, DOMAIN)
    protected = fast_world.agent.acquire(fast_world.ri, "ro:shared",
                                         domain_id=DOMAIN)
    assert protected.ro.is_domain_ro
    assert protected.domain_wrapped_keys is not None
    assert protected.signature is not None  # mandatory for Domain ROs
    fast_world.agent.install(protected, dcf)
    result = fast_world.agent.consume("cid:shared")
    assert result.clear_content == b"shared" * 100


def test_non_member_cannot_acquire_domain_ro(fast_world):
    setup_domain_license(fast_world)
    fast_world.agent.register(fast_world.ri)
    with pytest.raises(DomainError):
        fast_world.agent.acquire(fast_world.ri, "ro:shared",
                                 domain_id=DOMAIN)


def test_join_requires_registration(fast_world):
    setup_domain_license(fast_world)
    with pytest.raises(Exception):
        fast_world.agent.join_domain(fast_world.ri, DOMAIN)


def test_unknown_domain_rejected(fast_world):
    fast_world.agent.register(fast_world.ri)
    with pytest.raises(DomainError):
        fast_world.agent.join_domain(fast_world.ri, domain_id("ghost"))


def test_domain_ro_shared_across_devices(fast_world, fast_world_factory):
    """The headline feature: a second member consumes the first's RO.

    Models the Unconnected Device: the second device never contacts the
    RI for this RO — it receives the protected RO and DCF out of band
    (superdistribution) and unlocks them with its domain key.
    """
    dcf = setup_domain_license(fast_world)
    fast_world.agent.register(fast_world.ri)
    fast_world.agent.join_domain(fast_world.ri, DOMAIN)
    protected = fast_world.agent.acquire(fast_world.ri, "ro:shared",
                                         domain_id=DOMAIN)

    # Second device: same CA/RI world, its own keys and storage.
    other = fast_world_factory(seed="member-two")
    # Re-point the second agent at the first world's infrastructure.
    other.agent.trust_anchors = list(fast_world.agent.trust_anchors)
    other_cert = fast_world.ca.issue(other.agent.device_id,
                                     other.agent.certificate.public_key,
                                     fast_world.clock.now)
    other.agent.certificate = other_cert
    other.agent.register(fast_world.ri)
    other.agent.join_domain(fast_world.ri, DOMAIN)

    other.agent.install(protected, dcf)
    result = other.agent.consume("cid:shared")
    assert result.clear_content == b"shared" * 100


def test_domain_manager_roster():
    from repro.core.meter import PlainCrypto
    from repro.crypto.rng import HmacDrbg
    manager = DomainManager(PlainCrypto(HmacDrbg(b"dm")))
    domain = manager.create("domain:x+000", max_members=2)
    manager.join("domain:x+000", "device:a")
    manager.join("domain:x+000", "device:b")
    with pytest.raises(DomainError):
        manager.join("domain:x+000", "device:c")
    # Rejoining an existing member is idempotent, not a new slot.
    manager.join("domain:x+000", "device:a")
    manager.leave("domain:x+000", "device:a")
    assert not manager.is_member("domain:x+000", "device:a")
    manager.join("domain:x+000", "device:c")
    assert domain.members == {"device:b", "device:c"}


def test_duplicate_domain_creation_rejected(fast_world):
    fast_world.ri.create_domain(DOMAIN)
    with pytest.raises(DomainError):
        fast_world.ri.create_domain(DOMAIN)
