"""Multi-asset Rights Objects: one license over several content objects.

Paper §2.4.2: the RO "contains a list of Content Object IDs and their
respective usage permissions" — the album-license case.
"""

import pytest

from repro.drm.errors import (InstallationError, IntegrityError,
                              UnknownContentError)
from repro.drm.rel import play_count
from repro.drm.ro import Asset, RightsObject


def publish_album(world, tracks=3):
    dcfs = []
    grants = []
    for index in range(tracks):
        cid = "cid:track-%d" % index
        dcfs.append(world.ci.publish(
            cid, "audio/mpeg", b"tune-%d" % index * 100, "u"))
        grants.append(world.ci.negotiate_license(cid))
    world.ri.add_offer("ro:album", grants, play_count(100))
    return dcfs


def test_album_license_plays_every_track(fast_world):
    dcfs = publish_album(fast_world)
    fast_world.agent.register(fast_world.ri)
    protected = fast_world.agent.acquire(fast_world.ri, "ro:album")
    assert len(protected.ro.assets) == 3
    fast_world.agent.install(protected, dcfs)
    for index in range(3):
        result = fast_world.agent.consume("cid:track-%d" % index)
        assert result.clear_content == b"tune-%d" % index * 100


def test_album_share_one_count_pool(fast_world):
    """Count constraints are per-RO state: an album with play_count(2)
    allows two plays total across its tracks."""
    from repro.drm.errors import PermissionDeniedError
    dcfs = publish_album(fast_world)
    fast_world.agent.register(fast_world.ri)
    grants = [fast_world.ci.negotiate_license("cid:track-%d" % i)
              for i in range(3)]
    fast_world.ri.add_offer("ro:limited", grants, play_count(2))
    protected = fast_world.agent.acquire(fast_world.ri, "ro:limited")
    fast_world.agent.install(protected, dcfs)
    fast_world.agent.consume("cid:track-0")
    fast_world.agent.consume("cid:track-1")
    with pytest.raises(PermissionDeniedError):
        fast_world.agent.consume("cid:track-2")


def test_install_requires_all_dcfs(fast_world):
    dcfs = publish_album(fast_world)
    fast_world.agent.register(fast_world.ri)
    protected = fast_world.agent.acquire(fast_world.ri, "ro:album")
    with pytest.raises(InstallationError):
        fast_world.agent.install(protected, dcfs[:2])


def test_each_asset_has_its_own_kcek_wrap(fast_world):
    publish_album(fast_world)
    fast_world.agent.register(fast_world.ri)
    protected = fast_world.agent.acquire(fast_world.ri, "ro:album")
    wraps = {a.wrapped_kcek for a in protected.ro.assets}
    assert len(wraps) == 3
    hashes = {a.dcf_hash for a in protected.ro.assets}
    assert len(hashes) == 3


def test_per_asset_dcf_hash_verified(fast_world_factory):
    world = fast_world_factory(verify_dcf_on_install=True)
    dcfs = publish_album(world)
    world.agent.register(world.ri)
    protected = world.agent.acquire(world.ri, "ro:album")
    tampered = dcfs[:2] + [dcfs[2].with_tampered_payload()]
    with pytest.raises(IntegrityError):
        world.agent.install(protected, tampered)


def test_tampering_one_track_blocks_only_that_track(fast_world):
    dcfs = publish_album(fast_world)
    fast_world.agent.register(fast_world.ri)
    protected = fast_world.agent.acquire(fast_world.ri, "ro:album")
    fast_world.agent.install(protected, dcfs)
    fast_world.agent.storage.store_dcf(dcfs[1].with_tampered_payload())
    fast_world.agent.consume("cid:track-0")  # unaffected
    with pytest.raises(IntegrityError):
        fast_world.agent.consume("cid:track-1")
    fast_world.agent.consume("cid:track-2")  # unaffected


def test_rights_object_asset_api():
    ro = RightsObject(
        ro_id="ro:x", rights_issuer_id="ri:x", rights=play_count(1),
        assets=(Asset("cid:a", b"h" * 20, b"w" * 24),
                Asset("cid:b", b"g" * 20, b"v" * 24)),
        issued_at=0,
    )
    assert ro.covers("cid:a") and ro.covers("cid:b")
    assert not ro.covers("cid:c")
    assert ro.asset_for("cid:b").dcf_hash == b"g" * 20
    with pytest.raises(UnknownContentError):
        ro.asset_for("cid:c")
    assert ro.content_id == "cid:a"  # first-asset convenience


def test_empty_asset_list_rejected():
    with pytest.raises(ValueError):
        RightsObject(ro_id="ro:x", rights_issuer_id="ri:x",
                     rights=play_count(1), assets=(), issued_at=0)
