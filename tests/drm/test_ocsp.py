"""OCSP responder and response verification."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.meter import PlainCrypto
from repro.crypto.rng import HmacDrbg
from repro.crypto.rsa import generate_keypair
from repro.drm.certificates import CertificationAuthority
from repro.drm.clock import DAY
from repro.drm.errors import (CertificateRevokedError, TrustError,
                              WireDecodeError)
from repro.drm.ocsp import (CertStatus, OCSPResponder, OCSPResponse,
                            ocsp_response_from_bytes,
                            verify_ocsp_response)

NOW = 1_100_000_000
BITS = 512


@pytest.fixture(scope="module")
def crypto():
    return PlainCrypto(HmacDrbg(b"ocsp-tests"))


@pytest.fixture(scope="module")
def ca(crypto):
    return CertificationAuthority(
        "test-ca", generate_keypair(BITS, crypto.rng), crypto, now=NOW)


@pytest.fixture(scope="module")
def responder(ca, crypto):
    return OCSPResponder("test-ocsp", ca,
                         generate_keypair(BITS, crypto.rng), crypto,
                         now=NOW)


@pytest.fixture(scope="module")
def subject_serial(ca, crypto):
    keys = generate_keypair(BITS, crypto.rng)
    return ca.issue("ri:someone", keys.public_key, NOW).serial


def test_good_response_verifies(responder, subject_serial, crypto):
    response = responder.respond(subject_serial, NOW)
    assert response.status is CertStatus.GOOD
    verify_ocsp_response(response, subject_serial,
                         responder.certificate, NOW, crypto)


def test_revoked_certificate_raises(ca, responder, subject_serial, crypto):
    ca.revoke(subject_serial, NOW)
    response = responder.respond(subject_serial, NOW)
    assert response.status is CertStatus.REVOKED
    with pytest.raises(CertificateRevokedError):
        verify_ocsp_response(response, subject_serial,
                             responder.certificate, NOW, crypto)
    # Clean up module-scoped CA state for other tests.
    ca._revoked.clear()


def test_wrong_serial_rejected(responder, subject_serial, crypto):
    response = responder.respond(subject_serial, NOW)
    with pytest.raises(TrustError):
        verify_ocsp_response(response, subject_serial + 1,
                             responder.certificate, NOW, crypto)


def test_stale_response_rejected(responder, subject_serial, crypto):
    response = responder.respond(subject_serial, NOW)
    with pytest.raises(TrustError):
        verify_ocsp_response(response, subject_serial,
                             responder.certificate, NOW + 8 * DAY, crypto)


def test_wrong_responder_certificate_rejected(ca, responder,
                                              subject_serial, crypto):
    response = responder.respond(subject_serial, NOW)
    with pytest.raises(TrustError):
        verify_ocsp_response(response, subject_serial,
                             ca.root_certificate, NOW, crypto)


def test_tampered_response_rejected(responder, subject_serial, crypto):
    response = responder.respond(subject_serial, NOW)
    forged = OCSPResponse(
        serial=response.serial, status=CertStatus.GOOD,
        produced_at=response.produced_at,
        next_update=response.next_update + 1,  # tamper one field
        responder=response.responder, signature=response.signature,
    )
    with pytest.raises(TrustError):
        verify_ocsp_response(forged, subject_serial,
                             responder.certificate, NOW, crypto)


def test_unknown_status_rejected(responder, subject_serial, crypto):
    unsigned = OCSPResponse(
        serial=subject_serial, status=CertStatus.UNKNOWN,
        produced_at=NOW, next_update=NOW + DAY,
        responder="test-ocsp", signature=b"",
    )
    signed = OCSPResponse(
        **{**unsigned.__dict__,
           "signature": crypto.pss_sign(responder._keypair,
                                        unsigned.tbs_bytes())}
    )
    with pytest.raises(TrustError):
        verify_ocsp_response(signed, subject_serial,
                             responder.certificate, NOW, crypto)


def test_response_bytes_deterministic(responder, subject_serial):
    response = responder.respond(subject_serial, NOW)
    assert response.to_bytes() == response.to_bytes()


def test_future_dated_response_rejected(responder, subject_serial, crypto):
    """A pre-signed response presented 'early' (rolled-back terminal
    clock) must not verify beyond the freshness tolerance."""
    response = responder.respond(subject_serial, NOW + DAY)
    with pytest.raises(TrustError, match="future-dated"):
        verify_ocsp_response(response, subject_serial,
                             responder.certificate, NOW, crypto)


def test_future_dating_within_tolerance_allowed(responder, subject_serial,
                                                crypto):
    response = responder.respond(subject_serial, NOW + 60)
    verify_ocsp_response(response, subject_serial,
                         responder.certificate, NOW, crypto)


def test_response_wire_roundtrip(responder, subject_serial):
    response = responder.respond(subject_serial, NOW)
    assert ocsp_response_from_bytes(response.to_bytes()) == response


@pytest.mark.parametrize("blob", [
    b"", b"\x00", b"not an ocsp response",
])
def test_malformed_bytes_raise_wire_decode_error(blob):
    with pytest.raises(WireDecodeError):
        ocsp_response_from_bytes(blob)


@settings(max_examples=200)
@given(blob=st.binary(max_size=256))
def test_fuzzed_bytes_never_escape_the_taxonomy(blob):
    """Arbitrary bytes either decode or raise exactly WireDecodeError —
    never a bare KeyError/TypeError from the parser's guts."""
    try:
        ocsp_response_from_bytes(blob)
    except WireDecodeError:
        pass


_REAL_BLOB_CACHE = []


def _real_response_blob():
    """One real encoded response, built lazily and cached."""
    if not _REAL_BLOB_CACHE:
        crypto = PlainCrypto(HmacDrbg(b"ocsp-fuzz"))
        ca = CertificationAuthority(
            "fuzz-ca", generate_keypair(BITS, crypto.rng), crypto,
            now=NOW)
        responder = OCSPResponder(
            "fuzz-ocsp", ca, generate_keypair(BITS, crypto.rng), crypto,
            now=NOW)
        _REAL_BLOB_CACHE.append(responder.respond(1, NOW).to_bytes())
    return _REAL_BLOB_CACHE[0]


# deadline=None: the first example pays the one-off lazy key generation.
@settings(max_examples=100, deadline=None)
@given(cut=st.integers(min_value=0, max_value=200),
       junk=st.binary(max_size=16))
def test_truncated_and_spliced_real_responses(cut, junk):
    """Mutations of a *real* encoded response stay inside the contract."""
    blob = _real_response_blob()
    mutated = blob[:cut] + junk + blob[cut + len(junk):]
    try:
        ocsp_response_from_bytes(mutated)
    except WireDecodeError:
        pass
