"""Streaming consumption: chunked decryption for progressive playback."""

import pytest

from repro.core.trace import Algorithm, Phase
from repro.drm.errors import IntegrityError, PermissionDeniedError
from repro.drm.rel import play_count

CONTENT = bytes(range(256)) * 37  # 9472 octets, non-trivial pattern


def install(world, count=5):
    dcf = world.ci.publish("cid:s", "audio/mpeg", CONTENT, "u")
    world.ri.add_offer("ro:s", world.ci.negotiate_license("cid:s"),
                       play_count(count))
    world.agent.register(world.ri)
    world.agent.install(world.agent.acquire(world.ri, "ro:s"), dcf)


def test_streamed_content_matches_one_shot(fast_world):
    install(fast_world)
    chunks = list(fast_world.agent.consume_streaming("cid:s",
                                                     chunk_octets=1024))
    assert b"".join(chunks) == CONTENT
    assert all(len(c) == 1024 for c in chunks[:-1])


def test_stream_chunk_sizes(fast_world):
    install(fast_world)
    for chunk_octets in (16, 256, 4096, 65536):
        data = b"".join(fast_world.agent.consume_streaming(
            "cid:s", chunk_octets=chunk_octets))
        assert data == CONTENT


def test_invalid_chunk_size(fast_world):
    install(fast_world)
    with pytest.raises(ValueError):
        fast_world.agent.consume_streaming("cid:s", chunk_octets=100)
    with pytest.raises(ValueError):
        fast_world.agent.consume_streaming("cid:s", chunk_octets=0)


def test_streaming_counts_one_play(fast_world):
    install(fast_world, count=1)
    list(fast_world.agent.consume_streaming("cid:s"))
    with pytest.raises(PermissionDeniedError):
        fast_world.agent.consume("cid:s")


def test_checks_run_before_first_chunk(fast_world):
    """Tampered content is rejected before any plaintext leaves."""
    install(fast_world)
    dcf = fast_world.agent.storage.get_dcf("cid:s")
    fast_world.agent.storage.store_dcf(dcf.with_tampered_payload())
    with pytest.raises(IntegrityError):
        fast_world.agent.consume_streaming("cid:s")


def test_streaming_total_blocks_match_one_shot(fast_world):
    """The cost model sees the same AES block count either way (modulo
    per-chunk key-schedule invocations)."""
    install(fast_world)
    fast_world.agent_crypto.reset_trace()
    list(fast_world.agent.consume_streaming("cid:s",
                                            chunk_octets=1024))
    streaming = fast_world.agent_crypto.reset_trace()
    fast_world.agent.consume("cid:s")
    oneshot = fast_world.agent_crypto.reset_trace()
    stream_blocks = streaming.totals_by_algorithm()[
        Algorithm.AES_DECRYPT][1]
    oneshot_blocks = oneshot.totals_by_algorithm()[
        Algorithm.AES_DECRYPT][1]
    assert stream_blocks == oneshot_blocks
    assert all(r.phase is Phase.CONSUMPTION for r in streaming)


def test_lazy_generator_defers_decryption(fast_world):
    install(fast_world)
    fast_world.agent_crypto.reset_trace()
    stream = fast_world.agent.consume_streaming("cid:s",
                                                chunk_octets=1024)
    # Checks ran, but no bulk decryption yet.
    labels = [r.label for r in fast_world.agent_crypto.trace]
    assert "content-decrypt-chunk" not in labels
    next(stream)
    labels = [r.label for r in fast_world.agent_crypto.trace]
    assert labels.count("content-decrypt-chunk") == 1
