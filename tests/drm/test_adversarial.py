"""Failure injection: systematic tampering across every protected surface.

For each field an attacker on the wire (or in flash) could modify, the
corresponding integrity mechanism must fire: message signatures, the RO
MAC, the key-wrap integrity register, the DCF hash, certificate
signatures. One parametrized matrix instead of scattered cases, plus
hypothesis-driven bit-flipping over whole serialized objects.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.errors import CryptoError, SignatureError
from repro.crypto.kem import KemCiphertext
from repro.drm.errors import DRMError
from repro.drm.rel import play_count

CONTENT = b"protected-bytes" * 20


def full_setup(world):
    """Register, list a license, acquire — return everything tamperable."""
    dcf = world.ci.publish("cid:adv", "audio/mpeg", CONTENT, "u")
    world.ri.add_offer("ro:adv", world.ci.negotiate_license("cid:adv"),
                       play_count(5))
    world.agent.register(world.ri)
    protected = world.agent.acquire(world.ri, "ro:adv")
    return dcf, protected


def flip_byte(blob: bytes, index: int) -> bytes:
    mutated = bytearray(blob)
    mutated[index % len(mutated)] ^= 0x01
    return bytes(mutated)


# -- Protected RO field tampering -------------------------------------------

def mutate_mac(protected):
    return dataclasses.replace(protected, mac=flip_byte(protected.mac, 3))


def mutate_rights(protected):
    richer = dataclasses.replace(protected.ro, rights=play_count(10 ** 9))
    return dataclasses.replace(protected, ro=richer)


def mutate_ro_id(protected):
    renamed = dataclasses.replace(protected.ro, ro_id="ro:spoofed")
    return dataclasses.replace(protected, ro=renamed)


def mutate_dcf_hash(protected):
    asset = protected.ro.assets[0]
    forged_asset = dataclasses.replace(
        asset, dcf_hash=flip_byte(asset.dcf_hash, 0))
    forged = dataclasses.replace(protected.ro, assets=(forged_asset,))
    return dataclasses.replace(protected, ro=forged)


def mutate_wrapped_kcek(protected):
    asset = protected.ro.assets[0]
    forged_asset = dataclasses.replace(
        asset, wrapped_kcek=flip_byte(asset.wrapped_kcek, 5))
    forged = dataclasses.replace(protected.ro, assets=(forged_asset,))
    return dataclasses.replace(protected, ro=forged)


def mutate_c1(protected):
    kem = protected.kem_ciphertext
    return dataclasses.replace(
        protected,
        kem_ciphertext=KemCiphertext(c1=flip_byte(kem.c1, 17),
                                     c2=kem.c2))


def mutate_c2(protected):
    kem = protected.kem_ciphertext
    return dataclasses.replace(
        protected,
        kem_ciphertext=KemCiphertext(c1=kem.c1,
                                     c2=flip_byte(kem.c2, 9)))


def mutate_issuer(protected):
    forged = dataclasses.replace(protected.ro,
                                 rights_issuer_id="ri:imposter")
    return dataclasses.replace(protected, ro=forged)


RO_MUTATIONS = [mutate_mac, mutate_rights, mutate_ro_id,
                mutate_dcf_hash, mutate_wrapped_kcek, mutate_c1,
                mutate_c2, mutate_issuer]


@pytest.mark.parametrize("mutate", RO_MUTATIONS,
                         ids=[m.__name__ for m in RO_MUTATIONS])
def test_tampered_protected_ro_never_installs(fast_world, mutate):
    dcf, protected = full_setup(fast_world)
    tampered = mutate(protected)
    with pytest.raises((DRMError, CryptoError)):
        fast_world.agent.install(tampered, dcf)
    # And even if tampering somehow got this far, consumption of the
    # untampered original still works (no state was corrupted).
    fast_world.agent.install(protected, dcf)
    assert fast_world.agent.consume("cid:adv").clear_content == CONTENT


def test_dcf_hash_binding_prevents_content_swap(fast_world):
    """An RO for one DCF must not unlock a different DCF encrypted under
    the same catalogue entry shape (the RO-DCF binding, paper §2.4.3)."""
    dcf, protected = full_setup(fast_world)
    other = fast_world.ci.publish("cid:adv", "audio/mpeg",
                                  b"different" * 30, "u")
    fast_world.agent.install(protected, dcf)
    fast_world.agent.storage.store_dcf(other)  # attacker swaps the file
    with pytest.raises(DRMError):
        fast_world.agent.consume("cid:adv")


@given(index=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_any_single_bitflip_in_c_is_caught(index):
    """Property: no single-byte corruption of C = C1||C2 yields keys."""
    from repro.crypto.rng import HmacDrbg
    from repro.crypto.rsa import generate_keypair
    from repro.crypto.kem import kem_decrypt, kem_encrypt
    keypair = generate_keypair(512, HmacDrbg(b"adv-kem"))
    ciphertext = kem_encrypt(keypair.public_key, b"M" * 16 + b"R" * 16,
                             HmacDrbg(b"encaps"))
    blob = ciphertext.concatenation()
    mutated = flip_byte(blob, index)
    tampered = KemCiphertext.split(mutated, keypair.modulus_octets)
    try:
        recovered = kem_decrypt(keypair, tampered)
    except CryptoError:
        return  # rejected, as desired
    # Astronomically unlikely; if unwrap somehow passed, keys must differ
    # detection then happens at the MAC check.
    assert recovered != b"M" * 16 + b"R" * 16


def test_signature_stripping_downgrade(fast_world_factory):
    """Removing the optional Device-RO signature must not grant anything
    extra — but *forging* one must fail."""
    world = fast_world_factory(sign_device_ros=True)
    dcf = world.ci.publish("cid:s", "audio/mpeg", CONTENT, "u")
    world.ri.add_offer("ro:s", world.ci.negotiate_license("cid:s"),
                       play_count(2))
    world.agent.register(world.ri)
    protected = world.agent.acquire(world.ri, "ro:s")
    forged = dataclasses.replace(
        protected, signature=flip_byte(protected.signature, 11))
    with pytest.raises(SignatureError):
        world.agent.install(forged, dcf)


def test_cross_device_kem_isolation(fast_world, fast_world_factory):
    """Key material encapsulated to one device is opaque to another."""
    dcf, protected = full_setup(fast_world)
    other = fast_world_factory(seed="eavesdropper")
    with pytest.raises((DRMError, CryptoError)):
        other.agent.install(protected, dcf)
    # The eavesdropper's failure leaves no partial state behind.
    assert other.agent.storage.installed_ros == {}
    assert not other.agent.storage.replay_cache