"""Fuzzing the wire decoders: malformed bytes never escape the taxonomy.

The hardening contract (see ``docs/resilience.md``): whatever a faulty
bearer delivers, ``serialize.decode`` and ``wire.decode_message`` either
return a value or raise a typed :class:`~repro.drm.errors.DRMError`
(concretely :class:`~repro.drm.errors.WireDecodeError`) — never a bare
``KeyError``/``UnicodeDecodeError``/``RecursionError`` from the guts of
the parser.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.drm.errors import DRMError, WireDecodeError
from repro.drm.rel import play_count
from repro.drm.roap.wire import WireChannel, decode_message, encode_message
from repro.drm.serialize import decode, encode
from repro.usecases.world import DRMWorld


class _CapturingChannel(WireChannel):
    """Records every blob (both directions) that crosses the wire."""

    def __init__(self, rights_issuer):
        super().__init__(rights_issuer)
        self.blobs = []

    def _deliver(self, handler, request, request_blob):
        self.blobs.append(request_blob)
        response_blob = super()._deliver(handler, request, request_blob)
        self.blobs.append(response_blob)
        return response_blob


@pytest.fixture(scope="module")
def valid_blobs():
    """Real wire blobs from a full registration + acquisition + join."""
    world = DRMWorld.create("fuzz-wire", rsa_bits=512)
    world.ci.publish("cid:f", "audio/mpeg", b"tune" * 64, "u")
    world.ri.add_offer("ro:f", world.ci.negotiate_license("cid:f"),
                       play_count(3))
    world.ri.create_domain("domain:f")
    channel = _CapturingChannel(world.ri)
    world.agent.register(channel)
    world.agent.acquire(channel, "ro:f")
    world.agent.join_domain(channel, "domain:f")
    world.agent.leave_domain(channel, "domain:f")
    return channel.blobs


@settings(max_examples=300)
@given(blob=st.binary(max_size=512))
def test_decode_raw_bytes_never_escapes(blob):
    try:
        decode(blob)
    except WireDecodeError:
        pass


@settings(max_examples=300)
@given(blob=st.binary(max_size=512))
def test_decode_message_raw_bytes_never_escapes(blob):
    try:
        decode_message(blob)
    except DRMError:
        pass


@settings(max_examples=200)
@given(data=st.data())
def test_truncated_valid_messages_never_escape(valid_blobs, data):
    blob = data.draw(st.sampled_from(valid_blobs))
    cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    with pytest.raises(WireDecodeError):
        decode_message(blob[:cut])


@settings(max_examples=200)
@given(data=st.data())
def test_bit_flipped_valid_messages_never_escape(valid_blobs, data):
    blob = data.draw(st.sampled_from(valid_blobs))
    octet = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    bit = data.draw(st.integers(min_value=0, max_value=7))
    mutated = bytearray(blob)
    mutated[octet] ^= 1 << bit
    try:
        decode_message(bytes(mutated))
    except DRMError:
        pass


@settings(max_examples=200)
@given(data=st.data())
def test_spliced_valid_messages_never_escape(valid_blobs, data):
    """Concatenations and cross-splices of real blobs stay typed."""
    first = data.draw(st.sampled_from(valid_blobs))
    second = data.draw(st.sampled_from(valid_blobs))
    cut = data.draw(st.integers(min_value=0, max_value=len(first)))
    try:
        decode_message(first[:cut] + second)
    except DRMError:
        pass


def test_deeply_nested_blob_is_rejected_not_recursion_error():
    blob = encode([])
    for _ in range(200):
        blob = b"l%d:%s" % (len(blob), blob)
    with pytest.raises(WireDecodeError):
        decode(blob)


def test_valid_blobs_round_trip(valid_blobs):
    for blob in valid_blobs:
        message = decode_message(blob)
        assert encode_message(message) == blob


def test_decode_rejects_non_bytes():
    with pytest.raises(WireDecodeError):
        decode("not bytes")
