"""LeaveDomain: the 2-pass departure protocol."""

import pytest

from repro.drm.errors import DomainError, NotRegisteredError
from repro.drm.identifiers import domain_id
from repro.drm.rel import play_count

DOMAIN = domain_id("family")


def join(world):
    world.ri.create_domain(DOMAIN)
    world.agent.register(world.ri)
    world.agent.join_domain(world.ri, DOMAIN)


def test_leave_removes_membership_both_sides(fast_world):
    join(fast_world)
    fast_world.agent.leave_domain(fast_world.ri, DOMAIN)
    assert not fast_world.ri.domains.is_member(
        DOMAIN, fast_world.agent.device_id)
    with pytest.raises(NotRegisteredError):
        fast_world.agent.storage.get_domain_context(DOMAIN)


def test_leave_frees_a_roster_slot(fast_world):
    fast_world.ri.create_domain(domain_id("tiny"))
    fast_world.ri.domains.get(domain_id("tiny")).max_members = 1
    fast_world.agent.register(fast_world.ri)
    fast_world.agent.join_domain(fast_world.ri, domain_id("tiny"))
    with pytest.raises(DomainError):
        fast_world.ri.domains.join(domain_id("tiny"), "device:other")
    fast_world.agent.leave_domain(fast_world.ri, domain_id("tiny"))
    fast_world.ri.domains.join(domain_id("tiny"), "device:other")


def test_cannot_leave_without_membership(fast_world):
    fast_world.ri.create_domain(DOMAIN)
    fast_world.agent.register(fast_world.ri)
    with pytest.raises(NotRegisteredError):
        fast_world.agent.leave_domain(fast_world.ri, DOMAIN)


def test_cannot_install_domain_ro_after_leaving(fast_world):
    join(fast_world)
    dcf = fast_world.ci.publish("cid:d", "audio/mpeg", b"x" * 256, "u")
    fast_world.ri.add_offer("ro:d",
                            fast_world.ci.negotiate_license("cid:d"),
                            play_count(5))
    protected = fast_world.agent.acquire(fast_world.ri, "ro:d",
                                         domain_id=DOMAIN)
    fast_world.agent.leave_domain(fast_world.ri, DOMAIN)
    with pytest.raises(NotRegisteredError):
        fast_world.agent.install(protected, dcf)


def test_already_installed_domain_content_survives_leave(fast_world):
    """Leaving stops future installs; already-installed ROs keep their
    C2dev copy under K_DEV and keep playing (paper's robustness-rule
    territory, not ROAP's)."""
    join(fast_world)
    dcf = fast_world.ci.publish("cid:d", "audio/mpeg", b"x" * 256, "u")
    fast_world.ri.add_offer("ro:d",
                            fast_world.ci.negotiate_license("cid:d"),
                            play_count(5))
    protected = fast_world.agent.acquire(fast_world.ri, "ro:d",
                                         domain_id=DOMAIN)
    fast_world.agent.install(protected, dcf)
    fast_world.agent.leave_domain(fast_world.ri, DOMAIN)
    assert fast_world.agent.consume("cid:d").clear_content == b"x" * 256


def test_ri_rejects_unknown_device(fast_world):
    from repro.drm.roap.messages import LeaveDomainRequest
    fast_world.ri.create_domain(DOMAIN)
    request = LeaveDomainRequest(
        device_id="device:stranger", ri_id=fast_world.ri.ri_id,
        domain_id=DOMAIN, device_nonce=b"n" * 14, request_time=0,
        signature=b"x" * 64,
    )
    with pytest.raises(DomainError):
        fast_world.ri.leave_domain(request)
