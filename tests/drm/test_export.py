"""The REL export permission: copy/move to another DRM system."""

import pytest

from repro.core.trace import Phase
from repro.drm.errors import (PermissionDeniedError, UnknownContentError)
from repro.drm.rel import (ExportConstraint, ExportMode, Permission,
                           PermissionType, Rights, export_rights,
                           play_count)

TARGET = "removable-media-drm"
CONTENT = b"exportable" * 40


def install_with_rights(world, rights):
    dcf = world.ci.publish("cid:e", "audio/mpeg", CONTENT, "u")
    world.ri.add_offer("ro:e", world.ci.negotiate_license("cid:e"),
                       rights)
    world.agent.register(world.ri)
    protected = world.agent.acquire(world.ri, "ro:e")
    world.agent.install(protected, dcf)


def test_export_copy_keeps_local_rights(fast_world):
    install_with_rights(fast_world,
                        export_rights((TARGET,), ExportMode.COPY))
    result = fast_world.agent.export("cid:e", TARGET)
    assert result.clear_content == CONTENT
    assert result.mode is ExportMode.COPY
    # Local PLAY still works after a copy export.
    assert fast_world.agent.consume("cid:e").clear_content == CONTENT


def test_export_move_surrenders_local_rights(fast_world):
    install_with_rights(fast_world,
                        export_rights((TARGET,), ExportMode.MOVE))
    result = fast_world.agent.export("cid:e", TARGET)
    assert result.mode is ExportMode.MOVE
    with pytest.raises(UnknownContentError):
        fast_world.agent.consume("cid:e")
    with pytest.raises(UnknownContentError):
        fast_world.agent.export("cid:e", TARGET)


def test_export_to_unauthorized_target_rejected(fast_world):
    install_with_rights(fast_world,
                        export_rights((TARGET,), ExportMode.COPY))
    with pytest.raises(PermissionDeniedError):
        fast_world.agent.export("cid:e", "bluetooth-beam")
    # The denial consumed nothing; the authorized export still works.
    fast_world.agent.export("cid:e", TARGET)


def test_export_without_permission_rejected(fast_world):
    install_with_rights(fast_world, play_count(5))
    with pytest.raises(PermissionDeniedError):
        fast_world.agent.export("cid:e", TARGET)


def test_export_respects_count_constraint(fast_world):
    from repro.drm.rel import CountConstraint
    rights = Rights(permissions=(
        Permission(PermissionType.EXPORT,
                   (ExportConstraint((TARGET,), ExportMode.COPY),
                    CountConstraint(1))),
    ))
    install_with_rights(fast_world, rights)
    fast_world.agent.export("cid:e", TARGET)
    with pytest.raises(PermissionDeniedError):
        fast_world.agent.export("cid:e", TARGET)


def test_export_costs_a_full_access(fast_world):
    """Export pays the same crypto bill as a consumption."""
    install_with_rights(fast_world,
                        export_rights((TARGET,), ExportMode.COPY))
    fast_world.agent_crypto.reset_trace()
    fast_world.agent.export("cid:e", TARGET)
    labels = [r.label for r in fast_world.agent_crypto.trace]
    assert labels == ["c2dev-unwrap", "ro-mac", "dcf-hash",
                      "kcek-unwrap", "content-decrypt"]
    assert all(r.phase is Phase.CONSUMPTION
               for r in fast_world.agent_crypto.trace)


def test_replay_cache_blocks_reinstall_after_move(fast_world):
    """A moved RO cannot be re-installed from a kept copy of the
    ROResponse — the replay cache remembers it."""
    from repro.drm.errors import InstallationError
    dcf = fast_world.ci.publish("cid:e", "audio/mpeg", CONTENT, "u")
    fast_world.ri.add_offer("ro:e",
                            fast_world.ci.negotiate_license("cid:e"),
                            export_rights((TARGET,), ExportMode.MOVE))
    fast_world.agent.register(fast_world.ri)
    protected = fast_world.agent.acquire(fast_world.ri, "ro:e")
    fast_world.agent.install(protected, dcf)
    fast_world.agent.export("cid:e", TARGET)
    with pytest.raises(InstallationError):
        fast_world.agent.install(protected, dcf)
