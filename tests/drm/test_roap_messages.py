"""ROAP messages: serialization, sizes and nonce discipline."""

import pytest

from repro.core.meter import PlainCrypto
from repro.crypto.rng import HmacDrbg
from repro.drm.roap.messages import (DeviceHello, NONCE_LENGTH, RIHello,
                                     new_nonce)


def test_nonce_length_and_freshness():
    crypto = PlainCrypto(HmacDrbg(b"nonce-tests"))
    first = new_nonce(crypto)
    second = new_nonce(crypto)
    assert len(first) == NONCE_LENGTH == 14
    assert first != second


def test_device_hello_bytes():
    hello = DeviceHello(version="2.0", device_id="device:x",
                        supported_algorithms=("SHA-1", "AES-128-CBC"))
    blob = hello.to_bytes()
    assert blob == hello.to_bytes()
    assert b"DeviceHello" in blob
    assert b"device:x" in blob


def test_ri_hello_bytes_cover_nonce():
    a = RIHello(version="2.0", ri_id="ri:x", session_id="s1",
                ri_nonce=b"\x01" * 14, selected_algorithms=("SHA-1",))
    b = RIHello(version="2.0", ri_id="ri:x", session_id="s1",
                ri_nonce=b"\x02" * 14, selected_algorithms=("SHA-1",))
    assert a.to_bytes() != b.to_bytes()


def test_signed_message_separates_tbs(fast_world):
    """tbs_bytes excludes the signature; to_bytes includes it."""
    fast_world.agent.register(fast_world.ri)
    # Reconstruct a registration request the way the agent does.
    from repro.drm.roap.messages import RegistrationRequest
    request = RegistrationRequest(
        session_id="s", device_nonce=b"n" * 14, request_time=0,
        certificate=fast_world.agent.certificate, signature=b"SIG",
    )
    assert b"SIG" not in request.tbs_bytes()
    assert b"SIG" in request.to_bytes()
    unsigned = RegistrationRequest(
        session_id="s", device_nonce=b"n" * 14, request_time=0,
        certificate=fast_world.agent.certificate,
    )
    assert unsigned.tbs_bytes() == request.tbs_bytes()


def test_message_sizes_are_realistic(paper_world):
    """ROAP messages at 1024-bit keys land in the standard's size range.

    The paper derived message sizes from its Java model; our canonical
    encoding should be within the same order of magnitude: hundreds of
    octets for hellos, roughly a kilobyte when a certificate rides along.
    """
    hello = DeviceHello(
        version="2.0", device_id=paper_world.agent.device_id,
        supported_algorithms=("SHA-1", "HMAC-SHA1", "AES-128-WRAP",
                              "AES-128-CBC", "RSA-PSS", "KDF2",
                              "RSA-1024"))
    assert 50 <= len(hello.to_bytes()) <= 400
    cert_octets = len(paper_world.agent.certificate.to_bytes())
    assert 400 <= cert_octets <= 1200  # ~1024-bit modulus + metadata


@pytest.mark.parametrize("field_change", ["ro_id", "device_nonce"])
def test_ro_request_tbs_covers_fields(field_change):
    from repro.drm.roap.messages import RORequest
    base = dict(device_id="d", ri_id="r", ro_id="ro:1",
                device_nonce=b"n" * 14, request_time=5)
    changed = dict(base)
    if field_change == "ro_id":
        changed["ro_id"] = "ro:2"
    else:
        changed["device_nonce"] = b"m" * 14
    assert RORequest(**base).tbs_bytes() \
        != RORequest(**changed).tbs_bytes()
