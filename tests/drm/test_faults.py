"""The fault-injection channel: policies, plans, logs, transport."""

import pytest

from repro.drm.clock import SimulationClock
from repro.drm.errors import ChannelTimeoutError, RoapStatusError
from repro.drm.roap.faults import (DEFAULT_TIMEOUT_SECONDS, FaultKind,
                                   FaultLog, FaultPlan, FaultPolicy,
                                   FaultyChannel, SERVER_BUSY)
from repro.drm.roap.messages import DeviceHello
from repro.drm.identifiers import DEFAULT_ALGORITHMS, ROAP_VERSION


def make_channel(world, policy=FaultPolicy(), per_message=None,
                 seed="test-faults", **kwargs):
    plan = FaultPlan(seed=seed, default=policy, per_message=per_message)
    return FaultyChannel(world.ri, plan, clock=world.clock, **kwargs)


# -- FaultPolicy ----------------------------------------------------------
def test_policy_rates_must_be_probabilities():
    with pytest.raises(ValueError):
        FaultPolicy(drop=-0.1)
    with pytest.raises(ValueError):
        FaultPolicy(drop=0.7, bit_flip=0.7)
    with pytest.raises(ValueError):
        FaultPolicy(delay=0.1, delay_seconds=-1)


def test_policy_constructors():
    assert FaultPolicy.loss(0.25).drop == 0.25
    assert FaultPolicy.loss(0.25).total_rate() == 0.25
    mixed = FaultPolicy.mixed(0.7)
    assert mixed.total_rate() == pytest.approx(0.7)
    assert mixed.drop == pytest.approx(0.1)


# -- FaultPlan ------------------------------------------------------------
def test_plan_is_deterministic_per_seed():
    def draws(seed):
        plan = FaultPlan(seed, FaultPolicy.mixed(0.9))
        return [plan.draw("M") for _ in range(50)]

    assert draws("s1") == draws("s1")
    assert draws("s1") != draws("s2")


def test_plan_zero_rate_never_faults():
    plan = FaultPlan("s", FaultPolicy())
    assert all(plan.draw("M") is None for _ in range(100))


def test_plan_full_drop_always_faults():
    plan = FaultPlan("s", FaultPolicy.loss(1.0))
    assert all(plan.draw("M") is FaultKind.DROP for _ in range(100))


def test_plan_per_message_override():
    plan = FaultPlan("s", FaultPolicy(),
                     per_message={"RegistrationRequest":
                                  FaultPolicy.loss(1.0)})
    assert plan.draw("DeviceHello") is None
    assert plan.draw("RegistrationRequest") is FaultKind.DROP
    assert plan.policy_for("RORequest") is plan.default


# -- FaultLog -------------------------------------------------------------
def test_fault_log_counters():
    log = FaultLog()
    log.add("device->ri", "DeviceHello", FaultKind.DROP)
    log.add("ri->device", "RIHello", FaultKind.BIT_FLIP, "bit 3")
    log.add("ri->device", "RIHello", FaultKind.DROP)
    assert len(log) == 3
    assert log.count(FaultKind.DROP) == 2
    assert log.by_kind()[FaultKind.BIT_FLIP] == 1
    assert log.by_message() == {"DeviceHello": 1, "RIHello": 2}
    assert [e.sequence for e in log.events] == [0, 1, 2]


# -- FaultyChannel transport ---------------------------------------------
def test_drop_times_out_and_advances_clock(fast_world):
    channel = make_channel(fast_world, FaultPolicy.loss(1.0))
    before = fast_world.clock.now
    with pytest.raises(ChannelTimeoutError):
        fast_world.agent.register(channel)
    assert fast_world.clock.now == before + DEFAULT_TIMEOUT_SECONDS
    assert channel.faults.count(FaultKind.DROP) == 1


def test_error_status_surfaces_as_status_error(fast_world):
    channel = make_channel(fast_world, FaultPolicy(error_status=1.0))
    with pytest.raises(RoapStatusError) as info:
        fast_world.agent.register(channel)
    assert info.value.status == SERVER_BUSY


def test_uplink_corruption_times_out(fast_world):
    channel = make_channel(fast_world, FaultPolicy(truncate=1.0))
    with pytest.raises(ChannelTimeoutError):
        fast_world.agent.register(channel)
    assert channel.faults.count(FaultKind.TRUNCATE) == 1


def test_delay_below_timeout_still_delivers(fast_world):
    channel = make_channel(
        fast_world, FaultPolicy(delay=1.0, delay_seconds=3))
    before = fast_world.clock.now
    context = fast_world.agent.register(channel)
    assert context.ri_id == fast_world.ri.ri_id
    # Every transmission of the 4-pass run arrived 3 s late.
    assert fast_world.clock.now == before + 3 * len(channel.log.records)


def test_delay_at_timeout_behaves_like_drop(fast_world):
    channel = make_channel(
        fast_world,
        FaultPolicy(delay=1.0, delay_seconds=DEFAULT_TIMEOUT_SECONDS))
    with pytest.raises(ChannelTimeoutError):
        fast_world.agent.register(channel)


def test_duplicate_registration_request_creates_one_context(fast_world):
    """A replayed RegistrationRequest must hit the RI's replay cache."""
    channel = make_channel(
        fast_world,
        per_message={"RegistrationRequest": FaultPolicy(duplicate=1.0)})
    context = fast_world.agent.register(channel)
    assert context.ri_id == fast_world.ri.ri_id
    assert channel.faults.count(FaultKind.DUPLICATE) == 1
    assert fast_world.ri.context_count(fast_world.agent.device_id) == 1


def test_duplicate_response_costs_only_octets(fast_world):
    channel = make_channel(
        fast_world,
        per_message={"RegistrationResponse": FaultPolicy(duplicate=1.0)})
    fast_world.agent.register(channel)
    count, _octets = channel.log.by_message()["RegistrationResponse"]
    assert count == 2
    assert fast_world.ri.context_count(fast_world.agent.device_id) == 1


def test_fault_log_mirrors_message_log_directions(fast_world):
    channel = make_channel(fast_world, FaultPolicy.loss(1.0))
    with pytest.raises(ChannelTimeoutError):
        fast_world.agent.register(channel)
    event = channel.faults.events[0]
    assert event.direction == "device->ri"
    assert event.message == "DeviceHello"


def test_hello_unaffected_on_clean_channel(fast_world):
    channel = make_channel(fast_world)
    hello = DeviceHello(version=ROAP_VERSION,
                        device_id=fast_world.agent.device_id,
                        supported_algorithms=DEFAULT_ALGORITHMS)
    ri_hello = channel.hello(hello)
    assert ri_hello.ri_id == fast_world.ri.ri_id
    assert len(channel.faults) == 0


def test_timeout_must_be_positive(fast_world):
    with pytest.raises(ValueError):
        make_channel(fast_world, timeout_seconds=0)
