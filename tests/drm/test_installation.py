"""RO installation: the Figure 3 unwrap chain and the C2dev re-wrap."""

import dataclasses

import pytest

from repro.core.trace import Algorithm, Phase
from repro.drm.errors import InstallationError, IntegrityError
from repro.drm.rel import play_count

from .test_acquisition import offer_license


def acquire(world, **offer_kwargs):
    dcf, cid, ro_id = offer_license(world, **offer_kwargs)
    world.agent.register(world.ri)
    protected = world.agent.acquire(world.ri, ro_id)
    return dcf, cid, protected


def test_install_stores_ro_and_dcf(fast_world):
    dcf, cid, protected = acquire(fast_world)
    installed = fast_world.agent.install(protected, dcf)
    assert fast_world.agent.storage.find_ro_for_content(cid) is installed
    assert fast_world.agent.storage.get_dcf(cid) is dcf


def test_install_rewraps_under_kdev(fast_world):
    dcf, cid, protected = acquire(fast_world)
    installed = fast_world.agent.install(protected, dcf)
    assert installed.c2dev is not None
    # C2dev unwraps to K_MAC || K_REK under the device key.
    key_material = fast_world.agent_crypto.aes_unwrap(
        fast_world.agent.secure.kdev, installed.c2dev)
    assert len(key_material) == 32
    # K_MAC (first half) authenticates the RO payload.
    assert fast_world.agent_crypto.hmac_verify(
        key_material[:16], protected.ro.payload_bytes(), protected.mac)


def test_install_operation_counts(fast_world):
    """Installation: RSADP (1 private op), KDF2+unwrap, MAC, re-wrap."""
    dcf, cid, protected = acquire(fast_world)
    fast_world.agent_crypto.reset_trace()
    fast_world.agent.install(protected, dcf)
    trace = fast_world.agent_crypto.trace
    assert all(r.phase is Phase.INSTALLATION for r in trace)
    totals = trace.totals_by_algorithm()
    assert totals[Algorithm.RSA_PRIVATE] == (1, 1)
    assert Algorithm.RSA_PUBLIC not in totals  # unsigned device RO
    assert Algorithm.AES_DECRYPT in totals    # C2 unwrap
    assert Algorithm.AES_ENCRYPT in totals    # C2dev re-wrap
    assert Algorithm.HMAC_SHA1 in totals      # RO MAC


def test_tampered_mac_rejected(fast_world):
    dcf, cid, protected = acquire(fast_world)
    bad_mac = bytes([protected.mac[0] ^ 1]) + protected.mac[1:]
    tampered = dataclasses.replace(protected, mac=bad_mac)
    with pytest.raises(IntegrityError):
        fast_world.agent.install(tampered, dcf)


def test_tampered_rights_rejected(fast_world):
    """Upgrading the rights grant in transit breaks the MAC."""
    dcf, cid, protected = acquire(fast_world, count=1)
    better_ro = dataclasses.replace(protected.ro, rights=play_count(9999))
    tampered = dataclasses.replace(protected, ro=better_ro)
    with pytest.raises(IntegrityError):
        fast_world.agent.install(tampered, dcf)


def test_tampered_kem_ciphertext_rejected(fast_world):
    dcf, cid, protected = acquire(fast_world)
    bad_c2 = bytearray(protected.kem_ciphertext.c2)
    bad_c2[5] ^= 0x01
    tampered = dataclasses.replace(
        protected,
        kem_ciphertext=dataclasses.replace(protected.kem_ciphertext,
                                           c2=bytes(bad_c2)))
    with pytest.raises(InstallationError):
        fast_world.agent.install(tampered, dcf)


def test_ro_for_other_device_rejected(fast_world, fast_world_factory):
    """A second device cannot install a Device RO minted for the first."""
    dcf, cid, protected = acquire(fast_world)
    other = fast_world_factory(seed="other-device")
    other.agent.register(other.ri)
    with pytest.raises(InstallationError):
        other.agent.install(protected, dcf)


def test_verify_dcf_on_install_catches_tamper(fast_world_factory):
    world = fast_world_factory(verify_dcf_on_install=True)
    dcf = world.ci.publish("cid:v", "audio/mpeg", b"x" * 256, "u")
    world.ri.add_offer("ro:v", world.ci.negotiate_license("cid:v"),
                       play_count(1))
    world.agent.register(world.ri)
    protected = world.agent.acquire(world.ri, "ro:v")
    with pytest.raises(IntegrityError):
        world.agent.install(protected, dcf.with_tampered_payload())
    # The pristine DCF installs fine.
    world.agent.install(protected, dcf)


def test_no_kdev_mode_keeps_kem_ciphertext(fast_world_factory):
    world = fast_world_factory(kdev_optimization=False)
    dcf = world.ci.publish("cid:k", "audio/mpeg", b"x" * 256, "u")
    world.ri.add_offer("ro:k", world.ci.negotiate_license("cid:k"),
                       play_count(3))
    world.agent.register(world.ri)
    protected = world.agent.acquire(world.ri, "ro:k")
    installed = world.agent.install(protected, dcf)
    assert installed.c2dev is None
    assert installed.kem_ciphertext is not None
    # Consumption still works, paying the PKI unwrap per access.
    result = world.agent.consume("cid:k")
    assert result.clear_content == b"x" * 256
