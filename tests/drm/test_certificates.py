"""Certificates and the Certification Authority."""

import pytest

from repro.core.meter import PlainCrypto
from repro.crypto.rng import HmacDrbg
from repro.crypto.rsa import generate_keypair
from repro.drm.certificates import (Certificate, CertificationAuthority,
                                    verify_certificate)
from repro.drm.clock import YEAR
from repro.drm.errors import CertificateExpiredError, TrustError

NOW = 1_100_000_000
BITS = 512


@pytest.fixture(scope="module")
def crypto():
    return PlainCrypto(HmacDrbg(b"cert-tests"))


@pytest.fixture(scope="module")
def ca(crypto):
    keys = generate_keypair(BITS, crypto.rng)
    return CertificationAuthority("test-ca", keys, crypto, now=NOW)


@pytest.fixture(scope="module")
def subject_keys(crypto):
    return generate_keypair(BITS, crypto.rng)


def test_root_certificate_is_self_signed(ca, crypto):
    root = ca.root_certificate
    assert root.subject == root.issuer == "test-ca"
    assert root.is_ca
    verify_certificate(root, [root], NOW, crypto)


def test_issue_and_verify(ca, subject_keys, crypto):
    cert = ca.issue("device:x", subject_keys.public_key, NOW)
    assert cert.subject == "device:x"
    assert cert.issuer == "test-ca"
    assert not cert.is_ca
    verify_certificate(cert, [ca.root_certificate], NOW, crypto)


def test_serials_are_unique(ca, subject_keys):
    a = ca.issue("device:a", subject_keys.public_key, NOW)
    b = ca.issue("device:b", subject_keys.public_key, NOW)
    assert a.serial != b.serial


def test_expired_certificate_rejected(ca, subject_keys, crypto):
    cert = ca.issue("device:x", subject_keys.public_key, NOW,
                    validity_seconds=100)
    with pytest.raises(CertificateExpiredError):
        verify_certificate(cert, [ca.root_certificate], NOW + 101, crypto)


def test_not_yet_valid_certificate_rejected(ca, subject_keys, crypto):
    cert = ca.issue("device:x", subject_keys.public_key, NOW)
    with pytest.raises(CertificateExpiredError):
        verify_certificate(cert, [ca.root_certificate], NOW - 1, crypto)


def test_unknown_issuer_rejected(ca, subject_keys, crypto):
    cert = ca.issue("device:x", subject_keys.public_key, NOW)
    with pytest.raises(TrustError):
        verify_certificate(cert, [], NOW, crypto)


def test_tampered_subject_rejected(ca, subject_keys, crypto):
    cert = ca.issue("device:x", subject_keys.public_key, NOW)
    forged = Certificate(
        serial=cert.serial, subject="device:evil", issuer=cert.issuer,
        public_key=cert.public_key, not_before=cert.not_before,
        not_after=cert.not_after, is_ca=cert.is_ca,
        signature=cert.signature,
    )
    with pytest.raises(TrustError):
        verify_certificate(forged, [ca.root_certificate], NOW, crypto)


def test_swapped_public_key_rejected(ca, subject_keys, crypto):
    cert = ca.issue("device:x", subject_keys.public_key, NOW)
    attacker = generate_keypair(BITS, crypto.rng)
    forged = Certificate(
        serial=cert.serial, subject=cert.subject, issuer=cert.issuer,
        public_key=attacker.public_key, not_before=cert.not_before,
        not_after=cert.not_after, is_ca=cert.is_ca,
        signature=cert.signature,
    )
    with pytest.raises(TrustError):
        verify_certificate(forged, [ca.root_certificate], NOW, crypto)


def test_revocation_bookkeeping(ca, subject_keys):
    cert = ca.issue("device:x", subject_keys.public_key, NOW)
    assert not ca.is_revoked(cert.serial)
    ca.revoke(cert.serial, NOW + 5)
    assert ca.is_revoked(cert.serial)
    assert ca.revocation_time(cert.serial) == NOW + 5
    assert ca.revocation_time(99999) is None


def test_default_validity_window(ca, subject_keys):
    cert = ca.issue("device:x", subject_keys.public_key, NOW)
    assert cert.not_after - cert.not_before == 5 * YEAR


def test_certificate_bytes_are_deterministic(ca, subject_keys):
    cert = ca.issue("device:x", subject_keys.public_key, NOW)
    assert cert.to_bytes() == cert.to_bytes()
    assert cert.tbs_bytes() in cert.to_bytes()
