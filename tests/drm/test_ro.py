"""Rights Object structures and their invariants."""

import pytest

from repro.crypto.kem import KemCiphertext
from repro.drm.rel import play_count
from repro.drm.ro import (InstalledRightsObject, ProtectedRightsObject,
                          RightsObject)


def make_ro(domain_id=None):
    return RightsObject.single(
        ro_id="ro:1", content_id="cid:1", rights_issuer_id="ri:x",
        rights=play_count(5), dcf_hash=b"h" * 20,
        wrapped_kcek=b"w" * 24, issued_at=1_100_000_000,
        domain_id=domain_id,
    )


def fake_kem():
    return KemCiphertext(c1=b"\x01" * 128, c2=b"\x02" * 40)


def test_payload_bytes_deterministic():
    assert make_ro().payload_bytes() == make_ro().payload_bytes()


def test_payload_bytes_cover_rights():
    a = make_ro()
    b = RightsObject.single(
        ro_id="ro:1", content_id="cid:1", rights_issuer_id="ri:x",
        rights=play_count(6), dcf_hash=b"h" * 20,
        wrapped_kcek=b"w" * 24, issued_at=1_100_000_000,
    )
    assert a.payload_bytes() != b.payload_bytes()


def test_is_domain_ro():
    assert not make_ro().is_domain_ro
    assert make_ro(domain_id="domain:d+000").is_domain_ro


def test_protected_ro_requires_exactly_one_key_channel():
    with pytest.raises(ValueError):
        ProtectedRightsObject(ro=make_ro(), mac=b"m" * 20)
    with pytest.raises(ValueError):
        ProtectedRightsObject(ro=make_ro(), mac=b"m" * 20,
                              kem_ciphertext=fake_kem(),
                              domain_wrapped_keys=b"d" * 40)


def test_domain_ro_requires_signature():
    with pytest.raises(ValueError):
        ProtectedRightsObject(ro=make_ro(domain_id="domain:d+000"),
                              mac=b"m" * 20,
                              domain_wrapped_keys=b"d" * 40)
    # With a signature it is accepted.
    ProtectedRightsObject(ro=make_ro(domain_id="domain:d+000"),
                          mac=b"m" * 20, domain_wrapped_keys=b"d" * 40,
                          signature=b"s" * 128)


def test_device_ro_signature_optional():
    ProtectedRightsObject(ro=make_ro(), mac=b"m" * 20,
                          kem_ciphertext=fake_kem())
    ProtectedRightsObject(ro=make_ro(), mac=b"m" * 20,
                          kem_ciphertext=fake_kem(), signature=b"s" * 128)


def test_protected_ro_transport_bytes():
    protected = ProtectedRightsObject(ro=make_ro(), mac=b"m" * 20,
                                      kem_ciphertext=fake_kem())
    blob = protected.to_bytes()
    assert blob == protected.to_bytes()
    assert make_ro().payload_bytes() in blob


def test_installed_ro_requires_exactly_one_key_form():
    with pytest.raises(ValueError):
        InstalledRightsObject(ro=make_ro(), c2dev=None, mac=b"m" * 20)
    with pytest.raises(ValueError):
        InstalledRightsObject(ro=make_ro(), c2dev=b"c" * 40,
                              mac=b"m" * 20, kem_ciphertext=fake_kem())


def test_installed_ro_accessors():
    installed = InstalledRightsObject(ro=make_ro(), c2dev=b"c" * 40,
                                      mac=b"m" * 20)
    assert installed.ro_id == "ro:1"
    assert installed.content_id == "cid:1"
