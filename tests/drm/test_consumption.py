"""Per-access consumption: the paper's three steps plus content unlock."""

import dataclasses

import pytest

from repro.core.trace import Algorithm, Phase
from repro.drm.errors import (IntegrityError, PermissionDeniedError,
                              UnknownContentError)
from repro.drm.rel import PermissionType, play_count

from .test_acquisition import offer_license

CONTENT = b"melody-bytes" * 300


def install(world, count=5, content=CONTENT):
    dcf, cid, ro_id = offer_license(world, content=content, count=count)
    world.agent.register(world.ri)
    protected = world.agent.acquire(world.ri, ro_id)
    world.agent.install(protected, dcf)
    return dcf, cid


def test_consume_returns_clear_content(fast_world):
    dcf, cid = install(fast_world)
    result = fast_world.agent.consume(cid)
    assert result.clear_content == CONTENT
    assert result.content_id == cid
    assert result.permission is PermissionType.PLAY


def test_consume_operation_counts(fast_world):
    """Each access: C2dev unwrap, RO MAC, DCF hash, KCEK unwrap, decrypt."""
    dcf, cid = install(fast_world)
    fast_world.agent_crypto.reset_trace()
    fast_world.agent.consume(cid)
    trace = fast_world.agent_crypto.trace
    assert all(r.phase is Phase.CONSUMPTION for r in trace)
    labels = [r.label for r in trace]
    assert labels == ["c2dev-unwrap", "ro-mac", "dcf-hash",
                      "kcek-unwrap", "content-decrypt"]
    totals = trace.totals_by_algorithm()
    assert Algorithm.RSA_PRIVATE not in totals  # K_DEV optimization
    assert Algorithm.RSA_PUBLIC not in totals


def test_consume_decrement_and_exhaustion(fast_world):
    dcf, cid = install(fast_world, count=3)
    for _ in range(3):
        fast_world.agent.consume(cid)
    with pytest.raises(PermissionDeniedError):
        fast_world.agent.consume(cid)


def test_denied_access_consumes_no_count(fast_world):
    dcf, cid = install(fast_world, count=1)
    with pytest.raises(PermissionDeniedError):
        fast_world.agent.consume(cid, PermissionType.PRINT)
    # The PLAY count is untouched by the denied PRINT attempt.
    fast_world.agent.consume(cid)


def test_unknown_content_rejected(fast_world):
    with pytest.raises(UnknownContentError):
        fast_world.agent.consume("cid:ghost")


def test_tampered_dcf_detected_per_access(fast_world):
    """Step 3 of the paper's consumption checklist."""
    dcf, cid = install(fast_world)
    fast_world.agent.storage.store_dcf(dcf.with_tampered_payload())
    with pytest.raises(IntegrityError):
        fast_world.agent.consume(cid)


def test_tampered_stored_ro_detected_per_access(fast_world):
    """Step 2: the MAC check runs on every access, not just install."""
    dcf, cid = install(fast_world, count=5)
    installed = fast_world.agent.storage.find_ro_for_content(cid)
    installed.ro = dataclasses.replace(installed.ro,
                                       rights=play_count(10 ** 6))
    with pytest.raises(IntegrityError):
        fast_world.agent.consume(cid)


def test_corrupted_c2dev_detected(fast_world):
    """Step 1: a damaged C2dev fails the key unwrap integrity check."""
    from repro.crypto.errors import UnwrapError
    dcf, cid = install(fast_world)
    installed = fast_world.agent.storage.find_ro_for_content(cid)
    corrupted = bytearray(installed.c2dev)
    corrupted[7] ^= 0x01
    installed.c2dev = bytes(corrupted)
    with pytest.raises(UnwrapError):
        fast_world.agent.consume(cid)


def test_every_access_repeats_all_checks(fast_world):
    """The paper's point: small files pay the full cost on every ring."""
    dcf, cid = install(fast_world, count=4)
    fast_world.agent_crypto.reset_trace()
    for _ in range(4):
        fast_world.agent.consume(cid)
    trace = fast_world.agent_crypto.trace
    dcf_hashes = [r for r in trace if r.label == "dcf-hash"]
    decrypts = [r for r in trace if r.label == "content-decrypt"]
    assert len(dcf_hashes) == 4
    assert len(decrypts) == 4


def test_consume_display_permission_missing(fast_world):
    dcf, cid = install(fast_world)
    with pytest.raises(PermissionDeniedError):
        fast_world.agent.consume(cid, PermissionType.DISPLAY)
