"""The 2-pass RO acquisition protocol."""

import pytest

from repro.core.trace import Algorithm, Phase
from repro.crypto.errors import SignatureError
from repro.drm.errors import AcquisitionError
from repro.drm.rel import play_count
from repro.drm.roap.messages import RORequest


def offer_license(world, content=b"tune" * 100, count=5):
    """Publish content and list a license; returns (content_id, ro_id)."""
    dcf = world.ci.publish("cid:test", "audio/mpeg", content,
                           "http://ri.example")
    world.ri.add_offer("ro:test", world.ci.negotiate_license("cid:test"),
                       play_count(count))
    return dcf, "cid:test", "ro:test"


def test_acquisition_returns_protected_ro(fast_world):
    dcf, cid, ro_id = offer_license(fast_world)
    fast_world.agent.register(fast_world.ri)
    protected = fast_world.agent.acquire(fast_world.ri, ro_id)
    assert protected.ro.ro_id == ro_id
    assert protected.ro.content_id == cid
    assert protected.kem_ciphertext is not None
    assert protected.signature is None  # device RO unsigned by default


def test_acquisition_operation_counts(fast_world):
    """The paper's acquisition phase: 1 private + 1 public RSA op."""
    dcf, cid, ro_id = offer_license(fast_world)
    fast_world.agent.register(fast_world.ri)
    fast_world.agent.acquire(fast_world.ri, ro_id)
    trace = fast_world.agent_crypto.trace.filter(phase=Phase.ACQUISITION)
    totals = trace.totals_by_algorithm()
    assert totals[Algorithm.RSA_PRIVATE] == (1, 1)
    assert totals[Algorithm.RSA_PUBLIC] == (1, 1)


def test_unknown_license_refused(fast_world):
    fast_world.agent.register(fast_world.ri)
    with pytest.raises(AcquisitionError):
        fast_world.agent.acquire(fast_world.ri, "ro:nonexistent")


def test_unregistered_device_refused_by_ri(fast_world):
    dcf, cid, ro_id = offer_license(fast_world)
    request = RORequest(
        device_id="device:stranger", ri_id=fast_world.ri.ri_id,
        ro_id=ro_id, device_nonce=b"n" * 14,
        request_time=fast_world.clock.now, signature=b"x" * 64,
    )
    with pytest.raises(AcquisitionError):
        fast_world.ri.request_ro(request)


def test_forged_request_signature_refused(fast_world):
    dcf, cid, ro_id = offer_license(fast_world)
    fast_world.agent.register(fast_world.ri)
    request = RORequest(
        device_id=fast_world.agent.device_id, ri_id=fast_world.ri.ri_id,
        ro_id=ro_id, device_nonce=b"n" * 14,
        request_time=fast_world.clock.now,
        signature=b"\x01" * (512 // 8),
    )
    with pytest.raises(SignatureError):
        fast_world.ri.request_ro(request)


def test_sign_device_ros_option(fast_world_factory):
    world = fast_world_factory(sign_device_ros=True)
    dcf = world.ci.publish("cid:s", "audio/mpeg", b"x" * 64, "u")
    world.ri.add_offer("ro:s", world.ci.negotiate_license("cid:s"),
                       play_count(1))
    world.agent.register(world.ri)
    protected = world.agent.acquire(world.ri, "ro:s")
    assert protected.signature is not None
    # And it installs cleanly (the agent verifies the RO signature).
    world.agent.install(protected, dcf)


def test_each_acquisition_mints_fresh_keys(fast_world):
    dcf, cid, ro_id = offer_license(fast_world)
    fast_world.agent.register(fast_world.ri)
    first = fast_world.agent.acquire(fast_world.ri, ro_id)
    second = fast_world.agent.acquire(fast_world.ri, ro_id)
    assert first.mac != second.mac  # fresh K_MAC
    assert first.kem_ciphertext.c1 != second.kem_ciphertext.c1
    assert first.ro.wrapped_kcek != second.ro.wrapped_kcek  # fresh K_REK
