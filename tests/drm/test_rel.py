"""REL: permissions, constraints and stateful consumption."""

import pytest

from repro.drm.errors import PermissionDeniedError
from repro.drm.rel import (CountConstraint, DatetimeConstraint,
                           IntervalConstraint, Permission, PermissionType,
                           Rights, RightsEvaluator, RightsState,
                           play_count, unlimited)

NOW = 1_100_000_000


def make_evaluator(*permissions):
    return RightsEvaluator(Rights(permissions=tuple(permissions)))


def test_unlimited_play():
    evaluator = RightsEvaluator(unlimited())
    state = evaluator.initial_state()
    for _ in range(100):
        evaluator.consume(PermissionType.PLAY, state, NOW)


def test_missing_permission_denied():
    evaluator = RightsEvaluator(unlimited(PermissionType.DISPLAY))
    state = evaluator.initial_state()
    with pytest.raises(PermissionDeniedError):
        evaluator.check(PermissionType.PLAY, state, NOW)


def test_count_constraint_exhausts():
    evaluator = RightsEvaluator(play_count(3))
    state = evaluator.initial_state()
    assert state.remaining_counts[PermissionType.PLAY] == 3
    for _ in range(3):
        evaluator.consume(PermissionType.PLAY, state, NOW)
    assert state.remaining_counts[PermissionType.PLAY] == 0
    with pytest.raises(PermissionDeniedError):
        evaluator.consume(PermissionType.PLAY, state, NOW)


def test_check_does_not_consume():
    evaluator = RightsEvaluator(play_count(1))
    state = evaluator.initial_state()
    evaluator.check(PermissionType.PLAY, state, NOW)
    evaluator.check(PermissionType.PLAY, state, NOW)
    assert state.remaining_counts[PermissionType.PLAY] == 1


def test_datetime_window():
    evaluator = make_evaluator(Permission(
        PermissionType.PLAY,
        (DatetimeConstraint(not_before=NOW, not_after=NOW + 100),),
    ))
    state = evaluator.initial_state()
    with pytest.raises(PermissionDeniedError):
        evaluator.check(PermissionType.PLAY, state, NOW - 1)
    evaluator.check(PermissionType.PLAY, state, NOW)
    evaluator.check(PermissionType.PLAY, state, NOW + 100)
    with pytest.raises(PermissionDeniedError):
        evaluator.check(PermissionType.PLAY, state, NOW + 101)


def test_datetime_open_ended():
    evaluator = make_evaluator(Permission(
        PermissionType.PLAY, (DatetimeConstraint(not_after=NOW + 10),),
    ))
    state = evaluator.initial_state()
    evaluator.check(PermissionType.PLAY, state, 0)  # no lower bound


def test_interval_starts_at_first_use():
    evaluator = make_evaluator(Permission(
        PermissionType.PLAY, (IntervalConstraint(duration=100),),
    ))
    state = evaluator.initial_state()
    # Before first use the interval has not started; any time is fine.
    evaluator.check(PermissionType.PLAY, state, NOW + 10 ** 6)
    evaluator.consume(PermissionType.PLAY, state, NOW)
    assert state.first_use[PermissionType.PLAY] == NOW
    evaluator.check(PermissionType.PLAY, state, NOW + 100)
    with pytest.raises(PermissionDeniedError):
        evaluator.check(PermissionType.PLAY, state, NOW + 101)


def test_first_use_not_overwritten():
    evaluator = make_evaluator(Permission(
        PermissionType.PLAY, (IntervalConstraint(duration=100),),
    ))
    state = evaluator.initial_state()
    evaluator.consume(PermissionType.PLAY, state, NOW)
    evaluator.consume(PermissionType.PLAY, state, NOW + 50)
    assert state.first_use[PermissionType.PLAY] == NOW


def test_combined_constraints_all_must_hold():
    evaluator = make_evaluator(Permission(
        PermissionType.PLAY,
        (CountConstraint(2), DatetimeConstraint(not_after=NOW + 10)),
    ))
    state = evaluator.initial_state()
    evaluator.consume(PermissionType.PLAY, state, NOW)
    with pytest.raises(PermissionDeniedError):
        evaluator.consume(PermissionType.PLAY, state, NOW + 11)
    evaluator.consume(PermissionType.PLAY, state, NOW + 5)
    with pytest.raises(PermissionDeniedError):
        evaluator.consume(PermissionType.PLAY, state, NOW + 6)


def test_multiple_permissions_independent_counts():
    evaluator = make_evaluator(
        Permission(PermissionType.PLAY, (CountConstraint(1),)),
        Permission(PermissionType.DISPLAY, (CountConstraint(2),)),
    )
    state = evaluator.initial_state()
    evaluator.consume(PermissionType.PLAY, state, NOW)
    evaluator.consume(PermissionType.DISPLAY, state, NOW)
    with pytest.raises(PermissionDeniedError):
        evaluator.consume(PermissionType.PLAY, state, NOW)
    evaluator.consume(PermissionType.DISPLAY, state, NOW)


def test_rights_to_bytes_deterministic_and_distinct():
    assert unlimited().to_bytes() == unlimited().to_bytes()
    assert play_count(5).to_bytes() != play_count(6).to_bytes()
    assert unlimited().to_bytes() != play_count(5).to_bytes()


def test_rights_find():
    rights = unlimited(PermissionType.EXECUTE)
    assert rights.find(PermissionType.EXECUTE).type \
        is PermissionType.EXECUTE
    with pytest.raises(PermissionDeniedError):
        rights.find(PermissionType.PRINT)


def test_state_snapshot_is_independent():
    state = RightsState(remaining_counts={PermissionType.PLAY: 3})
    snapshot = state.snapshot()
    state.remaining_counts[PermissionType.PLAY] = 0
    assert snapshot.remaining_counts[PermissionType.PLAY] == 3
