"""Wire codecs: roundtrip fidelity, logged transport, fuzz robustness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trace import Algorithm
from repro.drm.identifiers import domain_id
from repro.drm.rel import play_count
from repro.drm.roap.messages import DeviceHello, RORequest
from repro.drm.roap.triggers import TriggerType
from repro.drm.roap.wire import (MessageLog, WireChannel, decode_message,
                                 encode_message,
                                 rights_object_from_payload)

DOMAIN = domain_id("family")


def offer(world, count=5):
    dcf = world.ci.publish("cid:w", "audio/mpeg", b"w" * 400, "u")
    world.ri.add_offer("ro:w", world.ci.negotiate_license("cid:w"),
                       play_count(count))
    return dcf


# -- codec fidelity ----------------------------------------------------------

def test_device_hello_roundtrip():
    hello = DeviceHello(version="2.0", device_id="device:x",
                        supported_algorithms=("SHA-1", "RSA-1024"))
    assert decode_message(encode_message(hello)) == hello


def test_ro_request_roundtrip():
    request = RORequest(device_id="d", ri_id="r", ro_id="ro:1",
                        device_nonce=b"n" * 14, request_time=77,
                        domain_id=None, signature=b"s" * 64)
    decoded = decode_message(encode_message(request))
    assert decoded == request
    assert decoded.tbs_bytes() == request.tbs_bytes()


def test_registration_response_roundtrip_preserves_signature(fast_world):
    """The load-bearing property: decode(encode(m)) verifies."""
    offer(fast_world)
    channel = WireChannel(fast_world.ri)
    # register() verifies the decoded RegistrationResponse's signature
    # and the decoded certificate chain — if any byte moved, it raises.
    fast_world.agent.register(channel)


def test_protected_ro_roundtrip(fast_world):
    dcf = offer(fast_world)
    fast_world.agent.register(fast_world.ri)
    protected = fast_world.agent.acquire(fast_world.ri, "ro:w")
    from repro.drm.roap.wire import (protected_ro_from_wire,
                                     protected_ro_to_wire)
    rebuilt = protected_ro_from_wire(protected_ro_to_wire(protected))
    assert rebuilt.to_bytes() == protected.to_bytes()
    assert rebuilt.ro.payload_bytes() == protected.ro.payload_bytes()
    # The rebuilt RO still installs and plays.
    fast_world.agent.install(rebuilt, dcf)
    assert fast_world.agent.consume("cid:w").clear_content == b"w" * 400


def test_rights_object_payload_roundtrip(fast_world):
    offer(fast_world)
    fast_world.agent.register(fast_world.ri)
    protected = fast_world.agent.acquire(fast_world.ri, "ro:w")
    rebuilt = rights_object_from_payload(protected.ro.payload_bytes())
    assert rebuilt == protected.ro


def test_trigger_roundtrip(fast_world):
    trigger = fast_world.ri.trigger(TriggerType.RO_ACQUISITION,
                                    ro_id="ro:w")
    decoded = decode_message(encode_message(trigger))
    assert decoded == trigger


def test_unencodable_type_rejected():
    with pytest.raises(TypeError):
        encode_message(object())


# -- full protocol over the wire ----------------------------------------------

def test_full_lifecycle_over_wire_matches_direct(fast_world,
                                                 fast_world_factory):
    """Running through the byte pipe changes nothing observable."""
    dcf = offer(fast_world)
    channel = WireChannel(fast_world.ri)
    fast_world.agent.register(channel)
    protected = fast_world.agent.acquire(channel, "ro:w")
    fast_world.agent.install(protected, dcf)
    result = fast_world.agent.consume("cid:w")
    assert result.clear_content == b"w" * 400

    direct = fast_world_factory(seed="fixture-fast")
    dcf2 = offer(direct)
    direct.agent.register(direct.ri)
    direct.agent.install(direct.agent.acquire(direct.ri, "ro:w"), dcf2)
    direct.agent.consume("cid:w")
    assert fast_world.agent_crypto.trace.canonical() \
        == direct.agent_crypto.trace.canonical()


def test_domain_flows_over_wire(fast_world):
    offer(fast_world)
    fast_world.ri.create_domain(DOMAIN)
    channel = WireChannel(fast_world.ri)
    fast_world.agent.register(channel)
    fast_world.agent.join_domain(channel, DOMAIN)
    fast_world.agent.leave_domain(channel, DOMAIN)
    names = [r.message for r in channel.log.records]
    assert "JoinDomainRequest" in names
    assert "LeaveDomainResponse" in names


def test_message_log_accounting(fast_world):
    offer(fast_world)
    channel = WireChannel(fast_world.ri)
    fast_world.agent.register(channel)
    fast_world.agent.acquire(channel, "ro:w")
    log = channel.log
    assert len(log.records) == 6  # 4-pass registration + 2-pass RO
    assert log.total_octets() == sum(r.octets for r in log.records)
    by_message = log.by_message()
    assert by_message["DeviceHello"][0] == 1
    # Certificate-bearing messages dominate the traffic.
    assert by_message["RegistrationResponse"][1] \
        > by_message["DeviceHello"][1]


def test_directions_alternate(fast_world):
    offer(fast_world)
    channel = WireChannel(fast_world.ri)
    fast_world.agent.register(channel)
    directions = [r.direction for r in channel.log.records]
    assert directions == ["device->ri", "ri->device"] * 2


# -- robustness ----------------------------------------------------------------

def test_garbage_rejected():
    with pytest.raises(ValueError):
        decode_message(b"not a roap message")
    with pytest.raises(ValueError):
        decode_message(encode_message(
            DeviceHello("2.0", "d", ("SHA-1",)))[:-4])


def test_unknown_message_tag_rejected():
    from repro.drm import serialize
    blob = serialize.encode({"roap": "EvilMessage", "body": {}})
    with pytest.raises(ValueError):
        decode_message(blob)


@given(index=st.integers(min_value=0, max_value=10_000),
       flip=st.integers(min_value=1, max_value=255))
@settings(max_examples=60, deadline=None)
def test_bitflipped_wire_never_decodes_to_valid_other_message(index,
                                                              flip):
    """Corruption either fails to decode or decodes to a message whose
    content differs — it can never silently decode back to the original.
    """
    hello = DeviceHello(version="2.0", device_id="device:x",
                        supported_algorithms=("SHA-1", "RSA-1024"))
    blob = encode_message(hello)
    mutated = bytearray(blob)
    mutated[index % len(blob)] ^= flip
    mutated = bytes(mutated)
    if mutated == blob:  # flip of 0 cannot happen; index collision can't
        return
    try:
        decoded = decode_message(mutated)
    except (ValueError, UnicodeDecodeError, OverflowError):
        return
    assert decoded != hello
