"""ROAP triggers: RI-initiated protocol exchanges."""

import dataclasses

import pytest

from repro.crypto.errors import SignatureError
from repro.drm.errors import RegistrationError
from repro.drm.identifiers import domain_id
from repro.drm.rel import play_count
from repro.drm.roap.triggers import RoapTrigger, TriggerType, make_trigger

DOMAIN = domain_id("family")


def listed_license(world):
    dcf = world.ci.publish("cid:t", "audio/mpeg", b"x" * 512, "u")
    world.ri.add_offer("ro:t", world.ci.negotiate_license("cid:t"),
                       play_count(3))
    return dcf


def test_trigger_construction_validation():
    with pytest.raises(ValueError):
        RoapTrigger(type=TriggerType.RO_ACQUISITION, ri_id="ri:x")
    with pytest.raises(ValueError):
        RoapTrigger(type=TriggerType.JOIN_DOMAIN, ri_id="ri:x")
    RoapTrigger(type=TriggerType.REGISTRATION, ri_id="ri:x")


def test_registration_trigger(fast_world):
    trigger = fast_world.ri.trigger(TriggerType.REGISTRATION)
    context = fast_world.agent.handle_trigger(trigger, fast_world.ri)
    assert context.ri_id == fast_world.ri.ri_id


def test_acquisition_trigger_full_flow(fast_world):
    dcf = listed_license(fast_world)
    fast_world.agent.register(fast_world.ri)
    trigger = fast_world.ri.trigger(TriggerType.RO_ACQUISITION,
                                    ro_id="ro:t")
    protected = fast_world.agent.handle_trigger(trigger, fast_world.ri)
    assert protected.ro.ro_id == "ro:t"
    fast_world.agent.install(protected, dcf)
    assert fast_world.agent.consume("cid:t").clear_content == b"x" * 512


def test_acquisition_trigger_requires_context(fast_world):
    listed_license(fast_world)
    trigger = fast_world.ri.trigger(TriggerType.RO_ACQUISITION,
                                    ro_id="ro:t")
    with pytest.raises(RegistrationError):
        fast_world.agent.handle_trigger(trigger, fast_world.ri)


def test_forged_trigger_rejected(fast_world):
    fast_world.agent.register(fast_world.ri)
    trigger = fast_world.ri.trigger(TriggerType.JOIN_DOMAIN,
                                    domain_id=DOMAIN)
    forged = dataclasses.replace(trigger, domain_id=domain_id("evil"))
    with pytest.raises(SignatureError):
        fast_world.agent.handle_trigger(forged, fast_world.ri)


def test_join_and_leave_triggers(fast_world):
    fast_world.ri.create_domain(DOMAIN)
    fast_world.agent.register(fast_world.ri)
    join = fast_world.ri.trigger(TriggerType.JOIN_DOMAIN,
                                 domain_id=DOMAIN)
    context = fast_world.agent.handle_trigger(join, fast_world.ri)
    assert context.domain_id == DOMAIN
    leave = fast_world.ri.trigger(TriggerType.LEAVE_DOMAIN,
                                  domain_id=DOMAIN)
    fast_world.agent.handle_trigger(leave, fast_world.ri)
    assert not fast_world.ri.domains.is_member(
        DOMAIN, fast_world.agent.device_id)


def test_trigger_bytes_deterministic(fast_world):
    trigger = fast_world.ri.trigger(TriggerType.REGISTRATION)
    assert trigger.to_bytes() == trigger.to_bytes()
    assert trigger.tbs_bytes() in trigger.to_bytes()


def test_make_trigger_signs(fast_world):
    trigger = make_trigger(TriggerType.REGISTRATION,
                           fast_world.ri.ri_id,
                           fast_world.ri._keypair,
                           fast_world.ri._crypto)
    assert trigger.signature
    assert len(trigger.nonce) == 14
