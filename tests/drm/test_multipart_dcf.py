"""Multipart DCFs and rights-free previews."""

import pytest

from repro.drm.dcf import MultipartDCF, PreviewContainer
from repro.drm.rel import play_count


def publish(world, preview=None):
    return world.ci.publish_multipart(
        [("cid:m-%d" % i, "audio/mpeg", b"part-%d" % i * 50)
         for i in range(2)],
        "http://ri.example/shop",
        preview=preview,
    )


def test_multipart_structure(fast_world):
    multipart = publish(fast_world)
    assert multipart.content_ids == ("cid:m-0", "cid:m-1")
    assert multipart.container("cid:m-1").content_id == "cid:m-1"
    with pytest.raises(KeyError):
        multipart.container("cid:ghost")


def test_validation():
    with pytest.raises(ValueError):
        MultipartDCF(containers=())


def test_duplicate_ids_rejected(fast_world):
    dcf = fast_world.ci.publish("cid:dup", "audio/mpeg", b"x" * 64, "u")
    with pytest.raises(ValueError):
        MultipartDCF(containers=(dcf, dcf))


def test_preview_is_clear_and_free(fast_world):
    preview = PreviewContainer(content_type="audio/mpeg",
                               data=b"10s-sample")
    multipart = publish(fast_world, preview=preview)
    # Anyone can read the preview without registration, RO or crypto.
    assert multipart.preview.data == b"10s-sample"
    assert len(fast_world.agent_crypto.trace) == 0


def test_install_from_multipart(fast_world):
    multipart = publish(fast_world)
    grants = [fast_world.ci.negotiate_license(cid)
              for cid in multipart.content_ids]
    fast_world.ri.add_offer("ro:mp", grants, play_count(10))
    fast_world.agent.register(fast_world.ri)
    protected = fast_world.agent.acquire(fast_world.ri, "ro:mp")
    fast_world.agent.install(protected, multipart)
    for i, cid in enumerate(multipart.content_ids):
        result = fast_world.agent.consume(cid)
        assert result.clear_content == b"part-%d" % i * 50


def test_multipart_bytes_cover_preview(fast_world):
    bare = publish(fast_world)
    world2 = fast_world  # same world; new multipart with preview
    with_preview = MultipartDCF(
        containers=bare.containers,
        preview=PreviewContainer("audio/mpeg", b"clip"),
    )
    assert bare.to_bytes() != with_preview.to_bytes()
    assert with_preview.to_bytes() == with_preview.to_bytes()
