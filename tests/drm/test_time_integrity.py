"""DRM-time integrity: skewed clocks, bounded resync, rollback refusal.

Covers ``clock_skew_seconds`` in :meth:`DRMWorld.add_device` through the
registration resync and the RI-context expiry boundary, plus the
hardening contracts: a resync never rolls DRM Time back further than
the bound, and a *failed* registration never commits a poisoned offset.
"""

import pytest

from repro.drm.agent import (MAX_TIME_ROLLBACK_SECONDS,
                             RI_CONTEXT_LIFETIME)
from repro.drm.clock import DAY
from repro.drm.errors import TrustError
from repro.usecases.world import DRMWorld

BITS = 512


@pytest.fixture()
def world():
    return DRMWorld.create("test-time-integrity", rsa_bits=BITS)


def test_skewed_device_reports_skewed_drm_time(world):
    fast = world.add_device("fast", clock_skew_seconds=3600)
    slow = world.add_device("slow", clock_skew_seconds=-3600)
    assert fast.drm_time() == world.clock.now + 3600
    assert slow.drm_time() == world.clock.now - 3600


def test_registration_resyncs_a_slow_clock(world):
    """A device lagging arbitrarily far is pulled forward to RI time —
    forward corrections are unbounded."""
    slow = world.add_device("slow", clock_skew_seconds=-30 * DAY)
    slow.register(world.ri)
    assert slow.drm_time() == world.clock.now


def test_registration_resyncs_small_forward_skew(world):
    """A device ahead by less than the bound is wound back to RI time."""
    fast = world.add_device("fast",
                            clock_skew_seconds=MAX_TIME_ROLLBACK_SECONDS
                            - 3600)
    fast.register(world.ri)
    assert fast.drm_time() == world.clock.now


def test_first_sync_accepts_any_factory_skew(world):
    """Before the first trusted sync there is nothing to protect: a
    factory clock a year fast is still corrected — the bound guards
    previously *synced* time, not the untrusted initial clock."""
    far_future = world.add_device(
        "far-future", clock_skew_seconds=365 * DAY)
    far_future.register(world.ri)
    assert far_future.drm_time() == world.clock.now


def test_resync_refuses_rollback_beyond_bound(world):
    """Once synced, a resync that would move DRM Time backward past the
    bound is refused — winding the clock forward cannot be 'cured' by a
    rollback large enough to double as an attack channel."""
    device = world.add_device("synced-then-fast")
    device.register(world.ri)
    device.wind_clock(MAX_TIME_ROLLBACK_SECONDS + DAY)
    with pytest.raises(TrustError, match="rollback"):
        device.register(world.ri)


def test_failed_registration_never_commits_the_offset(world):
    """The poisoned-clock contract: a refused resync leaves DRM Time
    exactly where it was."""
    device = world.add_device("poisoned")
    device.register(world.ri)
    device.wind_clock(MAX_TIME_ROLLBACK_SECONDS + DAY)
    before = device.drm_time()
    with pytest.raises(TrustError):
        device.register(world.ri)
    assert device.drm_time() == before


def test_wound_back_clock_is_cured_by_reregistration(world):
    """The classic constraint-stretching move — wind the clock back —
    is corrected (forward) by the next registration."""
    device = world.add_device("wound")
    device.register(world.ri)
    device.wind_clock(-20 * DAY)
    assert device.drm_time() == world.clock.now - 20 * DAY
    device.register(world.ri)
    assert device.drm_time() == world.clock.now


def test_context_expiry_boundary_after_resync(world):
    """The RI context's lifetime is measured in corrected DRM Time, so
    a large pre-registration skew does not shift the expiry boundary."""
    device = world.add_device("expiring", clock_skew_seconds=-30 * DAY)
    context = device.register(world.ri)
    assert context.registered_at == world.clock.now
    world.clock.advance(RI_CONTEXT_LIFETIME - 1)
    assert device.has_valid_ri_context(context.ri_id)
    world.clock.advance(2)
    assert not device.has_valid_ri_context(context.ri_id)


def test_winding_forward_expires_the_context_early(world):
    """DRM Time, not the raw clock, gates the context: winding the
    device clock forward past the lifetime expires it immediately."""
    device = world.add_device("jumper")
    context = device.register(world.ri)
    device.wind_clock(RI_CONTEXT_LIFETIME + 1)
    assert not device.has_valid_ri_context(context.ri_id)
