"""Canonical serialization: determinism, roundtrips, malformed input."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.drm.serialize import decode, encode

# Recursive strategy over the encodable value space.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10 ** 12), max_value=10 ** 12),
    st.text(max_size=40),
    st.binary(max_size=40),
)
values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5),
    ),
    max_leaves=20,
)


def test_scalar_encodings():
    assert encode("ab") == b"s2:ab"
    assert encode(b"\x00\x01") == b"b2:\x00\x01"
    assert encode(42) == b"i2:42"
    assert encode(-7) == b"i2:-7"
    assert encode(None) == b"n0:"
    assert encode(True) == b"t1:1"
    assert encode(False) == b"t1:0"


def test_bool_is_not_int():
    """bool must take the bool path despite being an int subclass."""
    assert encode(True) != encode(1)


def test_dict_keys_sorted():
    assert encode({"b": 1, "a": 2}) == encode({"a": 2, "b": 1})


def test_dict_rejects_non_string_keys():
    with pytest.raises(TypeError):
        encode({1: "x"})


def test_unencodable_type_rejected():
    with pytest.raises(TypeError):
        encode(3.14)


def test_nested_structure_roundtrip():
    value = {
        "name": "RegistrationRequest",
        "nonce": b"\x01" * 14,
        "time": 1_100_000_000,
        "algorithms": ["SHA-1", "AES-128-CBC"],
        "extensions": None,
        "signed": True,
        "nested": {"inner": [1, 2, {"deep": b"bytes"}]},
    }
    assert decode(encode(value)) == value


def test_decode_rejects_trailing_garbage():
    with pytest.raises(ValueError):
        decode(encode("x") + b"junk")


def test_decode_rejects_truncation():
    blob = encode({"key": "value"})
    with pytest.raises(ValueError):
        decode(blob[:-1])


def test_decode_rejects_unknown_tag():
    with pytest.raises(ValueError):
        decode(b"z3:abc")


def test_decode_rejects_missing_separator():
    with pytest.raises(ValueError):
        decode(b"s99abc")


def test_decode_rejects_dangling_key():
    # A mapping payload with an odd number of items.
    with pytest.raises(ValueError):
        decode(b"d5:s1:a")


def test_utf8_text():
    assert decode(encode("héllo wörld ✓")) == "héllo wörld ✓"


def test_tuple_encodes_as_list():
    assert encode((1, 2)) == encode([1, 2])
    assert decode(encode((1, 2))) == [1, 2]


@given(values)
@settings(max_examples=300, deadline=None)
def test_roundtrip_property(value):
    decoded = decode(encode(value))

    def normalize(v):
        if isinstance(v, tuple):
            return [normalize(i) for i in v]
        if isinstance(v, list):
            return [normalize(i) for i in v]
        if isinstance(v, dict):
            return {k: normalize(x) for k, x in v.items()}
        if isinstance(v, bytearray):
            return bytes(v)
        return v

    assert decoded == normalize(value)


@given(values)
@settings(max_examples=100, deadline=None)
def test_encoding_is_deterministic(value):
    assert encode(value) == encode(value)
