"""The 4-pass ROAP registration: trust establishment and its failures."""

import pytest

from repro.core.trace import Algorithm, Phase
from repro.drm.errors import (CertificateRevokedError, NotRegisteredError,
                              RegistrationError)
from repro.drm.identifiers import ROAP_VERSION
from repro.drm.roap.messages import DeviceHello


def test_registration_creates_ri_context(fast_world):
    context = fast_world.agent.register(fast_world.ri)
    assert context.ri_id == fast_world.ri.ri_id
    assert context.ri_certificate == fast_world.ri.certificate
    stored = fast_world.agent.storage.get_ri_context(
        fast_world.ri.ri_id, fast_world.clock.now)
    assert stored is context


def test_registration_operation_counts(fast_world):
    """The paper's registration phase: 1 private + 3 public RSA ops."""
    fast_world.agent.register(fast_world.ri)
    trace = fast_world.agent_crypto.trace.filter(phase=Phase.REGISTRATION)
    totals = trace.totals_by_algorithm()
    assert totals[Algorithm.RSA_PRIVATE] == (1, 1)
    assert totals[Algorithm.RSA_PUBLIC] == (3, 3)


def test_unregistered_acquisition_fails(fast_world):
    with pytest.raises(NotRegisteredError):
        fast_world.agent.acquire(fast_world.ri, "ro:any")


def test_ri_rejects_unsupported_version(fast_world):
    hello = DeviceHello(version="1.0",
                        device_id=fast_world.agent.device_id,
                        supported_algorithms=("SHA-1",))
    with pytest.raises(RegistrationError):
        fast_world.ri.hello(hello)


def test_ri_rejects_incapable_device(fast_world):
    hello = DeviceHello(version=ROAP_VERSION,
                        device_id=fast_world.agent.device_id,
                        supported_algorithms=("SHA-1",))  # missing suite
    with pytest.raises(RegistrationError):
        fast_world.ri.hello(hello)


def test_revoked_device_cannot_register(fast_world):
    fast_world.ca.revoke(fast_world.agent.certificate.serial,
                         fast_world.clock.now)
    with pytest.raises(CertificateRevokedError):
        fast_world.agent.register(fast_world.ri)


def test_revoked_ri_detected_via_ocsp(fast_world):
    """The agent's OCSP check catches an RI revoked after issuance."""
    fast_world.ca.revoke(fast_world.ri.certificate.serial,
                         fast_world.clock.now)
    with pytest.raises(CertificateRevokedError):
        fast_world.agent.register(fast_world.ri)


def test_expired_ri_certificate_rejected(fast_world):
    fast_world.clock.advance(6 * 365 * 86_400)  # past the 5-year validity
    with pytest.raises(RegistrationError):
        # Certificate window check raises CertificateExpiredError, a
        # TrustError; surface either way as a failed registration.
        try:
            fast_world.agent.register(fast_world.ri)
        except Exception as exc:
            raise RegistrationError(str(exc)) from exc


def test_ri_context_expires(fast_world):
    fast_world.agent.register(fast_world.ri)
    fast_world.clock.advance(2 * 365 * 86_400)  # past context lifetime
    with pytest.raises(NotRegisteredError):
        fast_world.agent.storage.get_ri_context(
            fast_world.ri.ri_id, fast_world.clock.now)


def test_reregistration_refreshes_context(fast_world):
    first = fast_world.agent.register(fast_world.ri)
    fast_world.clock.advance(1000)
    second = fast_world.agent.register(fast_world.ri)
    assert second.registered_at > first.registered_at
    stored = fast_world.agent.storage.get_ri_context(
        fast_world.ri.ri_id, fast_world.clock.now)
    assert stored is second


def test_registration_against_unknown_session(fast_world):
    """A forged RegistrationRequest with no session is refused."""
    from repro.drm.roap.messages import RegistrationRequest
    request = RegistrationRequest(
        session_id="session-999", device_nonce=b"n" * 14,
        request_time=fast_world.clock.now,
        certificate=fast_world.agent.certificate, signature=b"x" * 64,
    )
    with pytest.raises(RegistrationError):
        fast_world.ri.register(request)
