"""Device storage: lookups, expiry, error paths."""

import pytest

from repro.drm.errors import NotRegisteredError, UnknownContentError
from repro.drm.rel import RightsState, play_count
from repro.drm.ro import InstalledRightsObject, RightsObject
from repro.drm.storage import DeviceStorage, RIContext


def make_installed(ro_id="ro:1", content_id="cid:1"):
    ro = RightsObject.single(
        ro_id=ro_id, content_id=content_id, rights_issuer_id="ri:x",
        rights=play_count(5), dcf_hash=b"h" * 20, wrapped_kcek=b"w" * 24,
        issued_at=0,
    )
    return InstalledRightsObject(ro=ro, c2dev=b"c" * 40, mac=b"m" * 20,
                                 state=RightsState())


def test_dcf_lookup_unknown():
    with pytest.raises(UnknownContentError):
        DeviceStorage().get_dcf("cid:ghost")


def test_ro_lookup_by_content():
    storage = DeviceStorage()
    installed = make_installed()
    storage.store_ro(installed)
    assert storage.find_ro_for_content("cid:1") is installed
    with pytest.raises(UnknownContentError):
        storage.find_ro_for_content("cid:2")


def test_multiple_ros_for_same_content():
    storage = DeviceStorage()
    first = make_installed(ro_id="ro:1")
    second = make_installed(ro_id="ro:2")
    storage.store_ro(first)
    storage.store_ro(second)
    found = storage.find_ro_for_content("cid:1")
    assert found in (first, second)
    assert len(storage.installed_ros) == 2


def test_ri_context_validity():
    storage = DeviceStorage()
    context = RIContext(
        ri_id="ri:x", ri_certificate=None, session_id="s1",
        registered_at=100, expires_at=200, selected_algorithms=(),
    )
    storage.store_ri_context(context)
    assert storage.get_ri_context("ri:x", 150) is context
    assert storage.get_ri_context("ri:x", 200) is context
    with pytest.raises(NotRegisteredError):
        storage.get_ri_context("ri:x", 201)
    with pytest.raises(NotRegisteredError):
        storage.get_ri_context("ri:other", 150)


def test_domain_context_lookup():
    storage = DeviceStorage()
    with pytest.raises(NotRegisteredError):
        storage.get_domain_context("domain:x+000")
