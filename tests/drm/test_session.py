"""The resilient session layer: retries, backoff, terminal outcomes."""

import pytest

from repro.drm.agent import RI_CONTEXT_LIFETIME
from repro.drm.rel import play_count
from repro.drm.roap.faults import FaultPlan, FaultPolicy, FaultyChannel
from repro.drm.session import (Outcome, RetryPolicy, RoapSession,
                               SessionState)

FAST_RETRIES = RetryPolicy(max_attempts=8, base_backoff_seconds=1,
                           jitter_seconds=1)


def offer_license(world, ro_id="ro:session", content_id="cid:session"):
    world.ci.publish(content_id, "audio/mpeg", b"tune" * 64,
                     "http://ri.example")
    world.ri.add_offer(ro_id, world.ci.negotiate_license(content_id),
                       play_count(5))
    return ro_id


def lossy_session(world, rate, seed="test-session",
                  policy=FAST_RETRIES, fault_policy=None):
    plan = FaultPlan(seed, fault_policy or FaultPolicy.loss(rate))
    channel = FaultyChannel(world.ri, plan, clock=world.clock)
    return RoapSession(world.agent, channel, policy)


# -- RetryPolicy ----------------------------------------------------------
def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_backoff_seconds=-1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy().backoff_seconds(0)


def test_backoff_grows_and_is_capped():
    policy = RetryPolicy(base_backoff_seconds=2, backoff_multiplier=2.0,
                         max_backoff_seconds=10, jitter_seconds=0)
    delays = [policy.backoff_seconds(n) for n in range(1, 6)]
    assert delays == [2, 4, 8, 10, 10]


def test_backoff_jitter_is_deterministic():
    policy = RetryPolicy(jitter_seconds=3)
    first = [policy.backoff_seconds(n, salt="dev-a") for n in (1, 2, 3)]
    again = [policy.backoff_seconds(n, salt="dev-a") for n in (1, 2, 3)]
    other = [policy.backoff_seconds(n, salt="dev-b") for n in (1, 2, 3)]
    assert first == again
    assert first != other  # different salts desynchronize devices


# -- registration under loss ---------------------------------------------
def test_register_completes_on_clean_channel(fast_world):
    session = lossy_session(fast_world, 0.0)
    outcome = session.register()
    assert outcome.completed
    assert outcome.attempts == 1
    assert outcome.value.ri_id == fast_world.ri.ri_id
    assert session.state is SessionState.COMPLETED


def test_register_completes_at_twenty_percent_loss(fast_world):
    session = lossy_session(fast_world, 0.2)
    outcome = session.register()
    assert outcome.completed
    assert fast_world.agent.has_valid_ri_context(fast_world.ri.ri_id)


def test_register_aborts_cleanly_at_total_loss(fast_world):
    session = lossy_session(fast_world, 1.0,
                            policy=RetryPolicy(max_attempts=3))
    outcome = session.register()
    assert outcome.outcome is Outcome.ABORTED
    assert outcome.attempts == 3
    assert "retries exhausted" in outcome.reason
    assert session.state is SessionState.ABORTED


def test_retries_spend_simulation_time(fast_world):
    before = fast_world.clock.now
    session = lossy_session(fast_world, 1.0,
                            policy=RetryPolicy(max_attempts=2,
                                               jitter_seconds=0))
    outcome = session.register()
    # Two 30 s timeouts plus one 2 s backoff between the attempts.
    assert outcome.elapsed_seconds == fast_world.clock.now - before
    assert outcome.elapsed_seconds == 30 + 2 + 30


def test_transitions_trace_the_state_machine(fast_world):
    session = lossy_session(fast_world, 1.0,
                            policy=RetryPolicy(max_attempts=2))
    session.register()
    states = [t.state for t in session.transitions]
    assert states == [SessionState.IDLE, SessionState.IN_FLIGHT,
                      SessionState.BACKOFF, SessionState.IN_FLIGHT,
                      SessionState.ABORTED]


def test_retry_uses_fresh_nonce(fast_world):
    """A retry is a new signed attempt, not a byte replay."""
    seen_nonces = []
    ri_register = fast_world.ri.register

    def spying_register(request):
        seen_nonces.append(request.device_nonce)
        return ri_register(request)

    fast_world.ri.register = spying_register
    session = lossy_session(
        fast_world, 0.0, seed="nonce-test",
        policy=RetryPolicy(max_attempts=3),
        fault_policy=FaultPolicy())
    session.channel.plan.per_message["RegistrationResponse"] = \
        FaultPolicy(drop=1.0)
    outcome = session.register()
    assert outcome.outcome is Outcome.ABORTED
    assert len(seen_nonces) == outcome.attempts == 3
    assert len(set(seen_nonces)) == 3


def test_session_convergence_is_deterministic(fast_world_factory):
    def run():
        world = fast_world_factory("determinism")
        session = lossy_session(world, 0.3, seed="fixed")
        outcome = session.register()
        return (outcome.outcome, outcome.attempts,
                outcome.elapsed_seconds)

    assert run() == run()


# -- semantic failures abort immediately ---------------------------------
def test_unknown_license_aborts_without_retry(fast_world):
    session = lossy_session(fast_world, 0.0)
    assert session.register().completed
    outcome = session.acquire("ro:nonexistent")
    assert outcome.outcome is Outcome.ABORTED
    assert outcome.attempts == 1


# -- acquisition and re-registration -------------------------------------
def test_acquire_completes_under_loss(fast_world):
    ro_id = offer_license(fast_world)
    session = lossy_session(fast_world, 0.2)
    assert session.register().completed
    outcome = session.acquire(ro_id)
    assert outcome.completed
    assert outcome.value.ro.ro_id == ro_id


def test_acquire_reregisters_after_context_expiry(fast_world):
    ro_id = offer_license(fast_world)
    session = lossy_session(fast_world, 0.0)
    assert session.register().completed
    fast_world.clock.advance(RI_CONTEXT_LIFETIME + 1)
    assert not fast_world.agent.has_valid_ri_context(
        fast_world.ri.ri_id)
    outcome = session.acquire(ro_id)
    assert outcome.completed
    assert outcome.reregistrations == 1
    assert fast_world.agent.has_valid_ri_context(fast_world.ri.ri_id)
    assert SessionState.REREGISTERING in [
        t.state for t in outcome.transitions]


def test_join_domain_under_loss(fast_world):
    fast_world.ri.create_domain("domain:home")
    session = lossy_session(fast_world, 0.2)
    assert session.register().completed
    outcome = session.join_domain("domain:home")
    assert outcome.completed
    assert outcome.value.domain_id == "domain:home"


def test_mixed_faults_converge(fast_world):
    session = lossy_session(
        fast_world, 0.0, fault_policy=FaultPolicy.mixed(0.35),
        policy=RetryPolicy(max_attempts=12))
    outcome = session.register()
    assert outcome.completed


# -- deadline budgets ------------------------------------------------------
def deadline_session(world, rate, deadline, policy=FAST_RETRIES):
    plan = FaultPlan("test-deadline", FaultPolicy.loss(rate))
    channel = FaultyChannel(world.ri, plan, clock=world.clock)
    return RoapSession(world.agent, channel, policy,
                       deadline_seconds=deadline)


def test_deadline_budget_rejects_negative_values(fast_world):
    with pytest.raises(ValueError):
        deadline_session(fast_world, 0.0, -1)


def test_zero_deadline_aborts_before_the_first_attempt(fast_world):
    outcome = deadline_session(fast_world, 0.0, 0).register()
    assert outcome.outcome is Outcome.ABORTED
    assert outcome.deadline_exceeded
    assert outcome.attempts == 0
    assert "exhausted" in outcome.reason


def test_generous_deadline_changes_nothing(fast_world):
    outcome = deadline_session(fast_world, 0.0, 600).register()
    assert outcome.completed
    assert not outcome.deadline_exceeded


def test_deadline_aborts_instead_of_oversleeping_a_backoff(fast_world):
    # Attempt 1 burns 30 s on a lost message; the 100 s backoff cannot
    # fit inside the 40 s budget, so the flow aborts *now* rather than
    # waking up already late.
    policy = RetryPolicy(max_attempts=5, base_backoff_seconds=100,
                         jitter_seconds=0)
    session = deadline_session(fast_world, 1.0, 40, policy=policy)
    before = fast_world.clock.now
    outcome = session.register()
    assert outcome.outcome is Outcome.ABORTED
    assert outcome.deadline_exceeded
    assert outcome.attempts == 1
    assert "cannot absorb" in outcome.reason
    # The abort costs nothing beyond the attempt already spent.
    assert fast_world.clock.now - before == 30
