"""RO backup/restore: device binding and the stateless-only rule."""

import pytest

from repro.drm.backup import backup_ros, is_stateful, restore_ros
from repro.drm.errors import IntegrityError
from repro.drm.rel import (DatetimeConstraint, Permission, PermissionType,
                           Rights, play_count, unlimited)

STATELESS = Rights(permissions=(Permission(
    PermissionType.PLAY,
    (DatetimeConstraint(not_after=2_000_000_000),),
),))


def install_pair(world):
    """One stateless and one stateful license on the device."""
    for name, rights in (("free", STATELESS), ("metered",
                                               play_count(3))):
        cid = "cid:%s" % name
        dcf = world.ci.publish(cid, "audio/mpeg", b"x" * 200, "u")
        world.ri.add_offer("ro:%s" % name,
                           world.ci.negotiate_license(cid), rights)
    world.agent.register(world.ri)
    for name in ("free", "metered"):
        dcf = world.ci.get_dcf("cid:%s" % name)
        protected = world.agent.acquire(world.ri, "ro:%s" % name)
        world.agent.install(protected, dcf)


def test_is_stateful():
    assert is_stateful(play_count(3))
    assert not is_stateful(unlimited())
    assert not is_stateful(STATELESS)


def test_backup_restore_roundtrip_stateless(fast_world):
    install_pair(fast_world)
    blob = backup_ros(fast_world.agent)
    # Simulate loss of the RO store (e.g. a factory reset of flash —
    # K_DEV lives in secure storage and survives).
    fast_world.agent.storage.installed_ros.clear()
    report = restore_ros(fast_world.agent, blob)
    assert report.restored == ["ro:free"]
    assert report.skipped_stateful == ["ro:metered"]
    # The restored stateless RO plays again.
    result = fast_world.agent.consume("cid:free")
    assert result.clear_content == b"x" * 200


def test_stateful_ro_never_restored(fast_world):
    """The state-rollback defense: exhaust, wipe, restore — still gone."""
    from repro.drm.errors import UnknownContentError
    install_pair(fast_world)
    for _ in range(3):
        fast_world.agent.consume("cid:metered")
    blob = backup_ros(fast_world.agent)
    fast_world.agent.storage.installed_ros.clear()
    restore_ros(fast_world.agent, blob)
    with pytest.raises(UnknownContentError):
        fast_world.agent.consume("cid:metered")


def test_restore_is_idempotent(fast_world):
    install_pair(fast_world)
    blob = backup_ros(fast_world.agent)
    report = restore_ros(fast_world.agent, blob)
    assert report.restored == []
    assert set(report.already_present) == {"ro:free", "ro:metered"}


def test_tampered_backup_rejected(fast_world):
    install_pair(fast_world)
    blob = bytearray(backup_ros(fast_world.agent))
    blob[len(blob) // 2] ^= 0x01
    with pytest.raises((IntegrityError, ValueError)):
        restore_ros(fast_world.agent, bytes(blob))


def test_foreign_backup_rejected(fast_world, fast_world_factory):
    """A backup from one device fails another's K_DEV-bound MAC."""
    install_pair(fast_world)
    blob = backup_ros(fast_world.agent)
    other = fast_world_factory(seed="other-phone")
    with pytest.raises(IntegrityError):
        restore_ros(other.agent, blob)


def test_restored_ro_keys_still_work_only_here(fast_world):
    """C2dev inside the backup is K_DEV-bound: restore on the same
    device re-enables playback with no PKI operation."""
    from repro.core.trace import Algorithm
    install_pair(fast_world)
    blob = backup_ros(fast_world.agent)
    fast_world.agent.storage.installed_ros.clear()
    restore_ros(fast_world.agent, blob)
    fast_world.agent_crypto.reset_trace()
    fast_world.agent.consume("cid:free")
    totals = fast_world.agent_crypto.trace.totals_by_algorithm()
    assert Algorithm.RSA_PRIVATE not in totals
