"""DCF packaging and canonical form."""

import pytest

from repro.core.meter import PlainCrypto
from repro.crypto.rng import HmacDrbg
from repro.drm.dcf import DCF, ENCRYPTION_METHOD, package_content


@pytest.fixture()
def crypto():
    return PlainCrypto(HmacDrbg(b"dcf-tests"))


@pytest.fixture()
def dcf(crypto):
    return package_content(
        content_id="cid:song", content_type="audio/mpeg",
        clear_content=b"la" * 500, kcek=b"k" * 16,
        rights_issuer_url="http://ri.example", crypto=crypto,
        metadata={"title": "Song"},
    )


def test_payload_is_encrypted(dcf):
    assert b"lala" not in dcf.encrypted_data
    assert dcf.encryption_method == ENCRYPTION_METHOD


def test_payload_decrypts(crypto, dcf):
    clear = crypto.aes_cbc_decrypt(b"k" * 16, dcf.iv, dcf.encrypted_data)
    assert clear == b"la" * 500


def test_payload_is_padded_block_multiple(dcf):
    assert len(dcf.encrypted_data) % 16 == 0
    assert dcf.payload_octets == len(dcf.encrypted_data)


def test_canonical_bytes_deterministic(dcf):
    assert dcf.to_bytes() == dcf.to_bytes()


def test_canonical_bytes_cover_metadata(crypto):
    a = package_content("cid:x", "audio/mpeg", b"data", b"k" * 16,
                        "http://ri", crypto, metadata={"title": "A"})
    b = package_content("cid:x", "audio/mpeg", b"data", b"k" * 16,
                        "http://ri", crypto, metadata={"title": "B"})
    assert a.to_bytes() != b.to_bytes()


def test_tamper_helper_flips_one_payload_bit(dcf):
    tampered = dcf.with_tampered_payload()
    assert tampered.content_id == dcf.content_id
    assert tampered.encrypted_data != dcf.encrypted_data
    assert len(tampered.encrypted_data) == len(dcf.encrypted_data)
    diff = [i for i, (a, b) in enumerate(
        zip(dcf.encrypted_data, tampered.encrypted_data)) if a != b]
    assert len(diff) == 1


def test_fresh_iv_per_package(crypto):
    a = package_content("cid:x", "t", b"data", b"k" * 16, "u", crypto)
    b = package_content("cid:x", "t", b"data", b"k" * 16, "u", crypto)
    assert a.iv != b.iv
    assert a.encrypted_data != b.encrypted_data


def test_dcf_is_immutable(dcf):
    with pytest.raises(AttributeError):
        dcf.content_id = "cid:other"
