"""Seeded mutations of the real tree must fail the gate.

The acceptance contract for the interprocedural engine is adversarial:
re-introduce exactly the bug classes the rules exist for — an
unmetered crypto call reached transitively from a metered layer, and a
secret flowing through a helper into a trace attribute — into a copy
of ``src/repro`` and assert the exit code flips. CI runs this file, so
a rules regression that silently stops seeing real code (not just
fixture trees) cannot land.
"""

import pathlib
import shutil
import textwrap

from repro.cli import main

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"


def copy_tree(tmp_path):
    target = tmp_path / "repro"
    shutil.copytree(SRC, target,
                    ignore=shutil.ignore_patterns("__pycache__"))
    return target


def test_unmetered_crypto_call_fails_the_gate(tmp_path, capsys):
    tree = copy_tree(tmp_path)
    (tree / "helpers_sneaky.py").write_text(textwrap.dedent("""
        from repro.crypto.sha1 import sha1

        def quick_digest(data):
            return sha1(data)
        """))
    session = tree / "drm" / "session.py"
    session.write_text(session.read_text() + textwrap.dedent("""

        from repro.helpers_sneaky import quick_digest

        def _sneaky_checksum(payload):
            return quick_digest(payload)
        """))
    assert main(["lint", str(tmp_path), "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "REP202" in out
    assert "uncovered path" in out
    assert "repro.helpers_sneaky.quick_digest" in out


def test_secret_to_span_leak_fails_the_gate(tmp_path, capsys):
    tree = copy_tree(tmp_path)
    ri = tree / "sim" / "ri.py"
    ri.write_text(ri.read_text() + textwrap.dedent("""

        def _debug_fmt(value):
            return "cek=%s" % value

        def _debug_announce(tracer, session):
            tracer.event("debug", cek=_debug_fmt(session.kcek))
        """))
    assert main(["lint", str(tmp_path), "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "REP801" in out
    assert "kcek" in out


def test_leaked_grant_fails_the_gate(tmp_path, capsys):
    # The regression fixture for the two true positives this PR fixed
    # (ri.serve and queueing.job): re-introduce the unprotected
    # Release and the gate must close again.
    tree = copy_tree(tmp_path)
    (tree / "sim" / "hot_loop.py").write_text(textwrap.dedent("""
        from .kernel import Acquire, Release, Wait

        def burst(server, ticks):
            grant = yield Acquire(server)
            yield Wait(ticks)
            yield Release(server)
        """))
    assert main(["lint", str(tmp_path), "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "REP901" in out


def test_unmutated_copy_stays_clean(tmp_path):
    copy_tree(tmp_path)
    assert main(["lint", str(tmp_path), "--no-baseline"]) == 0
