"""Call-graph construction and taint-summary convergence properties.

The dataflow engine's determinism rests on two structural facts:
graph construction is a pure function of the (sorted) module set, and
the summary fixpoint is monotone, so it converges and its result is
independent of worklist order. Hypothesis generates adversarial module
shapes — cycles, mutual recursion, aliased and relative imports,
method resolution through inheritance — and checks both facts plus the
specific resolution features the rules rely on.
"""

import ast

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint.callgraph import build_call_graph
from repro.lint.dataflow import DataflowAnalysis
from repro.lint.graph import summarize_module


def build(sources):
    """``{dotted module: source}`` → (graph, modules dict)."""
    modules = []
    for name in sources:
        tree = ast.parse(sources[name])
        modules.append((name, tree, summarize_module(name, tree,
                                                     False)))
    graph = build_call_graph(modules)
    return graph, {n: (t, s) for n, t, s in modules}


def edge_fingerprint(graph):
    """A comparable, fully-ordered rendering of the whole graph."""
    return tuple(
        (qualname, tuple((site.callee, site.line, site.is_reference)
                         for site in graph.edges_from(qualname)))
        for qualname in sorted(graph.functions))


def summary_fingerprint(analysis):
    return tuple(
        (qualname,
         summary.returns_secret,
         tuple(sorted(summary.params_to_return)),
         tuple(sorted((index, flow.kind, flow.path)
                      for index, flow in summary.param_sinks.items())))
        for qualname, summary in sorted(analysis.summaries.items()))


# -- deterministic resolution features ---------------------------------------

def test_methods_resolve_through_inheritance():
    graph, _ = build({"repro.m": (
        "class Base:\n"
        "    def ping(self):\n"
        "        return 1\n"
        "class Child(Base):\n"
        "    def run(self):\n"
        "        return self.ping()\n"
    )})
    edges = graph.edges_from("repro.m.Child.run")
    assert [site.callee for site in edges] == ["repro.m.Base.ping"]


def test_aliased_and_relative_imports_resolve():
    graph, _ = build({
        "repro.pkg.helper": (
            "def work(x):\n"
            "    return x\n"
        ),
        "repro.pkg.user": (
            "from repro.pkg import helper as h\n"
            "from .helper import work as w\n"
            "def a(x):\n"
            "    return h.work(x)\n"
            "def b(x):\n"
            "    return w(x)\n"
        ),
    })
    assert [s.callee for s in graph.edges_from("repro.pkg.user.a")] \
        == ["repro.pkg.helper.work"]
    assert [s.callee for s in graph.edges_from("repro.pkg.user.b")] \
        == ["repro.pkg.helper.work"]


def test_first_class_function_references_get_edges():
    graph, _ = build({"repro.m": (
        "def callback(x):\n"
        "    return x\n"
        "def register(handlers):\n"
        "    handlers.append(callback)\n"
    )})
    edges = graph.edges_from("repro.m.register")
    assert [(s.callee, s.is_reference) for s in edges] \
        == [("repro.m.callback", True)]


def test_cycles_and_mutual_recursion_terminate():
    graph, modules = build({"repro.m": (
        "def even(n):\n"
        "    return True if n == 0 else odd(n - 1)\n"
        "def odd(n):\n"
        "    return False if n == 0 else even(n - 1)\n"
        "def loop(n):\n"
        "    return loop(n)\n"
    )})
    analysis = DataflowAnalysis(graph, modules)
    assert [s.callee for s in graph.edges_from("repro.m.loop")] \
        == ["repro.m.loop"]
    # Mutual recursion converges with the identity-ish param flow.
    assert analysis.summaries["repro.m.even"] is not None


def test_summary_composes_param_flow_through_recursion():
    graph, modules = build({"repro.m": (
        "def fmt(value, depth):\n"
        "    if depth > 0:\n"
        "        return fmt(value, depth - 1)\n"
        "    return '%s' % value\n"
    )})
    analysis = DataflowAnalysis(graph, modules)
    assert 0 in analysis.summaries["repro.m.fmt"].params_to_return


# -- property: determinism under module-order permutation --------------------

_NAMES = ("alpha", "bravo", "charlie", "delta")


@st.composite
def module_sets(draw):
    """Small random module webs with calls across random targets."""
    count = draw(st.integers(min_value=2, max_value=4))
    chosen = _NAMES[:count]
    sources = {}
    for index, name in enumerate(chosen):
        lines = []
        for other in chosen:
            if other != name and draw(st.booleans()):
                lines.append("from repro.gen.%s import f_%s"
                             % (other, other))
        body = ["def f_%s(x):" % name]
        calls = []
        for other in chosen:
            if other == name:
                if draw(st.booleans()):
                    calls.append("    x = f_%s(x)" % other)
            elif ("from repro.gen.%s import f_%s" % (other, other)
                  in lines) and draw(st.booleans()):
                calls.append("    x = f_%s(x)" % other)
        body.extend(calls or ["    pass"])
        body.append("    return x")
        sources["repro.gen.%s" % name] = "\n".join(lines + body) + "\n"
    return sources


@settings(max_examples=30, deadline=None)
@given(sources=module_sets(), seed=st.randoms())
def test_graph_is_invariant_under_module_order(sources, seed):
    ordered = list(sources.items())
    shuffled = ordered[:]
    seed.shuffle(shuffled)

    def construct(items):
        modules = []
        for name, src in items:
            tree = ast.parse(src)
            modules.append((name, tree,
                            summarize_module(name, tree, False)))
        return build_call_graph(modules)

    first = construct(ordered)
    second = construct(shuffled)
    assert edge_fingerprint(first) == edge_fingerprint(second)
    assert sorted(first.functions) == sorted(second.functions)


@settings(max_examples=20, deadline=None)
@given(sources=module_sets(), seed=st.randoms())
def test_summaries_converge_and_are_order_invariant(sources, seed):
    ordered = list(sources.items())
    shuffled = ordered[:]
    seed.shuffle(shuffled)

    def analyze(items):
        modules = []
        for name, src in items:
            tree = ast.parse(src)
            modules.append((name, tree,
                            summarize_module(name, tree, False)))
        graph = build_call_graph(modules)
        return DataflowAnalysis(graph, {n: (t, s)
                                        for n, t, s in modules})

    first = analyze(ordered)
    second = analyze(shuffled)
    assert summary_fingerprint(first) == summary_fingerprint(second)
    findings_first = {m: [(f.line, f.message)
                          for f in first.findings_for(m)]
                      for m in sources}
    findings_second = {m: [(f.line, f.message)
                           for f in second.findings_for(m)]
                       for m in sources}
    assert findings_first == findings_second
