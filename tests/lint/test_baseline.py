"""Baseline round-trip, fingerprint stability, and config scoping."""

import json
import textwrap

from repro.lint import Baseline, LintConfig, LintEngine, RuleConfig
from repro.lint.baseline import assign_fingerprints, fingerprint

VIOLATION = """
    from ..crypto.sha1 import sha1

    def digest(data):
        return sha1(data)
"""


def write_violation(tmp_path):
    target = tmp_path / "repro" / "drm" / "m.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(VIOLATION))
    return target


def test_baseline_round_trip_grandfathers_findings(tmp_path):
    write_violation(tmp_path)
    engine = LintEngine()
    first = engine.run([str(tmp_path)])
    assert len(first.findings) == 1

    baseline_path = tmp_path / "lint-baseline.json"
    Baseline.save(str(baseline_path), first.all_current)
    baseline = Baseline.load(str(baseline_path))

    second = engine.run([str(tmp_path)], baseline=baseline)
    assert second.clean
    assert len(second.baselined) == 1


def test_baseline_expires_when_the_line_changes(tmp_path):
    target = write_violation(tmp_path)
    engine = LintEngine()
    first = engine.run([str(tmp_path)])
    baseline_path = tmp_path / "lint-baseline.json"
    Baseline.save(str(baseline_path), first.all_current)

    # A different primitive on the same line is a *new* finding.
    target.write_text(textwrap.dedent(VIOLATION).replace(
        "crypto.sha1 import sha1", "crypto.hmac import hmac_sha1"))
    second = engine.run([str(tmp_path)],
                        baseline=Baseline.load(str(baseline_path)))
    assert len(second.findings) == 1
    assert not second.baselined


def test_fingerprints_survive_line_drift(tmp_path):
    target = write_violation(tmp_path)
    engine = LintEngine()
    first = engine.run([str(tmp_path)])

    # Prepend unrelated lines: line numbers shift, fingerprint holds.
    target.write_text("# a comment\n\nCONSTANT = 1\n"
                      + target.read_text())
    second = engine.run([str(tmp_path)])
    assert assign_fingerprints(first.findings) \
        == assign_fingerprints(second.findings)
    assert second.findings[0].line != first.findings[0].line


def test_duplicate_findings_get_distinct_fingerprints():
    assert fingerprint("REP101", "a.py", "x = time.time()", 0) \
        != fingerprint("REP101", "a.py", "x = time.time()", 1)


def test_baseline_file_shape(tmp_path):
    write_violation(tmp_path)
    result = LintEngine().run([str(tmp_path)])
    baseline_path = tmp_path / "baseline.json"
    Baseline.save(str(baseline_path), result.all_current)
    document = json.loads(baseline_path.read_text())
    assert document["version"] == 1
    entry = document["findings"][0]
    assert set(entry) == {"fingerprint", "rule", "path", "message"}
    assert entry["rule"] == "REP201"


def test_missing_baseline_file_is_empty():
    assert Baseline.load("/nonexistent/baseline.json").fingerprints \
        == set()


def test_config_can_disable_and_rescope_rules(tmp_path):
    write_violation(tmp_path)
    disabled = LintConfig(rules={"REP201": RuleConfig(enabled=False)})
    assert LintEngine(config=disabled).run([str(tmp_path)]).clean

    # Re-scoping REP201 away from repro.drm also silences it.
    rescoped = LintConfig(
        rules={"REP201": RuleConfig(scopes=("repro.usecases",))})
    assert LintEngine(config=rescoped).run([str(tmp_path)]).clean


def test_config_from_mapping_parses_pyproject_table():
    config = LintConfig.from_mapping({
        "disable": ["REP103"],
        "baseline": "custom.json",
        "scopes": {"REP101": ["repro.core"]},
    })
    assert not config.rule("REP103").enabled
    assert config.baseline_path == "custom.json"
    assert config.rule("REP101").applies_to("repro.core.stats", ())
    assert not config.rule("REP101").applies_to("repro.usecases.fleet",
                                                ())
    # Prefixes match whole components: repro.corex is out of scope.
    assert not config.rule("REP101").applies_to("repro.corex", ())
