"""Per-rule fixture snippets: positive, negative, and suppressed.

Each case writes a small module into a fixture tree whose layout
mirrors the scopes the rules default to (``repro/usecases``,
``repro/drm``, ``repro/crypto``), runs the engine over the tree, and
asserts exactly which rule ids fire.
"""

import textwrap

from repro.lint import LintEngine


def lint_tree(tmp_path, files):
    """Write ``{relpath: source}`` under tmp_path and lint the tree."""
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return LintEngine().run([str(tmp_path)])


def rule_ids(result):
    return sorted(finding.rule for finding in result.findings)


# -- REP1xx determinism ------------------------------------------------------

def test_rep101_flags_wall_clock_in_usecases(tmp_path):
    result = lint_tree(tmp_path, {"repro/usecases/w.py": """
        import time
        def arrival():
            return time.time()
        """})
    assert rule_ids(result) == ["REP101"]


def test_rep101_flags_datetime_now_through_alias(tmp_path):
    result = lint_tree(tmp_path, {"repro/analysis/a.py": """
        from datetime import datetime as dt
        def stamp():
            return dt.now()
        """})
    assert rule_ids(result) == ["REP101"]


def test_rep101_ignores_wall_clock_outside_scope(tmp_path):
    result = lint_tree(tmp_path, {"repro/drm/clockish.py": """
        import time
        def now():
            return time.time()
        """})
    assert "REP101" not in rule_ids(result)


def test_rep102_flags_os_urandom_and_global_random(tmp_path):
    result = lint_tree(tmp_path, {"repro/usecases/r.py": """
        import os
        import random
        def draw():
            return os.urandom(8), random.random()
        """})
    assert rule_ids(result) == ["REP102", "REP102"]


def test_rep102_flags_unseeded_random_instance_only(tmp_path):
    result = lint_tree(tmp_path, {"repro/usecases/r.py": """
        import random
        bad = random.Random()
        good = random.Random(1234)
        """})
    assert rule_ids(result) == ["REP102"]


def test_rep103_flags_set_iteration_but_not_sorted(tmp_path):
    result = lint_tree(tmp_path, {"repro/analysis/s.py": """
        def order(names):
            bad = [n for n in set(names)]
            good = [n for n in sorted(set(names))]
            return bad, good
        """})
    assert rule_ids(result) == ["REP103"]


# -- REP2xx metering completeness --------------------------------------------

def test_rep201_flags_primitive_import_allows_types(tmp_path):
    result = lint_tree(tmp_path, {"repro/drm/m.py": """
        from ..crypto.sha1 import sha1
        from ..crypto.errors import SignatureError
        from ..crypto.kem import KemCiphertext
        def digest(data):
            return sha1(data)
        """})
    assert rule_ids(result) == ["REP201"]


def test_rep201_flags_function_level_import(tmp_path):
    result = lint_tree(tmp_path, {"repro/drm/m.py": """
        def strip(data):
            from ..crypto.padding import unpad
            return unpad(data)
        """})
    assert rule_ids(result) == ["REP201"]


def test_rep202_flags_transitive_escape(tmp_path):
    result = lint_tree(tmp_path, {
        "repro/helpers/digesting.py": """
            from repro.crypto.sha1 import sha1
            def quick_hash(data):
                return sha1(data)
            def harmless(data):
                return len(data)
            """,
        "repro/drm/m.py": """
            from ..helpers.digesting import quick_hash, harmless
            def fingerprint(data):
                return quick_hash(data)
            def size(data):
                return harmless(data)
            """,
    })
    # digesting.py is outside REP201's drm scope; the drm-side call to
    # quick_hash is the transitive escape, harmless() stays legal.
    assert rule_ids(result) == ["REP202"]


def test_rep202_allows_calls_through_the_provider(tmp_path):
    result = lint_tree(tmp_path, {
        "repro/core/meter.py": """
            from repro.crypto.sha1 import sha1
            def provider_sha1(data):
                return sha1(data)
            """,
        "repro/drm/m.py": """
            from ..core.meter import provider_sha1
            def digest(data):
                return provider_sha1(data)
            """,
    })
    assert rule_ids(result) == []


def test_rep202_proves_deep_chains_with_witness_path(tmp_path):
    # Three modules deep: the one-level summary heuristic of PR 3
    # could not see this; call-graph reachability must, and the
    # finding must carry the whole uncovered path as evidence.
    result = lint_tree(tmp_path, {
        "repro/helpers/inner.py": """
            from repro.crypto.sha1 import sha1
            def digest(data):
                return sha1(data)
            """,
        "repro/helpers/outer.py": """
            from .inner import digest
            def checksum(data):
                return digest(data)
            """,
        "repro/sim/user.py": """
            from repro.helpers.outer import checksum
            def process(data):
                return checksum(data)
            """,
    })
    findings = [f for f in result.findings if f.rule == "REP202"]
    assert len(findings) == 1
    assert "uncovered path" in findings[0].message
    assert "repro.helpers.outer.checksum" in findings[0].message
    assert "repro.helpers.inner.digest" in findings[0].message


# -- REP9xx sim resource protocol --------------------------------------------

def test_rep901_flags_release_outside_finally(tmp_path):
    result = lint_tree(tmp_path, {"repro/sim/p.py": """
        def worker(kernel, server):
            grant = yield Acquire(server)
            yield Wait(5)
            yield Release(server)
        """})
    assert rule_ids(result) == ["REP901"]


def test_rep901_flags_acquire_with_no_release(tmp_path):
    result = lint_tree(tmp_path, {"repro/sim/p.py": """
        def worker(kernel, server):
            grant = yield Acquire(server)
            yield Wait(5)
        """})
    assert rule_ids(result) == ["REP901"]


def test_rep901_allows_release_in_finally(tmp_path):
    result = lint_tree(tmp_path, {"repro/sim/p.py": """
        def worker(kernel, server):
            grant = yield Acquire(server)
            if grant is REJECTED:
                return
            try:
                yield Wait(5)
            finally:
                yield Release(server)
        """})
    assert rule_ids(result) == []


def test_rep901_allows_immediate_release(tmp_path):
    # No suspension inside the critical section: nothing can raise
    # while the grant is held, so the plain Release is fine.
    result = lint_tree(tmp_path, {"repro/sim/p.py": """
        def touch(server):
            grant = yield Acquire(server)
            yield Release(server)
        """})
    assert rule_ids(result) == []


def test_rep902_flags_nested_acquire_allows_wait(tmp_path):
    result = lint_tree(tmp_path, {"repro/sim/p.py": """
        def deadlocky(a, b):
            yield Acquire(a)
            try:
                yield Acquire(b)
                try:
                    yield Wait(1)
                finally:
                    yield Release(b)
            finally:
                yield Release(a)
        def fine(a):
            yield Acquire(a)
            try:
                yield Wait(10)
            finally:
                yield Release(a)
        """})
    assert rule_ids(result) == ["REP902"]


def test_rep903_flags_kernel_state_mutation_outside_kernel(tmp_path):
    result = lint_tree(tmp_path, {"repro/sim/hack.py": """
        def skip_ahead(kernel, ticks):
            kernel.now = kernel.now + ticks
        """})
    assert rule_ids(result) == ["REP903"]


def test_rep903_allows_the_kernel_module_itself(tmp_path):
    result = lint_tree(tmp_path, {"repro/sim/kernel.py": """
        class Kernel:
            def _advance(kernel, when):
                kernel.now = when
        """})
    assert rule_ids(result) == []


def test_rep904_flags_unchecked_timed_grant(tmp_path):
    result = lint_tree(tmp_path, {"repro/sim/p.py": """
        def worker(kernel, server):
            grant = yield Acquire(server, timeout=5)
            if grant is REJECTED:
                return
            try:
                yield Wait(3)
            finally:
                yield Release(server)
        """})
    assert rule_ids(result) == ["REP904"]


def test_rep904_flags_discarded_timed_grant(tmp_path):
    result = lint_tree(tmp_path, {"repro/sim/p.py": """
        def touch(server):
            yield Acquire(server, timeout=5)
            yield Release(server)
        """})
    findings = [f for f in result.findings if f.rule == "REP904"]
    assert rule_ids(result) == ["REP904"]
    assert "discarded" in findings[0].message


def test_rep904_allows_local_sentinel_test(tmp_path):
    result = lint_tree(tmp_path, {"repro/sim/p.py": """
        def worker(kernel, server):
            grant = yield Acquire(server, timeout=5)
            if grant is REJECTED or grant is TIMED_OUT:
                return
            try:
                yield Wait(3)
            finally:
                yield Release(server)
        """})
    assert rule_ids(result) == []


def test_rep904_ignores_untimed_acquires(tmp_path):
    result = lint_tree(tmp_path, {"repro/sim/p.py": """
        def worker(kernel, server):
            grant = yield Acquire(server)
            try:
                yield Wait(3)
            finally:
                yield Release(server)
        def explicit(kernel, server):
            grant = yield Acquire(server, timeout=None)
            try:
                yield Wait(3)
            finally:
                yield Release(server)
        """})
    assert rule_ids(result) == []


def test_rep904_accepts_grant_checked_by_its_caller(tmp_path):
    result = lint_tree(tmp_path, {"repro/sim/p.py": """
        def probe(server):
            grant = yield Acquire(server, timeout=9)
            if grant is REJECTED:
                return grant
            yield Release(server)
            return grant

        def caller(kernel, server):
            grant = yield from probe(server)
            if grant is TIMED_OUT:
                return None
            return grant
        """})
    assert rule_ids(result) == []


def test_rep904_flags_grant_no_caller_checks(tmp_path):
    result = lint_tree(tmp_path, {"repro/sim/p.py": """
        def probe(server):
            grant = yield Acquire(server, timeout=9)
            if grant is REJECTED:
                return grant
            yield Release(server)
            return grant

        def caller(kernel, server):
            grant = yield from probe(server)
            return grant
        """})
    findings = [f for f in result.findings if f.rule == "REP904"]
    assert rule_ids(result) == ["REP904"]
    assert "any caller it escapes to" in findings[0].message


def test_rep904_suppressible_inline(tmp_path):
    result = lint_tree(tmp_path, {"repro/sim/p.py": """
        def worker(kernel, server):
            grant = yield Acquire(server, timeout=5)  # repro: allow[REP904] -- expiry handled by the harness
            if grant is REJECTED:
                return
            try:
                yield Wait(3)
            finally:
                yield Release(server)
        """})
    assert rule_ids(result) == []
    assert len(result.suppressed) == 1


# -- REP3xx secret hygiene / REP8xx secret taint -----------------------------

def test_rep801_flags_secret_in_fstring_and_exception(tmp_path):
    result = lint_tree(tmp_path, {"repro/drm/k.py": """
        def fail(kdev, reason):
            detail = f"kdev={kdev}"
            raise RuntimeError("bad key material %r" % kdev)
        """})
    assert rule_ids(result) == ["REP801", "REP801"]


def test_rep801_allows_metadata_and_public_names(tmp_path):
    result = lint_tree(tmp_path, {"repro/drm/k.py": """
        def describe(key, public_key, key_id):
            raise ValueError(
                "key of %d octets, id %s, modulus %d"
                % (len(key), key_id, public_key.modulus_octets))
        """})
    assert rule_ids(result) == []


def test_rep801_tracks_flow_through_helper_calls(tmp_path):
    result = lint_tree(tmp_path, {
        "repro/sim/fmt.py": """
            def shorten(value):
                return "v=%s" % value
            """,
        "repro/sim/leak.py": """
            from .fmt import shorten
            def announce(tracer, session):
                tracer.event("debug", key=shorten(session.kcek))
            """,
    })
    findings = [f for f in result.findings if f.rule == "REP801"]
    assert [f.rule for f in findings] == ["REP801"]
    assert "kcek" in findings[0].message


def test_rep801_reports_interprocedural_path_evidence(tmp_path):
    result = lint_tree(tmp_path, {
        "repro/obs/emit.py": """
            def record(logger, value):
                logger.info("value: %s" % value)
            """,
        "repro/drm/caller.py": """
            from repro.obs.emit import record
            def run(logger, ctx):
                record(logger, ctx.krek)
            """,
    })
    findings = [f for f in result.findings if f.rule == "REP801"]
    assert len(findings) == 1
    assert "repro.drm.caller.run -> repro.obs.emit.record" \
        in findings[0].message


def test_rep801_allows_stable_digest_redaction(tmp_path):
    result = lint_tree(tmp_path, {"repro/drm/k.py": """
        def key_fingerprint(material):
            return "fp"
        def fail(kdev):
            raise RuntimeError(
                "bad key %s" % key_fingerprint(kdev))
        """})
    assert rule_ids(result) == []


def test_rep302_flags_bytes_compare_in_crypto(tmp_path):
    result = lint_tree(tmp_path, {"repro/crypto/c.py": """
        from .sha1 import sha1
        def verify(data, tag):
            return sha1(data) == tag
        """})
    assert rule_ids(result) == ["REP302"]


def test_rep302_allows_length_checks_and_constant_time_equal(tmp_path):
    result = lint_tree(tmp_path, {"repro/crypto/c.py": """
        def constant_time_equal(a, b):
            if len(a) != len(b):
                return False
            diff = 0
            for x, y in zip(a, b):
                diff |= x ^ y
            return diff == 0
        def shape_ok(blob):
            return len(blob) % 16 == 0 and blob[-1] != 0xBC
        """})
    assert rule_ids(result) == []


# -- REP4xx error contracts --------------------------------------------------

def test_rep401_flags_bare_except_everywhere(tmp_path):
    result = lint_tree(tmp_path, {"anywhere.py": """
        def swallow():
            try:
                risky()
            except:
                return None
        """})
    assert rule_ids(result) == ["REP401"]


def test_rep402_flags_silent_pass_in_protocol_code(tmp_path):
    result = lint_tree(tmp_path, {"repro/drm/p.py": """
        def attempt():
            try:
                risky()
            except ValueError:
                pass
        """})
    assert rule_ids(result) == ["REP402"]


def test_rep402_allows_handled_exceptions(tmp_path):
    result = lint_tree(tmp_path, {"repro/drm/p.py": """
        def attempt(log):
            try:
                risky()
            except ValueError as error:
                log.append(error)
        """})
    assert rule_ids(result) == []


def test_rep403_flags_builtin_raise_in_decode_path(tmp_path):
    result = lint_tree(tmp_path, {"repro/drm/w.py": """
        def decode_header(blob):
            if not blob:
                raise ValueError("empty header")
            return blob[0]
        def encode_header(value):
            raise TypeError("unencodable")
        """})
    # encode paths are free to raise TypeError; decode paths are not.
    assert rule_ids(result) == ["REP403"]


# -- REP5xx durability -------------------------------------------------------

def test_rep501_flags_direct_storage_dict_mutation(tmp_path):
    result = lint_tree(tmp_path, {"repro/drm/a.py": """
        def install(agent, installed):
            agent.storage.installed_ros[installed.ro_id] = installed
        def forget(agent, ro_id):
            del agent.storage.installed_ros[ro_id]
        def remember(agent, guid):
            agent.storage.replay_cache.add(guid)
        """})
    assert rule_ids(result) == ["REP501", "REP501", "REP501"]


def test_rep501_allows_reads_and_storage_module_itself(tmp_path):
    result = lint_tree(tmp_path, {
        "repro/drm/a.py": """
            def lookup(agent, ro_id):
                if ro_id in agent.storage.replay_cache:
                    return None
                return agent.storage.installed_ros.get(ro_id)
            """,
        "repro/drm/storage.py": """
            class DeviceStorage:
                def _do_store_ro(self, installed):
                    self.installed_ros[installed.ro_id] = installed
            """,
    })
    assert "REP501" not in rule_ids(result)


def test_rep501_ignores_same_names_outside_drm(tmp_path):
    result = lint_tree(tmp_path, {"repro/usecases/f.py": """
        def poke(agent, guid):
            agent.storage.replay_cache.add(guid)
        """})
    assert "REP501" not in rule_ids(result)


def test_rep502_flags_in_place_state_edit(tmp_path):
    result = lint_tree(tmp_path, {"repro/drm/a.py": """
        def consume(installed, ptype, now):
            installed.state.remaining_counts[ptype] -= 1
            installed.state.first_use[ptype] = now
        """})
    assert rule_ids(result) == ["REP502", "REP502"]


def test_rep502_allows_snapshot_then_set_ro_state(tmp_path):
    result = lint_tree(tmp_path, {"repro/drm/a.py": """
        def consume(agent, installed, evaluator, permission, now):
            state = installed.state.snapshot()
            evaluator.consume(permission, state, now)
            agent.storage.set_ro_state(installed.ro_id, state)
        def evaluate(state, ptype):
            state.remaining_counts[ptype] -= 1
        """})
    # The local-variable mutation in evaluate() is the evaluator's
    # job on a snapshot; only the .state.<field> chain is the hazard.
    assert "REP502" not in rule_ids(result)


# -- suppressions ------------------------------------------------------------

def test_justified_suppression_silences_finding(tmp_path):
    result = lint_tree(tmp_path, {"repro/drm/m.py": """
        # repro: allow[REP201] -- legacy path, tracked in issue 42
        from ..crypto.sha1 import sha1
        """})
    assert rule_ids(result) == []
    assert len(result.suppressed) == 1


def test_unjustified_suppression_does_not_suppress(tmp_path):
    result = lint_tree(tmp_path, {"repro/drm/m.py": """
        # repro: allow[REP201]
        from ..crypto.sha1 import sha1
        """})
    # The finding survives AND the defective suppression is reported.
    assert rule_ids(result) == ["REP002", "REP201"]


def test_unknown_rule_suppression_is_reported(tmp_path):
    result = lint_tree(tmp_path, {"repro/drm/m.py": """
        x = 1  # repro: allow[REP999] -- no such rule
        """})
    assert rule_ids(result) == ["REP001"]


def test_docstring_mention_of_allow_syntax_is_not_a_suppression(tmp_path):
    result = lint_tree(tmp_path, {"repro/drm/m.py": '''
        """Docs: use # repro: allow[REP201] to suppress."""
        from ..crypto.sha1 import sha1
        '''})
    assert rule_ids(result) == ["REP201"]


# -- REP6xx observability ----------------------------------------------------

def test_rep601_flags_print_in_library_code(tmp_path):
    result = lint_tree(tmp_path, {"repro/drm/agentish.py": """
        def install(ro):
            print("installing", ro)
        """})
    assert rule_ids(result) == ["REP601"]


def test_rep601_flags_builtins_print_alias(tmp_path):
    result = lint_tree(tmp_path, {"repro/store/j.py": """
        import builtins
        def debug(x):
            builtins.print(x)
        """})
    assert rule_ids(result) == ["REP601"]


def test_rep601_allows_print_in_cli(tmp_path):
    result = lint_tree(tmp_path, {"repro/cli.py": """
        def emit(text):
            print(text)
        """})
    assert "REP601" not in rule_ids(result)


def test_rep601_ignores_local_print_method(tmp_path):
    result = lint_tree(tmp_path, {"repro/drm/r.py": """
        def render(doc):
            return doc.print()
        """})
    # attribute call on an object is not builtins.print
    assert "REP601" not in rule_ids(result)


def test_rep602_flags_logging_import_in_library_code(tmp_path):
    result = lint_tree(tmp_path, {"repro/usecases/f.py": """
        import logging
        log = logging.getLogger(__name__)
        """})
    assert rule_ids(result) == ["REP602"]


def test_rep602_flags_from_logging_import(tmp_path):
    result = lint_tree(tmp_path, {"repro/obs/t.py": """
        from logging import getLogger
        log = getLogger(__name__)
        """})
    assert rule_ids(result) == ["REP602"]


def test_rep602_allows_logging_in_lint_reporters(tmp_path):
    result = lint_tree(tmp_path, {"repro/lint/reporterish.py": """
        import logging
        """})
    assert "REP602" not in rule_ids(result)


def test_rep601_suppression_with_justification(tmp_path):
    result = lint_tree(tmp_path, {"repro/drm/d.py": """
        def dump(x):
            print(x)  # repro: allow[REP601] -- debug hook, never shipped
        """})
    assert rule_ids(result) == []
    assert len(result.suppressed) == 1


def test_rep603_flags_unmanaged_span_call(tmp_path):
    result = lint_tree(tmp_path, {"repro/drm/s.py": """
        def flow(tracer):
            span = tracer.span("flow", track="roap")
            span.set("k", 1)
        """})
    assert rule_ids(result) == ["REP603"]


def test_rep603_flags_unmanaged_span_on_attribute_chain(tmp_path):
    result = lint_tree(tmp_path, {"repro/usecases/s.py": """
        def flow(world):
            world.tracer.span("flow")
        """})
    assert rule_ids(result) == ["REP603"]


def test_rep603_allows_with_managed_span(tmp_path):
    result = lint_tree(tmp_path, {"repro/drm/s.py": """
        def flow(self, tracer):
            with tracer.span("a"), self.tracer.span("b") as span:
                span.set("k", 1)
        """})
    assert "REP603" not in rule_ids(result)


def test_rep603_ignores_non_tracer_span_methods(tmp_path):
    result = lint_tree(tmp_path, {"repro/core/s.py": """
        def width(interval):
            return interval.span(2)
        """})
    assert "REP603" not in rule_ids(result)


# -- REP7xx trust boundary ---------------------------------------------------

def test_rep701_flags_swallowed_trust_error(tmp_path):
    result = lint_tree(tmp_path, {"repro/drm/v.py": """
        def verify(chain):
            try:
                check_chain(chain)
            except TrustError:
                pass
        """})
    # the generic silent-pass rule fires too; REP701 is the specific one
    assert "REP701" in rule_ids(result)


def test_rep701_flags_counter_bump_and_tuple_catch(tmp_path):
    result = lint_tree(tmp_path, {"repro/drm/v.py": """
        failures = 0
        def verify(chain):
            global failures
            try:
                check_chain(chain)
            except (ValueError, CertificateRevokedError):
                failures += 1
        """})
    # not a bare pass, so only the trust-specific rule sees it
    assert rule_ids(result) == ["REP701"]


def test_rep701_allows_recorded_or_reraised_failures(tmp_path):
    result = lint_tree(tmp_path, {"repro/drm/v.py": """
        def verify(chain, breaker):
            try:
                check_chain(chain)
            except TrustError as error:
                breaker.record_failure()
                raise
        def probe(chain):
            try:
                check_chain(chain)
            except errors.TrustError:
                return False
            return True
        """})
    assert "REP701" not in rule_ids(result)


def test_rep701_ignores_trust_names_outside_drm(tmp_path):
    result = lint_tree(tmp_path, {"repro/analysis/a.py": """
        def tolerate(run):
            try:
                run()
            except TrustError:
                pass
        """})
    assert "REP701" not in rule_ids(result)
