"""Reporter output: the JSON schema CI parses, text, and SARIF.

The SARIF document is byte-pinned against a golden snapshot (the CI
lint job uploads it for code-scanning annotations); regenerate after an
intentional format change with::

    UPDATE_GOLDEN=1 python -m pytest tests/lint/test_reporters.py
"""

import json
import os
import pathlib
import textwrap

from repro.lint import LintEngine, render_json, render_sarif, \
    render_text

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"
GOLDEN_SARIF = GOLDEN_DIR / "findings.sarif.json"


def run_on(tmp_path, source):
    target = tmp_path / "repro" / "usecases" / "w.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    return LintEngine().run([str(tmp_path)])


def test_json_report_schema(tmp_path):
    result = run_on(tmp_path, """
        import time
        def stamp():
            return time.time()
        """)
    document = render_json(result)
    # Pin the whole shape: CI and external tooling parse this.
    assert set(document) == {"version", "findings", "counts", "summary"}
    assert document["version"] == 1
    finding = document["findings"][0]
    assert set(finding) == {"rule", "path", "line", "column", "message",
                            "fingerprint"}
    assert finding["rule"] == "REP101"
    assert finding["line"] == 4
    assert document["counts"] == {"REP101": 1}
    assert document["summary"] == {
        "new": 1, "baselined": 0, "suppressed": 0,
        "files": result.files_scanned, "clean": False,
    }
    json.dumps(document)  # must be serializable as-is


def test_json_report_clean_summary(tmp_path):
    result = run_on(tmp_path, "x = 1\n")
    document = render_json(result)
    assert document["findings"] == []
    assert document["summary"]["clean"] is True


def test_text_report_lists_findings_and_summary(tmp_path):
    result = run_on(tmp_path, """
        import time
        def stamp():
            return time.time()
        """)
    text = render_text(result)
    assert "REP101" in text
    assert "w.py:4:" in text
    assert "1 finding(s)" in text


def test_text_report_clean(tmp_path):
    result = run_on(tmp_path, "x = 1\n")
    assert render_text(result).startswith("clean: 0 new findings")


def _sarif_fixture_result(tmp_path, monkeypatch):
    # Relative paths keep fingerprints and artifact URIs independent
    # of the tmp directory, so the document can be byte-pinned.
    target = tmp_path / "repro" / "usecases" / "w.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent("""
        import time
        def stamp():
            return time.time()
        """))
    monkeypatch.chdir(tmp_path)
    return LintEngine().run(["repro"])


def test_sarif_schema_shape(tmp_path, monkeypatch):
    document = render_sarif(_sarif_fixture_result(tmp_path, monkeypatch))
    assert document["version"] == "2.1.0"
    run = document["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    assert [rule["id"] for rule in run["tool"]["driver"]["rules"]] \
        == ["REP101"]
    result = run["results"][0]
    assert result["ruleId"] == "REP101"
    assert result["level"] == "error"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "repro/usecases/w.py"
    assert location["region"]["startLine"] == 4
    assert location["region"]["startColumn"] >= 1
    assert result["partialFingerprints"]["reproLint/v1"]


def test_sarif_matches_golden_snapshot(tmp_path, monkeypatch):
    document = render_sarif(_sarif_fixture_result(tmp_path, monkeypatch))
    generated = json.dumps(document, indent=2, sort_keys=True) + "\n"
    monkeypatch.chdir(GOLDEN_DIR.parent)  # leave tmp before writing
    if os.environ.get("UPDATE_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        GOLDEN_SARIF.write_text(generated, encoding="utf-8")
    assert generated == GOLDEN_SARIF.read_text(encoding="utf-8"), \
        "SARIF output drifted from the golden snapshot; if " \
        "intentional, regenerate with UPDATE_GOLDEN=1."
