"""Reporter output: the JSON schema CI parses and the text format."""

import json
import textwrap

from repro.lint import LintEngine, render_json, render_text


def run_on(tmp_path, source):
    target = tmp_path / "repro" / "usecases" / "w.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    return LintEngine().run([str(tmp_path)])


def test_json_report_schema(tmp_path):
    result = run_on(tmp_path, """
        import time
        def stamp():
            return time.time()
        """)
    document = render_json(result)
    # Pin the whole shape: CI and external tooling parse this.
    assert set(document) == {"version", "findings", "counts", "summary"}
    assert document["version"] == 1
    finding = document["findings"][0]
    assert set(finding) == {"rule", "path", "line", "column", "message",
                            "fingerprint"}
    assert finding["rule"] == "REP101"
    assert finding["line"] == 4
    assert document["counts"] == {"REP101": 1}
    assert document["summary"] == {
        "new": 1, "baselined": 0, "suppressed": 0,
        "files": result.files_scanned, "clean": False,
    }
    json.dumps(document)  # must be serializable as-is


def test_json_report_clean_summary(tmp_path):
    result = run_on(tmp_path, "x = 1\n")
    document = render_json(result)
    assert document["findings"] == []
    assert document["summary"]["clean"] is True


def test_text_report_lists_findings_and_summary(tmp_path):
    result = run_on(tmp_path, """
        import time
        def stamp():
            return time.time()
        """)
    text = render_text(result)
    assert "REP101" in text
    assert "w.py:4:" in text
    assert "1 finding(s)" in text


def test_text_report_clean(tmp_path):
    result = run_on(tmp_path, "x = 1\n")
    assert render_text(result).startswith("clean: 0 new findings")
