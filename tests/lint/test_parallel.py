"""Sharded analysis must be bit-identical to the sequential path.

``--jobs N`` forks workers that inherit the parsed project; the only
acceptable difference is wall-clock. Output equality is asserted at
the strongest level available — the rendered JSON document, which
includes fingerprints, ordering, and summary counts.
"""

import json
import textwrap

from repro.cli import main
from repro.lint import LintEngine, render_json

FIXTURE = {
    "repro/usecases/wall.py": """
        import time
        def stamp():
            return time.time()
        """,
    "repro/drm/direct.py": """
        from ..crypto.sha1 import sha1
        def digest(data):
            return sha1(data)
        """,
    "repro/helpers/esc.py": """
        from repro.crypto.aes import aes_encrypt_block
        def enc(block, key):
            return aes_encrypt_block(block, key)
        """,
    "repro/drm/escaper.py": """
        from repro.helpers.esc import enc
        def protect(block, key):
            return enc(block, key)
        """,
    "repro/sim/proc.py": """
        def worker(server):
            grant = yield Acquire(server)
            yield Wait(3)
            yield Release(server)
        """,
    "repro/sim/leaky.py": """
        def announce(tracer, kcek):
            tracer.event("issued", key=kcek)
        """,
    "repro/obs/clean.py": """
        def shape(values):
            return sorted(values)
        """,
}


def write_tree(tmp_path):
    for relpath, source in FIXTURE.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))


def document_for(tmp_path, jobs):
    result = LintEngine().run([str(tmp_path)], jobs=jobs)
    return render_json(result)


def test_parallel_output_is_bit_identical(tmp_path):
    write_tree(tmp_path)
    sequential = json.dumps(document_for(tmp_path, jobs=1),
                            sort_keys=True)
    for jobs in (2, 3, 8):
        assert json.dumps(document_for(tmp_path, jobs=jobs),
                          sort_keys=True) == sequential


def test_parallel_finds_every_family(tmp_path):
    write_tree(tmp_path)
    document = document_for(tmp_path, jobs=4)
    assert set(document["counts"]) == {
        "REP101", "REP201", "REP202", "REP801", "REP901"}


def test_jobs_flag_via_cli(tmp_path, capsys):
    write_tree(tmp_path)
    code = main(["lint", str(tmp_path), "--no-baseline", "--jobs", "2",
                 "--format", "json"])
    assert code == 1
    parallel = capsys.readouterr().out
    code = main(["lint", str(tmp_path), "--no-baseline",
                 "--format", "json"])
    assert code == 1
    assert capsys.readouterr().out == parallel


def test_jobs_must_be_positive(tmp_path, capsys):
    write_tree(tmp_path)
    assert main(["lint", str(tmp_path), "--jobs", "0"]) == 2
    assert "--jobs" in capsys.readouterr().err
