"""The gate itself: the committed tree is clean, regressions fail.

The acceptance contract for the analyzer is end-to-end: ``python -m
repro lint src/`` exits 0 against the committed baseline, and a seeded
violation makes it exit nonzero — which is exactly what the CI lint job
relies on.
"""

import json
import pathlib
import textwrap

import pytest

from repro.cli import main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


@pytest.fixture
def in_repo_root(monkeypatch):
    monkeypatch.chdir(REPO_ROOT)


def test_committed_tree_is_clean(in_repo_root, capsys):
    assert main(["lint", "src"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("clean: 0 new findings")


def test_committed_tree_is_clean_in_json(in_repo_root, capsys):
    assert main(["lint", "src", "--format", "json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["summary"]["clean"] is True
    assert document["findings"] == []


def test_seeded_regression_fails_the_gate(tmp_path, capsys):
    # A violation of an everywhere-scoped rule in a fresh file must
    # flip the exit code: this is the regression CI would catch.
    bad = tmp_path / "regression.py"
    bad.write_text(textwrap.dedent("""
        def swallow():
            try:
                risky()
            except:
                return None
        """))
    assert main(["lint", str(bad), "--no-baseline"]) == 1
    assert "REP401" in capsys.readouterr().out


def test_seeded_scoped_regression_fails_the_gate(tmp_path, capsys):
    # Scoped rules key off the module path, so a fixture tree that
    # mirrors the drm layout regresses exactly like real source.
    bad = tmp_path / "repro" / "drm" / "regression.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("from ..crypto.sha1 import sha1\n")
    assert main(["lint", str(tmp_path), "--no-baseline"]) == 1
    assert "REP201" in capsys.readouterr().out


def test_update_baseline_round_trip_via_cli(tmp_path, monkeypatch,
                                            capsys):
    bad = tmp_path / "repro" / "drm" / "m.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("from ..crypto.sha1 import sha1\n")
    monkeypatch.chdir(tmp_path)
    assert main(["lint", "repro"]) == 1
    assert main(["lint", "repro", "--update-baseline"]) == 0
    assert main(["lint", "repro"]) == 0
    out = capsys.readouterr().out
    assert "1 finding(s) grandfathered" in out
    assert (tmp_path / "lint-baseline.json").exists()


def test_missing_path_is_a_usage_error(capsys):
    assert main(["lint", "/nonexistent/lint/path"]) == 2
    assert "no such path" in capsys.readouterr().err


def test_list_rules_names_every_family(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("REP101", "REP102", "REP103", "REP201", "REP202",
                    "REP302", "REP401", "REP402", "REP403",
                    "REP801", "REP901", "REP902", "REP903"):
        assert rule_id in out
    # REP301's syntactic heuristic is fully replaced by REP801 taint.
    assert "REP301" not in out


def test_suppressions_in_committed_tree_are_justified(in_repo_root,
                                                      capsys):
    # The committed tree leans on inline allows (session jitter, KAT
    # comparisons); REP002 would fire if any lost its justification.
    assert main(["lint", "src", "--format", "json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["summary"]["suppressed"] >= 3
