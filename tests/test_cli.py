"""Command-line interface."""

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_table1(capsys):
    code, out = run_cli(capsys, "table1")
    assert code == 0
    assert "all entries match the paper" in out


def test_figure6(capsys):
    code, out = run_cli(capsys, "figure6")
    assert code == 0
    assert "paper: 7730 ms" in out


def test_figure7(capsys):
    code, out = run_cli(capsys, "figure7")
    assert code == 0
    assert "paper: 12 ms" in out


def test_all(capsys):
    code, out = run_cli(capsys, "all")
    assert code == 0
    for marker in ("Table 1", "Figure 5", "Figure 6", "Figure 7",
                   "~600 ms"):
        assert marker in out


def test_run_default(capsys):
    code, out = run_cli(capsys, "run")
    assert code == 0
    assert "Ringtone" in out
    assert "SW/HW" in out


def test_run_custom_size(capsys):
    code, out = run_cli(capsys, "run", "--use-case", "custom",
                        "--size", "1024", "--accesses", "2")
    assert code == 0
    assert "1024 octets x 2 accesses" in out


def test_run_exports(capsys, tmp_path):
    trace_path = str(tmp_path / "trace.json")
    breakdown_path = str(tmp_path / "b.json")
    code, out = run_cli(capsys, "run", "--use-case", "ringtone",
                        "--export-trace", trace_path,
                        "--arch", "HW",
                        "--export-breakdown", breakdown_path)
    assert code == 0
    with open(trace_path) as handle:
        assert json.load(handle)["kind"] == "operation-trace"
    with open(breakdown_path) as handle:
        data = json.load(handle)
    assert data["kind"] == "cost-breakdown"
    assert data["profile"] == "HW"


def test_pareto(capsys):
    code, out = run_cli(capsys, "pareto", "--use-case", "music")
    assert code == 0
    assert "SW-only" in out
    assert "Pareto" in out
    # SW-only and the full set are always in the frontier column.
    lines = [line for line in out.splitlines() if "yes" in line]
    assert len(lines) >= 2


def test_battery(capsys):
    code, out = run_cli(capsys, "battery", "--capacity-mah", "1000")
    assert code == 0
    assert "1000 mAh" in out
    assert "workloads/charge" in out


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["no-such-command"])


def test_missing_command_exits():
    with pytest.raises(SystemExit):
        main([])


def test_concurrency(capsys):
    code, out = run_cli(capsys, "concurrency", "--use-case", "music")
    assert code == 0
    assert "CPU freed" in out
    assert "offload concurrency" in out


def test_concurrency_overlap_flag(capsys):
    code, out = run_cli(capsys, "concurrency", "--overlap", "0.0")
    assert code == 0


@pytest.mark.slow
def test_resilience(capsys):
    code, out = run_cli(capsys, "resilience",
                        "--loss-rates", "0,0.2")
    assert code == 0
    assert "Registration retry overhead" in out
    for architecture in ("SW", "SW/HW", "HW"):
        assert architecture in out
    assert "E[attempts]" in out


def test_fleet(capsys):
    code, out = run_cli(capsys, "fleet", "--devices", "500",
                        "--workers", "2", "--rsa-bits", "512",
                        "--shard-size", "100", "--seed", "cli-fleet")
    assert code == 0
    assert "Fleet of 500 devices" in out
    assert "Rights Issuer load" in out
    for architecture in ("SW", "SW/HW", "HW"):
        assert architecture in out
    assert "p99 [ms]" in out
    assert "mean request rate" in out


def test_fleet_rejects_bad_config(capsys):
    code = main(["fleet", "--devices", "0"])
    err = capsys.readouterr().err
    assert code == 2
    assert "error:" in err


def test_durability(capsys):
    code, out = run_cli(capsys, "durability", "--rsa-bits", "512",
                        "--journal-lengths", "8,64",
                        "--seed", "cli-durability")
    assert code == 0
    assert "Write-ahead journal overhead per phase" in out
    assert "Power-loss recovery replay cost vs journal length" in out
    for architecture in ("SW", "SW/HW", "HW"):
        assert architecture in out
    assert "registration" in out and "access" in out


def test_durability_rejects_bad_lengths(capsys):
    code = main(["durability", "--journal-lengths", "8,soon"])
    err = capsys.readouterr().err
    assert code == 2
    assert "error:" in err


def test_fleet_journaled_with_crashes(capsys):
    code, out = run_cli(capsys, "fleet", "--devices", "400",
                        "--rsa-bits", "512", "--shard-size", "100",
                        "--seed", "cli-fleet", "--journaled",
                        "--crash-rate", "0.1")
    assert code == 0
    assert "power-loss recoveries" in out
    assert "journal records replayed" in out


def test_fleet_rejects_crash_rate_without_journal(capsys):
    code = main(["fleet", "--devices", "400", "--crash-rate", "0.1"])
    err = capsys.readouterr().err
    assert code == 2
    assert "journaled" in err


def test_selftest(capsys):
    code, out = run_cli(capsys, "selftest")
    assert code == 0
    assert "self-test PASSED" in out
    assert out.count("PASS") >= 7


@pytest.mark.slow
def test_report(capsys, tmp_path):
    path = str(tmp_path / "REPORT.md")
    code, out = run_cli(capsys, "report", "--output", path)
    assert code == 0
    with open(path) as handle:
        text = handle.read()
    assert "# Reproduction report" in text
    assert "Figure 6" in text and "Figure 7" in text
    assert "Retry overhead under loss" in text
    assert "## Verdict" in text


def test_json_flag_on_artifact(capsys):
    code, out = run_cli(capsys, "table1", "--json")
    assert code == 0
    data = json.loads(out)
    assert data["artifact"] == "table1"
    assert data["result"]["matches_paper"] is True


def test_json_flag_on_run(capsys):
    code, out = run_cli(capsys, "run", "--json")
    assert code == 0
    data = json.loads(out)
    assert set(data["architectures"]) == {"SW", "SW/HW", "HW"}
    assert data["architectures"]["SW"]["kind"] == "cost-breakdown"


def test_fleet_kernel_mode(capsys):
    code, out = run_cli(capsys, "fleet", "--devices", "200",
                        "--rsa-bits", "512", "--shard-size", "100",
                        "--seed", "cli-fleet-kernel", "--window", "600",
                        "--kernel")
    assert code == 0
    assert "Shared RI under the event kernel" in out
    assert "1 signing unit, unbounded" in out


def test_saturation(capsys):
    code, out = run_cli(capsys, "saturation", "--requests", "150",
                        "--rhos", "0.3,0.7", "--seed", "cli-sat")
    assert code == 0
    assert "SW RI: nominal capacity" in out
    assert "HW RI: nominal capacity" in out
    assert "utilization" in out


def test_saturation_rejects_bad_rhos(capsys):
    code = main(["saturation", "--requests", "50", "--rhos", "0,-1"])
    capsys.readouterr()
    assert code == 2


def test_json_flag_on_saturation(capsys):
    code, out = run_cli(capsys, "saturation", "--requests", "100",
                        "--rhos", "0.4", "--seed", "cli-sat-json",
                        "--json")
    assert code == 0
    data = json.loads(out)
    curves = data["sweep"]["points"]
    assert set(curves) == {"SW", "SW/HW", "HW"}
    assert curves["SW"][0]["result"]["load"]["served"] == 100


def test_json_flag_on_fleet(capsys):
    code, out = run_cli(capsys, "fleet", "--devices", "200",
                        "--rsa-bits", "512", "--shard-size", "100",
                        "--seed", "cli-fleet-json", "--json")
    assert code == 0
    data = json.loads(out)
    assert data["result"]["metrics"]["kind"] == "metrics-registry"
    assert data["result"]["metrics"]["counters"]["fleet.devices"] == 200


def test_overload(capsys):
    code, out = run_cli(capsys, "overload", "--jobs", "2")
    assert code == 0
    assert "none/naive" in out
    assert "token-bucket/backoff-jitter+deadline" in out
    assert "Spike severity ladder" in out
    assert "Architecture cross-check" in out


def test_json_flag_on_overload(capsys):
    code, out = run_cli(capsys, "overload", "--jobs", "2", "--json")
    assert code == 0
    data = json.loads(out)
    grid = data["sweep"]["grid"]
    assert "none/naive" in grid
    # The machine-readable headline: the unmitigated cell never
    # recovers while the mitigated reference does.
    assert grid["none/naive"]["recovery_bin"] is None
    assert grid["token-bucket/backoff-jitter+deadline"][
        "recovery_bin"] is not None


def test_trace_command_writes_chrome_and_metrics(capsys, tmp_path):
    trace_path = str(tmp_path / "t.trace.json")
    metrics_path = str(tmp_path / "t.metrics.json")
    code, out = run_cli(capsys, "trace", "--scenario", "registration",
                        "--seed", "cli-trace", "--rsa-bits", "512",
                        "--output", trace_path,
                        "--metrics", metrics_path)
    assert code == 0
    assert "Chrome trace written to" in out
    with open(trace_path) as handle:
        document = json.load(handle)
    assert document["otherData"]["kind"] == "repro-cycle-trace"
    assert any(entry["ph"] == "X"
               for entry in document["traceEvents"])
    with open(metrics_path) as handle:
        assert json.load(handle)["kind"] == "metrics-registry"


def test_trace_command_json_payload(capsys, tmp_path):
    code, out = run_cli(capsys, "trace", "--scenario", "consume",
                        "--seed", "cli-trace", "--rsa-bits", "512",
                        "--output", str(tmp_path / "c.trace.json"),
                        "--metrics", str(tmp_path / "c.metrics.json"),
                        "--json")
    assert code == 0
    data = json.loads(out)
    assert data["scenario"] == "consume"
    assert data["total_cycles"] > 0
    assert "consumption" in data["cycles_by_track"]


def test_run_trace_flag(capsys, tmp_path):
    trace_path = str(tmp_path / "run.trace.json")
    code, out = run_cli(capsys, "run", "--use-case", "ringtone",
                        "--trace", trace_path)
    assert code == 0
    assert "cycle trace" in out
    with open(trace_path) as handle:
        document = json.load(handle)
    assert document["otherData"]["kind"] == "repro-cycle-trace"


def test_durability_trace_flag(capsys, tmp_path):
    trace_path = str(tmp_path / "durable.trace.json")
    code, out = run_cli(capsys, "durability", "--rsa-bits", "512",
                        "--journal-lengths", "8",
                        "--seed", "cli-durability",
                        "--trace", trace_path)
    assert code == 0
    assert "durable scenario" in out
    with open(trace_path) as handle:
        document = json.load(handle)
    names = {entry["name"] for entry in document["traceEvents"]}
    assert "storage.transaction" in names
    assert "recovery.replay" in names


def test_fleet_metrics_flag(capsys, tmp_path):
    metrics_path = str(tmp_path / "fleet.metrics.json")
    code, out = run_cli(capsys, "fleet", "--devices", "200",
                        "--rsa-bits", "512", "--shard-size", "100",
                        "--seed", "cli-fleet", "--metrics", metrics_path)
    assert code == 0
    assert "merged fleet metrics written to" in out
    with open(metrics_path) as handle:
        data = json.load(handle)
    assert data["counters"]["fleet.devices"] == 200


def test_adversary(capsys):
    code, out = run_cli(capsys, "adversary", "--rsa-bits", "512",
                        "--seed", "cli-adversary")
    assert code == 0
    assert "zero-acceptance sweep" in out
    assert "REJECTED" in out and "ACCEPTED" not in out
    assert "plain retry vs forgery cut-off" in out
    assert "Outage degradation" in out


def test_adversary_json(capsys):
    code, out = run_cli(capsys, "adversary", "--rsa-bits", "512",
                        "--seed", "cli-adversary", "--json")
    assert code == 0
    payload = json.loads(out)
    assert len(payload["sweep"]["outcomes"]) >= 10
    assert all(o["rejected"] for o in payload["sweep"]["outcomes"])
    assert payload["drains"][0]["breaker_attempts"] \
        < payload["drains"][0]["retry_attempts"]


def test_fleet_adversary_fraction(capsys):
    code, out = run_cli(capsys, "fleet", "--devices", "400",
                        "--rsa-bits", "512", "--shard-size", "100",
                        "--seed", "cli-fleet",
                        "--adversary-fraction", "0.3")
    assert code == 0
    assert "attacked devices" in out
    assert "cut off after 2 attempts" in out


def test_fleet_rejects_bad_adversary_fraction(capsys):
    code = main(["fleet", "--devices", "400",
                 "--adversary-fraction", "1.5"])
    err = capsys.readouterr().err
    assert code == 2
    assert "error:" in err
