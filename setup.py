"""Setup shim for environments without the `wheel` package.

`pip install -e .` uses PEP 660 editable builds which require bdist_wheel;
this offline environment lacks `wheel`, so `python setup.py develop`
provides the equivalent editable install. All metadata lives in
pyproject.toml.
"""
from setuptools import setup

setup()
