"""RSA key generation and the PKCS#1 v2.1 primitives (RFC 3447).

OMA DRM 2 mandates 1024-bit RSA as its PKI function, using exactly the four
primitives the paper names:

* ``RSAEP`` / ``RSADP`` — encryption/decryption primitives (key transport
  of the ``K_MAC‖K_REK`` wrapping secret),
* ``RSASP1`` / ``RSAVP1`` — signature/verification primitives (under
  RSASSA-PSS for ROAP message and Rights-Object signatures).

Private-key operations use the Chinese Remainder Theorem, the same
optimization the Montgomery-multiplier hardware of the paper's reference
[7] exploits; the ~14x public/private cost ratio in Table 1 reflects the
short public exponent versus the full-length private exponent.
"""

from dataclasses import dataclass

from .encoding import byte_length
from .errors import DecryptionError, KeyGenerationError, MessageTooLongError
from .primes import generate_prime
from .rng import HmacDrbg

#: The conventional public exponent F4.
DEFAULT_PUBLIC_EXPONENT = 65537


@dataclass(frozen=True)
class RSAPublicKey:
    """RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def modulus_bits(self) -> int:
        """Size of the modulus in bits (1024 for the DRM default)."""
        return self.n.bit_length()

    @property
    def modulus_octets(self) -> int:
        """Size of the modulus in octets (``k`` in RFC 3447)."""
        return byte_length(self.n)


@dataclass(frozen=True)
class RSAPrivateKey:
    """RSA private key with CRT components (RFC 3447 second form)."""

    n: int
    e: int
    d: int
    p: int
    q: int
    d_p: int
    d_q: int
    q_inv: int

    @property
    def public_key(self) -> RSAPublicKey:
        """The matching public key."""
        return RSAPublicKey(self.n, self.e)

    @property
    def modulus_bits(self) -> int:
        """Size of the modulus in bits."""
        return self.n.bit_length()

    @property
    def modulus_octets(self) -> int:
        """Size of the modulus in octets."""
        return byte_length(self.n)


def generate_keypair(bits: int, rng: HmacDrbg,
                     public_exponent: int = DEFAULT_PUBLIC_EXPONENT
                     ) -> RSAPrivateKey:
    """Generate an RSA key pair with a modulus of exactly ``bits`` bits."""
    if bits < 64:
        raise KeyGenerationError("modulus below 64 bits is not supported")
    if public_exponent < 3 or public_exponent % 2 == 0:
        raise KeyGenerationError("public exponent must be odd and >= 3")

    half = bits // 2
    for _ in range(1000):
        p = generate_prime(bits - half, rng)
        q = generate_prime(half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = pow(public_exponent, -1, phi)
        except ValueError:
            continue  # e not invertible mod phi; draw fresh primes
        if p < q:
            p, q = q, p
        return RSAPrivateKey(
            n=n,
            e=public_exponent,
            d=d,
            p=p,
            q=q,
            d_p=d % (p - 1),
            d_q=d % (q - 1),
            q_inv=pow(q, -1, p),
        )
    raise KeyGenerationError("failed to generate an RSA key pair")


def _check_range(value: int, modulus: int, what: str) -> None:
    if not 0 <= value < modulus:
        raise DecryptionError("%s representative out of range" % what)


def rsaep(public_key: RSAPublicKey, message: int) -> int:
    """RSAEP encryption primitive: ``m^e mod n`` (RFC 3447 §5.1.1)."""
    if not 0 <= message < public_key.n:
        raise MessageTooLongError("message representative out of range")
    return pow(message, public_key.e, public_key.n)


def _crt_exponentiate(key: RSAPrivateKey, value: int) -> int:
    """Private exponentiation via the Chinese Remainder Theorem."""
    m1 = pow(value % key.p, key.d_p, key.p)
    m2 = pow(value % key.q, key.d_q, key.q)
    h = (key.q_inv * (m1 - m2)) % key.p
    return m2 + key.q * h


def rsadp(private_key: RSAPrivateKey, ciphertext: int) -> int:
    """RSADP decryption primitive: ``c^d mod n`` via CRT (RFC 3447 §5.1.2)."""
    _check_range(ciphertext, private_key.n, "ciphertext")
    return _crt_exponentiate(private_key, ciphertext)


def rsasp1(private_key: RSAPrivateKey, message: int) -> int:
    """RSASP1 signature primitive: ``m^d mod n`` via CRT (RFC 3447 §5.2.1)."""
    _check_range(message, private_key.n, "message")
    return _crt_exponentiate(private_key, message)


def rsavp1(public_key: RSAPublicKey, signature: int) -> int:
    """RSAVP1 verification primitive: ``s^e mod n`` (RFC 3447 §5.2.2)."""
    _check_range(signature, public_key.n, "signature")
    return pow(signature, public_key.e, public_key.n)
