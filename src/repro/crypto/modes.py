"""Block cipher modes of operation.

OMA DRM 2 mandates 128-bit AES in CBC mode for content encryption
(``AES_128_CBC`` in the DCF's encryption-method box). We implement CBC with
PKCS#7 padding plus a raw (unpadded) variant used by tests and by callers
that manage padding themselves.
"""

from .aes import AES, BLOCK_SIZE
from .encoding import xor_bytes
from .errors import InvalidBlockError
from .padding import pad, unpad


def _check_iv(iv: bytes) -> None:
    if len(iv) != BLOCK_SIZE:
        raise InvalidBlockError("CBC IV must be 16 octets, got %d" % len(iv))


def cbc_encrypt_raw(key: bytes, iv: bytes, plaintext: bytes) -> bytes:
    """AES-CBC encrypt without padding; input must be block-aligned."""
    _check_iv(iv)
    if len(plaintext) % BLOCK_SIZE != 0:
        raise InvalidBlockError("raw CBC input must be a block multiple")
    cipher = AES(key)
    blocks = []
    previous = iv
    for offset in range(0, len(plaintext), BLOCK_SIZE):
        block = xor_bytes(plaintext[offset:offset + BLOCK_SIZE], previous)
        previous = cipher.encrypt_block(block)
        blocks.append(previous)
    return b"".join(blocks)


def cbc_decrypt_raw(key: bytes, iv: bytes, ciphertext: bytes) -> bytes:
    """AES-CBC decrypt without padding; input must be block-aligned."""
    _check_iv(iv)
    if len(ciphertext) % BLOCK_SIZE != 0:
        raise InvalidBlockError("raw CBC input must be a block multiple")
    cipher = AES(key)
    blocks = []
    previous = iv
    for offset in range(0, len(ciphertext), BLOCK_SIZE):
        block = ciphertext[offset:offset + BLOCK_SIZE]
        blocks.append(xor_bytes(cipher.decrypt_block(block), previous))
        previous = block
    return b"".join(blocks)


def cbc_encrypt(key: bytes, iv: bytes, plaintext: bytes) -> bytes:
    """AES-CBC encrypt with PKCS#7 padding (the DCF content transform)."""
    return cbc_encrypt_raw(key, iv, pad(plaintext, BLOCK_SIZE))


def cbc_decrypt(key: bytes, iv: bytes, ciphertext: bytes) -> bytes:
    """AES-CBC decrypt and strip PKCS#7 padding."""
    return unpad(cbc_decrypt_raw(key, iv, ciphertext), BLOCK_SIZE)
