"""RSAES-KEM + key-wrapping scheme — the construction of paper Figure 3.

OMA DRM 2 transports the Rights-Object keys with a KEM/DEM hybrid
(DRM spec §7.1.1, "RSAES-KEM-KWS"):

    sender:    Z   = random in [0, n)            (1024-bit secret)
               C1  = RSAEP(pub, Z)               (1024 bits)
               KEK = KDF2(Z, 16)                 (128-bit AES key)
               C2  = AES-WRAP(KEK, K_MAC ‖ K_REK)  (320 bits on the wire;
                                                    the paper rounds the
                                                    2x128-bit payload)
               C   = C1 ‖ C2

    receiver:  Z   = RSADP(priv, C1)
               KEK = KDF2(Z, 16)
               K_MAC ‖ K_REK = AES-UNWRAP(KEK, C2)

The receiver side is exactly the "Installation — unwrapping the keys" chain
of paper Figure 3: ``C1 → RSADP → Z → KDF2 → KEK → AESUNWRAP(C2) →
K_MAC, K_REK``.
"""

from dataclasses import dataclass

from .encoding import i2osp, os2ip
from .errors import DecryptionError
from .kdf import kdf2
from .keywrap import unwrap, wrap
from .rng import HmacDrbg
from .rsa import RSAPrivateKey, RSAPublicKey, rsadp, rsaep

#: Length of the derived key-encryption key (128-bit AES).
KEK_LENGTH = 16


@dataclass(frozen=True)
class KemCiphertext:
    """The two-part ciphertext ``C = C1 ‖ C2`` of Figure 3."""

    c1: bytes
    c2: bytes

    def concatenation(self) -> bytes:
        """The on-the-wire form ``C1 ‖ C2``."""
        return self.c1 + self.c2

    @classmethod
    def split(cls, blob: bytes, modulus_octets: int) -> "KemCiphertext":
        """Split a wire blob back into ``C1`` (modulus-length) and ``C2``."""
        if len(blob) <= modulus_octets:
            raise DecryptionError("KEM ciphertext too short to split")
        return cls(c1=blob[:modulus_octets], c2=blob[modulus_octets:])


def kem_encrypt(public_key: RSAPublicKey, key_material: bytes,
                rng: HmacDrbg) -> KemCiphertext:
    """Encapsulate ``key_material`` (e.g. ``K_MAC ‖ K_REK``) to ``public_key``."""
    z = rng.random_range(1, public_key.n)
    c1 = i2osp(rsaep(public_key, z), public_key.modulus_octets)
    kek = kdf2(i2osp(z, public_key.modulus_octets), KEK_LENGTH)
    c2 = wrap(kek, key_material)
    return KemCiphertext(c1=c1, c2=c2)


def kem_decrypt(private_key: RSAPrivateKey,
                ciphertext: KemCiphertext) -> bytes:
    """Recover the wrapped key material — the Installation chain of Figure 3."""
    if len(ciphertext.c1) != private_key.modulus_octets:
        raise DecryptionError("C1 must be exactly one modulus in length")
    z = rsadp(private_key, os2ip(ciphertext.c1))
    kek = kdf2(i2osp(z, private_key.modulus_octets), KEK_LENGTH)
    return unwrap(kek, ciphertext.c2)
