"""Byte/integer conversion primitives from PKCS#1 v2.1 (RFC 3447).

``i2osp`` and ``os2ip`` are the Integer-to-Octet-String and
Octet-String-to-Integer primitives used throughout the RSA code. They are
kept in their own module because the DRM layer also uses them for canonical
length fields.
"""

from .errors import MessageTooLongError


def i2osp(x: int, length: int) -> bytes:
    """Convert a non-negative integer to a big-endian octet string.

    Raises :class:`MessageTooLongError` if ``x`` does not fit in ``length``
    octets, mirroring the "integer too large" error of RFC 3447 §4.1.
    """
    if x < 0:
        raise ValueError("i2osp requires a non-negative integer")
    if length < 0:
        raise ValueError("i2osp requires a non-negative length")
    if x >= 256 ** length:
        raise MessageTooLongError(
            "integer too large for %d-octet encoding" % length
        )
    return x.to_bytes(length, "big")


def os2ip(octets: bytes) -> int:
    """Convert a big-endian octet string to a non-negative integer."""
    return int.from_bytes(octets, "big")


def byte_length(x: int) -> int:
    """Number of octets needed to represent the non-negative integer ``x``."""
    if x < 0:
        raise ValueError("byte_length requires a non-negative integer")
    return max(1, (x.bit_length() + 7) // 8)


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError("xor_bytes requires equal-length inputs")
    return bytes(x ^ y for x, y in zip(a, b))


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Compare two byte strings without early exit.

    A real embedded implementation must compare MACs in constant time to
    avoid timing oracles; we model the same discipline here.
    """
    if len(a) != len(b):
        return False
    diff = 0
    for x, y in zip(a, b):
        diff |= x ^ y
    return diff == 0
