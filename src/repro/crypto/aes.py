"""AES block cipher implemented from the FIPS-197 specification.

OMA DRM 2 mandates 128-bit AES: AES-CBC for content encryption inside the
DCF and AES Key Wrap for the two-layer key chain (``K_CEK`` under ``K_REK``,
``K_MAC‖K_REK`` under the KDF2-derived KEK, and the installed ``C2dev`` blob
under the device key ``K_DEV``).

The S-box is derived from first principles (GF(2^8) inversion plus the
affine transform) rather than pasted as a constant table, and the round
function is realized with the classic 32-bit T-table formulation: each
T-table entry combines SubBytes, ShiftRows and MixColumns for one byte
position, so a round is 16 table lookups and a handful of XORs. This keeps
a from-scratch implementation fast enough to run multi-kilobyte DCF
payloads functionally. 192- and 256-bit keys are supported as well (the
ROAP registration phase lets peers negotiate non-default algorithms), but
all DRM defaults use 128-bit keys.
"""

import struct

from .errors import InvalidBlockError, InvalidKeyError

#: AES block size in octets (the standard fixes Nb = 4 words).
BLOCK_SIZE = 16

_KEY_ROUNDS = {16: 10, 24: 12, 32: 14}
_MASK32 = 0xFFFFFFFF


def _build_gf_tables() -> tuple:
    """Exp/log tables over GF(2^8) with generator 3 (x + 1)."""
    exp = [0] * 512
    log = [0] * 256
    value = 1
    for i in range(255):
        exp[i] = value
        log[value] = i
        value ^= (value << 1) ^ (0x11B if value & 0x80 else 0)
        value &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]
    return exp, log


_GF_EXP, _GF_LOG = _build_gf_tables()


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) with the AES polynomial."""
    if a == 0 or b == 0:
        return 0
    return _GF_EXP[_GF_LOG[a] + _GF_LOG[b]]


def _build_sbox() -> tuple:
    """Compute the AES S-box: GF(2^8) inverse followed by the affine map."""
    sbox = [0] * 256
    for byte in range(256):
        inverse = 0 if byte == 0 else _GF_EXP[255 - _GF_LOG[byte]]
        result = 0x63
        for shift in (0, 1, 2, 3, 4):
            rotated = ((inverse << shift) | (inverse >> (8 - shift))) & 0xFF
            result ^= rotated
        sbox[byte] = result
    return tuple(sbox)


_SBOX = _build_sbox()
_INV_SBOX = tuple(_SBOX.index(value) for value in range(256))

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36,
         0x6C, 0xD8, 0xAB, 0x4D)


def _build_encrypt_tables() -> tuple:
    """T-tables: T0[b] = (2s, s, s, 3s) as a 32-bit word, rotations for T1-3."""
    t0 = []
    for byte in range(256):
        s = _SBOX[byte]
        word = (_gf_mul(s, 2) << 24) | (s << 16) | (s << 8) | _gf_mul(s, 3)
        t0.append(word)
    t1 = [((w >> 8) | (w << 24)) & _MASK32 for w in t0]
    t2 = [((w >> 16) | (w << 16)) & _MASK32 for w in t0]
    t3 = [((w >> 24) | (w << 8)) & _MASK32 for w in t0]
    return tuple(t0), tuple(t1), tuple(t2), tuple(t3)


def _build_decrypt_tables() -> tuple:
    """Inverse T-tables: D0[b] = (14s', 9s', 13s', 11s') with s' = InvSBox[b]."""
    d0 = []
    for byte in range(256):
        s = _INV_SBOX[byte]
        word = ((_gf_mul(s, 14) << 24) | (_gf_mul(s, 9) << 16)
                | (_gf_mul(s, 13) << 8) | _gf_mul(s, 11))
        d0.append(word)
    d1 = [((w >> 8) | (w << 24)) & _MASK32 for w in d0]
    d2 = [((w >> 16) | (w << 16)) & _MASK32 for w in d0]
    d3 = [((w >> 24) | (w << 8)) & _MASK32 for w in d0]
    return tuple(d0), tuple(d1), tuple(d2), tuple(d3)


_T0, _T1, _T2, _T3 = _build_encrypt_tables()
_D0, _D1, _D2, _D3 = _build_decrypt_tables()

#: InvMixColumns lookup for a single byte: composing _D0 with the forward
#: S-box cancels _D0's built-in inverse S-box, leaving (14b, 9b, 13b, 11b).
#: Used to transform encryption round keys into decryption round keys.
_INV_MIX = tuple(
    _D0[_SBOX[byte]] for byte in range(256)
)


def _inv_mix_word(word: int) -> int:
    """Apply InvMixColumns to one 32-bit column."""
    return (_INV_MIX[(word >> 24) & 0xFF]
            ^ ((_INV_MIX[(word >> 16) & 0xFF] >> 8)
               | (_INV_MIX[(word >> 16) & 0xFF] << 24)) & _MASK32
            ^ ((_INV_MIX[(word >> 8) & 0xFF] >> 16)
               | (_INV_MIX[(word >> 8) & 0xFF] << 16)) & _MASK32
            ^ ((_INV_MIX[word & 0xFF] >> 24)
               | (_INV_MIX[word & 0xFF] << 8)) & _MASK32)


class AES:
    """AES block cipher with a fixed key (key schedule run once).

    The per-instance key schedule mirrors the hardware reality the paper's
    cost model captures: the constant offset in Table 1's software AES
    figures is the key-scheduling cost, paid once per keyed operation.
    """

    def __init__(self, key: bytes) -> None:
        if not isinstance(key, (bytes, bytearray)):
            raise InvalidKeyError("AES key must be bytes")
        key = bytes(key)
        if len(key) not in _KEY_ROUNDS:
            raise InvalidKeyError(
                "AES key must be 16, 24 or 32 octets, got %d" % len(key)
            )
        self.key_size = len(key)
        self.rounds = _KEY_ROUNDS[len(key)]
        self._enc_keys = self._expand_key(key)
        self._dec_keys = self._derive_decrypt_keys(self._enc_keys)

    def _expand_key(self, key: bytes) -> list:
        """Rijndael key expansion into 32-bit words, 4 per round key."""
        nk = len(key) // 4
        words = list(struct.unpack(">%dL" % nk, key))
        total_words = 4 * (self.rounds + 1)
        for i in range(nk, total_words):
            temp = words[i - 1]
            if i % nk == 0:
                temp = ((temp << 8) | (temp >> 24)) & _MASK32  # RotWord
                temp = ((_SBOX[(temp >> 24) & 0xFF] << 24)
                        | (_SBOX[(temp >> 16) & 0xFF] << 16)
                        | (_SBOX[(temp >> 8) & 0xFF] << 8)
                        | _SBOX[temp & 0xFF])
                temp ^= _RCON[i // nk - 1] << 24
            elif nk > 6 and i % nk == 4:
                temp = ((_SBOX[(temp >> 24) & 0xFF] << 24)
                        | (_SBOX[(temp >> 16) & 0xFF] << 16)
                        | (_SBOX[(temp >> 8) & 0xFF] << 8)
                        | _SBOX[temp & 0xFF])
            words.append(words[i - nk] ^ temp)
        return [words[4 * r:4 * r + 4] for r in range(self.rounds + 1)]

    def _derive_decrypt_keys(self, enc_keys: list) -> list:
        """Equivalent-inverse-cipher round keys (FIPS-197 §5.3.5)."""
        dec_keys = [list(rk) for rk in reversed(enc_keys)]
        for r in range(1, self.rounds):
            dec_keys[r] = [_inv_mix_word(w) for w in dec_keys[r]]
        return dec_keys

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-octet block."""
        if len(block) != BLOCK_SIZE:
            raise InvalidBlockError(
                "AES block must be 16 octets, got %d" % len(block)
            )
        keys = self._enc_keys
        s0, s1, s2, s3 = struct.unpack(">4L", block)
        k = keys[0]
        s0 ^= k[0]
        s1 ^= k[1]
        s2 ^= k[2]
        s3 ^= k[3]
        for r in range(1, self.rounds):
            k = keys[r]
            t0 = (_T0[s0 >> 24] ^ _T1[(s1 >> 16) & 0xFF]
                  ^ _T2[(s2 >> 8) & 0xFF] ^ _T3[s3 & 0xFF] ^ k[0])
            t1 = (_T0[s1 >> 24] ^ _T1[(s2 >> 16) & 0xFF]
                  ^ _T2[(s3 >> 8) & 0xFF] ^ _T3[s0 & 0xFF] ^ k[1])
            t2 = (_T0[s2 >> 24] ^ _T1[(s3 >> 16) & 0xFF]
                  ^ _T2[(s0 >> 8) & 0xFF] ^ _T3[s1 & 0xFF] ^ k[2])
            t3 = (_T0[s3 >> 24] ^ _T1[(s0 >> 16) & 0xFF]
                  ^ _T2[(s1 >> 8) & 0xFF] ^ _T3[s2 & 0xFF] ^ k[3])
            s0, s1, s2, s3 = t0, t1, t2, t3
        k = keys[self.rounds]
        b0 = ((_SBOX[s0 >> 24] << 24) | (_SBOX[(s1 >> 16) & 0xFF] << 16)
              | (_SBOX[(s2 >> 8) & 0xFF] << 8) | _SBOX[s3 & 0xFF]) ^ k[0]
        b1 = ((_SBOX[s1 >> 24] << 24) | (_SBOX[(s2 >> 16) & 0xFF] << 16)
              | (_SBOX[(s3 >> 8) & 0xFF] << 8) | _SBOX[s0 & 0xFF]) ^ k[1]
        b2 = ((_SBOX[s2 >> 24] << 24) | (_SBOX[(s3 >> 16) & 0xFF] << 16)
              | (_SBOX[(s0 >> 8) & 0xFF] << 8) | _SBOX[s1 & 0xFF]) ^ k[2]
        b3 = ((_SBOX[s3 >> 24] << 24) | (_SBOX[(s0 >> 16) & 0xFF] << 16)
              | (_SBOX[(s1 >> 8) & 0xFF] << 8) | _SBOX[s2 & 0xFF]) ^ k[3]
        return struct.pack(">4L", b0, b1, b2, b3)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-octet block."""
        if len(block) != BLOCK_SIZE:
            raise InvalidBlockError(
                "AES block must be 16 octets, got %d" % len(block)
            )
        keys = self._dec_keys
        s0, s1, s2, s3 = struct.unpack(">4L", block)
        k = keys[0]
        s0 ^= k[0]
        s1 ^= k[1]
        s2 ^= k[2]
        s3 ^= k[3]
        for r in range(1, self.rounds):
            k = keys[r]
            t0 = (_D0[s0 >> 24] ^ _D1[(s3 >> 16) & 0xFF]
                  ^ _D2[(s2 >> 8) & 0xFF] ^ _D3[s1 & 0xFF] ^ k[0])
            t1 = (_D0[s1 >> 24] ^ _D1[(s0 >> 16) & 0xFF]
                  ^ _D2[(s3 >> 8) & 0xFF] ^ _D3[s2 & 0xFF] ^ k[1])
            t2 = (_D0[s2 >> 24] ^ _D1[(s1 >> 16) & 0xFF]
                  ^ _D2[(s0 >> 8) & 0xFF] ^ _D3[s3 & 0xFF] ^ k[2])
            t3 = (_D0[s3 >> 24] ^ _D1[(s2 >> 16) & 0xFF]
                  ^ _D2[(s1 >> 8) & 0xFF] ^ _D3[s0 & 0xFF] ^ k[3])
            s0, s1, s2, s3 = t0, t1, t2, t3
        k = keys[self.rounds]
        b0 = ((_INV_SBOX[s0 >> 24] << 24)
              | (_INV_SBOX[(s3 >> 16) & 0xFF] << 16)
              | (_INV_SBOX[(s2 >> 8) & 0xFF] << 8)
              | _INV_SBOX[s1 & 0xFF]) ^ k[0]
        b1 = ((_INV_SBOX[s1 >> 24] << 24)
              | (_INV_SBOX[(s0 >> 16) & 0xFF] << 16)
              | (_INV_SBOX[(s3 >> 8) & 0xFF] << 8)
              | _INV_SBOX[s2 & 0xFF]) ^ k[1]
        b2 = ((_INV_SBOX[s2 >> 24] << 24)
              | (_INV_SBOX[(s1 >> 16) & 0xFF] << 16)
              | (_INV_SBOX[(s0 >> 8) & 0xFF] << 8)
              | _INV_SBOX[s3 & 0xFF]) ^ k[2]
        b3 = ((_INV_SBOX[s3 >> 24] << 24)
              | (_INV_SBOX[(s2 >> 16) & 0xFF] << 16)
              | (_INV_SBOX[(s1 >> 8) & 0xFF] << 8)
              | _INV_SBOX[s0 & 0xFF]) ^ k[3]
        return struct.pack(">4L", b0, b1, b2, b3)
