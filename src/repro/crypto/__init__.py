"""From-scratch cryptographic substrate for the OMA DRM 2 reproduction.

Everything OMA DRM 2 mandates (paper §2.4.5) is implemented here with no
external dependencies:

* :mod:`~repro.crypto.sha1` — SHA-1 hash (FIPS 180)
* :mod:`~repro.crypto.hmac` — HMAC-SHA1 MAC (RFC 2104)
* :mod:`~repro.crypto.aes` — AES block cipher (FIPS 197)
* :mod:`~repro.crypto.modes` — AES-CBC content encryption
* :mod:`~repro.crypto.keywrap` — 128-bit AES key wrap (RFC 3394)
* :mod:`~repro.crypto.kdf` — KDF2 key derivation
* :mod:`~repro.crypto.rsa` — 1024-bit RSA, RSAEP/RSADP/RSASP1/RSAVP1
* :mod:`~repro.crypto.pss` — RSASSA-PSS signature scheme
* :mod:`~repro.crypto.kem` — the RSAES-KEM + AES-WRAP chain of Figure 3
* :mod:`~repro.crypto.rng` — deterministic HMAC-DRBG for reproducible runs
"""

from .aes import AES, BLOCK_SIZE
from .encoding import (byte_length, constant_time_equal, i2osp, os2ip,
                       xor_bytes)
from .errors import (CryptoError, DecryptionError, InvalidBlockError,
                     InvalidKeyError, KeyGenerationError,
                     MessageTooLongError, PaddingError, SignatureError,
                     UnwrapError)
from .hmac import HMACSHA1, hmac_sha1, verify_hmac_sha1
from .kdf import kdf2, kdf2_hash_invocations
from .kem import KemCiphertext, kem_decrypt, kem_encrypt
from .keywrap import unwrap, wrap, wrap_invocation_count
from .modes import cbc_decrypt, cbc_decrypt_raw, cbc_encrypt, cbc_encrypt_raw
from .padding import pad, unpad
from .primes import generate_prime, is_probable_prime
from .pss import (DEFAULT_SALT_LENGTH, PssAccounting, emsa_pss_encode,
                  emsa_pss_verify, mgf1, pss_sign, pss_verify,
                  sign_accounting)
from .rng import HmacDrbg, default_rng
from .rsa import (DEFAULT_PUBLIC_EXPONENT, RSAPrivateKey, RSAPublicKey,
                  generate_keypair, rsadp, rsaep, rsasp1, rsavp1)
from .sha1 import SHA1, sha1, sha1_hex

__all__ = [
    "AES", "BLOCK_SIZE", "byte_length", "constant_time_equal", "i2osp",
    "os2ip", "xor_bytes", "CryptoError", "DecryptionError",
    "InvalidBlockError", "InvalidKeyError", "KeyGenerationError",
    "MessageTooLongError", "PaddingError", "SignatureError", "UnwrapError",
    "HMACSHA1", "hmac_sha1", "verify_hmac_sha1", "kdf2",
    "kdf2_hash_invocations", "KemCiphertext", "kem_decrypt", "kem_encrypt",
    "unwrap", "wrap", "wrap_invocation_count", "cbc_decrypt",
    "cbc_decrypt_raw", "cbc_encrypt", "cbc_encrypt_raw", "pad", "unpad",
    "generate_prime", "is_probable_prime", "DEFAULT_SALT_LENGTH",
    "PssAccounting", "emsa_pss_encode", "emsa_pss_verify", "mgf1",
    "pss_sign", "pss_verify", "sign_accounting", "HmacDrbg", "default_rng",
    "DEFAULT_PUBLIC_EXPONENT", "RSAPrivateKey", "RSAPublicKey",
    "generate_keypair", "rsadp", "rsaep", "rsasp1", "rsavp1", "SHA1",
    "sha1", "sha1_hex",
]
