"""HMAC-SHA1 (RFC 2104 / FIPS 198).

OMA DRM 2 uses HMAC-SHA1 as the MAC algorithm that protects Rights-Object
integrity and authenticity (the ``<mac>`` element of a protected RO).
"""

from .encoding import constant_time_equal
from .sha1 import BLOCK_SIZE, SHA1

_IPAD = 0x36
_OPAD = 0x5C


class HMACSHA1:
    """Streaming HMAC-SHA1 object with the ``hashlib``-style interface."""

    digest_size = SHA1.digest_size
    name = "hmac-sha1"

    def __init__(self, key: bytes, data: bytes = b"") -> None:
        if not isinstance(key, (bytes, bytearray)):
            raise TypeError("HMAC key must be bytes")
        key = bytes(key)
        # Keys longer than the block size are hashed first (RFC 2104 §2).
        if len(key) > BLOCK_SIZE:
            key = SHA1(key).digest()
        key = key.ljust(BLOCK_SIZE, b"\x00")
        self._outer_key = bytes(b ^ _OPAD for b in key)
        self._inner = SHA1(bytes(b ^ _IPAD for b in key))
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        """Absorb ``data`` into the MAC state."""
        self._inner.update(data)

    def digest(self) -> bytes:
        """Return the 20-octet MAC of the data absorbed so far."""
        return SHA1(self._outer_key + self._inner.digest()).digest()

    def hexdigest(self) -> str:
        """Return the MAC as a lowercase hex string."""
        return self.digest().hex()

    def copy(self) -> "HMACSHA1":
        """Return an independent copy of the current MAC state."""
        clone = HMACSHA1.__new__(HMACSHA1)
        clone._outer_key = self._outer_key
        clone._inner = self._inner.copy()
        return clone


def hmac_sha1(key: bytes, message: bytes) -> bytes:
    """One-shot HMAC-SHA1 of ``message`` under ``key``."""
    return HMACSHA1(key, message).digest()


def verify_hmac_sha1(key: bytes, message: bytes, tag: bytes) -> bool:
    """Verify an HMAC-SHA1 tag in constant time."""
    return constant_time_equal(hmac_sha1(key, message), tag)
