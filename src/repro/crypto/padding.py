"""PKCS#7 block padding (RFC 5652 §6.3).

AES-CBC content encryption inside the DCF pads plaintext to a whole number
of 16-octet blocks. A malformed pad on decryption is a tamper indicator and
raises :class:`PaddingError`.
"""

from .encoding import constant_time_equal
from .errors import PaddingError


def pad(data: bytes, block_size: int = 16) -> bytes:
    """Append PKCS#7 padding so ``len(result)`` is a multiple of ``block_size``."""
    if not 1 <= block_size <= 255:
        raise ValueError("block_size must be in [1, 255]")
    pad_length = block_size - (len(data) % block_size)
    return data + bytes([pad_length] * pad_length)


def unpad(data: bytes, block_size: int = 16) -> bytes:
    """Strip and validate PKCS#7 padding."""
    if not 1 <= block_size <= 255:
        raise ValueError("block_size must be in [1, 255]")
    if not data or len(data) % block_size != 0:
        raise PaddingError("padded data length is not a block multiple")
    pad_length = data[-1]
    if pad_length < 1 or pad_length > block_size:
        raise PaddingError("padding length byte out of range")
    if not constant_time_equal(data[-pad_length:],
                               bytes([pad_length] * pad_length)):
        raise PaddingError("padding bytes are inconsistent")
    return data[:-pad_length]
