"""Exception hierarchy for the cryptographic substrate.

Every failure raised by :mod:`repro.crypto` derives from :class:`CryptoError`
so callers (in particular the DRM layer) can distinguish cryptographic
failures from programming errors with a single ``except`` clause.
"""


class CryptoError(Exception):
    """Base class for all cryptographic errors."""


class InvalidKeyError(CryptoError):
    """A key has the wrong length, type or structure."""


class InvalidBlockError(CryptoError):
    """Input data is not a whole number of cipher blocks."""


class PaddingError(CryptoError):
    """PKCS#7 padding is malformed (tamper indicator)."""


class UnwrapError(CryptoError):
    """AES key-unwrap integrity check failed (RFC 3394 IV mismatch)."""


class SignatureError(CryptoError):
    """A signature failed to verify."""


class MessageTooLongError(CryptoError):
    """The message does not fit the RSA modulus / encoding constraints."""


class DecryptionError(CryptoError):
    """Generic decryption failure (e.g. RSA ciphertext out of range)."""


class KeyGenerationError(CryptoError):
    """RSA key generation could not complete with the given parameters."""
