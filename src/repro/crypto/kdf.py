"""KDF2 key derivation function (IEEE 1363a / ANSI X9.63 style).

OMA DRM 2 derives the key-encryption key ``KEK = KDF2(Z)`` from the random
secret ``Z`` recovered by the RSA decryption of ``C1`` (paper Figure 3, DRM
spec §7.1.1). KDF2 concatenates hashes of ``Z ‖ counter ‖ otherInfo`` with
a counter starting at 1:

    T = Hash(Z ‖ I2OSP(1, 4) ‖ other) ‖ Hash(Z ‖ I2OSP(2, 4) ‖ other) ‖ …

and truncates T to the requested length.
"""

from .encoding import i2osp
from .sha1 import DIGEST_SIZE, sha1


def kdf2(shared_secret: bytes, length: int, other_info: bytes = b"") -> bytes:
    """Derive ``length`` octets of key material from ``shared_secret``.

    ``other_info`` is the optional context string (empty in the OMA DRM
    RSAES-KEM-KWS instantiation).
    """
    if length < 0:
        raise ValueError("requested KDF2 output length must be non-negative")
    blocks = []
    counter = 1
    while DIGEST_SIZE * len(blocks) < length:
        blocks.append(sha1(shared_secret + i2osp(counter, 4) + other_info))
        counter += 1
    return b"".join(blocks)[:length]


def kdf2_hash_invocations(length: int) -> int:
    """Number of SHA-1 invocations a KDF2 call of ``length`` octets costs."""
    if length <= 0:
        return 0
    return (length + DIGEST_SIZE - 1) // DIGEST_SIZE
