"""AES Key Wrap (RFC 3394) — the standard's ``AES WRAP``.

OMA DRM 2 protects every symmetric key with AES Key Wrap:

* ``K_MAC‖K_REK`` are wrapped under the KDF2-derived KEK inside ``C2``
  (Figure 3 of the paper),
* ``K_CEK`` is wrapped under ``K_REK`` inside the Rights Object, and
* the installed blob ``C2dev`` re-wraps ``K_MAC‖K_REK`` under the device
  key ``K_DEV``.

The wrap of ``n`` 64-bit plaintext halves costs ``6 n`` single-block AES
invocations (6 rounds over the ``n`` registers); unwrap is symmetric with
AES decryptions. The performance meter relies on this structure, so the
implementation follows RFC 3394 §2.2 exactly rather than using the
alternative indexing formulation.
"""

import struct

from .aes import AES
from .encoding import constant_time_equal
from .errors import InvalidKeyError, UnwrapError

#: RFC 3394 default initial value (integrity check register).
DEFAULT_IV = b"\xA6" * 8

#: Width of one wrap register in octets.
SEMIBLOCK = 8


def _split_semiblocks(data: bytes) -> list:
    return [data[i:i + SEMIBLOCK] for i in range(0, len(data), SEMIBLOCK)]


def wrap(kek: bytes, plaintext_key: bytes, iv: bytes = DEFAULT_IV) -> bytes:
    """Wrap ``plaintext_key`` (a multiple of 8 octets, at least 16) under ``kek``.

    Returns a ciphertext 8 octets longer than the input.
    """
    if len(plaintext_key) % SEMIBLOCK != 0 or len(plaintext_key) < 16:
        raise InvalidKeyError(
            "key wrap input must be a multiple of 8 octets and >= 16"
        )
    if len(iv) != SEMIBLOCK:
        raise InvalidKeyError("key wrap IV must be 8 octets")
    cipher = AES(kek)
    r = _split_semiblocks(plaintext_key)
    n = len(r)
    a = iv
    for j in range(6):
        for i in range(n):
            block = cipher.encrypt_block(a + r[i])
            t = n * j + i + 1
            a = bytes(x ^ y for x, y in zip(block[:8], struct.pack(">Q", t)))
            r[i] = block[8:]
    return a + b"".join(r)


def unwrap(kek: bytes, wrapped_key: bytes, iv: bytes = DEFAULT_IV) -> bytes:
    """Unwrap ``wrapped_key`` under ``kek`` and verify the integrity register.

    Raises :class:`UnwrapError` when the recovered IV does not match —
    the RFC 3394 tamper/wrong-key indicator.
    """
    if len(wrapped_key) % SEMIBLOCK != 0 or len(wrapped_key) < 24:
        raise InvalidKeyError(
            "wrapped key must be a multiple of 8 octets and >= 24"
        )
    if len(iv) != SEMIBLOCK:
        raise InvalidKeyError("key wrap IV must be 8 octets")
    cipher = AES(kek)
    blocks = _split_semiblocks(wrapped_key)
    a = blocks[0]
    r = blocks[1:]
    n = len(r)
    for j in range(5, -1, -1):
        for i in range(n - 1, -1, -1):
            t = n * j + i + 1
            a_xored = bytes(
                x ^ y for x, y in zip(a, struct.pack(">Q", t))
            )
            block = cipher.decrypt_block(a_xored + r[i])
            a = block[:8]
            r[i] = block[8:]
    if not constant_time_equal(a, iv):
        raise UnwrapError("key unwrap integrity check failed")
    return b"".join(r)


def wrap_invocation_count(key_octets: int) -> int:
    """Number of single-block AES calls a wrap/unwrap of ``key_octets`` costs.

    Used by the performance meter: RFC 3394 runs 6 rounds over
    ``key_octets / 8`` registers, one AES block operation each.
    """
    if key_octets % SEMIBLOCK != 0:
        raise ValueError("key material must be a multiple of 8 octets")
    return 6 * (key_octets // SEMIBLOCK)
