"""Prime generation for RSA key material.

Miller–Rabin probabilistic primality testing with a small-prime sieve
front-end, driven by the deterministic DRBG so key generation is
reproducible. 40 Miller–Rabin rounds give an error probability below
2^-80, ample for a simulation (and in line with FIPS 186 guidance for
1024-bit primes).
"""

from .rng import HmacDrbg

#: Primes below 1000, used to sieve candidates before Miller-Rabin.
_SMALL_PRIMES = []


def _build_small_primes(limit: int = 1000) -> list:
    sieve = bytearray([1]) * (limit + 1)
    sieve[0] = sieve[1] = 0
    for n in range(2, int(limit ** 0.5) + 1):
        if sieve[n]:
            sieve[n * n::n] = bytearray(len(sieve[n * n::n]))
    return [n for n in range(limit + 1) if sieve[n]]


_SMALL_PRIMES = _build_small_primes()

#: Deterministic witnesses that make Miller-Rabin exact below 3.3 * 10^24.
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)


def _miller_rabin_round(candidate: int, witness: int,
                        odd_part: int, power_of_two: int) -> bool:
    """One Miller-Rabin round; True means 'probably prime so far'."""
    x = pow(witness, odd_part, candidate)
    if x in (1, candidate - 1):
        return True
    for _ in range(power_of_two - 1):
        x = (x * x) % candidate
        if x == candidate - 1:
            return True
    return False


def is_probable_prime(candidate: int, rng: HmacDrbg = None,
                      rounds: int = 40) -> bool:
    """Miller-Rabin primality test.

    Small candidates use deterministic witnesses; large candidates use
    ``rounds`` random witnesses drawn from ``rng`` (a fixed witness set is
    used when no rng is supplied, which is fine for non-adversarial input).
    """
    if candidate < 2:
        return False
    for p in _SMALL_PRIMES:
        if candidate == p:
            return True
        if candidate % p == 0:
            return False

    odd_part = candidate - 1
    power_of_two = 0
    while odd_part % 2 == 0:
        odd_part //= 2
        power_of_two += 1

    if candidate < 3_317_044_064_679_887_385_961_981:
        witnesses = iter(
            w for w in _DETERMINISTIC_WITNESSES if w < candidate - 1
        )
    else:
        # Base-2 pre-screen rejects almost every composite before any
        # random witness is drawn — witness generation through the DRBG
        # is far more expensive than one modular exponentiation.
        if not _miller_rabin_round(candidate, 2, odd_part, power_of_two):
            return False
        if rng is None:
            witnesses = iter(_DETERMINISTIC_WITNESSES[:rounds])
        else:
            witnesses = (
                rng.random_range(2, candidate - 1) for _ in range(rounds)
            )

    return all(
        _miller_rabin_round(candidate, w, odd_part, power_of_two)
        for w in witnesses
    )


def generate_prime(bits: int, rng: HmacDrbg) -> int:
    """Generate a random probable prime with exactly ``bits`` bits.

    Draws one random odd starting point and scans upward in steps of two
    (the standard incremental search of FIPS 186 / OpenSSL): candidate
    density is unchanged while DRBG traffic drops from one draw per
    candidate to one draw per prime.
    """
    if bits < 8:
        raise ValueError("refusing to generate primes below 8 bits")
    while True:
        candidate = rng.random_odd_int(bits)
        # Rescan window: a fresh draw after 4096 misses keeps the search
        # statistically close to uniform sampling.
        for _ in range(4096):
            if is_probable_prime(candidate, rng):
                return candidate
            candidate += 2
            if candidate.bit_length() != bits:
                break
