"""SHA-1 implemented from the FIPS 180 specification.

OMA DRM 2 mandates SHA-1 as its hash function (DCF integrity hashes, the
HMAC-SHA1 Rights-Object MAC, KDF2 and the EMSA-PSS signature encoding all
build on it). The implementation is a straightforward word-oriented
transcription of the standard: 512-bit blocks, 80 rounds, five 32-bit
chaining words.

The class mirrors the ``hashlib`` streaming interface (``update`` /
``digest`` / ``hexdigest`` / ``copy``) so the HMAC and KDF layers can treat
it as a drop-in hash object.
"""

import struct

_MASK32 = 0xFFFFFFFF

#: Digest size in octets (160 bits).
DIGEST_SIZE = 20

#: Internal block size in octets (512 bits) — needed by HMAC.
BLOCK_SIZE = 64

_INITIAL_STATE = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)


def _rotl(value: int, amount: int) -> int:
    """Rotate a 32-bit word left by ``amount`` bits."""
    return ((value << amount) | (value >> (32 - amount))) & _MASK32


def _compress(state: tuple, block: bytes) -> tuple:
    """Apply the SHA-1 compression function to one 64-octet block.

    The four 20-round stages are written out with the rotations inlined:
    this function dominates every bulk-hash workload (DCF hashing, HMAC,
    the DRBG), and avoiding the helper-call overhead is worth the
    repetition in a pure-Python implementation.
    """
    w = list(struct.unpack(">16L", block))
    append = w.append
    for t in range(16, 80):
        x = w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]
        append(((x << 1) | (x >> 31)) & _MASK32)

    a, b, c, d, e = state
    for t in range(0, 20):
        temp = ((((a << 5) | (a >> 27)) & _MASK32)
                + ((b & c) | (~b & d)) + e + 0x5A827999 + w[t]) & _MASK32
        a, b, c, d, e = temp, a, ((b << 30) | (b >> 2)) & _MASK32, c, d
    for t in range(20, 40):
        temp = ((((a << 5) | (a >> 27)) & _MASK32)
                + (b ^ c ^ d) + e + 0x6ED9EBA1 + w[t]) & _MASK32
        a, b, c, d, e = temp, a, ((b << 30) | (b >> 2)) & _MASK32, c, d
    for t in range(40, 60):
        temp = ((((a << 5) | (a >> 27)) & _MASK32)
                + ((b & c) | (b & d) | (c & d))
                + e + 0x8F1BBCDC + w[t]) & _MASK32
        a, b, c, d, e = temp, a, ((b << 30) | (b >> 2)) & _MASK32, c, d
    for t in range(60, 80):
        temp = ((((a << 5) | (a >> 27)) & _MASK32)
                + (b ^ c ^ d) + e + 0xCA62C1D6 + w[t]) & _MASK32
        a, b, c, d, e = temp, a, ((b << 30) | (b >> 2)) & _MASK32, c, d

    return (
        (state[0] + a) & _MASK32,
        (state[1] + b) & _MASK32,
        (state[2] + c) & _MASK32,
        (state[3] + d) & _MASK32,
        (state[4] + e) & _MASK32,
    )


class SHA1:
    """Streaming SHA-1 hash object (FIPS 180)."""

    digest_size = DIGEST_SIZE
    block_size = BLOCK_SIZE
    name = "sha1"

    def __init__(self, data: bytes = b"") -> None:
        self._state = _INITIAL_STATE
        self._buffer = b""
        self._length = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        """Absorb ``data`` into the hash state."""
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError("SHA1.update expects bytes-like input")
        data = bytes(data)
        self._length += len(data)
        buffer = self._buffer + data
        offset = 0
        state = self._state
        while offset + BLOCK_SIZE <= len(buffer):
            state = _compress(state, buffer[offset:offset + BLOCK_SIZE])
            offset += BLOCK_SIZE
        self._state = state
        self._buffer = buffer[offset:]

    def digest(self) -> bytes:
        """Return the 20-octet digest of the data absorbed so far."""
        state = self._state
        # Merkle–Damgård strengthening: 0x80, zero pad, 64-bit bit length.
        bit_length = self._length * 8
        padding = b"\x80" + b"\x00" * (
            (55 - self._length) % BLOCK_SIZE
        ) + struct.pack(">Q", bit_length)
        buffer = self._buffer + padding
        for offset in range(0, len(buffer), BLOCK_SIZE):
            state = _compress(state, buffer[offset:offset + BLOCK_SIZE])
        return struct.pack(">5L", *state)

    def hexdigest(self) -> str:
        """Return the digest as a lowercase hex string."""
        return self.digest().hex()

    def copy(self) -> "SHA1":
        """Return an independent copy of the current hash state."""
        clone = SHA1()
        clone._state = self._state
        clone._buffer = self._buffer
        clone._length = self._length
        return clone


def sha1(data: bytes) -> bytes:
    """One-shot SHA-1 of ``data``."""
    return SHA1(data).digest()


def sha1_hex(data: bytes) -> str:
    """One-shot SHA-1 of ``data`` as a hex string."""
    return SHA1(data).hexdigest()
