"""Power-on known-answer self-tests (FIPS 140-style).

Embedded cryptographic modules run known-answer tests at boot to detect
silent corruption of code or lookup tables before any key touches the
implementation. This module provides that routine for the whole substrate:
one fixed vector per primitive, executed in milliseconds.

The DRM robustness rules a Certification Authority imposes (paper §2.4.3)
are exactly the kind of requirement that mandates such self-checks on a
real terminal.
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from .aes import AES
from .hmac import hmac_sha1
from .kdf import kdf2
from .keywrap import unwrap, wrap
from .modes import cbc_encrypt_raw
from .sha1 import sha1


def _check_sha1() -> bool:
    return sha1(b"abc").hex() \
        == "a9993e364706816aba3e25717850c26c9cd0d89d"


def _check_hmac() -> bool:
    return hmac_sha1(b"\x0b" * 20, b"Hi There").hex() \
        == "b617318655057264e28bc0b6fb378c8ef146be00"


def _check_aes_encrypt() -> bool:
    cipher = AES(bytes.fromhex("000102030405060708090a0b0c0d0e0f"))
    out = cipher.encrypt_block(
        bytes.fromhex("00112233445566778899aabbccddeeff"))
    return out.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"


def _check_aes_decrypt() -> bool:
    cipher = AES(bytes.fromhex("000102030405060708090a0b0c0d0e0f"))
    out = cipher.decrypt_block(
        bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a"))
    return out.hex() == "00112233445566778899aabbccddeeff"


def _check_cbc() -> bool:
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    iv = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    plain = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
    return cbc_encrypt_raw(key, iv, plain).hex() \
        == "7649abac8119b246cee98e9b12e9197d"


def _check_keywrap() -> bool:
    kek = bytes.fromhex("000102030405060708090A0B0C0D0E0F")
    key = bytes.fromhex("00112233445566778899AABBCCDDEEFF")
    wrapped = wrap(kek, key)
    return wrapped.hex().upper() \
        == "1FA68B0A8112B447AEF34BD8FB5A7B829D3E862371D2CFE5" \
        and unwrap(kek, wrapped) == key  # repro: allow[REP302] -- KAT equality against a public RFC 3394 vector, not an adversarial comparison


def _check_kdf2() -> bool:
    # KDF2's structural identity: first block is Hash(Z || 00000001).
    # repro: allow[REP302] -- structural self-check on public constants; no secret-dependent timing
    return kdf2(b"Z" * 16, 20) == sha1(b"Z" * 16 + b"\x00\x00\x00\x01")


#: Test name -> check callable. RSA is deliberately absent: key-dependent
#: pairwise consistency tests run at key-generation time instead, the
#: conventional split for public-key primitives.
SELF_TESTS: Dict[str, Callable[[], bool]] = {
    "sha1": _check_sha1,
    "hmac-sha1": _check_hmac,
    "aes-encrypt": _check_aes_encrypt,
    "aes-decrypt": _check_aes_decrypt,
    "aes-cbc": _check_cbc,
    "aes-keywrap": _check_keywrap,
    "kdf2": _check_kdf2,
}


@dataclass
class SelfTestReport:
    """Outcome of one power-on self-test run."""

    results: List[Tuple[str, bool]] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Whether every known-answer test succeeded."""
        return all(ok for _, ok in self.results)

    @property
    def failures(self) -> List[str]:
        """Names of the failed tests."""
        return [name for name, ok in self.results if not ok]


def run_self_tests() -> SelfTestReport:
    """Run every known-answer test; never raises — inspect the report."""
    report = SelfTestReport()
    for name, check in SELF_TESTS.items():
        try:
            ok = bool(check())
        except Exception:
            ok = False
        report.results.append((name, ok))
    return report
