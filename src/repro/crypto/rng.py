"""Deterministic random bit generator (HMAC-DRBG, SP 800-90A shape).

The DRM model needs randomness for RSA key generation, nonces, symmetric
keys and CBC IVs. Real terminals use a hardware TRNG; for a reproducible
simulation we use an HMAC-SHA1 DRBG seeded explicitly, so every protocol
run — and therefore every byte on the wire and every recorded operation
trace — is repeatable.
"""

from .hmac import hmac_sha1
from .sha1 import DIGEST_SIZE


class HmacDrbg:
    """HMAC-SHA1 deterministic random bit generator.

    A trimmed-down SP 800-90A HMAC_DRBG: ``K``/``V`` update on instantiate
    and reseed, generate by iterating ``V = HMAC(K, V)``. No reseed counter
    enforcement — the simulation never approaches the 2^48 limit.
    """

    def __init__(self, seed: bytes, personalization: bytes = b"") -> None:
        if not seed:
            raise ValueError("HmacDrbg requires a non-empty seed")
        self._key = b"\x00" * DIGEST_SIZE
        self._value = b"\x01" * DIGEST_SIZE
        self._update(seed + personalization)

    def _update(self, provided_data: bytes = b"") -> None:
        self._key = hmac_sha1(self._key, self._value + b"\x00" + provided_data)
        self._value = hmac_sha1(self._key, self._value)
        if provided_data:
            self._key = hmac_sha1(
                self._key, self._value + b"\x01" + provided_data
            )
            self._value = hmac_sha1(self._key, self._value)

    def reseed(self, seed: bytes) -> None:
        """Mix fresh entropy into the generator state."""
        self._update(seed)

    def random_bytes(self, length: int) -> bytes:
        """Return ``length`` pseudo-random octets."""
        if length < 0:
            raise ValueError("length must be non-negative")
        output = b""
        while len(output) < length:
            self._value = hmac_sha1(self._key, self._value)
            output += self._value
        self._update()
        return output[:length]

    def random_int(self, bits: int) -> int:
        """Return a uniform integer in ``[0, 2**bits)``."""
        if bits <= 0:
            raise ValueError("bits must be positive")
        octets = (bits + 7) // 8
        value = int.from_bytes(self.random_bytes(octets), "big")
        return value >> (8 * octets - bits)

    def random_odd_int(self, bits: int) -> int:
        """Return an odd integer with exactly ``bits`` bits (top bit set)."""
        value = self.random_int(bits)
        value |= (1 << (bits - 1)) | 1
        return value

    def random_range(self, lower: int, upper: int) -> int:
        """Return a uniform integer in ``[lower, upper)`` by rejection."""
        if upper <= lower:
            raise ValueError("empty range")
        span = upper - lower
        bits = span.bit_length()
        while True:
            candidate = self.random_int(bits)
            if candidate < span:
                return lower + candidate


def default_rng(label: str = "repro-oma-drm") -> HmacDrbg:
    """A DRBG with a fixed, documented seed for reproducible simulations."""
    return HmacDrbg(label.encode("utf-8"))
