"""RSASSA-PSS signatures (RFC 3447 §8.1 / §9.1) over SHA-1.

OMA DRM 2 mandates RSA-PSSA as its signature scheme; ROAP messages
(RegistrationRequest, RegistrationResponse, RORequest, ROResponse),
certificates, OCSP responses and Domain-RO signatures all use it.

The paper approximates the EMSA-PSS encoding with "just one hash function
over the message code" in its cost model; the functional implementation
here is the complete scheme (salted hash, MGF1 mask, trailer 0xBC), and the
performance layer decides which hashes to count (see
``repro.core.costs.CostOptions.count_mgf1``).
"""

from dataclasses import dataclass

from .encoding import constant_time_equal, i2osp, os2ip, xor_bytes
from .errors import MessageTooLongError, SignatureError
from .rng import HmacDrbg
from .rsa import RSAPrivateKey, RSAPublicKey, rsasp1, rsavp1
from .sha1 import DIGEST_SIZE, sha1

#: Default salt length: one hash length, the conventional PSS choice.
DEFAULT_SALT_LENGTH = DIGEST_SIZE

_TRAILER = 0xBC


@dataclass(frozen=True)
class PssAccounting:
    """Hash-work bookkeeping for one PSS sign or verify.

    The performance meter needs to know how much hashing a signature
    operation performed: the big message hash (size-dependent) plus the
    small fixed-size hashes of the encoding (``H = Hash(M')``) and the MGF1
    mask generation.
    """

    message_octets: int
    fixed_hash_invocations: int
    mgf1_hash_invocations: int


def mgf1(seed: bytes, length: int) -> bytes:
    """MGF1 mask generation function over SHA-1 (RFC 3447 appendix B.2.1)."""
    if length < 0:
        raise ValueError("mask length must be non-negative")
    blocks = []
    counter = 0
    while DIGEST_SIZE * len(blocks) < length:
        blocks.append(sha1(seed + i2osp(counter, 4)))
        counter += 1
    return b"".join(blocks)[:length]


def _mgf1_invocations(length: int) -> int:
    return (length + DIGEST_SIZE - 1) // DIGEST_SIZE


def emsa_pss_encode(message: bytes, em_bits: int, salt: bytes) -> bytes:
    """EMSA-PSS-ENCODE (RFC 3447 §9.1.1) with an explicit salt."""
    em_length = (em_bits + 7) // 8
    m_hash = sha1(message)
    if em_length < DIGEST_SIZE + len(salt) + 2:
        raise MessageTooLongError("encoding error: modulus too small for PSS")
    m_prime = b"\x00" * 8 + m_hash + salt
    h = sha1(m_prime)
    ps = b"\x00" * (em_length - len(salt) - DIGEST_SIZE - 2)
    db = ps + b"\x01" + salt
    mask = mgf1(h, em_length - DIGEST_SIZE - 1)
    masked_db = xor_bytes(db, mask)
    # Clear the leftmost 8*emLen - emBits bits of the leading octet.
    excess_bits = 8 * em_length - em_bits
    first = masked_db[0] & (0xFF >> excess_bits)
    return bytes([first]) + masked_db[1:] + h + bytes([_TRAILER])


def emsa_pss_verify(message: bytes, encoded: bytes, em_bits: int,
                    salt_length: int) -> bool:
    """EMSA-PSS-VERIFY (RFC 3447 §9.1.2); returns consistency."""
    em_length = (em_bits + 7) // 8
    if len(encoded) != em_length:
        return False
    if em_length < DIGEST_SIZE + salt_length + 2:
        return False
    if encoded[-1] != _TRAILER:
        return False
    masked_db = encoded[:em_length - DIGEST_SIZE - 1]
    h = encoded[em_length - DIGEST_SIZE - 1:-1]
    excess_bits = 8 * em_length - em_bits
    if excess_bits and masked_db[0] >> (8 - excess_bits):
        return False
    mask = mgf1(h, len(masked_db))
    db = bytearray(xor_bytes(masked_db, mask))
    db[0] &= 0xFF >> excess_bits
    separator = em_length - DIGEST_SIZE - salt_length - 2
    if any(db[:separator]):
        return False
    if db[separator] != 0x01:
        return False
    salt = bytes(db[separator + 1:])
    m_hash = sha1(message)
    m_prime = b"\x00" * 8 + m_hash + salt
    return constant_time_equal(sha1(m_prime), h)


def pss_sign(private_key: RSAPrivateKey, message: bytes,
             rng: HmacDrbg, salt_length: int = DEFAULT_SALT_LENGTH) -> bytes:
    """RSASSA-PSS-SIGN: return a modulus-length signature over ``message``."""
    em_bits = private_key.modulus_bits - 1
    salt = rng.random_bytes(salt_length)
    encoded = emsa_pss_encode(message, em_bits, salt)
    signature = rsasp1(private_key, os2ip(encoded))
    return i2osp(signature, private_key.modulus_octets)


def pss_verify(public_key: RSAPublicKey, message: bytes, signature: bytes,
               salt_length: int = DEFAULT_SALT_LENGTH) -> None:
    """RSASSA-PSS-VERIFY: raise :class:`SignatureError` on any inconsistency."""
    if len(signature) != public_key.modulus_octets:
        raise SignatureError("signature has the wrong length")
    try:
        em = rsavp1(public_key, os2ip(signature))
    except Exception as exc:
        raise SignatureError("signature representative invalid") from exc
    em_bits = public_key.modulus_bits - 1
    encoded = i2osp(em, (em_bits + 7) // 8)
    if not emsa_pss_verify(message, encoded, em_bits, salt_length):
        raise SignatureError("PSS consistency check failed")


def sign_accounting(message_octets: int, modulus_bits: int,
                    salt_length: int = DEFAULT_SALT_LENGTH) -> PssAccounting:
    """Hash-work bookkeeping for one PSS signature over ``message_octets``."""
    em_length = ((modulus_bits - 1) + 7) // 8
    return PssAccounting(
        message_octets=message_octets,
        fixed_hash_invocations=1,  # H = Hash(M')
        mgf1_hash_invocations=_mgf1_invocations(em_length - DIGEST_SIZE - 1),
    )
