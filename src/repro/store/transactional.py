"""Journaled device storage: DeviceStorage semantics, flash durability.

:class:`TransactionalStorage` is a drop-in :class:`~repro.drm.storage.
DeviceStorage` whose mutations are write-ahead journaled. Each mutation
inside a ``with storage.transaction():`` block appends one journal
record *before* it is buffered (so a crash any time before the commit
record leaves the transaction discardable), and the block's exit seals
the transaction with a commit record — the commit point — before any
RAM state changes. A bare mutator call outside a transaction is
auto-wrapped in a one-op transaction, so every durable mutation is
always covered by a commit record.

The op codec below maps each mutator's arguments to and from the
canonically-encodable dict the journal stores. Only already-protected
material crosses it (DCF ciphertext, ``C2dev``-wrapped keys, the RO's
MAC-covered payload), mirroring :mod:`repro.drm.backup`: the journal
lives in ordinary flash and must not weaken the storage model.
"""

from typing import Optional, Tuple

from ..crypto.kem import KemCiphertext
from ..drm import serialize
from ..drm.certificates import certificate_from_bytes
from ..drm.dcf import DCF
from ..drm.errors import WireDecodeError
from ..drm.rel import PermissionType, RightsState
from ..drm.ro import InstalledRightsObject
from ..drm.roap.wire import rights_object_from_payload
from ..drm.storage import DeviceStorage, DomainContext, RIContext
from ..obs.tracer import NULL_TRACER
from .crash import CrashInjector, JournalCorruptError, PowerLossError
from .journal import Flash, Journal


def _state_to_args(state: RightsState) -> dict:
    return {
        "remaining": {p.value: n
                      for p, n in sorted(state.remaining_counts.items(),
                                         key=lambda kv: kv[0].value)},
        "first_use": {p.value: t
                      for p, t in sorted(state.first_use.items(),
                                         key=lambda kv: kv[0].value)},
    }


def _state_from_args(args: dict) -> RightsState:
    return RightsState(
        remaining_counts={PermissionType(p): int(n)
                          for p, n in args["remaining"].items()},
        first_use={PermissionType(p): int(t)
                   for p, t in args["first_use"].items()},
    )


def encode_op(op: str, params: tuple) -> dict:
    """The journal-record ``args`` dict for one buffered mutation."""
    if op == "store_dcf":
        (dcf,) = params
        return {"dcf": dcf.to_bytes()}
    if op == "store_ro":
        (installed,) = params
        kem = installed.kem_ciphertext
        return {
            "ro_payload": installed.ro.payload_bytes(),
            "c2dev": installed.c2dev,
            "mac": installed.mac,
            "kem_c1": kem.c1 if kem is not None else None,
            "kem_c2": kem.c2 if kem is not None else None,
            "state": _state_to_args(installed.state),
        }
    if op == "remove_ro":
        (ro_id,) = params
        return {"ro_id": ro_id}
    if op == "set_ro_state":
        ro_id, state = params
        return {"ro_id": ro_id, "state": _state_to_args(state)}
    if op == "store_ri_context":
        (context,) = params
        return {
            "ri_id": context.ri_id,
            "certificate": context.ri_certificate.to_bytes(),
            "session_id": context.session_id,
            "registered_at": context.registered_at,
            "expires_at": context.expires_at,
            "algorithms": list(context.selected_algorithms),
        }
    if op == "store_domain_context":
        (context,) = params
        return {
            "domain_id": context.domain_id,
            "ri_id": context.ri_id,
            "wrapped_domain_key": context.wrapped_domain_key,
            "joined_at": context.joined_at,
        }
    if op == "remove_domain_context":
        (domain_id,) = params
        return {"domain_id": domain_id}
    if op == "remember":
        (ro_guid,) = params
        return {"ro_id": ro_guid[0], "ro_nonce": ro_guid[1]}
    raise JournalCorruptError("no journal encoding for op %r" % op)


def decode_op(op: str, args: dict) -> tuple:
    """Inverse of :func:`encode_op`: the ``_do_<op>`` argument tuple."""
    try:
        return _decode_op(op, args)
    except (KeyError, TypeError, ValueError, WireDecodeError) as exc:
        raise JournalCorruptError(
            "journal record for op %r is malformed: %s" % (op, exc)
        ) from exc


def _decode_op(op: str, args: dict) -> tuple:
    if op == "store_dcf":
        return (DCF(**serialize.decode(args["dcf"])),)
    if op == "store_ro":
        kem = None
        if args["kem_c1"] is not None:
            kem = KemCiphertext(c1=args["kem_c1"], c2=args["kem_c2"])
        return (InstalledRightsObject(
            ro=rights_object_from_payload(args["ro_payload"]),
            c2dev=args["c2dev"],
            mac=args["mac"],
            kem_ciphertext=kem,
            state=_state_from_args(args["state"]),
        ),)
    if op == "remove_ro":
        return (args["ro_id"],)
    if op == "set_ro_state":
        return (args["ro_id"], _state_from_args(args["state"]))
    if op == "store_ri_context":
        return (RIContext(
            ri_id=args["ri_id"],
            ri_certificate=certificate_from_bytes(args["certificate"]),
            session_id=args["session_id"],
            registered_at=int(args["registered_at"]),
            expires_at=int(args["expires_at"]),
            selected_algorithms=tuple(args["algorithms"]),
        ),)
    if op == "store_domain_context":
        return (DomainContext(
            domain_id=args["domain_id"],
            ri_id=args["ri_id"],
            wrapped_domain_key=args["wrapped_domain_key"],
            joined_at=int(args["joined_at"]),
        ),)
    if op == "remove_domain_context":
        return (args["domain_id"],)
    if op == "remember":
        return ((args["ro_id"], args["ro_nonce"]),)
    raise JournalCorruptError("no journal decoding for op %r" % op)


class TransactionalStorage(DeviceStorage):
    """DeviceStorage whose transactions survive power loss.

    ``crypto`` and ``kdev`` come from the owning agent: journal records
    are HMAC-framed under the device key through the agent's (possibly
    metered) provider, so durability costs appear in the operation
    trace. Pass a surviving ``flash`` plus
    :meth:`TransactionalStorage.recover` to rebuild state after a
    crash; pass an ``injector`` to make this storage crashable.
    """

    def __init__(self, crypto, kdev: bytes,
                 flash: Optional[Flash] = None,
                 injector: Optional[CrashInjector] = None) -> None:
        super().__init__()
        self.tracer = getattr(crypto, "tracer", NULL_TRACER)
        self.journal = Journal(crypto, kdev, flash=flash,
                               injector=injector)
        self._txn_id = 0

    # -- transaction hooks --------------------------------------------------
    def _begin(self) -> None:
        self._txn_id += 1

    def _precommit(self) -> None:
        self.journal.commit(self._txn_id)
        self.tracer.event("journal.commit", track="store",
                          txn_id=self._txn_id)

    def _mutate(self, op: str, *args) -> None:
        if self._txn is None:
            # A bare mutator call still gets full atomicity: wrap it in
            # its own single-op transaction (journal record + commit).
            with self.transaction():
                self._mutate(op, *args)
            return
        try:
            self.journal.append(self._txn_id, op, encode_op(op, args))
        except PowerLossError:
            self.tracer.event("storage.crash", track="store",
                              txn_id=self._txn_id, op=op)
            raise
        self._txn.append((op, args))

    # -- recovery ----------------------------------------------------------
    def replay_record(self, op: str, args: dict) -> None:
        """Re-apply one committed journal record to RAM state.

        Called by :class:`~repro.store.recovery.Recovery` only: applies
        directly, without journaling again — the record is already on
        flash.
        """
        getattr(self, "_do_" + op)(*decode_op(op, args))

    @classmethod
    def recover(cls, crypto, kdev: bytes, flash: Flash,
                injector: Optional[CrashInjector] = None,
                ) -> Tuple["TransactionalStorage", "RecoveryReport"]:
        """Rebuild storage from a surviving flash region after power loss.

        Returns the recovered storage and the
        :class:`~repro.store.recovery.RecoveryReport` describing what
        the replay found. Idempotent: recovering the same flash again
        yields the identical state and discards nothing further.
        """
        from .recovery import Recovery
        storage = cls(crypto, kdev, flash=flash, injector=injector)
        report = Recovery(storage.journal).replay(storage)
        return storage, report
