"""The write-ahead journal and the flash region underneath it.

Every mutation of durable device state is first appended here as one
*record*, and a transaction's mutations only count after its commit
record lands. A record's frame is::

    | length (4 octets, big-endian) | body | HMAC-SHA1(body) (20 octets) |

The body is the project's canonical encoding
(:mod:`repro.drm.serialize`) of ``{"txn": n, "op": name, "args": {...}}``.
The length prefix detects a frame cut short by power loss; the HMAC —
keyed under the device key ``K_DEV`` and computed through the agent's
crypto provider, so it is metered like every other crypto operation —
detects a frame whose tail octets never left the flash controller's
write buffer (classic torn-write garbage: the length is intact but the
body is not). Scanning stops at the first invalid frame: on a
power-loss medium only the tail can be torn, and everything at or past
the tear is discarded by recovery.
"""

import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..drm import serialize
from ..drm.errors import WireDecodeError
from .crash import CrashInjector, PowerLossError

#: Octets of the big-endian length prefix.
LENGTH_OCTETS = 4

#: Octets of the HMAC-SHA1 framing tag.
TAG_OCTETS = 20

#: Reserved operation name marking a transaction as committed.
COMMIT_OP = "commit"


class Flash:
    """The persistent byte region that survives power loss.

    RAM (the dict-based :class:`~repro.drm.storage.DeviceStorage`) dies
    with the power; whatever ``append`` managed to persist here — torn
    tail included — is what recovery gets to work with.
    """

    def __init__(self, injector: Optional[CrashInjector] = None) -> None:
        self.data = bytearray()
        self.injector = injector

    def __len__(self) -> int:
        return len(self.data)

    def append(self, frame: bytes) -> None:
        """Persist ``frame``; a crash may tear it and kill the caller."""
        if self.injector is None:
            self.data += frame
            return
        persisted, crash = self.injector.on_append(frame)
        self.data += persisted
        if crash:
            raise PowerLossError(
                "power lost at journal write boundary %d (%d of %d "
                "octets persisted)" % (self.injector.boundaries_seen - 1,
                                       len(persisted), len(frame)))

    def truncate(self, length: int) -> None:
        """Drop everything past ``length`` (recovery's torn-tail cut)."""
        del self.data[length:]


@dataclass(frozen=True)
class JournalRecord:
    """One decoded journal record."""

    txn: int
    op: str
    args: dict

    @property
    def is_commit(self) -> bool:
        """Whether this record is a transaction commit marker."""
        return self.op == COMMIT_OP


class Journal:
    """Write-ahead log of storage mutations over one flash region.

    ``crypto`` is a :class:`~repro.core.meter.PlainCrypto`-compatible
    provider; with a metered provider every record append and every
    recovery scan shows up in the priced operation trace.
    """

    def __init__(self, crypto, key: bytes,
                 flash: Optional[Flash] = None,
                 injector: Optional[CrashInjector] = None) -> None:
        if not key:
            raise ValueError("the journal needs a non-empty HMAC key")
        if flash is not None and injector is not None:
            flash.injector = injector
        self.flash = flash if flash is not None \
            else Flash(injector=injector)
        self.crypto = crypto
        self.key = key
        #: Records appended through this Journal instance (not the flash
        #: total): the boundary counter measurements use.
        self.records_appended = 0

    # -- writing -----------------------------------------------------------
    def append(self, txn: int, op: str, args: dict) -> None:
        """Append one mutation record (one write boundary)."""
        self._write(serialize.encode({"txn": txn, "op": op,
                                      "args": args}))

    def commit(self, txn: int) -> None:
        """Append the commit record sealing transaction ``txn``."""
        self._write(serialize.encode({"txn": txn, "op": COMMIT_OP,
                                      "args": {}}))

    def _write(self, body: bytes) -> None:
        tag = self.crypto.hmac_sha1(self.key, body,
                                    label="journal-record")
        frame = struct.pack(">I", len(body)) + body + tag
        self.flash.append(frame)
        self.records_appended += 1

    # -- reading -----------------------------------------------------------
    def scan(self) -> Tuple[List[JournalRecord], int]:
        """Decode the valid record prefix: (records, valid octet count).

        Everything from the first invalid frame on is a torn tail (power
        died mid-write); the caller truncates flash to the returned
        offset before appending again. Each record's HMAC check runs
        through the crypto provider, so recovery is priced.
        """
        data = self.flash.data
        records: List[JournalRecord] = []
        position = 0
        while position < len(data):
            frame = self._read_frame(data, position)
            if frame is None:
                break
            record, end = frame
            records.append(record)
            position = end
        return records, position

    def _read_frame(self, data: bytearray,
                    position: int) -> Optional[Tuple[JournalRecord, int]]:
        if position + LENGTH_OCTETS > len(data):
            return None
        (length,) = struct.unpack_from(">I", data, position)
        body_start = position + LENGTH_OCTETS
        end = body_start + length + TAG_OCTETS
        if end > len(data):
            return None
        body = bytes(data[body_start:body_start + length])
        tag = bytes(data[body_start + length:end])
        if not self.crypto.hmac_verify(self.key, body, tag,
                                       label="journal-scan"):
            return None
        try:
            decoded = serialize.decode(body)
        except WireDecodeError:
            return None
        if not isinstance(decoded, dict) \
                or not isinstance(decoded.get("op"), str) \
                or not isinstance(decoded.get("txn"), int) \
                or not isinstance(decoded.get("args"), dict):
            return None
        return JournalRecord(txn=decoded["txn"], op=decoded["op"],
                             args=decoded["args"]), end
