"""Power-loss-atomic device storage.

The paper targets an embedded terminal, where power can vanish between
any two flash writes, and its §2.4.3 robustness rules require rights
state — install replay guards, count-based constraint decrements — to
survive exactly that. This package is the state-side counterpart of the
wire-side resilience layer (:mod:`repro.drm.roap.faults`): a
write-ahead :class:`~repro.store.journal.Journal` over a modeled
:class:`~repro.store.journal.Flash` region, a
:class:`~repro.store.transactional.TransactionalStorage` that makes the
DRM Agent's mutations all-or-nothing, a seeded
:class:`~repro.store.crash.CrashInjector` that can kill execution at
every journal write boundary, and a
:class:`~repro.store.recovery.Recovery` replay that rebuilds RAM state
from the surviving flash bytes.

Every journal record is HMAC-SHA1-framed through the agent's crypto
provider, so durability costs cycles the performance model prices like
any other crypto work (see :mod:`repro.analysis.durability`).
"""

from .crash import (CrashInjector, CrashPoint, PowerLossError, StoreError,
                    enumerate_crash_points)
from .journal import COMMIT_OP, Flash, Journal, JournalRecord
from .recovery import Recovery, RecoveryReport
from .transactional import TransactionalStorage

__all__ = [
    "COMMIT_OP",
    "CrashInjector",
    "CrashPoint",
    "Flash",
    "Journal",
    "JournalRecord",
    "PowerLossError",
    "Recovery",
    "RecoveryReport",
    "StoreError",
    "TransactionalStorage",
    "enumerate_crash_points",
]
