"""Crash-point fault injection for the storage layer.

The wire-side fault channel (:mod:`repro.drm.roap.faults`) models a
bearer that loses messages; this module models a battery that loses
charge. A :class:`CrashInjector` sits under the journal's flash region
and can kill execution at any *write boundary* — immediately before a
record write, partway through it (a torn write: only a prefix of the
record's bytes reach flash), or immediately after the bytes land but
before the in-RAM state is touched.

Two modes mirror the fault plan's design:

* **deterministic** — a :class:`CrashPoint` names one boundary and a
  torn fraction; :func:`enumerate_crash_points` enumerates every
  (boundary, fraction) pair so a sweep can prove recovery correct at
  *all* of them, not a sampled subset;
* **seeded** — a ``seed``/``crash_rate`` pair draws crashes and torn
  cuts from a private :class:`random.Random`, so randomized soak tests
  are exactly reproducible.

A fired injector disarms itself: recovery and the re-run after it see a
healthy flash unless the caller arms a new point.
"""

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


class StoreError(Exception):
    """Base class for storage-layer failures."""


class PowerLossError(StoreError):
    """The simulated terminal lost power mid-operation.

    Deliberately *not* a :class:`~repro.drm.errors.DRMError`: protocol
    code must never catch-and-continue past a power loss — the RAM
    state is gone and only :class:`~repro.store.recovery.Recovery` may
    run next.
    """


class JournalCorruptError(StoreError):
    """The journal's valid prefix could not be parsed at all."""


#: Torn-write fractions the exhaustive sweep probes at each boundary:
#: nothing persisted, half a record persisted, the full record persisted
#: (power lost after the write, before the RAM apply).
SWEEP_FRACTIONS = (0.0, 0.5, 1.0)


@dataclass(frozen=True)
class CrashPoint:
    """One deterministic crash location.

    ``boundary`` counts journal write boundaries from 0 in execution
    order; ``fraction`` is how much of that record's frame reaches flash
    before power dies (0.0 = nothing, 1.0 = everything).
    """

    boundary: int
    fraction: float

    def __post_init__(self) -> None:
        if self.boundary < 0:
            raise ValueError("crash boundary must be non-negative")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("torn fraction must be within [0, 1]")


def enumerate_crash_points(
        boundaries: int,
        fractions: Sequence[float] = SWEEP_FRACTIONS) -> List[CrashPoint]:
    """Every (boundary, fraction) crash point of an operation.

    ``boundaries`` is the number of journal writes the clean operation
    performs (count them with an un-armed injector or
    ``Journal.records_appended``); the sweep then kills the operation at
    each write, at each torn fraction.
    """
    if boundaries < 0:
        raise ValueError("boundary count must be non-negative")
    return [CrashPoint(boundary=index, fraction=fraction)
            for index in range(boundaries)
            for fraction in fractions]


class CrashInjector:
    """Decides, per flash append, whether power is lost and where.

    Exactly one of the two modes is active:

    * ``point`` — crash deterministically at that boundary/fraction;
    * ``seed`` + ``crash_rate`` — crash each append with probability
      ``crash_rate``, torn cut drawn uniformly over the frame.

    ``boundaries_seen`` counts every append the injector observed, so a
    clean run doubles as the boundary enumerator for the sweep.
    """

    def __init__(self, point: Optional[CrashPoint] = None,
                 seed: Optional[str] = None,
                 crash_rate: float = 0.0) -> None:
        if point is not None and seed is not None:
            raise ValueError(
                "arm either a deterministic point or a seeded rate")
        if not 0.0 <= crash_rate <= 1.0:
            raise ValueError("crash rate must be within [0, 1]")
        if crash_rate > 0.0 and seed is None:
            raise ValueError("a seeded injector needs a seed string")
        self.point = point
        self.crash_rate = crash_rate
        self._rng = random.Random(seed) if seed is not None else None
        self.boundaries_seen = 0
        self.fired = False

    def arm(self, point: CrashPoint) -> None:
        """Re-arm for another deterministic crash (resets the counter)."""
        self.point = point
        self.boundaries_seen = 0
        self.fired = False

    def on_append(self, frame: bytes) -> Tuple[bytes, bool]:
        """Decide one append's fate: (bytes that reach flash, crash?)."""
        index = self.boundaries_seen
        self.boundaries_seen += 1
        if self.fired:
            return frame, False
        if self.point is not None and index == self.point.boundary:
            self.fired = True
            cut = int(len(frame) * self.point.fraction)
            return frame[:cut], True
        if self._rng is not None and self.crash_rate > 0.0 \
                and self._rng.random() < self.crash_rate:
            self.fired = True
            cut = self._rng.randrange(len(frame) + 1)
            return frame[:cut], True
        return frame, False
