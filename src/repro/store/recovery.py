"""Replaying the journal after power loss.

RAM state is gone; the flash region — possibly ending in a torn frame —
is all that survives. Recovery scans the journal's valid prefix,
collects the transaction ids that reached their commit record, and
re-applies exactly the mutations of those committed transactions, in
journal order, to a fresh storage. Everything else is discarded:

* records of a transaction with no commit record (power died before the
  commit point) — the transaction never happened;
* the torn tail past the last valid frame — flash is truncated back to
  the valid prefix so later appends are parseable.

Replay is idempotent by construction: every ``_do_*`` mutation is a
last-writer-wins assignment or a tolerant removal, so recovering the
same flash twice yields bit-identical state.
"""

from dataclasses import dataclass

from ..obs.tracer import NULL_TRACER
from .journal import Journal


@dataclass(frozen=True)
class RecoveryReport:
    """What one recovery pass found and did."""

    #: Valid journal records scanned (commit markers included).
    records_scanned: int
    #: Distinct committed transactions whose mutations were re-applied.
    transactions_applied: int
    #: Distinct uncommitted transactions discarded (crash pre-commit).
    transactions_discarded: int
    #: Octets of torn tail truncated from the flash region.
    torn_octets_discarded: int


class Recovery:
    """Rebuilds storage state from a journal's surviving flash bytes."""

    def __init__(self, journal: Journal) -> None:
        self.journal = journal
        #: Highest transaction id seen in the valid prefix (0 if none):
        #: the recovered storage resumes numbering after it.
        self.last_txn = 0

    def replay(self, storage) -> RecoveryReport:
        """Apply all committed transactions to ``storage``.

        ``storage`` must expose ``replay_record(op, args)``
        (:class:`~repro.store.transactional.TransactionalStorage` does);
        each HMAC check of the scan runs through the journal's crypto
        provider, so the cost of recovery is metered like the writes
        that preceded it.
        """
        tracer = getattr(storage, "tracer", NULL_TRACER)
        with tracer.span("recovery.replay", track="store") as span:
            records, valid_octets = self.journal.scan()
            committed = {r.txn for r in records if r.is_commit}
            mutated = {r.txn for r in records if not r.is_commit}
            for record in records:
                if not record.is_commit and record.txn in committed:
                    storage.replay_record(record.op, record.args)
            self.last_txn = max((r.txn for r in records), default=0)
            if hasattr(storage, "_txn_id"):
                storage._txn_id = max(storage._txn_id, self.last_txn)
            torn = len(self.journal.flash) - valid_octets
            self.journal.flash.truncate(valid_octets)
            report = RecoveryReport(
                records_scanned=len(records),
                transactions_applied=len(mutated & committed),
                transactions_discarded=len(mutated - committed),
                torn_octets_discarded=torn,
            )
            span.set("records_scanned", report.records_scanned)
            span.set("transactions_applied", report.transactions_applied)
            span.set("transactions_discarded",
                     report.transactions_discarded)
            span.set("torn_octets_discarded", report.torn_octets_discarded)
        return report
