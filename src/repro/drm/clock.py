"""Simulation clock shared by all DRM actors.

Certificates, OCSP responses and datetime/interval rights constraints all
need a common notion of time. Real terminals use DRM Time (a secure clock
the RI can resync); the simulation uses an explicit integer-second clock so
tests can fast-forward deterministically.
"""


class SimulationClock:
    """Monotonic integer-second clock with explicit advancement."""

    def __init__(self, now: int = 1_100_000_000) -> None:
        # The default is an arbitrary epoch in late 2004 — the period in
        # which the paper's measurements are set.
        if now < 0:
            raise ValueError("clock must start at a non-negative time")
        self._now = now

    @property
    def now(self) -> int:
        """Current simulation time in seconds."""
        return self._now

    def advance(self, seconds: int) -> int:
        """Move time forward; returns the new time."""
        if seconds < 0:
            raise ValueError("the simulation clock cannot move backwards")
        self._now += seconds
        return self._now


#: One day / one year in seconds, for validity windows.
DAY = 86_400
YEAR = 365 * DAY
