"""The Content Issuer: packages content into DCFs and licenses it to RIs.

The paper's actor diagram (Figure 1): the CI owns digital content and
negotiates licenses with one or more Rights Issuers over "any protocol" —
the negotiation itself is outside the standard's scope, so the model
exposes it as a direct method call that hands the RI the content key and
DCF hash it needs to mint Rights Objects.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .dcf import DCF, MultipartDCF, PreviewContainer, package_content


@dataclass(frozen=True)
class LicenseGrant:
    """What the CI hands an RI during license negotiation."""

    content_id: str
    kcek: bytes
    dcf_hash: bytes


class ContentIssuer:
    """Owns clear content; produces DCFs and license grants."""

    def __init__(self, name: str, crypto) -> None:
        self.name = name
        self._crypto = crypto
        self._kceks: Dict[str, bytes] = {}
        self._dcfs: Dict[str, DCF] = {}

    def publish(self, content_id: str, content_type: str,
                clear_content: bytes, rights_issuer_url: str,
                metadata: Dict[str, str] = None) -> DCF:
        """Encrypt ``clear_content`` under a fresh K_CEK into a DCF.

        The DCF can be superdistributed freely — only a Rights Object can
        unlock it.
        """
        kcek = self._crypto.random_bytes(16)
        dcf = package_content(
            content_id=content_id, content_type=content_type,
            clear_content=clear_content, kcek=kcek,
            rights_issuer_url=rights_issuer_url, crypto=self._crypto,
            metadata=metadata,
        )
        self._kceks[content_id] = kcek
        self._dcfs[content_id] = dcf
        return dcf

    def get_dcf(self, content_id: str) -> DCF:
        """A published DCF (what a download/superdistribution delivers)."""
        return self._dcfs[content_id]

    def publish_multipart(self, items: Sequence[Tuple[str, str, bytes]],
                          rights_issuer_url: str,
                          preview: Optional[PreviewContainer] = None
                          ) -> MultipartDCF:
        """Package several content items into one multipart DCF.

        ``items`` are ``(content_id, content_type, clear_content)``
        triples; each gets its own container and fresh ``K_CEK``. The
        optional ``preview`` rides along in clear (rights-free).
        """
        containers: List[DCF] = [
            self.publish(content_id, content_type, clear_content,
                         rights_issuer_url)
            for content_id, content_type, clear_content in items
        ]
        return MultipartDCF(containers=tuple(containers), preview=preview)

    def negotiate_license(self, content_id: str) -> LicenseGrant:
        """Hand an RI the key material for ``content_id``.

        Models the out-of-scope CI-RI license negotiation of Figure 1.
        """
        dcf = self._dcfs[content_id]
        return LicenseGrant(
            content_id=content_id,
            kcek=self._kceks[content_id],
            dcf_hash=self._crypto.sha1(dcf.to_bytes()),
        )
