"""The Rights Issuer (RI): sells licenses to trusted DRM Agents.

Server side of ROAP. The RI:

* answers DeviceHello with RIHello (capability negotiation),
* validates RegistrationRequests (message signature + device certificate,
  consulting the CA's revocation state) and answers with a signed
  RegistrationResponse carrying its certificate and a fresh OCSP response,
* mints protected Rights Objects on RORequest — generating ``K_REK`` and
  ``K_MAC``, wrapping ``K_CEK`` under ``K_REK``, MACing the RO and
  encapsulating ``K_MAC‖K_REK`` to the device (Device RO) or wrapping it
  under the domain key (Domain RO),
* manages domains and delivers domain keys over the PKI channel.

The RI runs on server hardware outside the terminal, so it always uses an
un-metered crypto provider: its operations never enter the cost trace the
paper's model prices.
"""

import itertools
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .certificates import Certificate, CertificationAuthority, \
    verify_certificate
from .clock import SimulationClock, YEAR
from .content_issuer import LicenseGrant
from .domain import DomainManager
from .errors import AcquisitionError, CertificateRevokedError, \
    DomainError, RegistrationError
from .identifiers import DEFAULT_ALGORITHMS, ROAP_VERSION
from .ocsp import OCSPResponder
from .rel import Rights
from .ro import Asset, KEY_LENGTH, ProtectedRightsObject, RightsObject
from .roap.messages import (DeviceHello, JoinDomainRequest,
                            JoinDomainResponse, LeaveDomainRequest,
                            LeaveDomainResponse, RegistrationRequest,
                            RegistrationResponse, RIHello, ROAP_STATUS_OK,
                            RORequest, ROResponse, new_nonce)
from .roap.triggers import RoapTrigger, TriggerType, make_trigger


@dataclass(frozen=True)
class LicenseOffer:
    """One purchasable license: a rights grant over one or more contents.

    A multi-grant offer mints a multi-asset Rights Object — e.g. a whole
    album under one license (the standard's RO "list of Content Object
    IDs").
    """

    ro_id: str
    grants: Tuple[LicenseGrant, ...]
    rights: Rights

    def __post_init__(self) -> None:
        if not self.grants:
            raise ValueError("an offer covers at least one content item")


@dataclass
class _Session:
    """Server-side ROAP session state between hello and registration."""

    session_id: str
    device_id: str
    ri_nonce: bytes


@dataclass(frozen=True)
class RIDeviceContext:
    """The RI's record of one registered device.

    The server-side counterpart of the agent's
    :class:`~repro.drm.storage.RIContext`. ``context_id`` is unique per
    creation, so tests (and operators) can verify that a replayed
    RegistrationRequest did not mint a second context.
    """

    context_id: int
    device_id: str
    certificate: Certificate
    session_id: str
    registered_at: int


#: Upper bound on remembered request nonces (oldest evicted first).
REPLAY_CACHE_LIMIT = 1024


class RightsIssuer:
    """One Rights Issuer with its PKI identity and license catalog."""

    def __init__(self, ri_id: str, keypair, ca: CertificationAuthority,
                 ocsp_responder: OCSPResponder, crypto,
                 clock: SimulationClock,
                 sign_device_ros: bool = False) -> None:
        self.ri_id = ri_id
        self._keypair = keypair
        self._ca = ca
        self._ocsp = ocsp_responder
        self._crypto = crypto
        self._clock = clock
        self.certificate = ca.issue(ri_id, keypair.public_key,
                                    clock.now, validity_seconds=5 * YEAR)
        self.sign_device_ros = sign_device_ros
        self.domains = DomainManager(crypto)
        self._offers: Dict[str, LicenseOffer] = {}
        self._sessions: Dict[str, _Session] = {}
        self._contexts: Dict[str, RIDeviceContext] = {}
        self.context_log: list = []
        self._session_counter = itertools.count(1)
        self._context_counter = itertools.count(1)
        # Idempotent request handling: device_nonce -> signed response.
        # A duplicated (replayed) request gets the cached response back
        # instead of re-running its side effects, so a bearer that
        # delivers a RegistrationRequest twice cannot mint two contexts
        # (nor two differently-keyed Rights Objects for one RORequest).
        self._replay_cache: Dict[bytes, object] = {}

    # -- catalog ----------------------------------------------------------
    def add_offer(self, ro_id: str, grant, rights: Rights) -> None:
        """List a license for sale (payment is out of scope, paper §2.4.2).

        ``grant`` is one :class:`LicenseGrant` or a sequence of them (a
        multi-content license, e.g. an album).
        """
        if isinstance(grant, LicenseGrant):
            grants: Tuple[LicenseGrant, ...] = (grant,)
        else:
            grants = tuple(grant)
        self._offers[ro_id] = LicenseOffer(ro_id, grants, rights)

    # -- registered-device records ------------------------------------------
    def registered_certificate(self,
                               device_id: str) -> Optional[Certificate]:
        """The certificate of a registered device, or None."""
        context = self._contexts.get(device_id)
        return context.certificate if context is not None else None

    def context_count(self, device_id: str) -> int:
        """How many RI contexts were ever created for ``device_id``.

        Counts creations, not the current roster, so a replayed
        RegistrationRequest that (incorrectly) minted a second context
        would be visible even though the roster maps one id to one entry.
        """
        return sum(1 for context in self.context_log
                   if context.device_id == device_id)

    # -- idempotency ---------------------------------------------------------
    def _replayed(self, device_nonce: bytes):
        """The cached response for a request nonce seen before, or None."""
        return self._replay_cache.get(device_nonce)

    def _remember_response(self, device_nonce: bytes, response) -> None:
        if len(self._replay_cache) >= REPLAY_CACHE_LIMIT:
            oldest = next(iter(self._replay_cache))
            del self._replay_cache[oldest]
        self._replay_cache[device_nonce] = response

    # -- ROAP: registration -------------------------------------------------
    def hello(self, device_hello: DeviceHello) -> RIHello:
        """Pass 2 of registration: negotiate algorithms, open a session."""
        if device_hello.version != ROAP_VERSION:
            raise RegistrationError(
                "unsupported ROAP version %r" % device_hello.version
            )
        # Intersect capabilities, preferring the mandated defaults.
        selected = tuple(
            a for a in DEFAULT_ALGORITHMS
            if a in device_hello.supported_algorithms
        )
        if len(selected) != len(DEFAULT_ALGORITHMS):
            raise RegistrationError(
                "device does not support the mandated algorithm suite"
            )
        session_id = "session-%d" % next(self._session_counter)
        session = _Session(
            session_id=session_id,
            device_id=device_hello.device_id,
            ri_nonce=new_nonce(self._crypto),
        )
        self._sessions[session_id] = session
        return RIHello(
            version=ROAP_VERSION, ri_id=self.ri_id,
            session_id=session_id, ri_nonce=session.ri_nonce,
            selected_algorithms=selected,
        )

    def register(self, request: RegistrationRequest) -> RegistrationResponse:
        """Pass 4 of registration: validate the device, emit the response.

        Verifies the request signature against the public key in the
        device certificate, validates that certificate against the CA and
        checks revocation (the RI-side equivalent of an OCSP query).

        Idempotent under replay: a request whose nonce was already
        answered returns the original signed response without creating
        another RI context, so a bearer that duplicates the message
        cannot double-register the device.
        """
        cached = self._replayed(request.device_nonce)
        if cached is not None:
            return cached
        session = self._sessions.get(request.session_id)
        if session is None:
            raise RegistrationError(
                "unknown session %r" % request.session_id
            )
        certificate = request.certificate
        self._crypto.pss_verify(certificate.public_key,
                                request.tbs_bytes(), request.signature)
        verify_certificate(certificate, [self._ca.root_certificate],
                           self._clock.now, self._crypto)
        if self._ca.is_revoked(certificate.serial):
            raise CertificateRevokedError(
                "device certificate %d is revoked" % certificate.serial
            )
        context = RIDeviceContext(
            context_id=next(self._context_counter),
            device_id=session.device_id,
            certificate=certificate,
            session_id=request.session_id,
            registered_at=self._clock.now,
        )
        self._contexts[session.device_id] = context
        self.context_log.append(context)
        ocsp_response = self._ocsp.respond(self.certificate.serial,
                                           self._clock.now)
        unsigned = RegistrationResponse(
            status=ROAP_STATUS_OK,
            session_id=request.session_id,
            device_nonce=request.device_nonce,
            ri_certificate=self.certificate,
            ocsp_response=ocsp_response,
            ri_time=self._clock.now,
        )
        signature = self._crypto.pss_sign(self._keypair,
                                          unsigned.tbs_bytes())
        response = RegistrationResponse(
            status=unsigned.status, session_id=unsigned.session_id,
            device_nonce=unsigned.device_nonce,
            ri_certificate=unsigned.ri_certificate,
            ocsp_response=unsigned.ocsp_response,
            ri_time=unsigned.ri_time, signature=signature,
        )
        self._remember_response(request.device_nonce, response)
        return response

    # -- ROAP: RO acquisition -----------------------------------------------
    def request_ro(self, request: RORequest) -> ROResponse:
        """2-pass RO acquisition: validate the request, mint the RO.

        Idempotent under replay: a duplicated RORequest receives the
        original response (the same minted RO) rather than a second RO
        with fresh keys.
        """
        cached = self._replayed(request.device_nonce)
        if cached is not None:
            return cached
        certificate = self.registered_certificate(request.device_id)
        if certificate is None:
            raise AcquisitionError(
                "device %r holds no registration with %r"
                % (request.device_id, self.ri_id)
            )
        self._crypto.pss_verify(certificate.public_key,
                                request.tbs_bytes(), request.signature)
        offer = self._offers.get(request.ro_id)
        if offer is None:
            raise AcquisitionError("no license %r on offer" % request.ro_id)

        if request.domain_id is not None:
            protected = self._mint_domain_ro(offer, request.domain_id,
                                             request.device_id)
        else:
            protected = self._mint_device_ro(offer,
                                             certificate.public_key)

        unsigned = ROResponse(
            status=ROAP_STATUS_OK, device_nonce=request.device_nonce,
            protected_ro=protected,
        )
        signature = self._crypto.pss_sign(self._keypair,
                                          unsigned.tbs_bytes())
        response = ROResponse(
            status=unsigned.status, device_nonce=unsigned.device_nonce,
            protected_ro=unsigned.protected_ro, signature=signature,
        )
        self._remember_response(request.device_nonce, response)
        return response

    def _build_ro(self, offer: LicenseOffer, krek: bytes,
                  domain_id: Optional[str]) -> RightsObject:
        assets = tuple(
            Asset(
                content_id=grant.content_id,
                dcf_hash=grant.dcf_hash,
                wrapped_kcek=self._crypto.aes_wrap(krek, grant.kcek),
            )
            for grant in offer.grants
        )
        return RightsObject(
            ro_id=offer.ro_id,
            rights_issuer_id=self.ri_id,
            rights=offer.rights,
            assets=assets,
            issued_at=self._clock.now,
            domain_id=domain_id,
            ro_nonce=self._crypto.random_bytes(8),
        )

    def _fresh_keys(self) -> Tuple[bytes, bytes]:
        kmac = self._crypto.random_bytes(KEY_LENGTH)
        krek = self._crypto.random_bytes(KEY_LENGTH)
        return kmac, krek

    def _mint_device_ro(self, offer: LicenseOffer,
                        device_public_key) -> ProtectedRightsObject:
        """Device RO: K_MAC‖K_REK encapsulated to the device key (Fig. 3)."""
        kmac, krek = self._fresh_keys()
        ro = self._build_ro(offer, krek, domain_id=None)
        mac = self._crypto.hmac_sha1(kmac, ro.payload_bytes())
        kem_ciphertext = self._crypto.kem_encrypt(device_public_key,
                                                  kmac + krek)
        signature = None
        if self.sign_device_ros:
            signature = self._crypto.pss_sign(self._keypair,
                                              ro.payload_bytes())
        return ProtectedRightsObject(
            ro=ro, mac=mac, kem_ciphertext=kem_ciphertext,
            signature=signature,
        )

    def _mint_domain_ro(self, offer: LicenseOffer, domain_id: str,
                        device_id: str) -> ProtectedRightsObject:
        """Domain RO: keys under the domain key, signature mandatory."""
        if not self.domains.is_member(domain_id, device_id):
            raise DomainError(
                "device %r is not a member of %r" % (device_id, domain_id)
            )
        domain = self.domains.get(domain_id)
        kmac, krek = self._fresh_keys()
        ro = self._build_ro(offer, krek, domain_id=domain_id)
        mac = self._crypto.hmac_sha1(kmac, ro.payload_bytes())
        wrapped = self._crypto.aes_wrap(domain.key, kmac + krek)
        signature = self._crypto.pss_sign(self._keypair,
                                          ro.payload_bytes())
        return ProtectedRightsObject(
            ro=ro, mac=mac, domain_wrapped_keys=wrapped,
            signature=signature,
        )

    # -- ROAP: domains -------------------------------------------------------
    def create_domain(self, domain_id: str, max_members: int = 10) -> None:
        """Provision a new domain with a fresh key."""
        self.domains.create(domain_id, max_members)

    def join_domain(self, request: JoinDomainRequest) -> JoinDomainResponse:
        """2-pass domain join: enroll the device, ship the domain key.

        Idempotent under replay: a duplicated JoinDomainRequest returns
        the original response instead of consuming a second roster slot.
        """
        cached = self._replayed(request.device_nonce)
        if cached is not None:
            return cached
        certificate = self.registered_certificate(request.device_id)
        if certificate is None:
            raise DomainError(
                "device %r must register before joining a domain"
                % request.device_id
            )
        self._crypto.pss_verify(certificate.public_key,
                                request.tbs_bytes(), request.signature)
        domain = self.domains.join(request.domain_id, request.device_id)
        kem_ciphertext = self._crypto.kem_encrypt(
            certificate.public_key, domain.key
        )
        unsigned = JoinDomainResponse(
            status=ROAP_STATUS_OK, domain_id=domain.domain_id,
            device_nonce=request.device_nonce,
            protected_domain_key=kem_ciphertext.concatenation(),
        )
        signature = self._crypto.pss_sign(self._keypair,
                                          unsigned.tbs_bytes())
        response = JoinDomainResponse(
            status=unsigned.status, domain_id=unsigned.domain_id,
            device_nonce=unsigned.device_nonce,
            protected_domain_key=unsigned.protected_domain_key,
            signature=signature,
        )
        self._remember_response(request.device_nonce, response)
        return response

    def leave_domain(self,
                     request: LeaveDomainRequest) -> LeaveDomainResponse:
        """2-pass domain leave: verify the request, update the roster.

        Idempotent under replay, so a duplicated LeaveDomainRequest is
        not rejected as a not-a-member error after the first delivery
        already removed the device.
        """
        cached = self._replayed(request.device_nonce)
        if cached is not None:
            return cached
        certificate = self.registered_certificate(request.device_id)
        if certificate is None:
            raise DomainError(
                "unknown device %r cannot leave a domain"
                % request.device_id
            )
        self._crypto.pss_verify(certificate.public_key,
                                request.tbs_bytes(), request.signature)
        if not self.domains.is_member(request.domain_id,
                                      request.device_id):
            raise DomainError(
                "device %r is not a member of %r"
                % (request.device_id, request.domain_id)
            )
        self.domains.leave(request.domain_id, request.device_id)
        unsigned = LeaveDomainResponse(
            status=ROAP_STATUS_OK, domain_id=request.domain_id,
            device_nonce=request.device_nonce,
        )
        signature = self._crypto.pss_sign(self._keypair,
                                          unsigned.tbs_bytes())
        response = LeaveDomainResponse(
            status=unsigned.status, domain_id=unsigned.domain_id,
            device_nonce=unsigned.device_nonce, signature=signature,
        )
        self._remember_response(request.device_nonce, response)
        return response

    # -- ROAP: triggers -------------------------------------------------------
    def trigger(self, trigger_type: TriggerType,
                ro_id: Optional[str] = None,
                domain_id: Optional[str] = None) -> RoapTrigger:
        """Emit a signed ROAP trigger (e.g. pushed after a web purchase)."""
        return make_trigger(trigger_type, self.ri_id, self._keypair,
                            self._crypto, ro_id=ro_id,
                            domain_id=domain_id)
