"""Rights Expression Language (REL) subset: permissions and constraints.

OMA DRM 2's REL grants permissions (play, display, execute, print, export)
optionally bounded by constraints (count, datetime window, accumulated
interval). The model implements the stateful core the use cases exercise:

* :class:`CountConstraint` — at most N accesses (the Ringtone use case's
  25 calls fit naturally here),
* :class:`DatetimeConstraint` — absolute validity window,
* :class:`IntervalConstraint` — duration from first use.

Constraint *state* (remaining count, first-use time) lives in
:class:`RightsState`, kept by the DRM Agent's storage — the rights
expression itself is immutable and is what the RO's MAC covers.
"""

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from . import serialize
from .errors import PermissionDeniedError, WireDecodeError


class PermissionType(enum.Enum):
    """The REL permission verbs."""

    PLAY = "play"
    DISPLAY = "display"
    EXECUTE = "execute"
    PRINT = "print"
    EXPORT = "export"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class CountConstraint:
    """Permit at most ``count`` uses."""

    count: int

    def describe(self) -> dict:
        """Canonical-encodable representation."""
        return {"type": "count", "count": self.count}


@dataclass(frozen=True)
class DatetimeConstraint:
    """Permit use only inside an absolute time window."""

    not_before: Optional[int] = None
    not_after: Optional[int] = None

    def describe(self) -> dict:
        """Canonical-encodable representation."""
        return {"type": "datetime", "not_before": self.not_before,
                "not_after": self.not_after}


@dataclass(frozen=True)
class IntervalConstraint:
    """Permit use for ``duration`` seconds starting at first use."""

    duration: int

    def describe(self) -> dict:
        """Canonical-encodable representation."""
        return {"type": "interval", "duration": self.duration}


class ExportMode(enum.Enum):
    """REL export modes: copy keeps the local rights, move surrenders
    them to the target system."""

    COPY = "copy"
    MOVE = "move"


@dataclass(frozen=True)
class ExportConstraint:
    """Restrict EXPORT to named target DRM systems.

    OMA DRM 2's ``<export>`` element lets an RO authorize re-protection
    of the content under another DRM system (e.g. a removable-media
    scheme); ``mode`` distinguishes *copy* (local rights remain) from
    *move* (local rights are deleted after export).
    """

    target_systems: Tuple[str, ...]
    mode: ExportMode = ExportMode.COPY

    def permits_target(self, target_system: str) -> bool:
        """Whether exporting to ``target_system`` is authorized."""
        return target_system in self.target_systems

    def describe(self) -> dict:
        """Canonical-encodable representation."""
        return {"type": "export",
                "targets": list(self.target_systems),
                "mode": self.mode.value}


@dataclass(frozen=True)
class Permission:
    """One permission verb with its constraints (all must hold)."""

    type: PermissionType
    constraints: Tuple = ()

    def describe(self) -> dict:
        """Canonical-encodable representation."""
        return {
            "permission": self.type.value,
            "constraints": [c.describe() for c in self.constraints],
        }


@dataclass(frozen=True)
class Rights:
    """The full grant of an RO: a set of permissions."""

    permissions: Tuple[Permission, ...]

    def to_bytes(self) -> bytes:
        """Canonical bytes (covered by the RO's MAC and signature)."""
        return serialize.encode(
            [p.describe() for p in self.permissions]
        )

    def find(self, permission_type: PermissionType) -> Permission:
        """The permission granting ``permission_type``; raises if absent."""
        for permission in self.permissions:
            if permission.type == permission_type:
                return permission
        raise PermissionDeniedError(
            "rights grant no %r permission" % permission_type.value
        )


def unlimited(permission_type: PermissionType = PermissionType.PLAY
              ) -> Rights:
    """Rights granting one unconstrained permission."""
    return Rights(permissions=(Permission(permission_type),))


def play_count(count: int) -> Rights:
    """Rights granting PLAY at most ``count`` times."""
    return Rights(permissions=(
        Permission(PermissionType.PLAY, (CountConstraint(count),)),
    ))


@dataclass
class RightsState:
    """Mutable per-RO constraint state, kept in device storage."""

    remaining_counts: Dict[PermissionType, int] = field(default_factory=dict)
    first_use: Dict[PermissionType, int] = field(default_factory=dict)

    def snapshot(self) -> "RightsState":
        """A defensive copy (e.g. for pre-flight evaluation)."""
        return RightsState(dict(self.remaining_counts),
                           dict(self.first_use))


class RightsEvaluator:
    """Evaluates and consumes permissions against a state and a clock."""

    def __init__(self, rights: Rights) -> None:
        self.rights = rights

    def initial_state(self) -> RightsState:
        """State a fresh installation starts with."""
        state = RightsState()
        for permission in self.rights.permissions:
            for constraint in permission.constraints:
                if isinstance(constraint, CountConstraint):
                    state.remaining_counts[permission.type] = \
                        constraint.count
        return state

    def check(self, permission_type: PermissionType, state: RightsState,
              now: int) -> Permission:
        """Verify ``permission_type`` is currently allowed.

        Raises :class:`PermissionDeniedError` with a reason otherwise.
        """
        permission = self.rights.find(permission_type)
        for constraint in permission.constraints:
            self._check_constraint(constraint, permission_type, state, now)
        return permission

    @staticmethod
    def _check_constraint(constraint, permission_type: PermissionType,
                          state: RightsState, now: int) -> None:
        if isinstance(constraint, CountConstraint):
            remaining = state.remaining_counts.get(permission_type, 0)
            if remaining <= 0:
                raise PermissionDeniedError(
                    "count constraint exhausted for %r"
                    % permission_type.value
                )
        elif isinstance(constraint, DatetimeConstraint):
            if constraint.not_before is not None \
                    and now < constraint.not_before:
                raise PermissionDeniedError("rights not yet valid")
            if constraint.not_after is not None \
                    and now > constraint.not_after:
                raise PermissionDeniedError("rights have expired")
        elif isinstance(constraint, IntervalConstraint):
            started = state.first_use.get(permission_type)
            if started is not None \
                    and now > started + constraint.duration:
                raise PermissionDeniedError(
                    "interval constraint expired for %r"
                    % permission_type.value
                )
        elif isinstance(constraint, ExportConstraint):
            pass  # target checks happen at export time (needs the target)
        else:
            raise PermissionDeniedError(
                "unknown constraint type %r" % type(constraint).__name__
            )

    def consume(self, permission_type: PermissionType, state: RightsState,
                now: int) -> None:
        """Check and then commit one use (decrement counts, set first-use)."""
        self.check(permission_type, state, now)
        if permission_type in state.remaining_counts:
            state.remaining_counts[permission_type] -= 1
        state.first_use.setdefault(permission_type, now)


def constraint_from_dict(data: dict):
    """Rebuild one constraint from its :meth:`describe` form."""
    kind = data.get("type")
    if kind == "count":
        return CountConstraint(count=int(data["count"]))
    if kind == "datetime":
        return DatetimeConstraint(not_before=data.get("not_before"),
                                  not_after=data.get("not_after"))
    if kind == "interval":
        return IntervalConstraint(duration=int(data["duration"]))
    if kind == "export":
        return ExportConstraint(
            target_systems=tuple(data["targets"]),
            mode=ExportMode(data["mode"]),
        )
    raise ValueError("unknown constraint type %r" % (kind,))


def permission_from_dict(data: dict) -> Permission:
    """Rebuild one permission from its :meth:`describe` form."""
    return Permission(
        type=PermissionType(data["permission"]),
        constraints=tuple(constraint_from_dict(c)
                          for c in data["constraints"]),
    )


def rights_from_bytes(blob: bytes) -> Rights:
    """Inverse of :meth:`Rights.to_bytes` (wire decoding)."""
    described = serialize.decode(blob)
    if not isinstance(described, list):
        raise WireDecodeError("rights blob does not decode to a list")
    return Rights(permissions=tuple(
        permission_from_dict(p) for p in described
    ))


def export_rights(targets: Tuple[str, ...],
                  mode: ExportMode = ExportMode.COPY,
                  play_permission: bool = True) -> Rights:
    """Rights granting EXPORT to ``targets`` (plus PLAY by default)."""
    permissions = []
    if play_permission:
        permissions.append(Permission(PermissionType.PLAY))
    permissions.append(Permission(
        PermissionType.EXPORT, (ExportConstraint(targets, mode),)))
    return Rights(permissions=tuple(permissions))


#: Constraint classes exported for isinstance checks and construction.
CONSTRAINT_TYPES = (CountConstraint, DatetimeConstraint,
                    IntervalConstraint, ExportConstraint)
