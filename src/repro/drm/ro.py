"""Rights Objects: the license structure and its protected forms.

A Rights Object (RO) couples usage rights with the key chain of paper
Figure 2:

* each protected content item appears as an :class:`Asset`: its content
  ID, the DCF hash that binds rights to content, and ``K_CEK`` wrapped
  under ``K_REK`` — the paper's §2.4.2: the RO "contains a list of
  Content Object IDs and their respective usage permissions". The
  two-layer encryption decouples content from rights, so the RI can mint
  many licenses for one DCF without re-encrypting it;
* ``K_MAC ‖ K_REK`` travel inside ``C = C1 ‖ C2`` — for a Device RO
  encapsulated to the DRM Agent's public key via the Figure 3 KEM chain,
  for a Domain RO wrapped under the shared symmetric domain key;
* the RO's integrity and authenticity are protected by an HMAC-SHA1 MAC
  under ``K_MAC``.

After installation, the device re-wraps ``K_MAC ‖ K_REK`` under its own
``K_DEV`` into ``C2dev`` (paper §2.4.3): the PKI algorithm's purpose —
letting two strangers share a secret — is no longer needed once the RO is
bound to this device, so a cheap symmetric wrap replaces it.
"""

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..crypto.kem import KemCiphertext
from . import serialize
from .errors import UnknownContentError
from .rel import Rights, RightsState

#: Lengths of the RO protection keys (128-bit AES / HMAC keys).
KEY_LENGTH = 16


@dataclass(frozen=True)
class Asset:
    """One protected content item inside a Rights Object."""

    content_id: str
    dcf_hash: bytes
    wrapped_kcek: bytes

    def describe(self) -> dict:
        """Canonical-encodable representation."""
        return {
            "content_id": self.content_id,
            "dcf_hash": self.dcf_hash,
            "wrapped_kcek": self.wrapped_kcek,
        }


@dataclass(frozen=True)
class RightsObject:
    """The MAC-protected license payload.

    ``wrapped_kcek`` stays under ``K_REK`` even after installation
    (paper §2.4.3: there may be several ROs per DCF, so the agent tracks
    the association anyway). The convenience accessors ``content_id``,
    ``dcf_hash`` and ``wrapped_kcek`` refer to the first asset — the
    common single-content case.
    """

    ro_id: str
    rights_issuer_id: str
    rights: Rights
    assets: Tuple[Asset, ...]
    issued_at: int
    domain_id: Optional[str] = None
    #: Fresh per mint; (ro_id, ro_nonce) is the replay-cache identity, so
    #: re-installing a stateful RO to reset its counts is detectable.
    ro_nonce: bytes = b""

    def __post_init__(self) -> None:
        if not self.assets:
            raise ValueError("a Rights Object covers at least one asset")

    @classmethod
    def single(cls, ro_id: str, content_id: str, rights_issuer_id: str,
               rights: Rights, dcf_hash: bytes, wrapped_kcek: bytes,
               issued_at: int, domain_id: Optional[str] = None,
               ro_nonce: bytes = b"") -> "RightsObject":
        """The common one-content license."""
        return cls(
            ro_id=ro_id, rights_issuer_id=rights_issuer_id,
            rights=rights,
            assets=(Asset(content_id, dcf_hash, wrapped_kcek),),
            issued_at=issued_at, domain_id=domain_id, ro_nonce=ro_nonce,
        )

    # -- single-asset convenience accessors ---------------------------------
    @property
    def content_id(self) -> str:
        """Content ID of the first asset."""
        return self.assets[0].content_id

    @property
    def dcf_hash(self) -> bytes:
        """DCF hash of the first asset."""
        return self.assets[0].dcf_hash

    @property
    def wrapped_kcek(self) -> bytes:
        """Wrapped K_CEK of the first asset."""
        return self.assets[0].wrapped_kcek

    # -- multi-asset interface ------------------------------------------------
    def covers(self, content_id: str) -> bool:
        """Whether this license grants rights over ``content_id``."""
        return any(a.content_id == content_id for a in self.assets)

    def asset_for(self, content_id: str) -> Asset:
        """The asset entry for ``content_id``; raises if not covered."""
        for asset in self.assets:
            if asset.content_id == content_id:
                return asset
        raise UnknownContentError(
            "Rights Object %r does not cover %r"
            % (self.ro_id, content_id)
        )

    def payload_bytes(self) -> bytes:
        """Canonical bytes covered by the MAC (and the RO signature)."""
        return serialize.encode({
            "ro_id": self.ro_id,
            "rights_issuer_id": self.rights_issuer_id,
            "rights": self.rights.to_bytes(),
            "assets": [a.describe() for a in self.assets],
            "issued_at": self.issued_at,
            "domain_id": self.domain_id,
            "ro_nonce": self.ro_nonce,
        })

    @property
    def guid(self) -> tuple:
        """The replay-cache identity of this specific minted RO."""
        return (self.ro_id, self.ro_nonce)

    @property
    def is_domain_ro(self) -> bool:
        """Whether this license targets a domain rather than one device."""
        return self.domain_id is not None


@dataclass(frozen=True)
class ProtectedRightsObject:
    """A Rights Object as delivered inside the ROResponse.

    Exactly one of ``kem_ciphertext`` (Device RO — Figure 3's ``C``) and
    ``domain_wrapped_keys`` (Domain RO — ``K_MAC‖K_REK`` AES-wrapped under
    the domain key) is set. ``signature`` is the RI's signature over the
    RO payload: mandatory for Domain ROs, optional for Device ROs
    (paper §2.4.3).
    """

    ro: RightsObject
    mac: bytes
    kem_ciphertext: Optional[KemCiphertext] = None
    domain_wrapped_keys: Optional[bytes] = None
    signature: Optional[bytes] = None

    def __post_init__(self) -> None:
        has_kem = self.kem_ciphertext is not None
        has_domain = self.domain_wrapped_keys is not None
        if has_kem == has_domain:
            raise ValueError(
                "a protected RO carries either a KEM ciphertext (device) "
                "or domain-wrapped keys, never both or neither"
            )
        if self.ro.is_domain_ro and self.signature is None:
            raise ValueError("Domain ROs must be signed (OMA DRM 2)")

    def to_bytes(self) -> bytes:
        """Canonical transport bytes (what the ROResponse carries)."""
        kem_blob = (self.kem_ciphertext.concatenation()
                    if self.kem_ciphertext is not None else None)
        return serialize.encode({
            "ro": self.ro.payload_bytes(),
            "mac": self.mac,
            "kem": kem_blob,
            "domain_wrapped": self.domain_wrapped_keys,
            "signature": self.signature,
        })


@dataclass
class InstalledRightsObject:
    """A Rights Object at rest on the device after installation.

    ``c2dev`` holds ``K_MAC ‖ K_REK`` wrapped under the device key, so the
    whole record can live in ordinary (insecure) storage; ``state`` is the
    mutable constraint state (remaining counts, first-use times).

    When the agent's K_DEV optimization is disabled (the ablation
    counterfactual the paper argues against), ``c2dev`` is None and
    ``kem_ciphertext`` retains the original PKI-protected ``C`` instead —
    forcing an RSA private-key operation on every access.
    """

    ro: RightsObject
    c2dev: Optional[bytes]
    mac: bytes
    kem_ciphertext: Optional[KemCiphertext] = None
    state: RightsState = field(default_factory=RightsState)

    def __post_init__(self) -> None:
        if (self.c2dev is None) == (self.kem_ciphertext is None):
            raise ValueError(
                "an installed RO keeps either C2dev (K_DEV optimization) "
                "or the original KEM ciphertext, exactly one of the two"
            )

    @property
    def ro_id(self) -> str:
        """Convenience accessor for indexing by RO identifier."""
        return self.ro.ro_id

    @property
    def content_id(self) -> str:
        """Content ID of the first asset."""
        return self.ro.content_id

    def covers(self, content_id: str) -> bool:
        """Whether this installed license covers ``content_id``."""
        return self.ro.covers(content_id)
