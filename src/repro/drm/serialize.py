"""Canonical byte serialization for DRM objects and ROAP messages.

OMA DRM 2 signs and MACs XML structures (with X.509 certificates in ASN.1).
The paper's model explicitly excludes XML-parsing overhead from its cost
accounting, so this reproduction replaces the wire syntax with a compact
canonical encoding that keeps what the cost model *does* depend on: every
signed/hashed object is a concrete, deterministic byte string of realistic
size.

The encoding is a typed netstring format:

* ``s<len>:<utf-8 bytes>`` — string
* ``b<len>:<raw bytes>`` — bytes
* ``i<len>:<decimal>`` — integer
* ``n0:`` — None
* ``t1:0|1`` — bool
* ``l<len>:<concatenated items>`` — list/tuple
* ``d<len>:<key item pairs, sorted by key>`` — mapping

Mappings serialize with sorted keys, so two structurally equal objects
always produce identical bytes — the property signatures and MACs need.

Decoding is hardened against hostile input: a blob arriving off a lossy
or adversarial bearer may be truncated, bit-flipped, over-length or
arbitrarily garbled, and every such failure raises the single typed
:class:`~repro.drm.errors.WireDecodeError` — never a bare ``IndexError``,
``KeyError`` or ``UnicodeDecodeError`` that would leak decoder internals
into protocol logic.
"""

from typing import Any

from .errors import WireDecodeError

#: Maximum nesting depth accepted by the decoder — deeper input is
#: hostile (no DRM object nests beyond a handful of levels) and would
#: otherwise turn a small blob into deep recursion.
MAX_DEPTH = 32


def _frame(tag: str, payload: bytes) -> bytes:
    return tag.encode("ascii") + str(len(payload)).encode("ascii") \
        + b":" + payload


def encode(value: Any) -> bytes:
    """Canonically encode ``value`` (str/bytes/int/bool/None/list/dict)."""
    # bool must precede int: bool is an int subclass.
    if isinstance(value, bool):
        return _frame("t", b"1" if value else b"0")
    if isinstance(value, str):
        return _frame("s", value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray)):
        return _frame("b", bytes(value))
    if isinstance(value, int):
        return _frame("i", str(value).encode("ascii"))
    if value is None:
        return _frame("n", b"")
    if isinstance(value, (list, tuple)):
        payload = b"".join(encode(item) for item in value)
        return _frame("l", payload)
    if isinstance(value, dict):
        parts = []
        for key in sorted(value):
            if not isinstance(key, str):
                raise TypeError("canonical mappings require string keys")
            parts.append(encode(key))
            parts.append(encode(value[key]))
        return _frame("d", b"".join(parts))
    raise TypeError("cannot canonically encode %r" % type(value).__name__)


class _Reader:
    """Sequential decoder over one canonical byte string."""

    def __init__(self, data: bytes, depth: int = 0) -> None:
        self._data = data
        self._pos = 0
        self._depth = depth

    def at_end(self) -> bool:
        return self._pos >= len(self._data)

    def read_value(self) -> Any:
        tag, payload = self._read_frame()
        if tag == "s":
            try:
                return payload.decode("utf-8")
            except UnicodeDecodeError:
                raise WireDecodeError(
                    "invalid UTF-8 in canonical string") from None
        if tag == "b":
            return payload
        if tag == "i":
            try:
                return int(payload.decode("ascii"))
            except (UnicodeDecodeError, ValueError):
                raise WireDecodeError(
                    "malformed canonical integer") from None
        if tag == "n":
            if payload:
                raise WireDecodeError("non-empty None payload")
            return None
        if tag == "t":
            if payload not in (b"0", b"1"):
                raise WireDecodeError("malformed canonical bool")
            return payload == b"1"
        if tag == "l":
            return self._read_items(payload)
        if tag == "d":
            items = self._read_items(payload)
            if len(items) % 2:
                raise WireDecodeError(
                    "dangling key in canonical mapping")
            keys = items[::2]
            if any(not isinstance(key, str) for key in keys):
                raise WireDecodeError(
                    "canonical mapping key is not a string")
            return dict(zip(keys, items[1::2]))
        raise WireDecodeError("unknown canonical tag %r" % tag)

    def _read_frame(self) -> tuple:
        data = self._data
        if self._pos >= len(data):
            raise WireDecodeError("truncated canonical value")
        tag = chr(data[self._pos])
        self._pos += 1
        colon = data.find(b":", self._pos)
        if colon < 0:
            raise WireDecodeError("missing length separator")
        digits = data[self._pos:colon]
        # isdigit() accepts only ASCII digits on bytes, so this rejects
        # empty, signed, non-ASCII and fractional lengths in one check.
        if not digits.isdigit():
            raise WireDecodeError("malformed canonical length")
        length = int(digits)
        start = colon + 1
        end = start + length
        if end > len(data):
            raise WireDecodeError("truncated canonical payload")
        self._pos = end
        return tag, data[start:end]

    def _read_items(self, payload: bytes) -> list:
        if self._depth >= MAX_DEPTH:
            raise WireDecodeError("canonical value nests too deeply")
        reader = _Reader(payload, depth=self._depth + 1)
        items = []
        while not reader.at_end():
            items.append(reader.read_value())
        return items


def decode(data: bytes) -> Any:
    """Decode one canonical value; rejects trailing garbage.

    Raises :class:`~repro.drm.errors.WireDecodeError` for any malformed
    input, including inputs that are not byte strings at all.
    """
    if not isinstance(data, (bytes, bytearray)):
        raise WireDecodeError(
            "canonical decoding requires bytes, got %r"
            % type(data).__name__)
    reader = _Reader(bytes(data))
    value = reader.read_value()
    if not reader.at_end():
        raise WireDecodeError("trailing bytes after canonical value")
    return value
