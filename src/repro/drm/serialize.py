"""Canonical byte serialization for DRM objects and ROAP messages.

OMA DRM 2 signs and MACs XML structures (with X.509 certificates in ASN.1).
The paper's model explicitly excludes XML-parsing overhead from its cost
accounting, so this reproduction replaces the wire syntax with a compact
canonical encoding that keeps what the cost model *does* depend on: every
signed/hashed object is a concrete, deterministic byte string of realistic
size.

The encoding is a typed netstring format:

* ``s<len>:<utf-8 bytes>`` — string
* ``b<len>:<raw bytes>`` — bytes
* ``i<len>:<decimal>`` — integer
* ``n0:`` — None
* ``t1:0|1`` — bool
* ``l<len>:<concatenated items>`` — list/tuple
* ``d<len>:<key item pairs, sorted by key>`` — mapping

Mappings serialize with sorted keys, so two structurally equal objects
always produce identical bytes — the property signatures and MACs need.
"""

from typing import Any


def _frame(tag: str, payload: bytes) -> bytes:
    return tag.encode("ascii") + str(len(payload)).encode("ascii") \
        + b":" + payload


def encode(value: Any) -> bytes:
    """Canonically encode ``value`` (str/bytes/int/bool/None/list/dict)."""
    # bool must precede int: bool is an int subclass.
    if isinstance(value, bool):
        return _frame("t", b"1" if value else b"0")
    if isinstance(value, str):
        return _frame("s", value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray)):
        return _frame("b", bytes(value))
    if isinstance(value, int):
        return _frame("i", str(value).encode("ascii"))
    if value is None:
        return _frame("n", b"")
    if isinstance(value, (list, tuple)):
        payload = b"".join(encode(item) for item in value)
        return _frame("l", payload)
    if isinstance(value, dict):
        parts = []
        for key in sorted(value):
            if not isinstance(key, str):
                raise TypeError("canonical mappings require string keys")
            parts.append(encode(key))
            parts.append(encode(value[key]))
        return _frame("d", b"".join(parts))
    raise TypeError("cannot canonically encode %r" % type(value).__name__)


class _Reader:
    """Sequential decoder over one canonical byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def at_end(self) -> bool:
        return self._pos >= len(self._data)

    def read_value(self) -> Any:
        tag, payload = self._read_frame()
        if tag == "s":
            return payload.decode("utf-8")
        if tag == "b":
            return payload
        if tag == "i":
            return int(payload.decode("ascii"))
        if tag == "n":
            return None
        if tag == "t":
            return payload == b"1"
        if tag == "l":
            return self._read_items(payload)
        if tag == "d":
            items = self._read_items(payload)
            if len(items) % 2:
                raise ValueError("dangling key in canonical mapping")
            return dict(zip(items[::2], items[1::2]))
        raise ValueError("unknown canonical tag %r" % tag)

    def _read_frame(self) -> tuple:
        data = self._data
        if self._pos >= len(data):
            raise ValueError("truncated canonical value")
        tag = chr(data[self._pos])
        self._pos += 1
        colon = data.find(b":", self._pos)
        if colon < 0:
            raise ValueError("missing length separator")
        length = int(data[self._pos:colon].decode("ascii"))
        start = colon + 1
        end = start + length
        if end > len(data):
            raise ValueError("truncated canonical payload")
        self._pos = end
        return tag, data[start:end]

    @staticmethod
    def _read_items(payload: bytes) -> list:
        reader = _Reader(payload)
        items = []
        while not reader.at_end():
            items.append(reader.read_value())
        return items


def decode(data: bytes) -> Any:
    """Decode one canonical value; rejects trailing garbage."""
    reader = _Reader(data)
    value = reader.read_value()
    if not reader.at_end():
        raise ValueError("trailing bytes after canonical value")
    return value
