"""The OMA DRM 2 system model: actors, objects and the ROAP protocol.

* :mod:`~repro.drm.certificates` / :mod:`~repro.drm.ocsp` — the PKI
  substrate (CA, certificates, OCSP responder)
* :mod:`~repro.drm.dcf` — the DRM Content Format container
* :mod:`~repro.drm.rel` / :mod:`~repro.drm.ro` — rights expressions and
  Rights Objects (protected and installed forms)
* :mod:`~repro.drm.roap` — the Rights Object Acquisition Protocol messages
* :mod:`~repro.drm.agent` — the DRM Agent (the terminal; the metered side)
* :mod:`~repro.drm.rights_issuer` / :mod:`~repro.drm.content_issuer` —
  the server-side actors
* :mod:`~repro.drm.domain` — shared-license device domains
* :mod:`~repro.drm.storage` — the device's secure/ordinary storage split
* :mod:`~repro.drm.session` — resilient session layer: retries, backoff
  and terminal outcomes over an unreliable bearer
"""

from .agent import ConsumptionResult, DRMAgent, ExportResult
from .backup import RestoreReport, backup_ros, is_stateful, restore_ros
from .certificates import (Certificate, CertificationAuthority,
                           verify_certificate)
from .clock import DAY, SimulationClock, YEAR
from .content_issuer import ContentIssuer, LicenseGrant
from .dcf import DCF, ENCRYPTION_METHOD, package_content
from .domain import Domain, DomainManager
from .errors import (AcquisitionError, CertificateExpiredError,
                     CertificateRevokedError, ChannelError,
                     ChannelTimeoutError, ContextExpiredError,
                     DomainError, DRMError, InstallationError,
                     IntegrityError, NonceMismatchError,
                     NotRegisteredError, PermissionDeniedError,
                     RegistrationError, RoapStatusError, TrustError,
                     UnknownContentError, WireDecodeError)
from .identifiers import (DEFAULT_ALGORITHMS, ROAP_VERSION, content_id,
                          device_id, domain_id, rights_issuer_id,
                          rights_object_id)
from .ocsp import CertStatus, OCSPResponder, OCSPResponse, \
    verify_ocsp_response
from .rel import (CountConstraint, DatetimeConstraint, IntervalConstraint,
                  Permission, PermissionType, Rights, RightsEvaluator,
                  RightsState, play_count, unlimited)
from .rights_issuer import LicenseOffer, RIDeviceContext, RightsIssuer
from .roap.triggers import RoapTrigger, TriggerType
from .session import (Outcome, RetryPolicy, RoapSession, SessionOutcome,
                      SessionState)
from .ro import (Asset, InstalledRightsObject, ProtectedRightsObject,
                 RightsObject)
from .storage import (DeviceStorage, DomainContext, RIContext,
                      SecureStorage)

__all__ = [
    "ConsumptionResult", "DRMAgent", "ExportResult", "RestoreReport",
    "backup_ros", "is_stateful", "restore_ros", "Certificate",
    "CertificationAuthority", "verify_certificate", "DAY",
    "SimulationClock", "YEAR", "ContentIssuer", "LicenseGrant", "DCF",
    "ENCRYPTION_METHOD", "package_content", "Domain", "DomainManager",
    "AcquisitionError", "CertificateExpiredError",
    "CertificateRevokedError", "ChannelError", "ChannelTimeoutError",
    "ContextExpiredError", "DomainError", "DRMError",
    "InstallationError", "IntegrityError", "NonceMismatchError",
    "NotRegisteredError", "PermissionDeniedError", "RegistrationError",
    "RoapStatusError", "TrustError", "UnknownContentError",
    "WireDecodeError", "DEFAULT_ALGORITHMS",
    "ROAP_VERSION", "content_id", "device_id", "domain_id",
    "rights_issuer_id", "rights_object_id", "CertStatus", "OCSPResponder",
    "OCSPResponse", "verify_ocsp_response", "CountConstraint",
    "DatetimeConstraint", "IntervalConstraint", "Permission",
    "PermissionType", "Rights", "RightsEvaluator", "RightsState",
    "play_count", "unlimited", "LicenseOffer", "RIDeviceContext",
    "RightsIssuer",
    "Outcome", "RetryPolicy", "RoapSession", "SessionOutcome",
    "SessionState",
    "Asset", "InstalledRightsObject", "ProtectedRightsObject",
    "RightsObject", "RoapTrigger", "TriggerType",
    "DeviceStorage", "DomainContext", "RIContext", "SecureStorage",
]
