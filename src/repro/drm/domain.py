"""Domain management on the Rights Issuer side.

A domain lets a group of devices share licenses (paper §2.3): during the
domain-join registration the RI uses the PKI mechanism to deliver a secret
symmetric domain key to each trusted member device. Any member can then
unwrap ``K_REK`` of any Domain RO acquired by any member — including
"Unconnected Devices" such as portable mp3 players that never talk to the
RI directly.
"""

from dataclasses import dataclass, field
from typing import Dict, Set

from .errors import DomainError

#: Domain keys are 128-bit AES keys.
DOMAIN_KEY_LENGTH = 16


@dataclass
class Domain:
    """One domain: its shared key and member roster."""

    domain_id: str
    key: bytes
    members: Set[str] = field(default_factory=set)
    max_members: int = 10

    def add_member(self, device_id: str) -> None:
        """Enroll a device; enforces the domain size policy."""
        if len(self.members) >= self.max_members \
                and device_id not in self.members:
            raise DomainError(
                "domain %r is full (%d members)"
                % (self.domain_id, self.max_members)
            )
        self.members.add(device_id)

    def remove_member(self, device_id: str) -> None:
        """Drop a device from the roster (LeaveDomain)."""
        self.members.discard(device_id)


class DomainManager:
    """Creates domains and tracks membership for one Rights Issuer."""

    def __init__(self, crypto) -> None:
        self._crypto = crypto
        self._domains: Dict[str, Domain] = {}

    def create(self, domain_id: str, max_members: int = 10) -> Domain:
        """Create a domain with a fresh random key."""
        if domain_id in self._domains:
            raise DomainError("domain %r already exists" % domain_id)
        domain = Domain(
            domain_id=domain_id,
            key=self._crypto.random_bytes(DOMAIN_KEY_LENGTH),
            max_members=max_members,
        )
        self._domains[domain_id] = domain
        return domain

    def get(self, domain_id: str) -> Domain:
        """Look up a domain; raises :class:`DomainError` if unknown."""
        try:
            return self._domains[domain_id]
        except KeyError:
            raise DomainError("unknown domain %r" % domain_id) from None

    def join(self, domain_id: str, device_id: str) -> Domain:
        """Enroll ``device_id`` and return the domain (key included)."""
        domain = self.get(domain_id)
        domain.add_member(device_id)
        return domain

    def leave(self, domain_id: str, device_id: str) -> None:
        """Remove ``device_id`` from the domain."""
        self.get(domain_id).remove_member(device_id)

    def is_member(self, domain_id: str, device_id: str) -> bool:
        """Whether ``device_id`` belongs to ``domain_id``."""
        domain = self._domains.get(domain_id)
        return domain is not None and device_id in domain.members
