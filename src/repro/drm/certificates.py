"""PKI certificates and the Certification Authority.

Trust in OMA DRM 2 is rooted in PKI certificates issued by a Certification
Authority (the paper names CMLA, the first CA for OMA DRM, founded in
February 2004). A valid certificate asserts that its subject — DRM Agent or
Rights Issuer — adheres to the CA's compliance and robustness rules.

Certificates here are canonical-encoded structures signed with RSASSA-PSS
(the standard's mandated signature scheme) instead of ASN.1/X.509 — see
``DESIGN.md`` for why this substitution preserves the measured behaviour.
"""

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from ..crypto.errors import SignatureError
from ..crypto.rsa import RSAPrivateKey, RSAPublicKey
from . import serialize
from .clock import YEAR
from .errors import (CertificateExpiredError, CertificateRevokedError,
                     TrustError)


@dataclass(frozen=True)
class Certificate:
    """A signed binding of a subject name to an RSA public key."""

    serial: int
    subject: str
    issuer: str
    public_key: RSAPublicKey
    not_before: int
    not_after: int
    is_ca: bool
    signature: bytes

    def tbs_bytes(self) -> bytes:
        """The to-be-signed portion, canonically encoded."""
        return serialize.encode({
            "serial": self.serial,
            "subject": self.subject,
            "issuer": self.issuer,
            "public_key_n": self.public_key.n,
            "public_key_e": self.public_key.e,
            "not_before": self.not_before,
            "not_after": self.not_after,
            "is_ca": self.is_ca,
        })

    def to_bytes(self) -> bytes:
        """The full certificate (TBS + signature) for transport/hashing."""
        return serialize.encode({
            "tbs": self.tbs_bytes(),
            "signature": self.signature,
        })

    def check_window(self, now: int) -> None:
        """Raise if ``now`` is outside the validity window."""
        if now < self.not_before or now > self.not_after:
            raise CertificateExpiredError(
                "certificate %d for %r valid [%d, %d], checked at %d"
                % (self.serial, self.subject, self.not_before,
                   self.not_after, now)
            )


class CertificationAuthority:
    """Issues and revokes certificates; owns the trust-anchor key.

    The CA signs with its own (self-signed) root certificate. Revocation
    state lives here and is consulted by the OCSP responder — the standard
    leaves the CA's compliance/robustness rules to the business community,
    so the model only tracks the mechanics: issue, revoke, status.
    """

    def __init__(self, name: str, keypair: RSAPrivateKey, crypto,
                 now: int = 0) -> None:
        self.name = name
        self._keypair = keypair
        self._crypto = crypto
        self._next_serial = 1
        self._revoked: Dict[int, int] = {}
        self.root_certificate = self._issue_root(now)

    def _sign(self, tbs: bytes) -> bytes:
        return self._crypto.pss_sign(self._keypair, tbs)

    def _issue_root(self, now: int) -> Certificate:
        serial = self._next_serial
        self._next_serial += 1
        unsigned = Certificate(
            serial=serial, subject=self.name, issuer=self.name,
            public_key=self._keypair.public_key,
            not_before=now, not_after=now + 20 * YEAR,
            is_ca=True, signature=b"",
        )
        return Certificate(
            **{**unsigned.__dict__, "signature": self._sign(
                unsigned.tbs_bytes())}
        )

    @property
    def public_key(self) -> RSAPublicKey:
        """The trust-anchor public key."""
        return self._keypair.public_key

    def issue(self, subject: str, public_key: RSAPublicKey, now: int,
              validity_seconds: int = 5 * YEAR,
              is_ca: bool = False) -> Certificate:
        """Issue a certificate for ``subject`` binding ``public_key``."""
        serial = self._next_serial
        self._next_serial += 1
        unsigned = Certificate(
            serial=serial, subject=subject, issuer=self.name,
            public_key=public_key, not_before=now,
            not_after=now + validity_seconds, is_ca=is_ca, signature=b"",
        )
        return Certificate(
            **{**unsigned.__dict__, "signature": self._sign(
                unsigned.tbs_bytes())}
        )

    def revoke(self, serial: int, now: int) -> None:
        """Revoke the certificate with ``serial`` effective at ``now``."""
        self._revoked[serial] = now

    def is_revoked(self, serial: int) -> bool:
        """Whether ``serial`` has been revoked."""
        return serial in self._revoked

    def revocation_time(self, serial: int) -> Optional[int]:
        """When ``serial`` was revoked, or None."""
        return self._revoked.get(serial)


def certificate_from_bytes(blob: bytes) -> Certificate:
    """Inverse of :meth:`Certificate.to_bytes` (wire decoding)."""
    outer = serialize.decode(blob)
    tbs = serialize.decode(outer["tbs"])
    return Certificate(
        serial=int(tbs["serial"]),
        subject=tbs["subject"],
        issuer=tbs["issuer"],
        public_key=RSAPublicKey(n=int(tbs["public_key_n"]),
                                e=int(tbs["public_key_e"])),
        not_before=int(tbs["not_before"]),
        not_after=int(tbs["not_after"]),
        is_ca=bool(tbs["is_ca"]),
        signature=outer["signature"],
    )


def verify_certificate(certificate: Certificate,
                       trust_anchors: Iterable[Certificate],
                       now: int, crypto) -> None:
    """Validate ``certificate`` against a set of trust-anchor certificates.

    Checks the validity window and the issuer signature (one RSA public-key
    operation — the PKI verification the paper's registration phase
    counts). Raises a :class:`TrustError` subclass on failure. Revocation
    is checked separately via OCSP (:mod:`repro.drm.ocsp`).
    """
    certificate.check_window(now)
    anchors = {a.subject: a for a in trust_anchors}
    anchor = anchors.get(certificate.issuer)
    if anchor is None:
        raise TrustError(
            "no trust anchor for issuer %r" % certificate.issuer
        )
    anchor.check_window(now)
    try:
        crypto.pss_verify(anchor.public_key, certificate.tbs_bytes(),
                          certificate.signature)
    except SignatureError as exc:
        raise TrustError(
            "certificate %d signature invalid: %s"
            % (certificate.serial, exc)
        ) from exc


__all__ = [
    "Certificate", "CertificationAuthority", "verify_certificate",
    "CertificateExpiredError", "CertificateRevokedError",
]
