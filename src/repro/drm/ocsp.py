"""Online Certificate Status Protocol responder and responses (RFC 2560).

During ROAP registration the Rights Issuer obtains an OCSP response for its
own certificate and forwards it inside the RegistrationResponse; the DRM
Agent verifies the response signature and checks the status (paper
§2.4.1). The responder's certificate is issued by the CA, so the agent can
verify the response with its existing trust anchors.
"""

import enum
from dataclasses import dataclass

from ..crypto.errors import SignatureError
from . import serialize
from .certificates import Certificate, CertificationAuthority
from .clock import DAY
from .errors import CertificateRevokedError, TrustError, WireDecodeError

#: How far into the future a response's ``produced_at`` may lie before
#: the agent rejects it. Responder and terminal clocks are never exactly
#: aligned, so a small allowance is needed; anything beyond it means a
#: pre-signed response is being presented by a party that controls the
#: terminal's notion of time (the rolled-back-clock attack).
DEFAULT_FRESHNESS_TOLERANCE = 5 * 60


class CertStatus(enum.Enum):
    """RFC 2560 certificate status values."""

    GOOD = "good"
    REVOKED = "revoked"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class OCSPResponse:
    """A signed status assertion for one certificate serial."""

    serial: int
    status: CertStatus
    produced_at: int
    next_update: int
    responder: str
    signature: bytes

    def tbs_bytes(self) -> bytes:
        """The to-be-signed response data."""
        return serialize.encode({
            "serial": self.serial,
            "status": self.status.value,
            "produced_at": self.produced_at,
            "next_update": self.next_update,
            "responder": self.responder,
        })

    def to_bytes(self) -> bytes:
        """Full response bytes for transport."""
        return serialize.encode({
            "tbs": self.tbs_bytes(),
            "signature": self.signature,
        })


def ocsp_response_from_bytes(blob: bytes) -> OCSPResponse:
    """Inverse of :meth:`OCSPResponse.to_bytes` (wire decoding).

    Raises :class:`~repro.drm.errors.WireDecodeError` for any malformed
    input — missing fields, wrong types, unknown status strings — per
    the wire-layer contract (REP4xx): corrupted transport bytes surface
    as exactly one typed exception, never a raw ``KeyError``.
    """
    try:
        outer = serialize.decode(blob)
        tbs = serialize.decode(outer["tbs"])
        return OCSPResponse(
            serial=int(tbs["serial"]),
            status=CertStatus(tbs["status"]),
            produced_at=int(tbs["produced_at"]),
            next_update=int(tbs["next_update"]),
            responder=tbs["responder"],
            signature=outer["signature"],
        )
    except WireDecodeError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise WireDecodeError("malformed OCSP response") from exc


class OCSPResponder:
    """Signs certificate-status responses on behalf of a CA."""

    def __init__(self, name: str, ca: CertificationAuthority, keypair,
                 crypto, now: int = 0,
                 validity_seconds: int = 7 * DAY) -> None:
        self.name = name
        self._ca = ca
        self._keypair = keypair
        self._crypto = crypto
        self._validity = validity_seconds
        self.certificate = ca.issue(name, keypair.public_key, now)

    def respond(self, serial: int, now: int) -> OCSPResponse:
        """Produce a signed status response for ``serial`` at time ``now``."""
        status = (CertStatus.REVOKED if self._ca.is_revoked(serial)
                  else CertStatus.GOOD)
        unsigned = OCSPResponse(
            serial=serial, status=status, produced_at=now,
            next_update=now + self._validity, responder=self.name,
            signature=b"",
        )
        signature = self._crypto.pss_sign(self._keypair,
                                          unsigned.tbs_bytes())
        return OCSPResponse(
            **{**unsigned.__dict__, "signature": signature}
        )


def verify_ocsp_response(response: OCSPResponse, serial: int,
                         responder_certificate: Certificate,
                         now: int, crypto,
                         tolerance_seconds: int =
                         DEFAULT_FRESHNESS_TOLERANCE) -> None:
    """Verify an OCSP response: signature, serial, freshness, status.

    The signature check is one RSA public-key operation — the third PKI
    verification in the paper's registration-phase operation list. Raises
    :class:`TrustError` / :class:`CertificateRevokedError` on failure.

    Freshness is checked in both directions: a response past its
    ``next_update`` is stale, and one produced more than
    ``tolerance_seconds`` in the *future* is rejected too — otherwise a
    pre-signed response combined with a rolled-back terminal clock would
    verify indefinitely.
    """
    if response.serial != serial:
        raise TrustError(
            "OCSP response covers serial %d, expected %d"
            % (response.serial, serial)
        )
    if response.responder != responder_certificate.subject:
        raise TrustError("OCSP responder name does not match certificate")
    if now > response.next_update:
        raise TrustError("OCSP response is stale")
    if response.produced_at > now + tolerance_seconds:
        raise TrustError(
            "OCSP response is future-dated (produced_at %d, now %d, "
            "tolerance %d s)"
            % (response.produced_at, now, tolerance_seconds)
        )
    try:
        crypto.pss_verify(responder_certificate.public_key,
                          response.tbs_bytes(), response.signature)
    except SignatureError as exc:
        raise TrustError("OCSP response signature invalid") from exc
    if response.status is CertStatus.REVOKED:
        raise CertificateRevokedError(
            "certificate serial %d is revoked" % serial
        )
    if response.status is CertStatus.UNKNOWN:
        raise TrustError("OCSP status unknown for serial %d" % serial)
