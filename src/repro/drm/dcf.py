"""The DRM Content Format (DCF) — the protected-content container.

A DCF carries AES-128-CBC encrypted content alongside descriptive metadata
(author, title) and the RightsIssuerURL the user visits to obtain a
license (paper §2.2). Content confidentiality is guaranteed by never
storing the payload in clear — secure memory is scarce on a terminal, so
even small files like ringtones stay encrypted at rest, which is exactly
why every access pays the full decrypt + hash cost the paper models.

The Rights Object binds itself to the DCF by embedding a SHA-1 hash of the
whole DCF; :meth:`DCF.to_bytes` is the canonical form that hash covers.
"""

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from . import serialize

#: The encryption method every DCF in this model uses.
ENCRYPTION_METHOD = "AES_128_CBC"


@dataclass(frozen=True)
class DCF:
    """One protected content object."""

    content_id: str
    content_type: str
    encryption_method: str
    iv: bytes
    encrypted_data: bytes
    rights_issuer_url: str
    metadata: Dict[str, str] = field(default_factory=dict)

    def to_bytes(self) -> bytes:
        """Canonical byte form — what the RO's DCF hash covers."""
        return serialize.encode({
            "content_id": self.content_id,
            "content_type": self.content_type,
            "encryption_method": self.encryption_method,
            "iv": self.iv,
            "encrypted_data": self.encrypted_data,
            "rights_issuer_url": self.rights_issuer_url,
            "metadata": dict(self.metadata),
        })

    @property
    def payload_octets(self) -> int:
        """Size of the encrypted payload (drives the consumption cost)."""
        return len(self.encrypted_data)

    def with_tampered_payload(self) -> "DCF":
        """A copy with one payload bit flipped — for integrity tests."""
        corrupted = bytearray(self.encrypted_data)
        corrupted[len(corrupted) // 2] ^= 0x01
        return DCF(
            content_id=self.content_id,
            content_type=self.content_type,
            encryption_method=self.encryption_method,
            iv=self.iv,
            encrypted_data=bytes(corrupted),
            rights_issuer_url=self.rights_issuer_url,
            metadata=dict(self.metadata),
        )


@dataclass(frozen=True)
class PreviewContainer:
    """An unprotected preview inside a DCF.

    The DCF format lets the Content Issuer embed a rights-free preview
    (a low-quality clip or a few seconds of audio) alongside the
    protected payload, so the user can sample content before visiting
    the RightsIssuerURL. Previews are stored in clear — they cost the
    terminal no cryptographic work, which is why they never appear in
    the cost trace.
    """

    content_type: str
    data: bytes

    def describe(self) -> dict:
        """Canonical-encodable representation."""
        return {"content_type": self.content_type, "data": self.data}


@dataclass(frozen=True)
class MultipartDCF:
    """A DCF file carrying several content objects (paper §2.2:
    "one or more containers").

    Each container is a complete :class:`DCF`; an optional preview
    container is accessible without any Rights Object.
    """

    containers: Tuple[DCF, ...]
    preview: Optional[PreviewContainer] = None

    def __post_init__(self) -> None:
        if not self.containers:
            raise ValueError("a multipart DCF holds at least one container")
        ids = [c.content_id for c in self.containers]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate content ids in multipart DCF")

    def to_bytes(self) -> bytes:
        """Canonical byte form of the whole multipart file."""
        return serialize.encode({
            "containers": [c.to_bytes() for c in self.containers],
            "preview": (self.preview.describe()
                        if self.preview is not None else None),
        })

    def container(self, content_id: str) -> DCF:
        """The container holding ``content_id``; raises KeyError."""
        for candidate in self.containers:
            if candidate.content_id == content_id:
                return candidate
        raise KeyError("no container for %r" % content_id)

    @property
    def content_ids(self) -> Tuple[str, ...]:
        """IDs of all protected content objects, in file order."""
        return tuple(c.content_id for c in self.containers)


def package_content(content_id: str, content_type: str, clear_content: bytes,
                    kcek: bytes, rights_issuer_url: str, crypto,
                    metadata: Dict[str, str] = None) -> DCF:
    """Encrypt ``clear_content`` under ``kcek`` into a DCF.

    This is the Content Issuer's packaging step; the paper's cost model
    never charges it to the terminal, so callers on the CI side use an
    un-metered provider.
    """
    iv = crypto.random_bytes(16)
    encrypted = crypto.aes_cbc_encrypt(kcek, iv, clear_content)
    return DCF(
        content_id=content_id,
        content_type=content_type,
        encryption_method=ENCRYPTION_METHOD,
        iv=iv,
        encrypted_data=encrypted,
        rights_issuer_url=rights_issuer_url,
        metadata=dict(metadata or {}),
    )
