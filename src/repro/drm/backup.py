"""Rights Object backup and restore.

OMA DRM 2 permits backing up Rights Objects to removable media or a PC:
the stored form is useless elsewhere (all keys ride inside ``C2dev``,
wrapped under the device-bound ``K_DEV``), so confidentiality is free.
The subtle rule is about *state*: restoring a stateful RO (count or
interval constraints) would roll its consumption state back — the same
attack the replay cache blocks at installation — so the standard allows
restore for **stateless** ROs only.

The backup blob is integrity-protected with HMAC-SHA1 under ``K_DEV``:
a tampered or foreign backup is rejected before anything is restored.
"""

from dataclasses import dataclass
from typing import List, Tuple

from .errors import IntegrityError
from .rel import (CountConstraint, IntervalConstraint, Rights,
                  RightsState)
from .ro import InstalledRightsObject
from .roap.wire import rights_object_from_payload
from . import serialize


def is_stateful(rights: Rights) -> bool:
    """Whether a rights grant carries consumable state."""
    for permission in rights.permissions:
        for constraint in permission.constraints:
            if isinstance(constraint, (CountConstraint,
                                       IntervalConstraint)):
                return True
    return False


@dataclass
class RestoreReport:
    """Outcome of one restore operation."""

    restored: List[str]
    skipped_stateful: List[str]
    already_present: List[str]


def backup_ros(agent) -> bytes:
    """Serialize every installed RO into a device-bound backup blob."""
    records = []
    for installed in agent.storage.installed_ros.values():
        records.append({
            "ro_payload": installed.ro.payload_bytes(),
            "c2dev": installed.c2dev,
            "mac": installed.mac,
        })
    body = serialize.encode({"version": 1, "records": records})
    tag = agent.crypto.hmac_sha1(agent.secure.kdev, body,
                                 label="backup-mac")
    return serialize.encode({"body": body, "tag": tag})


def restore_ros(agent, blob: bytes) -> RestoreReport:
    """Restore ROs from a backup blob made by this device.

    Verifies the device-bound MAC, then restores stateless ROs that are
    not currently installed. Stateful ROs are reported but never
    restored (state-rollback defense); ROs still present are left
    untouched.
    """
    outer = serialize.decode(blob)
    body, tag = outer["body"], outer["tag"]
    if not agent.crypto.hmac_verify(agent.secure.kdev, body, tag,
                                    label="backup-mac"):
        raise IntegrityError(
            "backup blob failed its device-bound integrity check"
        )
    data = serialize.decode(body)
    if data.get("version") != 1:
        raise IntegrityError("unsupported backup version")

    report = RestoreReport(restored=[], skipped_stateful=[],
                           already_present=[])
    for record in data["records"]:
        ro = rights_object_from_payload(record["ro_payload"])
        if ro.ro_id in agent.storage.installed_ros:
            report.already_present.append(ro.ro_id)
            continue
        if is_stateful(ro.rights):
            report.skipped_stateful.append(ro.ro_id)
            continue
        installed = InstalledRightsObject(
            ro=ro, c2dev=record["c2dev"], mac=record["mac"],
            state=RightsState(),
        )
        agent.storage.store_ro(installed)
        report.restored.append(ro.ro_id)
    return report


def _backup_record_ids(blob: bytes) -> Tuple[str, ...]:
    """RO ids inside a backup blob (no MAC check — inspection only)."""
    outer = serialize.decode(blob)
    data = serialize.decode(outer["body"])
    return tuple(
        rights_object_from_payload(r["ro_payload"]).ro_id
        for r in data["records"]
    )
