"""Identifier conventions and protocol constants.

OMA DRM 2 identifies actors by URIs and content by ``cid:`` content IDs.
The model keeps identifiers as plain strings with small helpers to build
well-formed ones, plus the algorithm-suite constants the ROAP hello
messages advertise (paper §2.4.5 — the mandated default algorithms).
"""

#: ROAP schema version advertised in hello messages.
ROAP_VERSION = "2.0"

#: The default algorithm suite of OMA DRM 2 (paper §2.4.5).
DEFAULT_ALGORITHMS = (
    "SHA-1",
    "HMAC-SHA1",
    "AES-128-WRAP",
    "AES-128-CBC",
    "RSA-PSS",
    "KDF2",
    "RSA-1024",
)


def device_id(name: str) -> str:
    """A device identifier (the hash-of-public-key URI in the standard)."""
    return "device:%s" % name


def rights_issuer_id(name: str) -> str:
    """A Rights Issuer identifier URI."""
    return "ri:%s" % name


def content_id(name: str) -> str:
    """A ``cid:`` content identifier as used inside DCFs and ROs."""
    return "cid:%s" % name


def rights_object_id(name: str) -> str:
    """A Rights Object identifier."""
    return "ro:%s" % name


def domain_id(name: str) -> str:
    """A domain identifier; the standard reserves the last 3 digits for
    the domain generation (we model generation 0)."""
    return "domain:%s+000" % name
