"""Exception hierarchy for the OMA DRM 2 system model.

All protocol, trust and rights failures derive from :class:`DRMError`.
The hierarchy distinguishes the failure classes the standard treats
differently: trust establishment, message integrity, rights evaluation and
protocol state.
"""


class DRMError(Exception):
    """Base class for all DRM-layer errors."""


class TrustError(DRMError):
    """A certificate chain, OCSP response or signature check failed."""


class CertificateExpiredError(TrustError):
    """A certificate is outside its validity window."""


class CertificateRevokedError(TrustError):
    """A certificate is revoked (per CA state or OCSP response)."""


class RegistrationError(DRMError):
    """The 4-pass ROAP registration failed."""


class NotRegisteredError(DRMError):
    """An operation requires a valid RI Context that does not exist."""


class ContextExpiredError(NotRegisteredError):
    """An RI Context exists but is past ``RI_CONTEXT_LIFETIME``.

    Distinct from the plain missing-context case so a session layer can
    degrade gracefully: an expired context is cured by re-registering,
    whereas a device that never registered may be mid-provisioning.
    """


class WireDecodeError(DRMError, ValueError):
    """A transport blob could not be decoded.

    The single failure type for every malformed wire input — truncated,
    over-length, bit-flipped, non-ASCII length, unknown tag — so callers
    need exactly one ``except`` to treat garbage from the bearer as a
    transport fault. Subclasses ``ValueError`` for compatibility with
    callers of the original decoders.
    """


class ChannelError(DRMError):
    """The bearer failed to deliver a ROAP message (transport layer)."""


class ChannelTimeoutError(ChannelError):
    """No valid response arrived within the channel timeout."""


class ServiceUnavailableError(ChannelError):
    """The peer service (RI front-end, OCSP responder) is down.

    Distinct from a timeout so degradation layers can tell a scheduled
    outage window (fast-fail, serve from cache) from bearer loss (wait
    out the timeout, retry)."""


class RoapStatusError(ChannelError):
    """The RI answered with a transient error status instead of a
    signed response (e.g. ``ServerBusy`` under load shedding)."""

    def __init__(self, status: str, message: str = "") -> None:
        super().__init__(message or "RI returned status %r" % status)
        self.status = status


class NonceMismatchError(DRMError):
    """A ROAP response did not echo the expected nonce (replay defense)."""


class AcquisitionError(DRMError):
    """RO acquisition failed (unknown license, bad status, bad signature)."""


class IntegrityError(DRMError):
    """Rights Object MAC or DCF hash verification failed."""


class InstallationError(DRMError):
    """The Rights Object could not be installed on the device."""


class PermissionDeniedError(DRMError):
    """The Rights Object does not grant the requested usage."""


class UnknownContentError(DRMError):
    """No DCF or installed Rights Object matches the requested content."""


class DomainError(DRMError):
    """Domain registration/management failed."""
