"""Resilient ROAP sessions: drive protocol flows to a terminal outcome.

The :class:`~repro.drm.agent.DRMAgent` implements one *attempt* of each
ROAP flow and fails loudly on any transport or validation problem. On a
real bearer those failures are routine — messages drop, arrive garbled,
stale or twice — so a terminal needs a session layer that retries until
the flow completes or a budget is spent, and reports a terminal outcome
instead of leaking whichever exception the last attempt happened to die
of.

:class:`RoapSession` is that layer, a small state machine::

    IDLE -> IN_FLIGHT -> COMPLETED
               |  ^
               v  |  (retryable failure, budget left)
             BACKOFF
               |
               v  (budget exhausted / fatal failure)
            ABORTED

Design points:

* **Bounded retries, exponential backoff, deterministic jitter.** Wait
  times are spent on the shared
  :class:`~repro.drm.clock.SimulationClock`; jitter derives from the
  session name and attempt number through SHA-1, so runs are exactly
  reproducible — no hidden global randomness.
* **Nonce-fresh re-signing.** Every retry re-runs the agent flow, which
  draws a fresh nonce and re-signs the request; a retry is a new
  protocol attempt, never a byte replay (byte replays are what the RI's
  replay cache absorbs).
* **Graceful degradation.** ``acquire``/``join_domain`` catch
  :class:`~repro.drm.errors.ContextExpiredError` and transparently
  re-register before retrying, instead of surfacing an opaque failure
  for a device whose year-old RI Context just lapsed.
* **Priced retries.** The agent's crypto provider meters every attempt,
  so the cost model sees exactly what retries re-spend; see
  :mod:`repro.analysis.resilience` for the expected overhead as a
  function of loss rate.

Retryable failures are transport faults and everything corruption
produces: timeouts, decode failures, nonce mismatches, signature and
trust-chain failures, and transient RI error statuses. Semantic refusals
(unknown license, permission denied, version mismatch) abort
immediately — retrying cannot cure them.
"""

import enum
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from ..crypto.errors import SignatureError
# repro: allow[REP201] -- jitter derivation is session bookkeeping, intentionally unpriced like the DRBG (see repro.core.meter); routing it through the provider would distort the paper's Table 1 costs
from ..crypto.sha1 import sha1
from ..obs.tracer import NULL_TRACER
from .errors import (ChannelError, ContextExpiredError, DRMError,
                     NonceMismatchError, TrustError, WireDecodeError)

#: Failures one more attempt can plausibly cure. ``TrustError`` is
#: included because under a faulty bearer a failed certificate check is
#: overwhelmingly a corrupted response; the retry budget bounds the cost
#: when it is not.
RETRYABLE_ERRORS = (ChannelError, WireDecodeError, NonceMismatchError,
                    SignatureError, TrustError)


class SessionState(enum.Enum):
    """States of the session state machine."""

    IDLE = "idle"
    IN_FLIGHT = "in-flight"
    BACKOFF = "backoff"
    REREGISTERING = "re-registering"
    COMPLETED = "completed"
    ABORTED = "aborted"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Outcome(enum.Enum):
    """Terminal result of one driven flow."""

    COMPLETED = "completed"
    ABORTED = "aborted"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``backoff_seconds(n)`` for attempt ``n`` (1-based) is
    ``base * multiplier^(n-1)`` capped at ``max_backoff_seconds``, plus
    a jitter of 0..``jitter_seconds`` derived deterministically from the
    salt and attempt number (desynchronizing a fleet of devices without
    nondeterminism in any single one).
    """

    max_attempts: int = 5
    base_backoff_seconds: int = 2
    backoff_multiplier: float = 2.0
    max_backoff_seconds: int = 300
    jitter_seconds: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("at least one attempt is required")
        if self.base_backoff_seconds < 0 or self.jitter_seconds < 0:
            raise ValueError("backoff and jitter must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff must not shrink across attempts")

    def backoff_seconds(self, attempt: int, salt: str = "") -> int:
        """Wait before the attempt after ``attempt`` failed (1-based)."""
        if attempt < 1:
            raise ValueError("attempts are counted from 1")
        base = self.base_backoff_seconds \
            * self.backoff_multiplier ** (attempt - 1)
        delay = min(int(base), self.max_backoff_seconds)
        if self.jitter_seconds:
            digest = sha1(("%s/%d" % (salt, attempt)).encode("utf-8"))
            delay += digest[0] % (self.jitter_seconds + 1)
        return delay


@dataclass(frozen=True)
class Transition:
    """One state-machine transition, timestamped on the simulation clock."""

    state: SessionState
    at: int
    note: str = ""


@dataclass(frozen=True)
class SessionOutcome:
    """The terminal result of one driven flow.

    ``value`` carries the flow's product (an RI context, a protected RO,
    a domain context) when completed; ``reason`` explains an abort.
    """

    outcome: Outcome
    value: Any = None
    attempts: int = 0
    reason: Optional[str] = None
    reregistrations: int = 0
    elapsed_seconds: int = 0
    transitions: Tuple[Transition, ...] = ()

    @property
    def completed(self) -> bool:
        """Whether the flow reached COMPLETED."""
        return self.outcome is Outcome.COMPLETED


class RoapSession:
    """Drives an agent's ROAP flows over an unreliable channel.

    ``channel`` is anything with the RI protocol surface — a bare
    :class:`~repro.drm.rights_issuer.RightsIssuer`, a
    :class:`~repro.drm.roap.wire.WireChannel`, or a
    :class:`~repro.drm.roap.faults.FaultyChannel`. The session never
    raises for protocol failures: each flow returns a
    :class:`SessionOutcome` that is either ``Completed`` or
    ``Aborted(reason)``.
    """

    def __init__(self, agent, channel,
                 policy: RetryPolicy = RetryPolicy(),
                 name: str = "roap-session") -> None:
        self.agent = agent
        self.channel = channel
        self.policy = policy
        self.name = name
        self.tracer = getattr(agent, "tracer", NULL_TRACER)
        self.transitions: List[Transition] = []
        self.state = SessionState.IDLE
        self._enter(SessionState.IDLE, "session created")

    @property
    def clock(self):
        """The simulation clock all waits are spent on."""
        return self.agent.clock

    def _enter(self, state: SessionState, note: str = "") -> None:
        self.state = state
        self.transitions.append(
            Transition(state=state, at=self.clock.now, note=note))

    # -- public flows -----------------------------------------------------
    def register(self) -> SessionOutcome:
        """Drive the 4-pass registration to a terminal outcome."""
        return self._drive("register",
                           lambda: self.agent.register(self.channel))

    def acquire(self, ro_id: str,
                domain_id: Optional[str] = None) -> SessionOutcome:
        """Drive the 2-pass RO acquisition, re-registering if expired."""
        return self._drive(
            "acquire",
            lambda: self.agent.acquire(self.channel, ro_id,
                                       domain_id=domain_id),
            reregister_on_expiry=True)

    def join_domain(self, domain_id: str) -> SessionOutcome:
        """Drive the 2-pass domain join, re-registering if expired."""
        return self._drive(
            "join-domain",
            lambda: self.agent.join_domain(self.channel, domain_id),
            reregister_on_expiry=True)

    # -- the retry loop ---------------------------------------------------
    def _drive(self, label: str, step: Callable[[], Any],
               reregister_on_expiry: bool = False) -> SessionOutcome:
        started = self.clock.now
        attempts = 0
        reregistrations = 0
        last_error: Optional[Exception] = None
        while attempts < self.policy.max_attempts:
            attempts += 1
            self._enter(SessionState.IN_FLIGHT,
                        "%s attempt %d/%d"
                        % (label, attempts, self.policy.max_attempts))
            try:
                with self.tracer.span("session.%s" % label, track="roap",
                                      attempt=attempts):
                    value = step()
            except ContextExpiredError as exc:
                if not reregister_on_expiry or reregistrations >= 1:
                    return self._abort(label, started, attempts,
                                       reregistrations, str(exc))
                reregistrations += 1
                self._enter(SessionState.REREGISTERING, str(exc))
                self.tracer.event("session.reregister", track="roap",
                                  label=label, attempt=attempts)
                recovery = self._drive(
                    "register",
                    lambda: self.agent.register(self.channel))
                if not recovery.completed:
                    return self._abort(
                        label, started, attempts, reregistrations,
                        "re-registration failed: %s" % recovery.reason)
                continue
            except RETRYABLE_ERRORS as exc:
                last_error = exc
                self.tracer.event("session.retry", track="roap",
                                  label=label, attempt=attempts,
                                  error=type(exc).__name__)
                if attempts >= self.policy.max_attempts:
                    break
                delay = self.policy.backoff_seconds(
                    attempts, salt="%s/%s" % (self.name, label))
                self._enter(SessionState.BACKOFF,
                            "retry in %d s after %s: %s"
                            % (delay, type(exc).__name__, exc))
                self.tracer.event("session.backoff", track="roap",
                                  label=label, delay_seconds=delay)
                self.clock.advance(delay)
            except DRMError as exc:
                # Semantic refusal — retrying cannot change the answer.
                return self._abort(label, started, attempts,
                                   reregistrations, str(exc))
            else:
                self._enter(SessionState.COMPLETED,
                            "%s completed after %d attempt(s)"
                            % (label, attempts))
                return SessionOutcome(
                    outcome=Outcome.COMPLETED, value=value,
                    attempts=attempts,
                    reregistrations=reregistrations,
                    elapsed_seconds=self.clock.now - started,
                    transitions=tuple(self.transitions))
        return self._abort(
            label, started, attempts, reregistrations,
            "retries exhausted after %d attempts (last: %s: %s)"
            % (attempts, type(last_error).__name__, last_error))

    def _abort(self, label: str, started: int, attempts: int,
               reregistrations: int, reason: str) -> SessionOutcome:
        self._enter(SessionState.ABORTED, "%s: %s" % (label, reason))
        self.tracer.event("session.abort", track="roap", label=label,
                          attempts=attempts, reason=reason)
        return SessionOutcome(
            outcome=Outcome.ABORTED, attempts=attempts, reason=reason,
            reregistrations=reregistrations,
            elapsed_seconds=self.clock.now - started,
            transitions=tuple(self.transitions))
