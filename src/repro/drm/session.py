"""Resilient ROAP sessions: drive protocol flows to a terminal outcome.

The :class:`~repro.drm.agent.DRMAgent` implements one *attempt* of each
ROAP flow and fails loudly on any transport or validation problem. On a
real bearer those failures are routine — messages drop, arrive garbled,
stale or twice — so a terminal needs a session layer that retries until
the flow completes or a budget is spent, and reports a terminal outcome
instead of leaking whichever exception the last attempt happened to die
of.

:class:`RoapSession` is that layer, a small state machine::

    IDLE -> IN_FLIGHT -> COMPLETED
               |  ^
               v  |  (retryable failure, budget left)
             BACKOFF
               |
               v  (budget exhausted / fatal failure)
            ABORTED

Design points:

* **Bounded retries, exponential backoff, deterministic jitter.** Wait
  times are spent on the shared
  :class:`~repro.drm.clock.SimulationClock`; jitter derives from the
  session name and attempt number through SHA-1, so runs are exactly
  reproducible — no hidden global randomness.
* **Nonce-fresh re-signing.** Every retry re-runs the agent flow, which
  draws a fresh nonce and re-signs the request; a retry is a new
  protocol attempt, never a byte replay (byte replays are what the RI's
  replay cache absorbs).
* **Graceful degradation.** ``acquire``/``join_domain`` catch
  :class:`~repro.drm.errors.ContextExpiredError` and transparently
  re-register before retrying, instead of surfacing an opaque failure
  for a device whose year-old RI Context just lapsed.
* **Priced retries.** The agent's crypto provider meters every attempt,
  so the cost model sees exactly what retries re-spend; see
  :mod:`repro.analysis.resilience` for the expected overhead as a
  function of loss rate.

Retryable failures are transport faults and everything corruption
produces: timeouts, decode failures, nonce mismatches, signature and
trust-chain failures, and transient RI error statuses. Semantic refusals
(unknown license, permission denied, version mismatch) abort
immediately — retrying cannot cure them.

**Circuit breaking (active adversaries and outages).** Treating every
``TrustError`` as bearer corruption is the right call for *random*
faults, but it hands an active man-in-the-middle the whole retry
budget: each forged response costs the terminal its full per-attempt
crypto spend, five times over. :class:`CircuitBreaker` closes that
hole with two policies layered on the retry loop:

* **Forgery cut-off** — ``K`` consecutive *identical* trust failures
  (same exception type, same message) within one flow are a consistent
  forgery, not noise: random corruption produces *varying* failures
  (different octets garble different checks), an attacker replaying
  the same tampering produces the same failure every time. The flow
  aborts immediately, refunding the remaining retry budget.
* **Outage fast-fail** — repeated failures across flows trip the
  breaker OPEN; while open, flows fast-fail without spending any
  crypto until ``open_seconds`` of simulation time pass, then one
  HALF_OPEN probe attempt decides between re-closing and re-opening.
"""

import enum
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from ..core.jitter import deterministic_jitter
from ..crypto.errors import SignatureError
from ..obs.tracer import NULL_TRACER
from .errors import (ChannelError, ContextExpiredError, DRMError,
                     NonceMismatchError, TrustError, WireDecodeError)

#: Failures one more attempt can plausibly cure. ``TrustError`` is
#: included because under a faulty bearer a failed certificate check is
#: overwhelmingly a corrupted response; the retry budget bounds the cost
#: when it is not.
RETRYABLE_ERRORS = (ChannelError, WireDecodeError, NonceMismatchError,
                    SignatureError, TrustError)


class SessionState(enum.Enum):
    """States of the session state machine."""

    IDLE = "idle"
    IN_FLIGHT = "in-flight"
    BACKOFF = "backoff"
    REREGISTERING = "re-registering"
    COMPLETED = "completed"
    ABORTED = "aborted"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Outcome(enum.Enum):
    """Terminal result of one driven flow."""

    COMPLETED = "completed"
    ABORTED = "aborted"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``backoff_seconds(n)`` for attempt ``n`` (1-based) is
    ``base * multiplier^(n-1)`` capped at ``max_backoff_seconds``, plus
    a jitter of 0..``jitter_seconds`` derived deterministically from the
    salt and attempt number (desynchronizing a fleet of devices without
    nondeterminism in any single one).
    """

    max_attempts: int = 5
    base_backoff_seconds: int = 2
    backoff_multiplier: float = 2.0
    max_backoff_seconds: int = 300
    jitter_seconds: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("at least one attempt is required")
        if self.base_backoff_seconds < 0 or self.jitter_seconds < 0:
            raise ValueError("backoff and jitter must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff must not shrink across attempts")

    def backoff_seconds(self, attempt: int, salt: str = "") -> int:
        """Wait before the attempt after ``attempt`` failed (1-based)."""
        if attempt < 1:
            raise ValueError("attempts are counted from 1")
        base = self.base_backoff_seconds \
            * self.backoff_multiplier ** (attempt - 1)
        delay = min(int(base), self.max_backoff_seconds)
        if self.jitter_seconds:
            # repro: allow[REP202] -- the shared jitter helper hashes scheduling salt, not protocol bytes; it is intentionally unpriced, exactly like the DRBG (see repro.core.jitter)
            delay += deterministic_jitter(salt, attempt,
                                          self.jitter_seconds)
        return delay


class BreakerState(enum.Enum):
    """States of the circuit breaker guarding a session's flows."""

    CLOSED = "closed"        # normal operation, failures counted
    OPEN = "open"            # fast-fail: no attempts until cool-down
    HALF_OPEN = "half-open"  # cool-down elapsed: one probe allowed

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class BreakerPolicy:
    """Thresholds for :class:`CircuitBreaker`.

    ``identical_trust_failures`` is the forgery cut-off: that many
    consecutive byte-identical trust failures within one flow abort it
    immediately (random corruption varies, an active attacker repeats).
    ``failure_threshold`` consecutive failed attempts trip the breaker
    OPEN; ``open_seconds`` of simulation time must pass before a
    HALF_OPEN probe is allowed through.
    """

    identical_trust_failures: int = 2
    failure_threshold: int = 3
    open_seconds: int = 300

    def __post_init__(self) -> None:
        if self.identical_trust_failures < 2:
            raise ValueError(
                "forgery cut-off needs at least two observations")
        if self.failure_threshold < 1:
            raise ValueError("failure threshold must be positive")
        if self.open_seconds < 0:
            raise ValueError("the open window must be non-negative")


class CircuitBreaker:
    """Closed → open → half-open failure containment for ROAP flows.

    Shared by all flows of one :class:`RoapSession` (or several sessions
    of one device): consecutive attempt failures trip it OPEN, flows
    then fast-fail — spending *zero* crypto — until ``open_seconds`` of
    simulation time pass; the first attempt after the cool-down is the
    HALF_OPEN probe that decides between re-closing and re-opening.

    The counters (``fast_fails``, ``forgeries_detected``,
    ``times_opened``) feed :mod:`repro.analysis.adversary`.
    """

    def __init__(self, clock, policy: BreakerPolicy = BreakerPolicy(),
                 tracer=NULL_TRACER) -> None:
        self.clock = clock
        self.policy = policy
        self.tracer = tracer
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.fast_fails = 0
        self.forgeries_detected = 0
        self.times_opened = 0
        self._opened_at: Optional[int] = None

    def allow_attempt(self) -> bool:
        """Whether a protocol attempt may be started right now.

        An OPEN breaker transitions to HALF_OPEN once the cool-down has
        elapsed on the simulation clock; the caller's next attempt is
        then the probe. Returns False (and counts a fast-fail) while
        the cool-down is still running.
        """
        if self.state is BreakerState.OPEN:
            elapsed = self.clock.now - (self._opened_at or 0)
            if elapsed >= self.policy.open_seconds:
                self.state = BreakerState.HALF_OPEN
                self.tracer.event("breaker.half-open", track="roap")
            else:
                self.fast_fails += 1
                return False
        return True

    def seconds_until_probe(self) -> int:
        """Simulation seconds until an OPEN breaker allows its probe."""
        if self.state is not BreakerState.OPEN:
            return 0
        elapsed = self.clock.now - (self._opened_at or 0)
        return max(0, self.policy.open_seconds - elapsed)

    def record_success(self) -> None:
        """An attempt completed: re-close and forget the failure run."""
        self.consecutive_failures = 0
        if self.state is not BreakerState.CLOSED:
            self.state = BreakerState.CLOSED
            self.tracer.event("breaker.closed", track="roap")

    def record_failure(self) -> None:
        """An attempt failed: count it, tripping OPEN at the threshold.

        A failed HALF_OPEN probe re-opens immediately — the outage (or
        attacker) is still there, and the cool-down restarts.
        """
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN \
                or self.consecutive_failures \
                >= self.policy.failure_threshold:
            self.trip_open()

    def record_forgery(self) -> None:
        """A consistent forgery was identified: count it and trip OPEN."""
        self.forgeries_detected += 1
        self.trip_open()

    def trip_open(self) -> None:
        """Open the breaker (idempotent while already open)."""
        if self.state is not BreakerState.OPEN:
            self.state = BreakerState.OPEN
            self.times_opened += 1
            self.tracer.event("breaker.open", track="roap",
                              consecutive_failures=
                              self.consecutive_failures)
        self._opened_at = self.clock.now


@dataclass(frozen=True)
class Transition:
    """One state-machine transition, timestamped on the simulation clock."""

    state: SessionState
    at: int
    note: str = ""


@dataclass(frozen=True)
class SessionOutcome:
    """The terminal result of one driven flow.

    ``value`` carries the flow's product (an RI context, a protected RO,
    a domain context) when completed; ``reason`` explains an abort.
    """

    outcome: Outcome
    value: Any = None
    attempts: int = 0
    reason: Optional[str] = None
    reregistrations: int = 0
    elapsed_seconds: int = 0
    transitions: Tuple[Transition, ...] = ()
    #: True when the flow aborted because its deadline budget ran out —
    #: the crypto already spent on failed attempts stays on the priced
    #: trace (abandoned work is work).
    deadline_exceeded: bool = False

    @property
    def completed(self) -> bool:
        """Whether the flow reached COMPLETED."""
        return self.outcome is Outcome.COMPLETED


class RoapSession:
    """Drives an agent's ROAP flows over an unreliable channel.

    ``channel`` is anything with the RI protocol surface — a bare
    :class:`~repro.drm.rights_issuer.RightsIssuer`, a
    :class:`~repro.drm.roap.wire.WireChannel`, or a
    :class:`~repro.drm.roap.faults.FaultyChannel`. The session never
    raises for protocol failures: each flow returns a
    :class:`SessionOutcome` that is either ``Completed`` or
    ``Aborted(reason)``.
    """

    def __init__(self, agent, channel,
                 policy: RetryPolicy = RetryPolicy(),
                 name: str = "roap-session",
                 breaker: Optional[CircuitBreaker] = None,
                 deadline_seconds: Optional[int] = None) -> None:
        if deadline_seconds is not None and deadline_seconds < 0:
            raise ValueError("the deadline budget must be non-negative")
        self.agent = agent
        self.channel = channel
        self.policy = policy
        self.name = name
        self.breaker = breaker
        #: Per-flow latency budget in simulation seconds: a driven flow
        #: aborts (``deadline_exceeded=True``) instead of starting an
        #: attempt — or sleeping a backoff — that cannot finish inside
        #: it. ``None`` means unbounded, the historical behavior.
        self.deadline_seconds = deadline_seconds
        self.tracer = getattr(agent, "tracer", NULL_TRACER)
        self.transitions: List[Transition] = []
        self.state = SessionState.IDLE
        self._enter(SessionState.IDLE, "session created")

    @property
    def clock(self):
        """The simulation clock all waits are spent on."""
        return self.agent.clock

    def _enter(self, state: SessionState, note: str = "") -> None:
        self.state = state
        self.transitions.append(
            Transition(state=state, at=self.clock.now, note=note))

    # -- public flows -----------------------------------------------------
    def register(self) -> SessionOutcome:
        """Drive the 4-pass registration to a terminal outcome."""
        return self._drive("register",
                           lambda: self.agent.register(self.channel))

    def acquire(self, ro_id: str,
                domain_id: Optional[str] = None) -> SessionOutcome:
        """Drive the 2-pass RO acquisition, re-registering if expired."""
        return self._drive(
            "acquire",
            lambda: self.agent.acquire(self.channel, ro_id,
                                       domain_id=domain_id),
            reregister_on_expiry=True)

    def join_domain(self, domain_id: str) -> SessionOutcome:
        """Drive the 2-pass domain join, re-registering if expired."""
        return self._drive(
            "join-domain",
            lambda: self.agent.join_domain(self.channel, domain_id),
            reregister_on_expiry=True)

    # -- the retry loop ---------------------------------------------------
    def _drive(self, label: str, step: Callable[[], Any],
               reregister_on_expiry: bool = False) -> SessionOutcome:
        started = self.clock.now
        attempts = 0
        reregistrations = 0
        last_error: Optional[Exception] = None
        # Forgery cut-off bookkeeping: (type, message) of the last trust
        # failure and how many consecutive times it repeated unchanged.
        last_trust_key: Optional[Tuple[str, str]] = None
        identical_trust_failures = 0
        while attempts < self.policy.max_attempts:
            if self.deadline_seconds is not None \
                    and self.clock.now - started >= self.deadline_seconds:
                self.tracer.event("session.deadline", track="roap",
                                  label=label, attempts=attempts)
                return self._abort(
                    label, started, attempts, reregistrations,
                    "deadline budget of %d s exhausted after %d "
                    "attempt(s)" % (self.deadline_seconds, attempts),
                    deadline_exceeded=True)
            if self.breaker is not None \
                    and not self.breaker.allow_attempt():
                self.tracer.event("session.fast-fail", track="roap",
                                  label=label)
                return self._abort(
                    label, started, attempts, reregistrations,
                    "circuit open: fast-failed %s (probe in %d s)"
                    % (label, self.breaker.seconds_until_probe()))
            attempts += 1
            self._enter(SessionState.IN_FLIGHT,
                        "%s attempt %d/%d"
                        % (label, attempts, self.policy.max_attempts))
            try:
                with self.tracer.span("session.%s" % label, track="roap",
                                      attempt=attempts):
                    value = step()
            except ContextExpiredError as exc:
                if not reregister_on_expiry or reregistrations >= 1:
                    return self._abort(label, started, attempts,
                                       reregistrations, str(exc))
                reregistrations += 1
                self._enter(SessionState.REREGISTERING, str(exc))
                self.tracer.event("session.reregister", track="roap",
                                  label=label, attempt=attempts)
                recovery = self._drive(
                    "register",
                    lambda: self.agent.register(self.channel))
                if not recovery.completed:
                    return self._abort(
                        label, started, attempts, reregistrations,
                        "re-registration failed: %s" % recovery.reason)
                continue
            except RETRYABLE_ERRORS as exc:
                last_error = exc
                self.tracer.event("session.retry", track="roap",
                                  label=label, attempt=attempts,
                                  error=type(exc).__name__)
                if self.breaker is not None:
                    self.breaker.record_failure()
                    if isinstance(exc, TrustError):
                        key = (type(exc).__name__, str(exc))
                        if key == last_trust_key:
                            identical_trust_failures += 1
                        else:
                            last_trust_key = key
                            identical_trust_failures = 1
                        if identical_trust_failures >= \
                                self.breaker.policy \
                                    .identical_trust_failures:
                            # Random corruption garbles different octets
                            # on every delivery; the same trust failure
                            # repeating verbatim is an active forgery.
                            # Refund the remaining retry budget.
                            self.breaker.record_forgery()
                            self.tracer.event(
                                "session.forgery", track="roap",
                                label=label, attempts=attempts,
                                error=type(exc).__name__)
                            return self._abort(
                                label, started, attempts,
                                reregistrations,
                                "consistent forgery: %d identical %s "
                                "failures (%s)"
                                % (identical_trust_failures,
                                   type(exc).__name__, exc))
                    else:
                        last_trust_key = None
                        identical_trust_failures = 0
                if attempts >= self.policy.max_attempts:
                    break
                delay = self.policy.backoff_seconds(
                    attempts, salt="%s/%s" % (self.name, label))
                if self.deadline_seconds is not None \
                        and self.clock.now - started + delay \
                        > self.deadline_seconds:
                    # Sleeping the backoff would overrun the budget:
                    # abort now instead of waking up already late. The
                    # crypto spent on the failed attempts stays priced.
                    self.tracer.event("session.deadline", track="roap",
                                      label=label, attempts=attempts)
                    return self._abort(
                        label, started, attempts, reregistrations,
                        "deadline budget of %d s cannot absorb a %d s "
                        "backoff after %d attempt(s)"
                        % (self.deadline_seconds, delay, attempts),
                        deadline_exceeded=True)
                self._enter(SessionState.BACKOFF,
                            "retry in %d s after %s: %s"
                            % (delay, type(exc).__name__, exc))
                self.tracer.event("session.backoff", track="roap",
                                  label=label, delay_seconds=delay)
                self.clock.advance(delay)
            except DRMError as exc:
                # Semantic refusal — retrying cannot change the answer.
                return self._abort(label, started, attempts,
                                   reregistrations, str(exc))
            else:
                if self.breaker is not None:
                    self.breaker.record_success()
                self._enter(SessionState.COMPLETED,
                            "%s completed after %d attempt(s)"
                            % (label, attempts))
                return SessionOutcome(
                    outcome=Outcome.COMPLETED, value=value,
                    attempts=attempts,
                    reregistrations=reregistrations,
                    elapsed_seconds=self.clock.now - started,
                    transitions=tuple(self.transitions))
        return self._abort(
            label, started, attempts, reregistrations,
            "retries exhausted after %d attempts (last: %s: %s)"
            % (attempts, type(last_error).__name__, last_error))

    def _abort(self, label: str, started: int, attempts: int,
               reregistrations: int, reason: str,
               deadline_exceeded: bool = False) -> SessionOutcome:
        self._enter(SessionState.ABORTED, "%s: %s" % (label, reason))
        self.tracer.event("session.abort", track="roap", label=label,
                          attempts=attempts, reason=reason)
        return SessionOutcome(
            outcome=Outcome.ABORTED, attempts=attempts, reason=reason,
            reregistrations=reregistrations,
            elapsed_seconds=self.clock.now - started,
            transitions=tuple(self.transitions),
            deadline_exceeded=deadline_exceeded)
