"""The DRM Agent — the trusted entity in the user's terminal.

This is the terminal side of the paper's four phases (§2.4), and the
component whose cryptographic work the cost model prices. When constructed
with a :class:`~repro.core.meter.MeteredCrypto` provider, every method tags
its operations with the proper :class:`~repro.core.trace.Phase`:

* :meth:`register` — 4-pass ROAP: sign the RegistrationRequest (1 RSA
  private op), verify the RegistrationResponse signature, the RI
  certificate and the OCSP response (3 RSA public ops).
* :meth:`acquire` — 2-pass RO acquisition: sign the RORequest (1 private),
  verify the ROResponse signature (1 public).
* :meth:`install` — unwrap the Figure 3 chain: RSADP on ``C1`` (1
  private), KDF2, AES-UNWRAP of ``C2``; verify the RO MAC; verify the RO
  signature if present; re-wrap ``K_MAC‖K_REK`` under ``K_DEV`` into
  ``C2dev``.
* :meth:`consume` — per access: unwrap ``C2dev``, verify the RO MAC,
  verify the DCF hash, unwrap ``K_CEK`` and decrypt the content.

The OCSP responder's certificate is provisioned as a trust anchor together
with the CA root (verified once at manufacture), so a registration costs
exactly the paper's three public-key verifications.
"""

from dataclasses import dataclass
from typing import Iterable, Optional

from ..core.trace import Phase
from ..crypto.errors import CryptoError
from ..obs.tracer import NULL_TRACER
from .certificates import Certificate, verify_certificate
from ..crypto.kem import KemCiphertext
from .clock import SimulationClock, YEAR
from .dcf import DCF, MultipartDCF
from .errors import (AcquisitionError, InstallationError, IntegrityError,
                     NonceMismatchError, PermissionDeniedError,
                     RegistrationError, TrustError)
from .identifiers import DEFAULT_ALGORITHMS, ROAP_VERSION
from .ocsp import verify_ocsp_response
from .rel import (ExportConstraint, ExportMode, PermissionType,
                  RightsEvaluator)
from .ro import InstalledRightsObject, ProtectedRightsObject
from .roap.messages import (DeviceHello, JoinDomainRequest,
                            LeaveDomainRequest, RegistrationRequest,
                            ROAP_STATUS_OK, RORequest, new_nonce)
from .roap.triggers import RoapTrigger, TriggerType
from .storage import (DeviceStorage, DomainContext, RIContext,
                      SecureStorage)
from ..store.crash import StoreError
from ..store.recovery import RecoveryReport
from ..store.transactional import TransactionalStorage

#: Device key length (128-bit AES key in secure storage).
KDEV_LENGTH = 16

#: How long an RI Context stays valid before re-registration.
RI_CONTEXT_LIFETIME = 1 * YEAR

#: Largest *backward* DRM-time correction a registration may apply.
#: Resync exists to cure drift (seconds to minutes of skew per year);
#: an RI time that would wind DRM Time back further than this is either
#: a broken RI or an attacker stretching datetime constraints, and the
#: agent refuses to adopt it. Forward corrections are unbounded — moving
#: time forward only ever *shrinks* what rights allow.
MAX_TIME_ROLLBACK_SECONDS = 1 * 86_400


@dataclass(frozen=True)
class ConsumptionResult:
    """One successful content access: the clear content plus bookkeeping."""

    content_id: str
    ro_id: str
    clear_content: bytes
    permission: PermissionType


@dataclass(frozen=True)
class ExportResult:
    """One successful export to another DRM system.

    ``clear_content`` is handed to the target system's re-protection
    step (outside this model's scope); ``mode`` records whether local
    rights were kept (copy) or surrendered (move).
    """

    content_id: str
    target_system: str
    mode: "ExportMode"
    clear_content: bytes


class DRMAgent:
    """A DRM Agent bound to one device identity.

    ``verify_dcf_on_install`` controls whether the agent checks the DCF
    hash already at installation (in addition to the per-access check the
    paper mandates); the paper's use-case totals are consistent with
    checking at consumption only, so the default is False.
    """

    def __init__(self, device_id: str, keypair, certificate: Certificate,
                 trust_anchors: Iterable[Certificate], crypto,
                 clock: SimulationClock,
                 verify_dcf_on_install: bool = False,
                 kdev_optimization: bool = True,
                 clock_skew_seconds: int = 0,
                 max_time_rollback_seconds: int =
                 MAX_TIME_ROLLBACK_SECONDS,
                 durable: bool = False,
                 storage_flash=None,
                 storage_injector=None) -> None:
        self.device_id = device_id
        self.certificate = certificate
        self.trust_anchors = list(trust_anchors)
        self.crypto = crypto
        self.clock = clock
        self.tracer = getattr(crypto, "tracer", NULL_TRACER)
        self.verify_dcf_on_install = verify_dcf_on_install
        self.kdev_optimization = kdev_optimization
        self._time_offset = clock_skew_seconds
        self._time_synced = False
        self.max_time_rollback_seconds = max_time_rollback_seconds
        self.secure = SecureStorage(
            device_private_key=keypair,
            kdev=crypto.random_bytes(KDEV_LENGTH),
        )
        if durable or storage_flash is not None \
                or storage_injector is not None:
            # Journaled flash-backed storage: every record HMAC runs
            # through this agent's (possibly metered) crypto provider.
            # Opt-in, so the paper-baseline cost traces stay untouched.
            self.storage = TransactionalStorage(
                crypto, self.secure.kdev, flash=storage_flash,
                injector=storage_injector)
        else:
            self.storage = DeviceStorage()
        self.storage.tracer = self.tracer

    def recover_storage(self) -> RecoveryReport:
        """Rebuild durable storage from its flash region after power loss.

        Models the reboot after a crash: RAM state is discarded and the
        journal's committed transactions are replayed onto a fresh
        storage (the replay's HMAC checks are metered). Only meaningful
        for a ``durable`` agent.
        """
        if not isinstance(self.storage, TransactionalStorage):
            raise StoreError(
                "recover_storage() needs durable journaled storage"
            )
        self.storage, report = TransactionalStorage.recover(
            self.crypto, self.secure.kdev, self.storage.journal.flash)
        self.storage.tracer = self.tracer
        self.tracer.event(
            "storage.recovered", track="store",
            records_scanned=report.records_scanned,
            transactions_applied=report.transactions_applied,
            transactions_discarded=report.transactions_discarded,
            torn_octets_discarded=report.torn_octets_discarded)
        return report

    def drm_time(self) -> int:
        """The device's DRM Time: the secure clock plus its drift.

        Resynchronized from the RI's ``ri_time`` at every registration —
        the standard's defense against terminals whose clock has drifted
        (or been wound back to stretch datetime constraints).
        """
        return self.clock.now + self._time_offset

    def wind_clock(self, seconds: int) -> int:
        """Shift this device's clock by ``seconds`` (negative = back).

        Models the user adjusting the terminal's clock — the classic
        attempt to stretch datetime constraints or revive an expired RI
        Context. DRM Time follows the adjustment immediately; only a
        registration resync (bounded, rollback-refusing) corrects it.
        Returns the new DRM Time.
        """
        self._time_offset += seconds
        return self.drm_time()

    def _checked_ri_time(self, ri_time: int) -> int:
        """Validate a proposed DRM-time resync value, without adopting it.

        Once the device has synced DRM Time from a trusted RI, a
        correction that would move it *backward* by more than
        ``max_time_rollback_seconds`` is refused — resync cures drift,
        it must never become a rollback channel for stretched datetime
        constraints (a forged RI time fails the signature check anyway;
        this bounds even a compromised-but-certified RI). Before the
        first sync there is nothing trustworthy to protect: the factory
        clock may be arbitrarily fast or slow, and resync exists to cure
        exactly that, so the first correction is unbounded in both
        directions. The caller commits the offset only after the whole
        trust chain verified, so a failed registration can never leave a
        poisoned clock behind.
        """
        correction = ri_time - self.drm_time()
        if self._time_synced \
                and correction < -self.max_time_rollback_seconds:
            raise TrustError(
                "refusing DRM time rollback of %d s (bound %d s)"
                % (-correction, self.max_time_rollback_seconds)
            )
        return ri_time

    # ------------------------------------------------------------------
    # Phase 1: Registration — establishing trust (paper §2.4.1)
    # ------------------------------------------------------------------
    def register(self, rights_issuer) -> RIContext:
        """Run the 4-pass ROAP registration against ``rights_issuer``.

        Returns the RI Context that later phases require. All terminal
        crypto is tagged ``Phase.REGISTRATION``.
        """
        with self.crypto.in_phase(Phase.REGISTRATION), \
                self.tracer.span("agent.register",
                                 track=Phase.REGISTRATION.value):
            hello = DeviceHello(
                version=ROAP_VERSION, device_id=self.device_id,
                supported_algorithms=DEFAULT_ALGORITHMS,
            )
            ri_hello = rights_issuer.hello(hello)
            if ri_hello.version != ROAP_VERSION:
                raise RegistrationError(
                    "RI speaks ROAP %r, expected %r"
                    % (ri_hello.version, ROAP_VERSION)
                )

            device_nonce = new_nonce(self.crypto)
            unsigned = RegistrationRequest(
                session_id=ri_hello.session_id,
                device_nonce=device_nonce,
                request_time=self.drm_time(),
                certificate=self.certificate,
            )
            request = RegistrationRequest(
                session_id=unsigned.session_id,
                device_nonce=unsigned.device_nonce,
                request_time=unsigned.request_time,
                certificate=unsigned.certificate,
                signature=self.crypto.pss_sign(
                    self.secure.device_private_key, unsigned.tbs_bytes(),
                    label="sign-registration-request"),
            )

            response = rights_issuer.register(request)
            if response.status != ROAP_STATUS_OK:
                raise RegistrationError(
                    "registration refused: %s" % response.status
                )
            if response.device_nonce != device_nonce:
                raise NonceMismatchError(
                    "RegistrationResponse does not echo our nonce"
                )
            # DRM Time resynchronization, hardened: the resync value is
            # validated (bounded correction, rollback refused) and then
            # only *used* for the time-sensitive checks below — it is
            # committed as the device's offset after the whole trust
            # chain verified. The signature check comes first, so an
            # attacker-supplied ri_time never influences any decision.
            verification_time = self.drm_time()
            if response.ri_time:
                verification_time = self._checked_ri_time(
                    response.ri_time)
            # The paper's three registration-phase public-key operations:
            # message signature, RI certificate, OCSP response.
            self.crypto.pss_verify(
                response.ri_certificate.public_key,
                response.tbs_bytes(), response.signature,
                label="verify-registration-response")
            verify_certificate(response.ri_certificate,
                               self.trust_anchors, verification_time,
                               self.crypto)
            responder_cert = self._find_anchor(
                response.ocsp_response.responder)
            verify_ocsp_response(
                response.ocsp_response,
                response.ri_certificate.serial,
                responder_cert, verification_time, self.crypto)
            if response.ri_time:
                self._time_offset = response.ri_time - self.clock.now
                self._time_synced = True

            context = RIContext(
                ri_id=ri_hello.ri_id,
                ri_certificate=response.ri_certificate,
                session_id=ri_hello.session_id,
                registered_at=self.drm_time(),
                expires_at=self.drm_time() + RI_CONTEXT_LIFETIME,
                selected_algorithms=ri_hello.selected_algorithms,
            )
            self.storage.store_ri_context(context)
            return context

    def has_valid_ri_context(self, ri_id: str) -> bool:
        """Whether a usable (existing, unexpired) RI Context is stored."""
        context = self.storage.ri_contexts.get(ri_id)
        return context is not None and context.is_valid(self.drm_time())

    def _find_anchor(self, subject: str) -> Certificate:
        for anchor in self.trust_anchors:
            if anchor.subject == subject:
                return anchor
        raise RegistrationError(
            "no provisioned trust anchor for %r" % subject
        )

    # ------------------------------------------------------------------
    # Phase 2: Acquisition — obtaining the Rights Object (paper §2.4.2)
    # ------------------------------------------------------------------
    def acquire(self, rights_issuer, ro_id: str,
                domain_id: Optional[str] = None) -> ProtectedRightsObject:
        """Run the 2-pass RO acquisition for ``ro_id``.

        Requires a valid RI Context: raises
        :class:`~repro.drm.errors.NotRegisteredError` when none exists
        and :class:`~repro.drm.errors.ContextExpiredError` when the
        context is past ``RI_CONTEXT_LIFETIME`` — the distinct type lets
        a session layer re-register and retry instead of failing
        opaquely. All terminal crypto is tagged ``Phase.ACQUISITION``.
        """
        with self.crypto.in_phase(Phase.ACQUISITION), \
                self.tracer.span("agent.acquire",
                                 track=Phase.ACQUISITION.value,
                                 ro_id=ro_id):
            context = self.storage.get_ri_context(rights_issuer.ri_id,
                                                  self.drm_time())
            device_nonce = new_nonce(self.crypto)
            unsigned = RORequest(
                device_id=self.device_id, ri_id=context.ri_id,
                ro_id=ro_id, device_nonce=device_nonce,
                request_time=self.drm_time(), domain_id=domain_id,
            )
            request = RORequest(
                device_id=unsigned.device_id, ri_id=unsigned.ri_id,
                ro_id=unsigned.ro_id, device_nonce=unsigned.device_nonce,
                request_time=unsigned.request_time,
                domain_id=unsigned.domain_id,
                signature=self.crypto.pss_sign(
                    self.secure.device_private_key, unsigned.tbs_bytes(),
                    label="sign-ro-request"),
            )
            response = rights_issuer.request_ro(request)
            if response.status != ROAP_STATUS_OK:
                raise AcquisitionError(
                    "RO acquisition refused: %s" % response.status
                )
            if response.device_nonce != device_nonce:
                raise NonceMismatchError(
                    "ROResponse does not echo our nonce"
                )
            self.crypto.pss_verify(context.ri_certificate.public_key,
                                   response.tbs_bytes(),
                                   response.signature,
                                   label="verify-ro-response")
            return response.protected_ro

    # ------------------------------------------------------------------
    # Phase 3: Installation — unwrapping the keys (paper §2.4.3, Figure 3)
    # ------------------------------------------------------------------
    def install(self, protected_ro: ProtectedRightsObject,
                dcf) -> InstalledRightsObject:
        """Verify and install a protected RO for its DCF(s).

        ``dcf`` is one :class:`DCF` or a sequence of them — a multi-asset
        RO (album license) installs against all its content objects at
        once. Runs the Figure 3 extraction (RSADP → KDF2 → AES-UNWRAP),
        checks integrity/authenticity, and re-wraps ``K_MAC‖K_REK`` under
        ``K_DEV``. All terminal crypto is tagged ``Phase.INSTALLATION``.
        """
        if isinstance(dcf, DCF):
            dcfs = [dcf]
        elif isinstance(dcf, MultipartDCF):
            dcfs = list(dcf.containers)
        else:
            dcfs = list(dcf)
        with self.crypto.in_phase(Phase.INSTALLATION), \
                self.tracer.span("agent.install",
                                 track=Phase.INSTALLATION.value,
                                 ro_id=protected_ro.ro.ro_id):
            ro = protected_ro.ro
            by_content = {d.content_id: d for d in dcfs}
            missing = [a.content_id for a in ro.assets
                       if a.content_id not in by_content]
            if missing:
                raise InstallationError(
                    "no DCF supplied for %s" % ", ".join(missing)
                )
            # Replay protection: the same minted RO must not install
            # twice, or exhausted counts could be reset at will.
            if self.storage.seen_before(ro.guid):
                raise InstallationError(
                    "Rights Object %r was already installed (replay)"
                    % ro.ro_id
                )
            key_material = self._recover_key_material(protected_ro)
            kmac, krek = key_material[:16], key_material[16:32]

            # RO integrity and authenticity via the MAC under K_MAC.
            if not self.crypto.hmac_verify(kmac, ro.payload_bytes(),
                                           protected_ro.mac,
                                           label="ro-mac"):
                raise IntegrityError("Rights Object MAC check failed")

            # RO signature: mandatory for Domain ROs, optional otherwise.
            if protected_ro.signature is not None:
                context = self.storage.get_ri_context(
                    ro.rights_issuer_id, self.drm_time())
                self.crypto.pss_verify(
                    context.ri_certificate.public_key,
                    ro.payload_bytes(), protected_ro.signature,
                    label="verify-ro-signature")

            if self.verify_dcf_on_install:
                for asset in ro.assets:
                    self._verify_dcf_hash(
                        asset.dcf_hash, by_content[asset.content_id])

            if self.kdev_optimization:
                c2dev = self.crypto.aes_wrap(self.secure.kdev,
                                             kmac + krek,
                                             label="c2dev-wrap")
                installed = InstalledRightsObject(
                    ro=ro, c2dev=c2dev, mac=protected_ro.mac)
            else:
                # Ablation counterfactual: keep the PKI-protected C, so
                # every access pays the Figure 3 chain again.
                if protected_ro.kem_ciphertext is None:
                    raise InstallationError(
                        "the no-K_DEV ablation supports Device ROs only"
                    )
                installed = InstalledRightsObject(
                    ro=ro, c2dev=None, mac=protected_ro.mac,
                    kem_ciphertext=protected_ro.kem_ciphertext)
            evaluator = RightsEvaluator(ro.rights)
            installed.state = evaluator.initial_state()
            # One transaction: the installed RO, its DCFs and the
            # replay-cache entry land together or not at all. An
            # exception (or, on durable storage, a power loss) between
            # store_ro and remember can no longer leave an installed RO
            # whose re-install would still pass the replay check.
            with self.storage.transaction():
                self.storage.store_ro(installed)
                for item in dcfs:
                    self.storage.store_dcf(item)
                self.storage.remember(ro.guid)
            return installed

    def _recover_key_material(
            self, protected_ro: ProtectedRightsObject) -> bytes:
        """K_MAC ‖ K_REK from the KEM chain or the domain key."""
        if protected_ro.kem_ciphertext is not None:
            try:
                return self.crypto.kem_decrypt(
                    self.secure.device_private_key,
                    protected_ro.kem_ciphertext)
            except CryptoError as exc:
                raise InstallationError(
                    "cannot unwrap RO keys: %s" % exc) from exc
        domain_context = self.storage.get_domain_context(
            protected_ro.ro.domain_id)
        domain_key = self.crypto.aes_unwrap(
            self.secure.kdev, domain_context.wrapped_domain_key)
        try:
            return self.crypto.aes_unwrap(
                domain_key, protected_ro.domain_wrapped_keys)
        except CryptoError as exc:
            raise InstallationError(
                "cannot unwrap Domain RO keys: %s" % exc) from exc

    def _verify_dcf_hash(self, expected: bytes, dcf: DCF) -> None:
        digest = self.crypto.sha1(dcf.to_bytes(), label="dcf-hash")
        if digest != expected:
            raise IntegrityError("DCF hash mismatch — content tampered")

    # ------------------------------------------------------------------
    # Phase 4: Consumption — steps for every access (paper §2.4.4)
    # ------------------------------------------------------------------
    def consume(self, content_id: str,
                permission: PermissionType = PermissionType.PLAY
                ) -> ConsumptionResult:
        """Access protected content once.

        The paper's per-access steps: (1) decrypt ``C2dev`` with
        ``K_DEV``, (2) verify the RO MAC, (3) verify the DCF hash — plus
        the content-path work: unwrap ``K_CEK`` with ``K_REK`` and
        AES-CBC-decrypt the payload. Rights constraints are evaluated and
        consumed (count decrement, first-use timestamps). All terminal
        crypto is tagged ``Phase.CONSUMPTION``.
        """
        with self.crypto.in_phase(Phase.CONSUMPTION), \
                self.tracer.span("agent.consume",
                                 track=Phase.CONSUMPTION.value,
                                 content_id=content_id,
                                 permission=permission.value):
            installed = self.storage.find_ro_for_content(content_id)
            dcf = self.storage.get_dcf(content_id)
            evaluator = RightsEvaluator(installed.ro.rights)
            evaluator.check(permission, installed.state,
                            self.drm_time())

            # Step 1: decrypt C2dev using K_DEV (or, in the no-K_DEV
            # ablation, redo the full PKI unwrap of Figure 3).
            if installed.c2dev is not None:
                key_material = self.crypto.aes_unwrap(
                    self.secure.kdev, installed.c2dev,
                    label="c2dev-unwrap")
            else:
                key_material = self.crypto.kem_decrypt(
                    self.secure.device_private_key,
                    installed.kem_ciphertext, label="c-unwrap-per-access")
            kmac, krek = key_material[:16], key_material[16:32]

            # Step 2: verify RO integrity via its MAC.
            if not self.crypto.hmac_verify(
                    kmac, installed.ro.payload_bytes(), installed.mac,
                    label="ro-mac"):
                raise IntegrityError("Rights Object MAC check failed")

            # Step 3: verify DCF integrity against the hash in the RO.
            asset = installed.ro.asset_for(content_id)
            self._verify_dcf_hash(asset.dcf_hash, dcf)

            # Unlock the content: K_CEK from K_REK, then bulk decryption.
            kcek = self.crypto.aes_unwrap(krek, asset.wrapped_kcek,
                                          label="kcek-unwrap")
            clear = self.crypto.aes_cbc_decrypt(kcek, dcf.iv,
                                                dcf.encrypted_data,
                                                label="content-decrypt")

            # Commit the use against a snapshot: the count decrement
            # and the first-use timestamp replace the stored state as
            # one object, so no half-applied decrement can persist.
            state = installed.state.snapshot()
            evaluator.consume(permission, state, self.drm_time())
            self.storage.set_ro_state(installed.ro_id, state)
            return ConsumptionResult(
                content_id=content_id, ro_id=installed.ro_id,
                clear_content=clear, permission=permission,
            )

    def consume_streaming(self, content_id: str,
                          permission: PermissionType = PermissionType.PLAY,
                          chunk_octets: int = 4096):
        """Progressive playback: yield clear content chunk by chunk.

        All integrity checks (C2dev unwrap, RO MAC, DCF hash) and the
        REL consumption happen up front — playback must not start on
        tampered content — then the AES-CBC payload decrypts chunkwise,
        each chunk chaining from the previous ciphertext block, so a
        player never holds the whole track in memory.
        """
        if chunk_octets <= 0 or chunk_octets % 16 != 0:
            raise ValueError("chunk size must be a positive multiple "
                             "of 16 octets")
        with self.crypto.in_phase(Phase.CONSUMPTION):
            installed = self.storage.find_ro_for_content(content_id)
            dcf = self.storage.get_dcf(content_id)
            evaluator = RightsEvaluator(installed.ro.rights)
            evaluator.check(permission, installed.state,
                            self.drm_time())
            if installed.c2dev is not None:
                key_material = self.crypto.aes_unwrap(
                    self.secure.kdev, installed.c2dev,
                    label="c2dev-unwrap")
            else:
                key_material = self.crypto.kem_decrypt(
                    self.secure.device_private_key,
                    installed.kem_ciphertext,
                    label="c-unwrap-per-access")
            kmac, krek = key_material[:16], key_material[16:32]
            if not self.crypto.hmac_verify(
                    kmac, installed.ro.payload_bytes(), installed.mac,
                    label="ro-mac"):
                raise IntegrityError("Rights Object MAC check failed")
            asset = installed.ro.asset_for(content_id)
            self._verify_dcf_hash(asset.dcf_hash, dcf)
            kcek = self.crypto.aes_unwrap(krek, asset.wrapped_kcek,
                                          label="kcek-unwrap")
            state = installed.state.snapshot()
            evaluator.consume(permission, state, self.drm_time())
            self.storage.set_ro_state(installed.ro_id, state)

        def stream():
            ciphertext = dcf.encrypted_data
            previous_block = dcf.iv
            with self.crypto.in_phase(Phase.CONSUMPTION):
                for offset in range(0, len(ciphertext), chunk_octets):
                    chunk = ciphertext[offset:offset + chunk_octets]
                    if offset + chunk_octets >= len(ciphertext):
                        # Final chunk: the provider's padded decrypt
                        # strips PKCS#7 and meters the same AES blocks
                        # the raw variant would.
                        clear = self.crypto.aes_cbc_decrypt(
                            kcek, previous_block, chunk,
                            label="content-decrypt-chunk")
                    else:
                        clear = self.crypto.aes_cbc_decrypt_raw(
                            kcek, previous_block, chunk,
                            label="content-decrypt-chunk")
                        previous_block = chunk[-16:]
                    yield clear

        return stream()

    def export(self, content_id: str, target_system: str
               ) -> "ExportResult":
        """Export content to another DRM system (REL ``<export>``).

        Performs the full per-access unlock (same cryptographic cost as
        a consumption), verifies the EXPORT permission and its target
        constraint, and — for *move* exports — deletes the local rights
        afterwards, per the REL semantics.
        """
        with self.crypto.in_phase(Phase.CONSUMPTION):
            installed = self.storage.find_ro_for_content(content_id)
            evaluator = RightsEvaluator(installed.ro.rights)
            permission = evaluator.check(PermissionType.EXPORT,
                                         installed.state,
                                         self.drm_time())
            constraint = next(
                (c for c in permission.constraints
                 if isinstance(c, ExportConstraint)), None)
            mode = ExportMode.COPY
            if constraint is not None:
                if not constraint.permits_target(target_system):
                    raise PermissionDeniedError(
                        "export to %r is not authorized" % target_system
                    )
                mode = constraint.mode

            dcf = self.storage.get_dcf(content_id)
            if installed.c2dev is not None:
                key_material = self.crypto.aes_unwrap(
                    self.secure.kdev, installed.c2dev,
                    label="c2dev-unwrap")
            else:
                key_material = self.crypto.kem_decrypt(
                    self.secure.device_private_key,
                    installed.kem_ciphertext,
                    label="c-unwrap-per-access")
            kmac, krek = key_material[:16], key_material[16:32]
            if not self.crypto.hmac_verify(
                    kmac, installed.ro.payload_bytes(), installed.mac,
                    label="ro-mac"):
                raise IntegrityError("Rights Object MAC check failed")
            asset = installed.ro.asset_for(content_id)
            self._verify_dcf_hash(asset.dcf_hash, dcf)
            kcek = self.crypto.aes_unwrap(krek, asset.wrapped_kcek,
                                          label="kcek-unwrap")
            clear = self.crypto.aes_cbc_decrypt(kcek, dcf.iv,
                                                dcf.encrypted_data,
                                                label="content-decrypt")
            state = installed.state.snapshot()
            evaluator.consume(PermissionType.EXPORT, state,
                              self.drm_time())
            if mode is ExportMode.MOVE:
                # Surrender local rights: the RO leaves this device and
                # its replay-cache entry keeps it from coming back.
                self.storage.remove_ro(installed.ro_id)
            else:
                self.storage.set_ro_state(installed.ro_id, state)
            return ExportResult(
                content_id=content_id, target_system=target_system,
                mode=mode, clear_content=clear,
            )

    # ------------------------------------------------------------------
    # Domains (paper §2.3)
    # ------------------------------------------------------------------
    def join_domain(self, rights_issuer, domain_id: str) -> DomainContext:
        """Join a domain: receive the domain key over the PKI channel.

        The domain key is immediately re-wrapped under ``K_DEV`` for
        storage, mirroring the C2dev optimization.
        """
        with self.crypto.in_phase(Phase.REGISTRATION):
            context = self.storage.get_ri_context(rights_issuer.ri_id,
                                                  self.drm_time())
            device_nonce = new_nonce(self.crypto)
            unsigned = JoinDomainRequest(
                device_id=self.device_id, ri_id=context.ri_id,
                domain_id=domain_id, device_nonce=device_nonce,
                request_time=self.drm_time(),
            )
            request = JoinDomainRequest(
                device_id=unsigned.device_id, ri_id=unsigned.ri_id,
                domain_id=unsigned.domain_id,
                device_nonce=unsigned.device_nonce,
                request_time=unsigned.request_time,
                signature=self.crypto.pss_sign(
                    self.secure.device_private_key, unsigned.tbs_bytes()),
            )
            response = rights_issuer.join_domain(request)
            if response.status != ROAP_STATUS_OK:
                raise RegistrationError(
                    "domain join refused: %s" % response.status
                )
            if response.device_nonce != device_nonce:
                raise NonceMismatchError(
                    "JoinDomainResponse does not echo our nonce"
                )
            self.crypto.pss_verify(context.ri_certificate.public_key,
                                   response.tbs_bytes(),
                                   response.signature)
            modulus_octets = \
                self.secure.device_private_key.modulus_octets
            kem_ciphertext = KemCiphertext.split(
                response.protected_domain_key, modulus_octets)
            domain_key = self.crypto.kem_decrypt(
                self.secure.device_private_key, kem_ciphertext)
            wrapped = self.crypto.aes_wrap(self.secure.kdev, domain_key)
            domain_context = DomainContext(
                domain_id=response.domain_id,
                ri_id=rights_issuer.ri_id,
                wrapped_domain_key=wrapped,
                joined_at=self.drm_time(),
            )
            self.storage.store_domain_context(domain_context)
            return domain_context

    def leave_domain(self, rights_issuer, domain_id: str) -> None:
        """Leave a domain: signed 2-pass exchange, then forget the key.

        After this the device can no longer install or consume Domain
        ROs of that domain (its wrapped domain key is erased).
        """
        with self.crypto.in_phase(Phase.REGISTRATION):
            context = self.storage.get_ri_context(rights_issuer.ri_id,
                                                  self.drm_time())
            self.storage.get_domain_context(domain_id)  # must be member
            device_nonce = new_nonce(self.crypto)
            unsigned = LeaveDomainRequest(
                device_id=self.device_id, ri_id=context.ri_id,
                domain_id=domain_id, device_nonce=device_nonce,
                request_time=self.drm_time(),
            )
            request = LeaveDomainRequest(
                device_id=unsigned.device_id, ri_id=unsigned.ri_id,
                domain_id=unsigned.domain_id,
                device_nonce=unsigned.device_nonce,
                request_time=unsigned.request_time,
                signature=self.crypto.pss_sign(
                    self.secure.device_private_key, unsigned.tbs_bytes(),
                    label="sign-leave-domain"),
            )
            response = rights_issuer.leave_domain(request)
            if response.status != ROAP_STATUS_OK:
                raise RegistrationError(
                    "domain leave refused: %s" % response.status
                )
            if response.device_nonce != device_nonce:
                raise NonceMismatchError(
                    "LeaveDomainResponse does not echo our nonce"
                )
            self.crypto.pss_verify(context.ri_certificate.public_key,
                                   response.tbs_bytes(),
                                   response.signature,
                                   label="verify-leave-domain")
            self.storage.remove_domain_context(domain_id)

    # ------------------------------------------------------------------
    # ROAP triggers (RI-initiated exchanges)
    # ------------------------------------------------------------------
    def handle_trigger(self, trigger: RoapTrigger, rights_issuer):
        """Act on a pushed ROAP trigger.

        The trigger signature is verified against the RI Context when one
        exists; a registration trigger may arrive before any context (it
        merely invites the device to establish trust, which the 4-pass
        registration then does properly).
        """
        context = self.storage.ri_contexts.get(trigger.ri_id)
        if context is not None:
            self.crypto.pss_verify(context.ri_certificate.public_key,
                                   trigger.tbs_bytes(),
                                   trigger.signature,
                                   label="verify-trigger")
        elif trigger.type is not TriggerType.REGISTRATION:
            raise RegistrationError(
                "trigger %r requires an existing RI Context"
                % trigger.type.value
            )
        if trigger.type is TriggerType.REGISTRATION:
            return self.register(rights_issuer)
        if trigger.type is TriggerType.RO_ACQUISITION:
            return self.acquire(rights_issuer, trigger.ro_id,
                                domain_id=trigger.domain_id)
        if trigger.type is TriggerType.JOIN_DOMAIN:
            return self.join_domain(rights_issuer, trigger.domain_id)
        if trigger.type is TriggerType.LEAVE_DOMAIN:
            return self.leave_domain(rights_issuer, trigger.domain_id)
        raise RegistrationError(
            "unsupported trigger type %r" % (trigger.type,))
