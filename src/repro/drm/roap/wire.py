"""Wire codecs: every ROAP message to bytes and back.

The rest of the protocol stack passes message *objects*; this module
provides the byte-level transport layer: each message type gets a tagged
encoding and a decoder that reconstructs an object whose canonical bytes
are identical to the original's — so signatures made before transport
verify after it.

:class:`WireChannel` wraps a Rights Issuer behind a byte pipe: every
request and response is round-tripped through ``encode``/``decode`` and
its size recorded in a :class:`MessageLog`. The paper's authors extracted
"information about eg the ROAP message file sizes" from their Java model;
running an agent against a ``WireChannel`` produces the same artifact
here.
"""

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

from ...crypto.kem import KemCiphertext
from .. import serialize
from ..errors import WireDecodeError
from ..certificates import certificate_from_bytes
from ..ocsp import ocsp_response_from_bytes
from ..rel import rights_from_bytes
from ..ro import Asset, ProtectedRightsObject, RightsObject
from . import messages
from .triggers import RoapTrigger, TriggerType


# -- Rights Object / protected RO codecs -------------------------------------

def rights_object_from_payload(blob: bytes) -> RightsObject:
    """Inverse of :meth:`RightsObject.payload_bytes`."""
    data = serialize.decode(blob)
    return RightsObject(
        ro_id=data["ro_id"],
        rights_issuer_id=data["rights_issuer_id"],
        rights=rights_from_bytes(data["rights"]),
        assets=tuple(
            Asset(content_id=a["content_id"], dcf_hash=a["dcf_hash"],
                  wrapped_kcek=a["wrapped_kcek"])
            for a in data["assets"]
        ),
        issued_at=int(data["issued_at"]),
        domain_id=data["domain_id"],
        ro_nonce=data["ro_nonce"],
    )


def protected_ro_to_wire(protected: ProtectedRightsObject) -> dict:
    """A fully invertible wire form (C1/C2 kept separate)."""
    return {
        "ro_payload": protected.ro.payload_bytes(),
        "mac": protected.mac,
        "kem_c1": (protected.kem_ciphertext.c1
                   if protected.kem_ciphertext else None),
        "kem_c2": (protected.kem_ciphertext.c2
                   if protected.kem_ciphertext else None),
        "domain_wrapped": protected.domain_wrapped_keys,
        "signature": protected.signature,
    }


def protected_ro_from_wire(data: dict) -> ProtectedRightsObject:
    """Inverse of :func:`protected_ro_to_wire`."""
    kem = None
    if data["kem_c1"] is not None:
        kem = KemCiphertext(c1=data["kem_c1"], c2=data["kem_c2"])
    return ProtectedRightsObject(
        ro=rights_object_from_payload(data["ro_payload"]),
        mac=data["mac"],
        kem_ciphertext=kem,
        domain_wrapped_keys=data["domain_wrapped"],
        signature=data["signature"],
    )


# -- message codecs ----------------------------------------------------------

def _encode(name: str, body: dict) -> bytes:
    return serialize.encode({"roap": name, "body": body})


def encode_message(message: Any) -> bytes:
    """Serialize any ROAP message (or trigger) to transport bytes."""
    name = type(message).__name__
    if name not in _ENCODERS:
        raise TypeError("no wire encoding for %s" % name)
    return _encode(name, _ENCODERS[name](message))


def decode_message(blob: bytes) -> Any:
    """Rebuild a ROAP message from transport bytes.

    Raises :class:`~repro.drm.errors.WireDecodeError` for unknown tags
    or malformed bodies — a corrupted transport fails loudly, with one
    typed exception, before any crypto runs. A truncated, bit-flipped or
    otherwise garbled blob can therefore always be handled by catching
    ``WireDecodeError`` alone.
    """
    data = serialize.decode(blob)
    if not isinstance(data, dict) or "roap" not in data:
        raise WireDecodeError("not a ROAP wire message")
    name = data["roap"]
    if not isinstance(name, str) or name not in _DECODERS:
        raise WireDecodeError("unknown ROAP message %r" % (name,))
    try:
        return _DECODERS[name](data["body"])
    except WireDecodeError:
        raise
    except (KeyError, TypeError, ValueError, IndexError, AttributeError,
            OverflowError) as exc:
        raise WireDecodeError("malformed %s body" % name) from exc


_ENCODERS: Dict[str, Callable[[Any], dict]] = {
    "DeviceHello": lambda m: {
        "version": m.version, "device_id": m.device_id,
        "algorithms": list(m.supported_algorithms)},
    "RIHello": lambda m: {
        "version": m.version, "ri_id": m.ri_id,
        "session_id": m.session_id, "ri_nonce": m.ri_nonce,
        "algorithms": list(m.selected_algorithms)},
    "RegistrationRequest": lambda m: {
        "session_id": m.session_id, "device_nonce": m.device_nonce,
        "request_time": m.request_time,
        "certificate": m.certificate.to_bytes(),
        "signature": m.signature},
    "RegistrationResponse": lambda m: {
        "status": m.status, "session_id": m.session_id,
        "device_nonce": m.device_nonce,
        "ri_certificate": m.ri_certificate.to_bytes(),
        "ocsp_response": m.ocsp_response.to_bytes(),
        "ri_time": m.ri_time, "signature": m.signature},
    "RORequest": lambda m: {
        "device_id": m.device_id, "ri_id": m.ri_id, "ro_id": m.ro_id,
        "device_nonce": m.device_nonce, "request_time": m.request_time,
        "domain_id": m.domain_id, "signature": m.signature},
    "ROResponse": lambda m: {
        "status": m.status, "device_nonce": m.device_nonce,
        "protected_ro": protected_ro_to_wire(m.protected_ro),
        "signature": m.signature},
    "JoinDomainRequest": lambda m: {
        "device_id": m.device_id, "ri_id": m.ri_id,
        "domain_id": m.domain_id, "device_nonce": m.device_nonce,
        "request_time": m.request_time, "signature": m.signature},
    "JoinDomainResponse": lambda m: {
        "status": m.status, "domain_id": m.domain_id,
        "device_nonce": m.device_nonce,
        "protected_domain_key": m.protected_domain_key,
        "signature": m.signature},
    "LeaveDomainRequest": lambda m: {
        "device_id": m.device_id, "ri_id": m.ri_id,
        "domain_id": m.domain_id, "device_nonce": m.device_nonce,
        "request_time": m.request_time, "signature": m.signature},
    "LeaveDomainResponse": lambda m: {
        "status": m.status, "domain_id": m.domain_id,
        "device_nonce": m.device_nonce, "signature": m.signature},
    "RoapTrigger": lambda m: {
        "type": m.type.value, "ri_id": m.ri_id, "ro_id": m.ro_id,
        "domain_id": m.domain_id, "nonce": m.nonce,
        "signature": m.signature},
}

_DECODERS: Dict[str, Callable[[dict], Any]] = {
    "DeviceHello": lambda b: messages.DeviceHello(
        version=b["version"], device_id=b["device_id"],
        supported_algorithms=tuple(b["algorithms"])),
    "RIHello": lambda b: messages.RIHello(
        version=b["version"], ri_id=b["ri_id"],
        session_id=b["session_id"], ri_nonce=b["ri_nonce"],
        selected_algorithms=tuple(b["algorithms"])),
    "RegistrationRequest": lambda b: messages.RegistrationRequest(
        session_id=b["session_id"], device_nonce=b["device_nonce"],
        request_time=int(b["request_time"]),
        certificate=certificate_from_bytes(b["certificate"]),
        signature=b["signature"]),
    "RegistrationResponse": lambda b: messages.RegistrationResponse(
        status=b["status"], session_id=b["session_id"],
        device_nonce=b["device_nonce"],
        ri_certificate=certificate_from_bytes(b["ri_certificate"]),
        ocsp_response=ocsp_response_from_bytes(b["ocsp_response"]),
        ri_time=int(b["ri_time"]), signature=b["signature"]),
    "RORequest": lambda b: messages.RORequest(
        device_id=b["device_id"], ri_id=b["ri_id"], ro_id=b["ro_id"],
        device_nonce=b["device_nonce"],
        request_time=int(b["request_time"]),
        domain_id=b["domain_id"], signature=b["signature"]),
    "ROResponse": lambda b: messages.ROResponse(
        status=b["status"], device_nonce=b["device_nonce"],
        protected_ro=protected_ro_from_wire(b["protected_ro"]),
        signature=b["signature"]),
    "JoinDomainRequest": lambda b: messages.JoinDomainRequest(
        device_id=b["device_id"], ri_id=b["ri_id"],
        domain_id=b["domain_id"], device_nonce=b["device_nonce"],
        request_time=int(b["request_time"]), signature=b["signature"]),
    "JoinDomainResponse": lambda b: messages.JoinDomainResponse(
        status=b["status"], domain_id=b["domain_id"],
        device_nonce=b["device_nonce"],
        protected_domain_key=b["protected_domain_key"],
        signature=b["signature"]),
    "LeaveDomainRequest": lambda b: messages.LeaveDomainRequest(
        device_id=b["device_id"], ri_id=b["ri_id"],
        domain_id=b["domain_id"], device_nonce=b["device_nonce"],
        request_time=int(b["request_time"]), signature=b["signature"]),
    "LeaveDomainResponse": lambda b: messages.LeaveDomainResponse(
        status=b["status"], domain_id=b["domain_id"],
        device_nonce=b["device_nonce"], signature=b["signature"]),
    "RoapTrigger": lambda b: RoapTrigger(
        type=TriggerType(b["type"]), ri_id=b["ri_id"],
        ro_id=b["ro_id"], domain_id=b["domain_id"], nonce=b["nonce"],
        signature=b["signature"]),
}


# -- logged transport ---------------------------------------------------------

@dataclass(frozen=True)
class WireRecord:
    """One message that crossed the wire."""

    direction: str  # "device->ri" or "ri->device"
    message: str
    octets: int


@dataclass
class MessageLog:
    """Sizes of everything that crossed the wire, in order."""

    records: List[WireRecord] = field(default_factory=list)

    def add(self, direction: str, message: Any, blob: bytes) -> None:
        """Record one transmission."""
        self.records.append(WireRecord(
            direction=direction, message=type(message).__name__,
            octets=len(blob),
        ))

    def total_octets(self) -> int:
        """Total traffic volume."""
        return sum(r.octets for r in self.records)

    def by_message(self) -> Dict[str, Tuple[int, int]]:
        """Message name -> (count, total octets)."""
        totals: Dict[str, Tuple[int, int]] = {}
        for record in self.records:
            count, octets = totals.get(record.message, (0, 0))
            totals[record.message] = (count + 1, octets + record.octets)
        return totals


class WireChannel:
    """A Rights Issuer seen through a byte pipe.

    Exposes the same protocol surface as :class:`RightsIssuer`, but every
    request and response is serialized, logged and decoded — the agent on
    one side and the RI on the other only ever see reconstructed objects,
    exactly as over a real network.
    """

    def __init__(self, rights_issuer) -> None:
        self._ri = rights_issuer
        self.log = MessageLog()

    @property
    def ri_id(self) -> str:
        """The wrapped RI's identity."""
        return self._ri.ri_id

    @property
    def certificate(self):
        """The wrapped RI's certificate."""
        return self._ri.certificate

    def _roundtrip(self, handler, request):
        request_blob = encode_message(request)
        self.log.add("device->ri", request, request_blob)
        response_blob = self._deliver(handler, request, request_blob)
        return decode_message(response_blob)

    def _deliver(self, handler, request, request_blob):
        """Carry one request blob to the RI and its response blob back.

        The single transport hook: subclasses (the fault-injecting
        channel) override this to perturb, drop, duplicate or delay
        either direction while the protocol surface stays identical.
        """
        response = handler(decode_message(request_blob))
        response_blob = encode_message(response)
        self.log.add("ri->device", response, response_blob)
        return response_blob

    def hello(self, device_hello):
        """DeviceHello over the wire."""
        return self._roundtrip(self._ri.hello, device_hello)

    def register(self, request):
        """RegistrationRequest over the wire."""
        return self._roundtrip(self._ri.register, request)

    def request_ro(self, request):
        """RORequest over the wire."""
        return self._roundtrip(self._ri.request_ro, request)

    def join_domain(self, request):
        """JoinDomainRequest over the wire."""
        return self._roundtrip(self._ri.join_domain, request)

    def leave_domain(self, request):
        """LeaveDomainRequest over the wire."""
        return self._roundtrip(self._ri.leave_domain, request)
