"""The Rights Object Acquisition Protocol (ROAP).

ROAP is the communication protocol between DRM Agent and Rights Issuer
(paper §2): the 4-pass registration (DeviceHello, RIHello,
RegistrationRequest, RegistrationResponse), the 2-pass RO acquisition
(RORequest, ROResponse) and the 2-pass domain join
(JoinDomainRequest/Response). :mod:`~repro.drm.roap.wire` carries the
messages as canonical bytes; :mod:`~repro.drm.roap.faults` injects
deterministic transport faults into that byte pipe.
"""

from .faults import (FaultEvent, FaultKind, FaultLog, FaultPlan,
                     FaultPolicy, FaultyChannel)
from .messages import (DeviceHello, JoinDomainRequest, JoinDomainResponse,
                       LeaveDomainRequest, LeaveDomainResponse,
                       RegistrationRequest, RegistrationResponse, RIHello,
                       ROAP_STATUS_OK, RORequest, ROResponse, new_nonce)
from .triggers import RoapTrigger, TriggerType, make_trigger
from .wire import (MessageLog, WireChannel, WireRecord, decode_message,
                   encode_message)

__all__ = [
    "FaultEvent", "FaultKind", "FaultLog", "FaultPlan", "FaultPolicy",
    "FaultyChannel",
    "DeviceHello", "JoinDomainRequest", "JoinDomainResponse",
    "LeaveDomainRequest", "LeaveDomainResponse", "RegistrationRequest",
    "RegistrationResponse", "RIHello", "ROAP_STATUS_OK", "RORequest",
    "ROResponse", "new_nonce", "RoapTrigger", "TriggerType",
    "make_trigger", "MessageLog", "WireChannel", "WireRecord",
    "decode_message", "encode_message",
]
