"""Fault injection for the ROAP byte transport.

The paper prices each ROAP run exactly once, but a real terminal speaks
ROAP over a lossy bearer (GPRS of the period dropped, delayed and
garbled packets routinely), and every retry re-spends the RSA/AES/SHA-1
cycles the cost model budgets. This module provides the lossy bearer:

* :class:`FaultPolicy` — per-message-type fault rates (drop, truncate,
  bit-flip, duplicate, reorder, delay, RI error status).
* :class:`FaultPlan` — a seeded, deterministic decision source: given
  the same seed and the same protocol run, the exact same transmissions
  fault in the exact same way, so every faulty run is reproducible.
* :class:`FaultLog` — the fault mirror of
  :class:`~repro.drm.roap.wire.MessageLog`: every injected fault, in
  order, with direction and detail.
* :class:`FaultyChannel` — a :class:`~repro.drm.roap.wire.WireChannel`
  whose transport applies the plan. Lost or garbled deliveries cost the
  device a timeout on the shared
  :class:`~repro.drm.clock.SimulationClock` and surface as
  :class:`~repro.drm.errors.ChannelTimeoutError`; corruption that
  reaches the peer exercises the hardened decoders and the signature
  checks exactly as real corruption would.

The channel only injects faults; recovering from them is the job of
:class:`~repro.drm.session.RoapSession`, which retries with backoff and
fresh nonces until the flow completes or its budget is spent.
"""

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...crypto.errors import CryptoError
from ..errors import (ChannelTimeoutError, DRMError, RoapStatusError,
                      WireDecodeError)
from .wire import WireChannel, decode_message, encode_message

#: Device-side response timeout in simulation seconds: how long the
#: agent waits before concluding a request or response was lost.
DEFAULT_TIMEOUT_SECONDS = 30

#: Status string injected by :attr:`FaultKind.ERROR_STATUS` faults.
SERVER_BUSY = "ServerBusy"


class FaultKind(enum.Enum):
    """Every way a transmission can go wrong on the modeled bearer."""

    DROP = "drop"                  # message never arrives
    TRUNCATE = "truncate"          # tail cut off in transit
    BIT_FLIP = "bit-flip"          # one bit corrupted in transit
    DUPLICATE = "duplicate"        # delivered twice (replay)
    REORDER = "reorder"            # a stale message overtakes the fresh one
    DELAY = "delay"                # late delivery (possibly past timeout)
    ERROR_STATUS = "error-status"  # RI sheds load with an error status

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class FaultPolicy:
    """Per-transmission fault probabilities for one message type.

    Each rate is the probability that the corresponding fault hits one
    transmission; at most one fault applies per transmission, so the
    rates must sum to at most 1. ``delay_seconds`` sizes DELAY (and
    REORDER hold-back) faults; a delay at or beyond the channel timeout
    behaves like a drop.
    """

    drop: float = 0.0
    truncate: float = 0.0
    bit_flip: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    delay: float = 0.0
    error_status: float = 0.0
    delay_seconds: int = 5

    def __post_init__(self) -> None:
        if any(rate < 0.0 for _, rate in self.rates()):
            raise ValueError("fault rates must be non-negative")
        if self.total_rate() > 1.0 + 1e-9:
            raise ValueError("fault rates must sum to at most 1")
        if self.delay_seconds < 0:
            raise ValueError("delay must be non-negative")

    def rates(self) -> Tuple[Tuple[FaultKind, float], ...]:
        """The (kind, probability) pairs, in deterministic order."""
        return (
            (FaultKind.DROP, self.drop),
            (FaultKind.TRUNCATE, self.truncate),
            (FaultKind.BIT_FLIP, self.bit_flip),
            (FaultKind.DUPLICATE, self.duplicate),
            (FaultKind.REORDER, self.reorder),
            (FaultKind.DELAY, self.delay),
            (FaultKind.ERROR_STATUS, self.error_status),
        )

    def total_rate(self) -> float:
        """Probability that any fault hits one transmission."""
        return sum(rate for _, rate in self.rates())

    @classmethod
    def loss(cls, rate: float) -> "FaultPolicy":
        """Pure message loss at ``rate`` — the canonical lossy bearer."""
        return cls(drop=rate)

    @classmethod
    def mixed(cls, rate: float, delay_seconds: int = 5) -> "FaultPolicy":
        """``rate`` spread evenly over every fault kind."""
        share = rate / 7.0
        return cls(drop=share, truncate=share, bit_flip=share,
                   duplicate=share, reorder=share, delay=share,
                   error_status=share, delay_seconds=delay_seconds)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, mirroring a wire record."""

    sequence: int
    direction: str  # "device->ri" or "ri->device"
    message: str
    kind: FaultKind
    detail: str = ""


@dataclass
class FaultLog:
    """Everything the fault plan did to this channel, in order."""

    events: List[FaultEvent] = field(default_factory=list)

    def add(self, direction: str, message: str, kind: FaultKind,
            detail: str = "") -> FaultEvent:
        """Record one injected fault."""
        event = FaultEvent(sequence=len(self.events), direction=direction,
                           message=message, kind=kind, detail=detail)
        self.events.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def count(self, kind: Optional[FaultKind] = None) -> int:
        """Number of injected faults, optionally of one kind."""
        if kind is None:
            return len(self.events)
        return sum(1 for event in self.events if event.kind is kind)

    def by_kind(self) -> Dict[FaultKind, int]:
        """Fault kind -> occurrence count."""
        totals: Dict[FaultKind, int] = {}
        for event in self.events:
            totals[event.kind] = totals.get(event.kind, 0) + 1
        return totals

    def by_message(self) -> Dict[str, int]:
        """Message name -> number of faults that hit it."""
        totals: Dict[str, int] = {}
        for event in self.events:
            totals[event.message] = totals.get(event.message, 0) + 1
        return totals


class FaultPlan:
    """Seeded, deterministic fault decisions, composable per message type.

    ``default`` applies to every transmission; ``per_message`` overrides
    it for specific message type names (e.g. only fault
    ``"RegistrationRequest"``). The same seed always yields the same
    decision sequence, so a faulty protocol run is exactly as
    reproducible as a clean one.
    """

    def __init__(self, seed: str = "fault-plan",
                 default: FaultPolicy = FaultPolicy(),
                 per_message: Optional[Dict[str, FaultPolicy]] = None
                 ) -> None:
        self.seed = seed
        self.default = default
        self.per_message = dict(per_message or {})
        self._rng = random.Random(seed)

    @classmethod
    def lossy(cls, seed: str, rate: float) -> "FaultPlan":
        """A plan dropping every message type at ``rate``."""
        return cls(seed=seed, default=FaultPolicy.loss(rate))

    def policy_for(self, message_name: str) -> FaultPolicy:
        """The effective policy for one message type."""
        return self.per_message.get(message_name, self.default)

    def draw(self, message_name: str) -> Optional[FaultKind]:
        """Decide the fault (or None) for one transmission."""
        policy = self.policy_for(message_name)
        if policy.total_rate() <= 0.0:
            return None
        u = self._rng.random()
        cumulative = 0.0
        for kind, rate in policy.rates():
            cumulative += rate
            if u < cumulative:
                return kind
        return None

    def position(self, length: int) -> int:
        """A deterministic cut/flip position inside ``length`` octets."""
        if length <= 0:
            return 0
        return self._rng.randrange(length)


class FaultyChannel(WireChannel):
    """A :class:`WireChannel` whose transport follows a fault plan.

    Semantics per fault kind, matched to what a real bearer does:

    * DROP — the blob vanishes; the device waits out ``timeout_seconds``
      on the simulation clock and raises
      :class:`~repro.drm.errors.ChannelTimeoutError`.
    * TRUNCATE / BIT_FLIP — the blob is corrupted in transit. If the
      receiver can no longer parse or validate it, an uplink corruption
      is discarded by the RI (device times out) while a downlink
      corruption surfaces to the device as ``WireDecodeError`` or a
      failed signature — both retryable.
    * DUPLICATE — the blob is delivered twice. Uplink duplicates hit the
      RI's nonce replay cache (idempotency); downlink duplicates only
      cost octets.
    * REORDER — downlink: the previous response of the same type
      overtakes the fresh one (the device sees a stale message and its
      nonce check fires). Uplink: modeled as an in-order delay.
    * DELAY — the clock advances by the policy's ``delay_seconds``; a
      delay at or past the timeout is indistinguishable from a drop.
    * ERROR_STATUS — the RI front-end sheds the request with an
      unsigned ``ServerBusy`` status
      (:class:`~repro.drm.errors.RoapStatusError`).
    """

    def __init__(self, rights_issuer, plan: FaultPlan, clock,
                 timeout_seconds: int = DEFAULT_TIMEOUT_SECONDS) -> None:
        super().__init__(rights_issuer)
        if timeout_seconds <= 0:
            raise ValueError("channel timeout must be positive")
        self.plan = plan
        self.clock = clock
        self.timeout_seconds = timeout_seconds
        self.faults = FaultLog()
        self._held_responses: Dict[str, bytes] = {}

    # -- helpers ----------------------------------------------------------
    def _expire(self, name: str) -> bytes:
        """Wait out the timeout and report the exchange as lost."""
        self.clock.advance(self.timeout_seconds)
        raise ChannelTimeoutError(
            "no response to %s within %d s" % (name, self.timeout_seconds))

    def _corrupt(self, blob: bytes, kind: FaultKind, direction: str,
                 name: str) -> bytes:
        if kind is FaultKind.TRUNCATE:
            cut = self.plan.position(len(blob))
            self.faults.add(direction, name, kind,
                            "cut at octet %d of %d" % (cut, len(blob)))
            return blob[:cut]
        octet = self.plan.position(len(blob))
        bit = self.plan.position(8)
        self.faults.add(direction, name, kind,
                        "flipped bit %d of octet %d" % (bit, octet))
        mutated = bytearray(blob)
        mutated[octet] ^= 1 << bit
        return bytes(mutated)

    # -- transport --------------------------------------------------------
    def _deliver(self, handler, request, request_blob):
        name = type(request).__name__
        kind = self.plan.draw(name)
        policy = self.plan.policy_for(name)
        blob = request_blob
        corrupted = False

        if kind is FaultKind.DROP:
            self.faults.add("device->ri", name, kind,
                            "request lost by the bearer")
            return self._expire(name)
        if kind is FaultKind.ERROR_STATUS:
            self.faults.add("device->ri", name, kind,
                            "RI shed the request with %s" % SERVER_BUSY)
            raise RoapStatusError(
                SERVER_BUSY, "RI refused %s: %s" % (name, SERVER_BUSY))
        if kind in (FaultKind.DELAY, FaultKind.REORDER):
            self.faults.add("device->ri", name, kind,
                            "delivered %d s late" % policy.delay_seconds)
            if policy.delay_seconds >= self.timeout_seconds:
                return self._expire(name)
            self.clock.advance(policy.delay_seconds)
        if kind in (FaultKind.TRUNCATE, FaultKind.BIT_FLIP):
            blob = self._corrupt(blob, kind, "device->ri", name)
            corrupted = True

        try:
            message = decode_message(blob)
        except WireDecodeError:
            if not corrupted:
                raise
            # The RI cannot parse the garbled request and discards it;
            # from the device's side the exchange simply times out.
            return self._expire(name)
        try:
            response = handler(message)
            if kind is FaultKind.DUPLICATE:
                self.faults.add("device->ri", name, kind,
                                "request delivered twice")
                self.log.add("device->ri", request, blob)
                response = handler(message)
        except (DRMError, CryptoError):
            if not corrupted:
                raise
            # A corrupted-but-parseable request failed the RI's checks
            # (typically the signature); the RI sends nothing back.
            return self._expire(name)

        return self._deliver_response(response)

    def _deliver_response(self, response) -> bytes:
        name = type(response).__name__
        response_blob = encode_message(response)
        self.log.add("ri->device", response, response_blob)
        kind = self.plan.draw(name)
        policy = self.plan.policy_for(name)

        if kind is FaultKind.DROP:
            self.faults.add("ri->device", name, kind,
                            "response lost by the bearer")
            return self._expire(name)
        if kind is FaultKind.ERROR_STATUS:
            self.faults.add("ri->device", name, kind,
                            "response replaced by %s" % SERVER_BUSY)
            raise RoapStatusError(
                SERVER_BUSY,
                "RI replaced %s with status %s" % (name, SERVER_BUSY))
        if kind is FaultKind.DELAY:
            self.faults.add("ri->device", name, kind,
                            "delivered %d s late" % policy.delay_seconds)
            if policy.delay_seconds >= self.timeout_seconds:
                return self._expire(name)
            self.clock.advance(policy.delay_seconds)
            return response_blob
        if kind is FaultKind.REORDER:
            held = self._held_responses.get(name)
            self._held_responses[name] = response_blob
            if held is not None:
                self.faults.add("ri->device", name, kind,
                                "stale %s overtook the fresh one" % name)
                return held
            self.faults.add("ri->device", name, kind,
                            "nothing in flight to reorder with")
            return response_blob
        if kind is FaultKind.DUPLICATE:
            self.faults.add("ri->device", name, kind,
                            "response delivered twice")
            self.log.add("ri->device", response, response_blob)
            return response_blob
        if kind in (FaultKind.TRUNCATE, FaultKind.BIT_FLIP):
            return self._corrupt(response_blob, kind, "ri->device", name)
        return response_blob
