"""ROAP Triggers: RI-initiated protocol starts.

The DRM specification lets the Rights Issuer push a small signed *trigger*
to the device (typically over WAP push or in a browsing session); on
reception the DRM Agent initiates the indicated ROAP exchange. Triggers
are what make the "buy on the web, rights arrive on the phone" flow work.

Trigger types modeled: registrationRequest, roAcquisition, joinDomain,
leaveDomain. The agent-side dispatcher lives in
:meth:`repro.drm.agent.DRMAgent.handle_trigger`.
"""

import enum
from dataclasses import dataclass
from typing import Optional

from .. import serialize


class TriggerType(enum.Enum):
    """The ROAP exchanges a trigger can initiate."""

    REGISTRATION = "registrationRequest"
    RO_ACQUISITION = "roAcquisition"
    JOIN_DOMAIN = "joinDomain"
    LEAVE_DOMAIN = "leaveDomain"


@dataclass(frozen=True)
class RoapTrigger:
    """A signed invitation from the RI to start a ROAP exchange."""

    type: TriggerType
    ri_id: str
    ro_id: Optional[str] = None
    domain_id: Optional[str] = None
    nonce: bytes = b""
    signature: bytes = b""

    def __post_init__(self) -> None:
        if self.type is TriggerType.RO_ACQUISITION and self.ro_id is None:
            raise ValueError("an roAcquisition trigger names an RO")
        if self.type in (TriggerType.JOIN_DOMAIN,
                         TriggerType.LEAVE_DOMAIN) \
                and self.domain_id is None:
            raise ValueError("domain triggers name a domain")

    def tbs_bytes(self) -> bytes:
        """The signed body (everything but the signature)."""
        return serialize.encode({
            "message": "RoapTrigger",
            "type": self.type.value,
            "ri_id": self.ri_id,
            "ro_id": self.ro_id,
            "domain_id": self.domain_id,
            "nonce": self.nonce,
        })

    def to_bytes(self) -> bytes:
        """Transport bytes."""
        return serialize.encode({
            "tbs": self.tbs_bytes(),
            "signature": self.signature,
        })


def make_trigger(trigger_type: TriggerType, ri_id: str, keypair, crypto,
                 ro_id: Optional[str] = None,
                 domain_id: Optional[str] = None) -> RoapTrigger:
    """Build and sign a trigger (RI side)."""
    unsigned = RoapTrigger(
        type=trigger_type, ri_id=ri_id, ro_id=ro_id,
        domain_id=domain_id, nonce=crypto.random_bytes(14),
    )
    return RoapTrigger(
        type=unsigned.type, ri_id=unsigned.ri_id, ro_id=unsigned.ro_id,
        domain_id=unsigned.domain_id, nonce=unsigned.nonce,
        signature=crypto.pss_sign(keypair, unsigned.tbs_bytes()),
    )
