"""ROAP message types with canonical serialization.

Every message provides ``tbs_bytes()`` (the to-be-signed body) and
``to_bytes()`` (the transport form). Messages are real byte strings, so the
"ROAP message file sizes" the paper extracted from its Java model arise
here as genuine serialized lengths — the hashes the PSS signatures compute
run over exactly these bytes.

Nonces bind responses to requests (replay protection); the standard uses
at least 14 octets of entropy, which :func:`new_nonce` follows.
"""

from dataclasses import dataclass
from typing import Optional, Tuple

from .. import serialize
from ..certificates import Certificate
from ..ocsp import OCSPResponse
from ..ro import ProtectedRightsObject

#: Status string for successful ROAP responses.
ROAP_STATUS_OK = "Success"

#: Nonce length in octets (the standard mandates >= 14 octets).
NONCE_LENGTH = 14


def new_nonce(crypto) -> bytes:
    """Draw a fresh ROAP nonce from the provider's DRBG."""
    return crypto.random_bytes(NONCE_LENGTH)


@dataclass(frozen=True)
class DeviceHello:
    """ROAP-DeviceHello: the device advertises itself and its algorithms."""

    version: str
    device_id: str
    supported_algorithms: Tuple[str, ...]

    def to_bytes(self) -> bytes:
        """Transport bytes."""
        return serialize.encode({
            "message": "DeviceHello",
            "version": self.version,
            "device_id": self.device_id,
            "algorithms": list(self.supported_algorithms),
        })


@dataclass(frozen=True)
class RIHello:
    """ROAP-RIHello: the RI answers with its identity and a session."""

    version: str
    ri_id: str
    session_id: str
    ri_nonce: bytes
    selected_algorithms: Tuple[str, ...]

    def to_bytes(self) -> bytes:
        """Transport bytes."""
        return serialize.encode({
            "message": "RIHello",
            "version": self.version,
            "ri_id": self.ri_id,
            "session_id": self.session_id,
            "ri_nonce": self.ri_nonce,
            "algorithms": list(self.selected_algorithms),
        })


@dataclass(frozen=True)
class RegistrationRequest:
    """ROAP-RegistrationRequest: signed, carries the device certificate."""

    session_id: str
    device_nonce: bytes
    request_time: int
    certificate: Certificate
    signature: bytes = b""

    def tbs_bytes(self) -> bytes:
        """The signed body (everything but the signature)."""
        return serialize.encode({
            "message": "RegistrationRequest",
            "session_id": self.session_id,
            "device_nonce": self.device_nonce,
            "request_time": self.request_time,
            "certificate": self.certificate.to_bytes(),
        })

    def to_bytes(self) -> bytes:
        """Transport bytes."""
        return serialize.encode({
            "tbs": self.tbs_bytes(),
            "signature": self.signature,
        })


@dataclass(frozen=True)
class RegistrationResponse:
    """ROAP-RegistrationResponse: signed, carries RI cert + OCSP response.

    ``ri_time`` is the RI's current DRM Time: devices resynchronize
    their (drift-prone) secure clock from it during registration, which
    is what keeps datetime constraints and certificate windows
    enforceable on terminals without a network time source.
    """

    status: str
    session_id: str
    device_nonce: bytes
    ri_certificate: Certificate
    ocsp_response: OCSPResponse
    ri_time: int = 0
    signature: bytes = b""

    def tbs_bytes(self) -> bytes:
        """The signed body (everything but the signature)."""
        return serialize.encode({
            "message": "RegistrationResponse",
            "status": self.status,
            "session_id": self.session_id,
            "device_nonce": self.device_nonce,
            "ri_certificate": self.ri_certificate.to_bytes(),
            "ocsp_response": self.ocsp_response.to_bytes(),
            "ri_time": self.ri_time,
        })

    def to_bytes(self) -> bytes:
        """Transport bytes."""
        return serialize.encode({
            "tbs": self.tbs_bytes(),
            "signature": self.signature,
        })


@dataclass(frozen=True)
class RORequest:
    """ROAP-RORequest: signed request for one Rights Object."""

    device_id: str
    ri_id: str
    ro_id: str
    device_nonce: bytes
    request_time: int
    domain_id: Optional[str] = None
    signature: bytes = b""

    def tbs_bytes(self) -> bytes:
        """The signed body (everything but the signature)."""
        return serialize.encode({
            "message": "RORequest",
            "device_id": self.device_id,
            "ri_id": self.ri_id,
            "ro_id": self.ro_id,
            "device_nonce": self.device_nonce,
            "request_time": self.request_time,
            "domain_id": self.domain_id,
        })

    def to_bytes(self) -> bytes:
        """Transport bytes."""
        return serialize.encode({
            "tbs": self.tbs_bytes(),
            "signature": self.signature,
        })


@dataclass(frozen=True)
class ROResponse:
    """ROAP-ROResponse: signed, carries the protected Rights Object."""

    status: str
    device_nonce: bytes
    protected_ro: ProtectedRightsObject
    signature: bytes = b""

    def tbs_bytes(self) -> bytes:
        """The signed body (everything but the signature)."""
        return serialize.encode({
            "message": "ROResponse",
            "status": self.status,
            "device_nonce": self.device_nonce,
            "protected_ro": self.protected_ro.to_bytes(),
        })

    def to_bytes(self) -> bytes:
        """Transport bytes."""
        return serialize.encode({
            "tbs": self.tbs_bytes(),
            "signature": self.signature,
        })


@dataclass(frozen=True)
class JoinDomainRequest:
    """ROAP-JoinDomainRequest: signed request to join a device domain."""

    device_id: str
    ri_id: str
    domain_id: str
    device_nonce: bytes
    request_time: int
    signature: bytes = b""

    def tbs_bytes(self) -> bytes:
        """The signed body (everything but the signature)."""
        return serialize.encode({
            "message": "JoinDomainRequest",
            "device_id": self.device_id,
            "ri_id": self.ri_id,
            "domain_id": self.domain_id,
            "device_nonce": self.device_nonce,
            "request_time": self.request_time,
        })

    def to_bytes(self) -> bytes:
        """Transport bytes."""
        return serialize.encode({
            "tbs": self.tbs_bytes(),
            "signature": self.signature,
        })


@dataclass(frozen=True)
class LeaveDomainRequest:
    """ROAP-LeaveDomainRequest: signed request to leave a domain.

    The signature proves to the RI that the device itself asked to
    leave — required before the RI may stop counting it against the
    domain size limit.
    """

    device_id: str
    ri_id: str
    domain_id: str
    device_nonce: bytes
    request_time: int
    signature: bytes = b""

    def tbs_bytes(self) -> bytes:
        """The signed body (everything but the signature)."""
        return serialize.encode({
            "message": "LeaveDomainRequest",
            "device_id": self.device_id,
            "ri_id": self.ri_id,
            "domain_id": self.domain_id,
            "device_nonce": self.device_nonce,
            "request_time": self.request_time,
        })

    def to_bytes(self) -> bytes:
        """Transport bytes."""
        return serialize.encode({
            "tbs": self.tbs_bytes(),
            "signature": self.signature,
        })


@dataclass(frozen=True)
class LeaveDomainResponse:
    """ROAP-LeaveDomainResponse: the RI acknowledges the departure."""

    status: str
    domain_id: str
    device_nonce: bytes
    signature: bytes = b""

    def tbs_bytes(self) -> bytes:
        """The signed body (everything but the signature)."""
        return serialize.encode({
            "message": "LeaveDomainResponse",
            "status": self.status,
            "domain_id": self.domain_id,
            "device_nonce": self.device_nonce,
        })

    def to_bytes(self) -> bytes:
        """Transport bytes."""
        return serialize.encode({
            "tbs": self.tbs_bytes(),
            "signature": self.signature,
        })


@dataclass(frozen=True)
class JoinDomainResponse:
    """ROAP-JoinDomainResponse: carries the KEM-protected domain key.

    The RI delivers the symmetric domain key to each trusted member device
    through the same PKI mechanism that protects Device-RO keys
    (paper §2.3): the key rides in ``C1 ‖ C2`` encapsulated to the
    device's public key.
    """

    status: str
    domain_id: str
    device_nonce: bytes
    protected_domain_key: bytes  # C1 || C2 of the KEM encapsulation
    signature: bytes = b""

    def tbs_bytes(self) -> bytes:
        """The signed body (everything but the signature)."""
        return serialize.encode({
            "message": "JoinDomainResponse",
            "status": self.status,
            "domain_id": self.domain_id,
            "device_nonce": self.device_nonce,
            "protected_domain_key": self.protected_domain_key,
        })

    def to_bytes(self) -> bytes:
        """Transport bytes."""
        return serialize.encode({
            "tbs": self.tbs_bytes(),
            "signature": self.signature,
        })
