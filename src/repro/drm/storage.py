"""Device-side storage model.

The standard leaves RO/DCF storage details to the CA's robustness rules;
the obvious common requirement (paper §2.4.3) is that content and rights
are stored securely. The model splits storage in two:

* :class:`SecureStorage` — the scarce, costly on-chip secure memory. Only
  the device key ``K_DEV`` and the device's RSA private key live here.
* :class:`DeviceStorage` — ordinary flash. DCFs (always encrypted),
  installed ROs (keys wrapped in ``C2dev``), RI Contexts and domain
  contexts are safe here because everything sensitive is wrapped.
"""

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..crypto.rsa import RSAPrivateKey
from ..obs.tracer import NULL_TRACER
from .certificates import Certificate
from .dcf import DCF
from .errors import (ContextExpiredError, NotRegisteredError,
                     UnknownContentError)
from .rel import RightsState
from .ro import InstalledRightsObject


@dataclass
class RIContext:
    """The trusted relationship with one RI, from the agent's viewpoint.

    Created by a successful 4-pass registration; its existence, integrity
    and validity must be verified before any further interaction with that
    RI (paper §2.4.1).
    """

    ri_id: str
    ri_certificate: Certificate
    session_id: str
    registered_at: int
    expires_at: int
    selected_algorithms: tuple

    def is_valid(self, now: int) -> bool:
        """Whether the context can still be used at time ``now``."""
        return now <= self.expires_at


@dataclass
class DomainContext:
    """Membership in one domain: the shared key, wrapped under K_DEV."""

    domain_id: str
    ri_id: str
    wrapped_domain_key: bytes
    joined_at: int


@dataclass
class SecureStorage:
    """On-chip secure memory: the only place clear device secrets live."""

    device_private_key: Optional[RSAPrivateKey] = None
    kdev: Optional[bytes] = None


@dataclass
class DeviceStorage:
    """Ordinary device storage for wrapped/encrypted DRM state.

    ``replay_cache`` records the GUIDs of every RO ever installed, so a
    stateful RO cannot be re-installed to reset its constraint state
    (the standard's RO replay protection).

    All mutators route through :meth:`transaction`: inside a
    ``with storage.transaction():`` block they are buffered and applied
    together at exit, so an exception between two related mutations
    (e.g. :meth:`store_ro` and :meth:`remember`) can never leave the
    pair half-applied — the replay guard and the installed RO appear
    atomically or not at all. Outside a transaction each mutator applies
    immediately, preserving the historical direct-call behavior.
    :class:`~repro.store.transactional.TransactionalStorage` extends the
    same hooks with a write-ahead journal so the atomicity also holds
    across power loss.
    """

    dcfs: Dict[str, DCF] = field(default_factory=dict)
    installed_ros: Dict[str, InstalledRightsObject] = \
        field(default_factory=dict)
    ri_contexts: Dict[str, RIContext] = field(default_factory=dict)
    domain_contexts: Dict[str, DomainContext] = field(default_factory=dict)
    replay_cache: set = field(default_factory=set)
    _txn: Optional[List[Tuple[str, tuple]]] = field(
        default=None, init=False, repr=False, compare=False)

    #: Observability sink; a plain class attribute (not a dataclass
    #: field) so pre-existing construction sites stay untouched. The
    #: owning agent points this at its tracer.
    tracer = NULL_TRACER

    # -- transaction machinery ---------------------------------------------
    @contextmanager
    def transaction(self) -> Iterator["DeviceStorage"]:
        """All-or-nothing mutation scope (reentrant: inner blocks join).

        Mutations inside the block are deferred; the commit point is the
        block's successful exit. An exception unwinds with no mutation
        applied. Reads inside a transaction see the pre-transaction
        state — callers must not read their own uncommitted writes.
        """
        if self._txn is not None:
            yield self
            return
        with self.tracer.span("storage.transaction", track="store") as span:
            self._begin()
            self._txn = []
            try:
                yield self
            except BaseException:
                self._txn = None
                span.set("outcome", "rolled-back")
                raise
            ops, self._txn = self._txn, None
            span.set("operations", len(ops))
            if ops:
                self._precommit()
                self.tracer.event("storage.commit", track="store",
                                  operations=len(ops))
            for op, args in ops:
                getattr(self, "_do_" + op)(*args)

    def _begin(self) -> None:
        """Hook: a new outermost transaction opened."""

    def _precommit(self) -> None:
        """Hook: the commit point — runs before any RAM apply."""

    def _mutate(self, op: str, *args) -> None:
        if self._txn is None:
            getattr(self, "_do_" + op)(*args)
        else:
            self._txn.append((op, args))

    # -- DCFs -------------------------------------------------------------
    def store_dcf(self, dcf: DCF) -> None:
        """File a (still encrypted) DCF by its content id."""
        self._mutate("store_dcf", dcf)

    def _do_store_dcf(self, dcf: DCF) -> None:
        self.dcfs[dcf.content_id] = dcf

    def get_dcf(self, content_id: str) -> DCF:
        """Look up a DCF; raises :class:`UnknownContentError` if absent."""
        try:
            return self.dcfs[content_id]
        except KeyError:
            raise UnknownContentError(
                "no DCF stored for %r" % content_id) from None

    # -- installed ROs ----------------------------------------------------
    def store_ro(self, installed: InstalledRightsObject) -> None:
        """File an installed RO by its RO id."""
        self._mutate("store_ro", installed)

    def _do_store_ro(self, installed: InstalledRightsObject) -> None:
        self.installed_ros[installed.ro_id] = installed

    def remove_ro(self, ro_id: str) -> None:
        """Delete an installed RO (move-export surrenders rights)."""
        self._mutate("remove_ro", ro_id)

    def _do_remove_ro(self, ro_id: str) -> None:
        self.installed_ros.pop(ro_id, None)

    def set_ro_state(self, ro_id: str, state: RightsState) -> None:
        """Replace one installed RO's constraint state wholesale.

        The count decrement and the first-use timestamp of a
        consumption travel together in the one ``state`` object, so a
        transaction can never persist half of them.
        """
        self._mutate("set_ro_state", ro_id, state)

    def _do_set_ro_state(self, ro_id: str, state: RightsState) -> None:
        installed = self.installed_ros.get(ro_id)
        if installed is not None:
            installed.state = state

    def find_ro_for_content(self, content_id: str) -> InstalledRightsObject:
        """The first installed RO governing ``content_id``."""
        for installed in self.installed_ros.values():
            if installed.covers(content_id):
                return installed
        raise UnknownContentError(
            "no installed Rights Object for %r" % content_id
        )

    # -- RI contexts ------------------------------------------------------
    def store_ri_context(self, context: RIContext) -> None:
        """File the trusted-RI record established by registration."""
        self._mutate("store_ri_context", context)

    def _do_store_ri_context(self, context: RIContext) -> None:
        self.ri_contexts[context.ri_id] = context

    def get_ri_context(self, ri_id: str, now: int) -> RIContext:
        """The valid RI Context for ``ri_id``.

        Raises :class:`NotRegisteredError` when no context exists and
        the more specific :class:`ContextExpiredError` (a subclass) when
        one exists but is past ``RI_CONTEXT_LIFETIME`` — the session
        layer cures the latter by re-registering, so an expired context
        degrades gracefully instead of failing opaquely.
        """
        context = self.ri_contexts.get(ri_id)
        if context is None:
            raise NotRegisteredError(
                "no RI Context for %r — register first" % ri_id
            )
        if not context.is_valid(now):
            raise ContextExpiredError(
                "RI Context for %r expired at %d (now %d) — re-register"
                % (ri_id, context.expires_at, now)
            )
        return context

    # -- domain contexts ---------------------------------------------------
    def store_domain_context(self, context: DomainContext) -> None:
        """File a domain membership record."""
        self._mutate("store_domain_context", context)

    def _do_store_domain_context(self, context: DomainContext) -> None:
        self.domain_contexts[context.domain_id] = context

    def get_domain_context(self, domain_id: str) -> DomainContext:
        """The domain context for ``domain_id``; raises if not a member."""
        context = self.domain_contexts.get(domain_id)
        if context is None:
            raise NotRegisteredError(
                "device is not a member of domain %r" % domain_id
            )
        return context

    def remove_domain_context(self, domain_id: str) -> None:
        """Forget a domain membership (LeaveDomain)."""
        self._mutate("remove_domain_context", domain_id)

    def _do_remove_domain_context(self, domain_id: str) -> None:
        self.domain_contexts.pop(domain_id, None)

    # -- replay protection ---------------------------------------------------
    def seen_before(self, ro_guid: tuple) -> bool:
        """Whether this exact minted RO was installed before."""
        return ro_guid in self.replay_cache

    def remember(self, ro_guid: tuple) -> None:
        """Record an installation in the replay cache."""
        self._mutate("remember", ro_guid)

    def _do_remember(self, ro_guid: tuple) -> None:
        self.replay_cache.add(ro_guid)
