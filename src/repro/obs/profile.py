"""Deterministic profiler: fold tracer spans into exact call trees.

The paper's contribution is *attribution* — Table 1 prices each
primitive, Figures 5-7 attribute whole use cases to phases. A
:class:`~repro.obs.tracer.Tracer` already records every priced operation
span and every structural span on the virtual cycle timeline; this
module folds that flat span list into a call tree keyed by span *path*
(the chain of enclosing structural spans), with exact self/cumulative
cycle counts per node.

Because every operation span carries the exact cycles the cost model
charged, the tree reconciles bit-exactly with
:class:`~repro.core.model.CostBreakdown`: the root's cumulative cycles
equal ``CostBreakdown.total_cycles`` for the same trace and profile.
There is no sampling, no wall clock, no jitter — the same seed produces
the same tree, byte-identical exports included.

Exports:

* **collapsed stacks** (:meth:`ProfileTree.collapsed`) — the
  ``path;path;leaf cycles`` format consumed by flamegraph.pl and most
  flame-graph viewers;
* **speedscope** (:meth:`ProfileTree.to_speedscope`) — a ``sampled``
  profile (frames + weighted stacks) loadable at https://speedscope.app;
  the sampled encoding maps one-to-one onto collapsed stacks, so the
  two exports always agree;
* **diff** (:func:`diff`) — path-keyed comparison of two trees (SW vs
  HW, clean vs lossy), reporting the top regressed paths.
"""

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .tracer import OPERATION_CATEGORY, STRUCTURE_CATEGORY, Tracer

#: Schema stamp on speedscope exports (theirs, not ours).
SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"

#: Name given to the synthetic root node.
ROOT_NAME = "(root)"


@dataclass
class ProfileNode:
    """One node of the folded call tree."""

    name: str
    calls: int = 0
    self_cycles: int = 0
    children: "Dict[str, ProfileNode]" = field(default_factory=dict)

    @property
    def cumulative_cycles(self) -> int:
        """Own cycles plus every descendant's, exactly."""
        return self.self_cycles + sum(
            child.cumulative_cycles for child in self.children.values())

    def child(self, name: str) -> "ProfileNode":
        """Fetch-or-create the child named ``name``."""
        node = self.children.get(name)
        if node is None:
            node = ProfileNode(name=name)
            self.children[name] = node
        return node

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able nested representation (insertion-ordered)."""
        return {
            "name": self.name,
            "calls": self.calls,
            "self_cycles": self.self_cycles,
            "cumulative_cycles": self.cumulative_cycles,
            "children": [child.to_dict()
                         for child in self.children.values()],
        }


@dataclass
class ProfileTree:
    """A folded span tree for one traced run under one architecture."""

    root: ProfileNode
    architecture: str = ""
    scenario: str = ""
    seed: str = ""

    @classmethod
    def from_tracer(cls, tracer: Tracer, architecture: str = "",
                    scenario: str = "", seed: str = "") -> "ProfileTree":
        """Fold ``tracer``'s spans into an exact call tree.

        Nesting comes from the tracer's open-span stack
        (:attr:`~repro.obs.tracer.Span.parent`), not from interval
        containment — zero-cycle structural spans make intervals
        ambiguous, parent links never are. Sibling spans with the same
        name merge into one node (classic profile folding), so ``calls``
        counts how many spans folded in.
        """
        if architecture == "" and getattr(tracer, "profile", None):
            architecture = tracer.profile.name
        root = ProfileNode(name=ROOT_NAME, calls=1)
        nodes: Dict[int, ProfileNode] = {}
        for span in sorted(tracer.spans, key=lambda s: s.index):
            parent = root if span.parent is None \
                else nodes[span.parent]
            node = parent.child(span.name)
            node.calls += 1
            if span.category == OPERATION_CATEGORY:
                node.self_cycles += span.args["cycles"]
            if span.category == STRUCTURE_CATEGORY:
                nodes[span.index] = node
        return cls(root=root, architecture=architecture,
                   scenario=scenario, seed=seed)

    @property
    def total_cycles(self) -> int:
        """Root cumulative cycles — the whole run, exactly."""
        return self.root.cumulative_cycles

    # -- flat views ------------------------------------------------------
    def paths(self) -> "Dict[Tuple[str, ...], Tuple[int, int, int]]":
        """``{path: (self_cycles, cumulative_cycles, calls)}``.

        Paths exclude the synthetic root; the empty-path entry is the
        root itself, so ``paths()[()][1] == total_cycles``.
        """
        out: Dict[Tuple[str, ...], Tuple[int, int, int]] = {}

        def walk(node: ProfileNode, prefix: Tuple[str, ...]) -> None:
            out[prefix] = (node.self_cycles, node.cumulative_cycles,
                           node.calls)
            for child in node.children.values():
                walk(child, prefix + (child.name,))

        walk(self.root, ())
        return out

    # -- collapsed stacks ------------------------------------------------
    def collapsed(self) -> str:
        """Flamegraph collapsed-stack lines, sorted for determinism.

        One ``a;b;c cycles`` line per node with non-zero self cycles.
        The line total is exactly :attr:`total_cycles`, so a flame graph
        built from this output attributes every priced cycle.
        """
        lines = []
        for path, (self_cycles, _cum, _calls) in self.paths().items():
            if self_cycles and path:
                lines.append("%s %d" % (";".join(path), self_cycles))
        return "\n".join(sorted(lines)) + ("\n" if lines else "")

    # -- speedscope ------------------------------------------------------
    def to_speedscope(self, name: Optional[str] = None) -> Dict[str, Any]:
        """A speedscope ``sampled`` profile document.

        Each tree node with self cycles becomes one weighted sample
        whose stack is its path; weights are exact cycle counts (unit
        ``none`` — speedscope has no cycle unit). Frames appear in
        first-use (DFS) order so the document is deterministic.
        """
        if name is None:
            name = "%s %s (seed %s)" % (self.architecture, self.scenario,
                                        self.seed)
        frames: List[Dict[str, str]] = []
        frame_index: Dict[str, int] = {}
        samples: List[List[int]] = []
        weights: List[int] = []

        def frame(frame_name: str) -> int:
            if frame_name not in frame_index:
                frame_index[frame_name] = len(frames)
                frames.append({"name": frame_name})
            return frame_index[frame_name]

        def walk(node: ProfileNode, stack: List[int]) -> None:
            stack = stack + [frame(node.name)]
            if node.self_cycles:
                samples.append(stack)
                weights.append(node.self_cycles)
            for child in node.children.values():
                walk(child, stack)

        for child in self.root.children.values():
            walk(child, [])

        total = sum(weights)
        return {
            "$schema": SPEEDSCOPE_SCHEMA,
            "name": name,
            "exporter": "repro-profiler",
            "activeProfileIndex": 0,
            "shared": {"frames": frames},
            "profiles": [{
                "type": "sampled",
                "name": name,
                "unit": "none",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }],
        }

    def write_speedscope(self, path: str,
                         name: Optional[str] = None) -> None:
        """Serialize :meth:`to_speedscope` deterministically to disk."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_speedscope(name), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")

    def write_collapsed(self, path: str) -> None:
        """Write :meth:`collapsed` lines to disk."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.collapsed())

    # -- rendering -------------------------------------------------------
    def render(self, max_depth: Optional[int] = None) -> str:
        """Indented text tree, children sorted by descending cycles."""
        total = self.total_cycles or 1
        lines = ["%-11s %-11s %-6s path"
                 % ("cumulative", "self", "calls")]

        def walk(node: ProfileNode, depth: int) -> None:
            if max_depth is not None and depth > max_depth:
                return
            share = 100.0 * node.cumulative_cycles / total
            lines.append("%-11d %-11d %-6d %s%s  (%.1f%%)"
                         % (node.cumulative_cycles, node.self_cycles,
                            node.calls, "  " * depth, node.name, share))
            for child in sorted(node.children.values(),
                                key=lambda c: (-c.cumulative_cycles,
                                               c.name)):
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)


def paths_from_collapsed(text: str) -> "Dict[Tuple[str, ...], int]":
    """Parse collapsed-stack lines back to ``{path: self_cycles}``.

    The exact inverse of :meth:`ProfileTree.collapsed` — used by the
    golden tests to prove the export round-trips losslessly.
    """
    out: Dict[Tuple[str, ...], int] = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        stack, cycles = line.rsplit(" ", 1)
        out[tuple(stack.split(";"))] = int(cycles)
    return out


def paths_from_speedscope(document: Dict[str, Any]
                          ) -> "Dict[Tuple[str, ...], int]":
    """Recover ``{path: self_cycles}`` from a speedscope document."""
    frames = [frame["name"]
              for frame in document["shared"]["frames"]]
    profile = document["profiles"][document.get("activeProfileIndex", 0)]
    out: Dict[Tuple[str, ...], int] = {}
    for stack, weight in zip(profile["samples"], profile["weights"]):
        path = tuple(frames[index] for index in stack)
        out[path] = out.get(path, 0) + weight
    return out


# -- diffing ---------------------------------------------------------------

@dataclass(frozen=True)
class PathDelta:
    """One path's change between two profiles."""

    path: Tuple[str, ...]
    before_cycles: int
    after_cycles: int

    @property
    def delta(self) -> int:
        """Cumulative-cycle change (positive = regression)."""
        return self.after_cycles - self.before_cycles

    @property
    def ratio(self) -> Optional[float]:
        """after/before, ``None`` for newly-appeared paths."""
        if not self.before_cycles:
            return None
        return self.after_cycles / self.before_cycles


@dataclass
class ProfileDiff:
    """Path-keyed comparison of two profile trees."""

    before: ProfileTree
    after: ProfileTree
    deltas: List[PathDelta]

    @property
    def total_delta(self) -> int:
        """Whole-run cumulative cycle change."""
        return self.after.total_cycles - self.before.total_cycles

    def regressions(self) -> List[PathDelta]:
        """Paths that got more expensive, worst first."""
        return [d for d in self.deltas if d.delta > 0]

    def render(self, top: int = 10) -> str:
        """The top regressed (and improved) paths as a text table."""
        label_before = self.before.architecture or "before"
        label_after = self.after.architecture or "after"
        if self.before.scenario != self.after.scenario:
            label_before += "/" + self.before.scenario
            label_after += "/" + self.after.scenario
        lines = ["profile diff: %s -> %s" % (label_before, label_after),
                 "total cycles: %d -> %d (%+d)"
                 % (self.before.total_cycles, self.after.total_cycles,
                    self.total_delta),
                 "",
                 "%-12s %-12s %-12s path"
                 % ("before", "after", "delta")]
        shown = self.deltas[:top]
        for delta in shown:
            lines.append("%-12d %-12d %+-12d %s"
                         % (delta.before_cycles, delta.after_cycles,
                            delta.delta, ";".join(delta.path)))
        hidden = len(self.deltas) - len(shown)
        if hidden > 0:
            lines.append("... %d more changed paths" % hidden)
        return "\n".join(lines)


def diff(before: ProfileTree, after: ProfileTree) -> ProfileDiff:
    """Compare two trees path-by-path (cumulative cycles).

    Only *leaf-level attribution* is compared — paths whose cumulative
    cycles changed — sorted worst regression first, then largest
    improvement, then path (fully deterministic).
    """
    before_paths = before.paths()
    after_paths = after.paths()
    deltas = []
    for path in set(before_paths) | set(after_paths):
        if not path:
            continue
        cycles_before = before_paths.get(path, (0, 0, 0))[1]
        cycles_after = after_paths.get(path, (0, 0, 0))[1]
        if cycles_before != cycles_after:
            deltas.append(PathDelta(path=path,
                                    before_cycles=cycles_before,
                                    after_cycles=cycles_after))
    deltas.sort(key=lambda d: (-d.delta, d.path))
    return ProfileDiff(before=before, after=after, deltas=deltas)
