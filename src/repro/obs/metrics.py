"""Mergeable metrics: counters, gauges and exact histograms.

A :class:`MetricsRegistry` is the fleet-friendly sibling of the tracer:
where spans record *when* something happened on the cycle timeline, the
registry records *how often* and *how much*, in a form that merges
exactly. All three instrument kinds are integer-valued with associative,
commutative merge operators:

* **counters** — monotonic totals, merged by addition;
* **gauges** — high-water marks, merged by ``max``;
* **histograms** — full value distributions backed by
  :class:`~repro.core.stats.StreamingStats` (Counter-based, exact
  percentiles), merged by exact union.

Because every merge is associative and commutative with bit-identical
results, per-shard registries built by the fleet engine fold into the
same registry for any worker count or merge order — the same contract
:mod:`repro.core.stats` gives the fleet accumulator.
"""

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List

from ..core.stats import StreamingStats

#: Schema version written into every metrics export.
SCHEMA_VERSION = 1


@dataclass
class MetricsRegistry:
    """Named counters, gauges and histograms with exact merge."""

    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, int] = field(default_factory=dict)
    histograms: Dict[str, StreamingStats] = field(default_factory=dict)

    # -- ingestion -------------------------------------------------------
    def counter(self, name: str, delta: int = 1) -> None:
        """Increment counter ``name`` by ``delta`` (non-negative)."""
        if not isinstance(delta, int) or isinstance(delta, bool):
            raise TypeError("counter deltas must be integers")
        if delta < 0:
            raise ValueError("counter deltas must be non-negative")
        self.counters[name] = self.counters.get(name, 0) + delta

    def gauge(self, name: str, value: int) -> None:
        """Record ``value`` for gauge ``name`` (high-water mark)."""
        if not isinstance(value, int) or isinstance(value, bool):
            raise TypeError("gauge values must be integers")
        current = self.gauges.get(name)
        if current is None or value > current:
            self.gauges[name] = value

    def histogram(self, name: str, value: int, weight: int = 1) -> None:
        """Fold ``value`` (observed ``weight`` times) into a histogram."""
        stats = self.histograms.get(name)
        if stats is None:
            stats = self.histograms[name] = StreamingStats()
        stats.add(value, weight)

    # -- merge -----------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Exact union of two registries (associative, commutative)."""
        merged = MetricsRegistry()
        for source in (self, other):
            for name, value in source.counters.items():
                merged.counters[name] = merged.counters.get(name, 0) + value
        for source in (self, other):
            for name, value in source.gauges.items():
                current = merged.gauges.get(name)
                if current is None or value > current:
                    merged.gauges[name] = value
        for name in set(self.histograms) | set(other.histograms):
            merged.histograms[name] = (
                self.histograms.get(name, StreamingStats()).merge(
                    other.histograms.get(name, StreamingStats())))
        return merged

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsRegistry):
            return NotImplemented
        return (self.counters == other.counters
                and self.gauges == other.gauges
                and {k: v for k, v in self.histograms.items() if v.counts}
                == {k: v for k, v in other.histograms.items() if v.counts})

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready representation with deterministic key order."""
        return {
            "schema": SCHEMA_VERSION,
            "kind": "metrics-registry",
            "counters": {name: self.counters[name]
                         for name in sorted(self.counters)},
            "gauges": {name: self.gauges[name]
                       for name in sorted(self.gauges)},
            "histograms": {
                name: [[value, self.histograms[name].counts[value]]
                       for value in sorted(self.histograms[name].counts)]
                for name in sorted(self.histograms)
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_dict` output."""
        if data.get("kind") != "metrics-registry":
            raise ValueError("not a metrics-registry document")
        if data.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                "unsupported schema version %r" % data.get("schema"))
        registry = cls()
        for name, value in data.get("counters", {}).items():
            registry.counters[str(name)] = int(value)
        for name, value in data.get("gauges", {}).items():
            registry.gauges[str(name)] = int(value)
        for name, pairs in data.get("histograms", {}).items():
            stats = StreamingStats()
            for value, count in pairs:
                stats.add(int(value), int(count))
            registry.histograms[str(name)] = stats
        return registry

    # -- presentation ----------------------------------------------------
    def render(self) -> str:
        """Sorted plain-text listing, one instrument per line."""
        lines: List[str] = []
        for name in sorted(self.counters):
            lines.append("counter    %-40s %d" % (name, self.counters[name]))
        for name in sorted(self.gauges):
            lines.append("gauge      %-40s %d" % (name, self.gauges[name]))
        for name in sorted(self.histograms):
            s = self.histograms[name].summary()
            lines.append(
                "histogram  %-40s n=%d total=%d p50=%s p99=%s"
                % (name, s.count, s.total, s.p50, s.p99))
        return "\n".join(lines)


def merge_registries(
        registries: Iterable[MetricsRegistry]) -> MetricsRegistry:
    """Left fold of :meth:`MetricsRegistry.merge` over ``registries``."""
    result = MetricsRegistry()
    for registry in registries:
        result = result.merge(registry)
    return result
