"""Span/event tracer on the model's virtual cycle clock.

A :class:`Tracer` owns a monotonically advancing *virtual clock* measured
in CPU cycles: the cumulative cost of every
:class:`~repro.core.trace.OperationRecord` priced so far under the active
:class:`~repro.core.costs.CostTable` and
:class:`~repro.core.architecture.ArchitectureProfile`. Nothing ever reads
wall-clock time, so traces of the same seed are byte-identical across
machines and runs — instrumentation inherits the repository's
determinism contract (REP1xx) instead of fighting it.

Three record kinds:

* **operation spans** — emitted by :meth:`Tracer.on_record` (hooked into
  :class:`~repro.core.meter.MeteredCrypto`): one span per primitive
  batch, placed on the track of its protocol phase, covering exactly the
  cycles the cost model charges. The clock advances by that amount, so
  per-algorithm span totals reconcile *exactly* with
  :meth:`~repro.core.model.CostBreakdown.cycles_by_algorithm`.
* **structural spans** — opened with :meth:`Tracer.span` around protocol
  passes, transactions, install/consume flows. They take zero cycles
  themselves; their duration is whatever operations ran inside them.
* **events** — instantaneous marks (:meth:`Tracer.event`) for retries,
  backoff waits, fault injections, crashes, journal commits, recovery
  replays.

The default tracer everywhere is :data:`NULL_TRACER`, whose every method
is a constant no-op, so un-instrumented runs (and all pre-existing
artifacts) stay byte-identical.
"""

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..core.architecture import ArchitectureProfile, SW_PROFILE
from ..core.costs import CostTable, PAPER_TABLE1
from ..core.trace import OperationRecord

from .metrics import MetricsRegistry

#: Category stamped on spans emitted by :meth:`Tracer.on_record`; the
#: Chrome re-importer reconstructs the operation trace from these.
OPERATION_CATEGORY = "operation"

#: Category for structural (protocol/storage) spans.
STRUCTURE_CATEGORY = "structure"

#: Category for instantaneous events.
EVENT_CATEGORY = "event"

#: Default track for spans/events not tied to a protocol phase.
DEFAULT_TRACK = "main"


@dataclass
class Span:
    """One closed interval on the virtual cycle timeline."""

    name: str
    track: str
    category: str
    start: int
    end: Optional[int] = None
    args: Dict[str, Any] = field(default_factory=dict)
    index: int = 0
    #: ``index`` of the enclosing structural span (``None`` at top
    #: level). Maintained by the tracer's open-span stack so the
    #: profiler can fold spans into an exact call tree without
    #: re-inferring nesting from intervals (zero-width structural spans
    #: would make interval containment ambiguous).
    parent: Optional[int] = None

    def set(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one argument on the span."""
        self.args[key] = value

    @property
    def duration(self) -> int:
        """Cycles covered; 0 while the span is still open."""
        return (self.end - self.start) if self.end is not None else 0


@dataclass
class Event:
    """One instantaneous mark on the virtual cycle timeline."""

    name: str
    track: str
    ts: int
    args: Dict[str, Any] = field(default_factory=dict)
    index: int = 0


class Tracer:
    """Collects spans/events stamped with priced-cycle timestamps."""

    enabled = True

    def __init__(self, profile: ArchitectureProfile = SW_PROFILE,
                 cost_table: CostTable = PAPER_TABLE1,
                 actor: str = "device") -> None:
        self.profile = profile
        self.cost_table = cost_table
        self.actor = actor
        self.now = 0
        self.spans: List[Span] = []
        self.events: List[Event] = []
        self.metrics = MetricsRegistry()
        self._seq = 0
        self._open: List[Span] = []

    def _next_index(self) -> int:
        self._seq += 1
        return self._seq

    def advance_to(self, now: int) -> None:
        """Move the virtual clock forward to an externally-owned time.

        The simulation kernel (:mod:`repro.sim`) owns its own virtual
        timeline; this lets it stamp spans and events on a tracer at
        kernel time instead of cumulative priced-operation time. The
        clock never moves backwards — stamping an older time is a no-op,
        keeping exports monotonic.
        """
        if now > self.now:
            self.now = now

    # -- structural spans ------------------------------------------------
    @contextmanager
    def span(self, name: str, track: str = DEFAULT_TRACK,
             category: str = STRUCTURE_CATEGORY,
             **args: Any) -> Iterator[Span]:
        """Open a span at the current virtual time; close it on exit.

        The span itself consumes no cycles — its duration is the cycle
        cost of the operations priced inside the ``with`` block.
        """
        span = Span(name=name, track=track, category=category,
                    start=self.now, args=dict(args),
                    index=self._next_index(),
                    parent=self._open[-1].index if self._open else None)
        self.spans.append(span)
        self._open.append(span)
        try:
            yield span
        finally:
            self._open.pop()
            span.end = self.now

    # -- events ----------------------------------------------------------
    def event(self, name: str, track: str = DEFAULT_TRACK,
              **args: Any) -> Event:
        """Record an instantaneous event at the current virtual time."""
        event = Event(name=name, track=track, ts=self.now,
                      args=dict(args), index=self._next_index())
        self.events.append(event)
        self.metrics.counter("events.%s" % name)
        return event

    # -- operation records (MeteredCrypto hook) --------------------------
    def on_record(self, record: OperationRecord) -> Span:
        """Price one trace record and advance the virtual clock.

        Called by :class:`~repro.core.meter.MeteredCrypto` for every
        primitive batch. Pricing uses exactly the same
        ``cost_table.cycles(record, implementation)`` call as
        :class:`~repro.core.model.PerformanceModel`, so span totals and
        breakdown totals cannot disagree.
        """
        implementation = self.profile.implementation(record.algorithm)
        cycles = self.cost_table.cycles(record, implementation)
        span = Span(
            name=record.label, track=record.phase.value,
            category=OPERATION_CATEGORY,
            start=self.now, end=self.now + cycles,
            index=self._next_index(),
            parent=self._open[-1].index if self._open else None,
            args={
                "algorithm": record.algorithm.value,
                "phase": record.phase.value,
                "label": record.label,
                "invocations": record.invocations,
                "blocks": record.blocks,
                "implementation": implementation,
                "cycles": cycles,
            },
        )
        self.spans.append(span)
        self.now += cycles
        self.metrics.counter("ops.%s" % record.algorithm.value)
        self.metrics.histogram("cycles.%s" % record.algorithm.value, cycles)
        return span

    # -- aggregate views -------------------------------------------------
    def operation_spans(self) -> List[Span]:
        """Spans emitted from operation records, in emission order."""
        return [span for span in self.spans
                if span.category == OPERATION_CATEGORY]

    def cycles_by_algorithm(self) -> Dict[str, int]:
        """Total operation-span cycles per algorithm value string."""
        totals: Dict[str, int] = {}
        for span in self.operation_spans():
            key = span.args["algorithm"]
            totals[key] = totals.get(key, 0) + span.args["cycles"]
        return totals

    def cycles_by_track(self) -> Dict[str, int]:
        """Total operation-span cycles per track (protocol phase)."""
        totals: Dict[str, int] = {}
        for span in self.operation_spans():
            totals[span.track] = totals.get(span.track, 0) + span.duration
        return totals

    def tracks(self) -> Tuple[str, ...]:
        """All tracks in first-use order (stable across same-seed runs)."""
        seen: List[str] = []
        for item in sorted(self.spans + self.events,
                           key=lambda entry: entry.index):
            track = item.track
            if track not in seen:
                seen.append(track)
        return tuple(seen)


class _NullSpan:
    """Inert span handle returned by :class:`NullTracer` contexts."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        pass


class _NullContext:
    """Reusable no-op context manager — zero allocation per use."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullContext()


class NullTracer:
    """Do-nothing tracer: the default wired into every provider.

    Every method is a constant-time no-op that allocates nothing, so
    instrumented code paths cost one attribute lookup and one call when
    tracing is off — the overhead budget
    (:mod:`benchmarks.bench_obs_overhead`) holds it under 5 % on the
    protocol scenarios, and un-traced artifacts stay byte-identical.
    """

    enabled = False
    now = 0

    def span(self, name: str, track: str = DEFAULT_TRACK,
             category: str = STRUCTURE_CATEGORY,
             **args: Any) -> _NullContext:
        return _NULL_CONTEXT

    def event(self, name: str, track: str = DEFAULT_TRACK,
              **args: Any) -> None:
        return None

    def on_record(self, record: OperationRecord) -> None:
        return None

    def advance_to(self, now: int) -> None:
        return None


#: Shared singleton — the default ``tracer`` everywhere.
NULL_TRACER = NullTracer()
