"""Deterministic observability: spans, events and mergeable metrics.

The paper's method is observability-by-construction — run the functional
model, extract the operation list, price it (§2.4.5). This package makes
the *interior* of a run visible without giving up determinism:

* :mod:`~repro.obs.tracer` — hierarchical spans and point events stamped
  on the **virtual cycle timeline** (cycles priced so far under the
  active :class:`~repro.core.costs.CostTable` and architecture profile,
  never wall-clock), plus a zero-overhead :class:`NullTracer` default.
* :mod:`~repro.obs.metrics` — counters/gauges/histograms backed by the
  exact-mergeable :class:`~repro.core.stats.StreamingStats`, so
  per-shard registries merge bit-identically for any worker count.
* :mod:`~repro.obs.export` — JSONL and Chrome trace-event JSON writers
  (loadable in Perfetto / ``chrome://tracing``), and a re-importer that
  reconstructs the :class:`~repro.core.trace.OperationTrace`.
"""

from .metrics import MetricsRegistry, merge_registries
from .tracer import (Event, NULL_TRACER, NullTracer, OPERATION_CATEGORY,
                     Span, Tracer)
from .export import (load_chrome, to_chrome, to_jsonl, trace_from_chrome,
                     write_chrome, write_jsonl, write_metrics)
from .profile import (ProfileDiff, ProfileNode, ProfileTree, diff,
                      paths_from_collapsed, paths_from_speedscope)
from .slo import (Alert, DEFAULT_OBJECTIVES, Exemplar, Objective,
                  ObjectiveReport, SLOMonitor, SLOReport)

__all__ = [
    "MetricsRegistry", "merge_registries",
    "Event", "NULL_TRACER", "NullTracer", "OPERATION_CATEGORY",
    "Span", "Tracer",
    "load_chrome", "to_chrome", "to_jsonl", "trace_from_chrome",
    "write_chrome", "write_jsonl", "write_metrics",
    "ProfileDiff", "ProfileNode", "ProfileTree", "diff",
    "paths_from_collapsed", "paths_from_speedscope",
    "Alert", "DEFAULT_OBJECTIVES", "Exemplar", "Objective",
    "ObjectiveReport", "SLOMonitor", "SLOReport",
]
