"""Service-level objectives and burn-rate alerts on virtual time.

A production Rights Issuer is operated against *objectives* — "99 % of
acquisitions answered within N service units" — not raw latency
histograms. This module evaluates exactly that, but on the simulation's
virtual timebase: every observation is an integer kernel tick, every
threshold an exact tick bound, so the same seed produces the same
compliance ratios, the same alert timestamps, and the same exemplars,
byte for byte.

The alerting discipline is the multi-window, multi-burn-rate policy of
Google's SRE workbook: an alert opens when the error budget is burning
at ≥ ``burn_threshold`` over *both* a fast window (catches sudden
storms quickly) and a slow window (suppresses blips), and closes when
the fast window recovers. Windows slide on virtual ticks; thresholds
and window lengths are declared in *service units* (multiples of the
server's mix-weighted nominal service time) so one objective
configuration is meaningful on every architecture profile.

Observations carry a label (``kind@arrival_tick`` when fed from
:class:`~repro.sim.ri.RIServer`), and each objective captures the first
few breaching observations as :class:`Exemplar` records — the exact
seeded requests to replay when debugging a breach.
"""

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

#: Cap on breaching exemplars retained per objective.
DEFAULT_MAX_EXEMPLARS = 5

#: Observations a window must hold before burn rates are meaningful;
#: below this an alert cannot open (avoids firing on the first error).
MIN_WINDOW_EVENTS = 10


@dataclass(frozen=True)
class Objective:
    """One declarative latency/goodput objective.

    ``threshold_units`` bounds the sojourn latency of a *good* request
    in service units; ``None`` declares a pure goodput objective (any
    completed request is good, anything refused/shed/timed-out is bad).
    ``target`` is the long-run good fraction promised; ``1 - target``
    is the error budget the burn rates are measured against.
    """

    name: str
    kind: str = "*"
    threshold_units: Optional[float] = None
    target: float = 0.99
    fast_window_units: int = 60
    slow_window_units: int = 240
    burn_threshold: float = 2.0
    max_exemplars: int = DEFAULT_MAX_EXEMPLARS

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must be in (0, 1)")
        if self.fast_window_units <= 0 or self.slow_window_units <= 0:
            raise ValueError("window lengths must be positive")
        if self.fast_window_units > self.slow_window_units:
            raise ValueError("the fast window must not exceed the slow "
                             "window")
        if self.burn_threshold <= 0:
            raise ValueError("burn threshold must be positive")

    def matches(self, kind: str) -> bool:
        """Whether this objective scores requests of ``kind``."""
        return self.kind == "*" or self.kind == kind


@dataclass(frozen=True)
class Exemplar:
    """One captured breaching request."""

    objective: str
    tick: int
    kind: str
    latency_ticks: int
    label: str


@dataclass(frozen=True)
class Alert:
    """One burn-rate alert interval (closed tick ``None`` = still open)."""

    objective: str
    opened: int
    closed: Optional[int]
    fast_burn: float
    slow_burn: float


#: Default objective set for a Rights Issuer: per-kind latency bounds
#: sized from the M/M/1 sojourn tail (p99 sojourn at utilization rho is
#: about ``-ln(0.01)/(1-rho)`` service times, so 24 units separates a
#: healthy ladder step from a saturated one), plus a global goodput
#: objective that scores refusals/sheds/timeouts regardless of latency.
DEFAULT_OBJECTIVES: Tuple[Objective, ...] = (
    Objective(name="hello-latency", kind="hello",
              threshold_units=24.0, target=0.95),
    Objective(name="registration-latency", kind="registration",
              threshold_units=24.0, target=0.95),
    Objective(name="acquisition-latency", kind="acquisition",
              threshold_units=24.0, target=0.95),
    Objective(name="goodput", kind="*", threshold_units=None,
              target=0.99),
)


class _WindowCounts:
    """Sliding (total, bad) counts over the trailing ``width`` ticks."""

    __slots__ = ("width", "events", "total", "bad")

    def __init__(self, width: int) -> None:
        self.width = width
        self.events: deque = deque()
        self.total = 0
        self.bad = 0

    def push(self, tick: int, good: bool) -> None:
        self.events.append((tick, good))
        self.total += 1
        if not good:
            self.bad += 1
        horizon = tick - self.width
        while self.events and self.events[0][0] <= horizon:
            _old, was_good = self.events.popleft()
            self.total -= 1
            if not was_good:
                self.bad -= 1

    def burn_rate(self, budget: float) -> float:
        """Error-budget burn multiple over the current window."""
        if not self.total:
            return 0.0
        return (self.bad / self.total) / budget


class _ObjectiveState:
    """Mutable evaluation state for one bound objective."""

    def __init__(self, objective: Objective, slot_ticks: int) -> None:
        self.objective = objective
        self.threshold_ticks = (
            None if objective.threshold_units is None
            else int(round(objective.threshold_units * slot_ticks)))
        self.fast = _WindowCounts(objective.fast_window_units
                                  * slot_ticks)
        self.slow = _WindowCounts(objective.slow_window_units
                                  * slot_ticks)
        self.total = 0
        self.bad = 0
        self.alerts: List[Alert] = []
        self.exemplars: List[Exemplar] = []
        self._open: Optional[Alert] = None

    def observe(self, kind: str, now: int, completed: bool,
                latency_ticks: int, label: str) -> None:
        good = completed and (self.threshold_ticks is None
                              or latency_ticks <= self.threshold_ticks)
        self.total += 1
        if not good:
            self.bad += 1
            if len(self.exemplars) < self.objective.max_exemplars:
                self.exemplars.append(Exemplar(
                    objective=self.objective.name, tick=now, kind=kind,
                    latency_ticks=latency_ticks, label=label))
        self.fast.push(now, good)
        self.slow.push(now, good)
        budget = 1.0 - self.objective.target
        fast_burn = self.fast.burn_rate(budget)
        slow_burn = self.slow.burn_rate(budget)
        threshold = self.objective.burn_threshold
        if self._open is None:
            if (fast_burn >= threshold and slow_burn >= threshold
                    and self.fast.total >= MIN_WINDOW_EVENTS
                    and self.slow.total >= MIN_WINDOW_EVENTS):
                self._open = Alert(objective=self.objective.name,
                                   opened=now, closed=None,
                                   fast_burn=fast_burn,
                                   slow_burn=slow_burn)
                self.alerts.append(self._open)
        elif fast_burn < threshold:
            closed = Alert(objective=self._open.objective,
                           opened=self._open.opened, closed=now,
                           fast_burn=self._open.fast_burn,
                           slow_burn=self._open.slow_burn)
            self.alerts[-1] = closed
            self._open = None

    @property
    def compliance(self) -> float:
        """Lifetime good fraction (1.0 when nothing was observed)."""
        if not self.total:
            return 1.0
        return (self.total - self.bad) / self.total

    @property
    def breached(self) -> bool:
        """Whether lifetime compliance fell below the target."""
        return self.compliance < self.objective.target


@dataclass(frozen=True)
class ObjectiveReport:
    """Frozen summary of one objective after a run."""

    name: str
    kind: str
    target: float
    total: int
    bad: int
    compliance: float
    breached: bool
    alerts: Tuple[Alert, ...]
    exemplars: Tuple[Exemplar, ...]

    @property
    def first_alert_tick(self) -> Optional[int]:
        """Tick of the first alert, ``None`` if none fired."""
        return self.alerts[0].opened if self.alerts else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "kind": self.kind, "target": self.target,
            "total": self.total, "bad": self.bad,
            "compliance": self.compliance, "breached": self.breached,
            "alerts": [{"opened": alert.opened, "closed": alert.closed,
                        "fast_burn": alert.fast_burn,
                        "slow_burn": alert.slow_burn}
                       for alert in self.alerts],
            "exemplars": [{"tick": ex.tick, "kind": ex.kind,
                           "latency_ticks": ex.latency_ticks,
                           "label": ex.label}
                          for ex in self.exemplars],
        }


@dataclass(frozen=True)
class SLOReport:
    """All objective reports of one monitor, in declaration order."""

    slot_ticks: int
    objectives: Tuple[ObjectiveReport, ...]

    def objective(self, name: str) -> ObjectiveReport:
        """Look one report up by objective name."""
        for report in self.objectives:
            if report.name == name:
                return report
        raise KeyError(name)

    @property
    def alert_count(self) -> int:
        """Total alerts across all objectives."""
        return sum(len(report.alerts) for report in self.objectives)

    @property
    def breached(self) -> Tuple[str, ...]:
        """Names of objectives whose lifetime compliance missed target."""
        return tuple(report.name for report in self.objectives
                     if report.breached)

    def to_dict(self) -> Dict[str, Any]:
        return {"slot_ticks": self.slot_ticks,
                "objectives": [report.to_dict()
                               for report in self.objectives]}

    def render(self) -> str:
        """Text table: one row per objective."""
        lines = ["%-22s %-8s %-7s %-11s %-7s %-12s exemplar"
                 % ("objective", "events", "bad", "compliance",
                    "alerts", "first-alert")]
        for report in self.objectives:
            exemplar = (report.exemplars[0].label
                        if report.exemplars else "-")
            first = ("%d" % report.first_alert_tick
                     if report.first_alert_tick is not None else "-")
            lines.append("%-22s %-8d %-7d %-11s %-7d %-12s %s"
                         % (report.name, report.total, report.bad,
                            "%.4f/%.2f" % (report.compliance,
                                           report.target),
                            len(report.alerts), first, exemplar))
        return "\n".join(lines)


class SLOMonitor:
    """Scores request outcomes against a set of objectives.

    ``slot_ticks`` converts service units to kernel ticks — pass the
    server's rounded :meth:`~repro.sim.ri.RIServer
    .nominal_service_ticks` so objectives stay architecture-invariant.
    """

    def __init__(self, slot_ticks: int,
                 objectives: Tuple[Objective, ...] = DEFAULT_OBJECTIVES
                 ) -> None:
        if slot_ticks < 1:
            raise ValueError("slot_ticks must be at least one tick")
        names = [objective.name for objective in objectives]
        if len(set(names)) != len(names):
            raise ValueError("objective names must be unique")
        self.slot_ticks = slot_ticks
        self._states = [_ObjectiveState(objective, slot_ticks)
                        for objective in objectives]

    def observe(self, kind: str, now: int, completed: bool,
                latency_ticks: int, label: str = "") -> None:
        """Score one resolved request against every matching objective."""
        for state in self._states:
            if state.objective.matches(kind):
                state.observe(kind, now, completed, latency_ticks,
                              label)

    def observe_outcome(self, outcome: Any) -> None:
        """Score a :class:`~repro.sim.ri.ServeOutcome` (duck-typed)."""
        self.observe(outcome.kind, outcome.finished, outcome.served,
                     outcome.latency,
                     label="%s@%d" % (outcome.kind, outcome.arrived))

    def report(self) -> SLOReport:
        """Freeze the current evaluation into an :class:`SLOReport`."""
        return SLOReport(
            slot_ticks=self.slot_ticks,
            objectives=tuple(
                ObjectiveReport(
                    name=state.objective.name,
                    kind=state.objective.kind,
                    target=state.objective.target,
                    total=state.total, bad=state.bad,
                    compliance=state.compliance,
                    breached=state.breached,
                    alerts=tuple(state.alerts),
                    exemplars=tuple(state.exemplars),
                ) for state in self._states))
