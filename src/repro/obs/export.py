"""Trace exporters: Chrome trace-event JSON and JSONL.

The Chrome trace-event format (the JSON Perfetto and ``chrome://tracing``
load directly) maps cleanly onto the tracer's model: one *process* per
tracer (the actor), one *thread* per track (protocol phase or subsystem),
complete ``"X"`` events for spans and instant ``"i"`` events for marks.
One trace-event timestamp unit represents **one CPU cycle** of the
architecture profile the tracer priced under — the ``otherData`` block
records the profile and clock so cycle counts can be read back as time.

Exports are byte-deterministic: pids/tids are assigned in first-use
order, entries are emitted in recording order, and JSON is written with
sorted keys — two runs of the same seed produce identical files, so
trace goldens diff cleanly.

``trace_from_chrome`` inverts the export for operation spans: the
reconstructed :class:`~repro.core.trace.OperationTrace` has the same
``canonical()`` form as the trace the run produced (property-tested in
``tests/obs``).
"""

import json
from typing import Any, Dict, List

from ..core.trace import Algorithm, OperationRecord, OperationTrace, Phase

from .metrics import MetricsRegistry
from .tracer import Event, OPERATION_CATEGORY, Span, Tracer

#: Schema version written into the ``otherData`` block.
SCHEMA_VERSION = 1


def _ordered(tracer: Tracer) -> List[Any]:
    """Spans and events interleaved in recording order."""
    return sorted(tracer.spans + tracer.events,
                  key=lambda entry: entry.index)


def to_chrome(tracer: Tracer) -> Dict[str, Any]:
    """Chrome trace-event JSON document for one tracer."""
    pid = 1
    tids: Dict[str, int] = {}
    body: List[Dict[str, Any]] = []
    for item in _ordered(tracer):
        track = item.track
        if track not in tids:
            tids[track] = len(tids) + 1
        tid = tids[track]
        if isinstance(item, Span):
            if item.end is None:
                raise ValueError(
                    "span %r is still open; close every span before "
                    "export" % item.name)
            body.append({
                "name": item.name, "cat": item.category, "ph": "X",
                "pid": pid, "tid": tid,
                "ts": item.start, "dur": item.duration,
                "args": item.args,
            })
        else:
            body.append({
                "name": item.name, "cat": "event", "ph": "i", "s": "t",
                "pid": pid, "tid": tid, "ts": item.ts,
                "args": item.args,
            })
    metadata: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": pid,
        "args": {"name": tracer.actor},
    }]
    for track, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        metadata.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": track},
        })
    return {
        "traceEvents": metadata + body,
        "otherData": {
            "schema": SCHEMA_VERSION,
            "kind": "repro-cycle-trace",
            "timebase": "cycles",
            "profile": tracer.profile.name,
            "clock_hz": tracer.profile.clock_hz,
            "actor": tracer.actor,
            "total_cycles": tracer.now,
        },
    }


def write_chrome(tracer: Tracer, path: str) -> None:
    """Write :func:`to_chrome` output as deterministic, pretty JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome(tracer), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_chrome(path: str) -> Dict[str, Any]:
    """Read back a Chrome trace-event JSON document."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def trace_from_chrome(data: Dict[str, Any]) -> OperationTrace:
    """Rebuild the operation trace from an exported Chrome document.

    Only spans in :data:`~repro.obs.tracer.OPERATION_CATEGORY` carry
    operation records; structural spans and events are ignored. Raises
    ``ValueError`` on documents this library did not write or on
    malformed operation spans.
    """
    other = data.get("otherData", {})
    if other.get("kind") != "repro-cycle-trace":
        raise ValueError("not a repro cycle-trace document")
    if other.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            "unsupported schema version %r" % other.get("schema"))
    records = []
    for entry in data.get("traceEvents", []):
        if entry.get("ph") != "X" or entry.get("cat") != OPERATION_CATEGORY:
            continue
        args = entry.get("args", {})
        try:
            records.append(OperationRecord(
                algorithm=Algorithm(args["algorithm"]),
                phase=Phase(args["phase"]),
                invocations=int(args["invocations"]),
                blocks=int(args["blocks"]),
                label=str(args.get("label", "")),
            ))
        except (KeyError, ValueError) as exc:
            raise ValueError(
                "malformed operation span %r" % (entry,)) from exc
    return OperationTrace(records)


def to_jsonl(tracer: Tracer) -> List[str]:
    """One JSON object per line: a header, then entries in order."""
    lines = [json.dumps({
        "type": "header", "schema": SCHEMA_VERSION,
        "kind": "repro-cycle-trace", "timebase": "cycles",
        "profile": tracer.profile.name,
        "clock_hz": tracer.profile.clock_hz,
        "actor": tracer.actor, "total_cycles": tracer.now,
    }, sort_keys=True)]
    for item in _ordered(tracer):
        if isinstance(item, Span):
            payload = {
                "type": "span", "name": item.name, "track": item.track,
                "cat": item.category, "start": item.start,
                "end": item.end, "args": item.args,
            }
        else:
            payload = {
                "type": "event", "name": item.name, "track": item.track,
                "ts": item.ts, "args": item.args,
            }
        lines.append(json.dumps(payload, sort_keys=True))
    return lines


def write_jsonl(tracer: Tracer, path: str) -> None:
    """Write the JSONL form of a tracer to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        for line in to_jsonl(tracer):
            handle.write(line + "\n")


def write_metrics(registry: MetricsRegistry, path: str) -> None:
    """Write a metrics registry as deterministic JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(registry.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
