"""Experiment ``roap-sizes``: ROAP message sizes over a real byte pipe.

The paper reports that its Java model "resulted in information about eg
the ROAP message file sizes". This module measures the same artifact:
the complete registration + acquisition exchange runs through a
:class:`~repro.drm.roap.wire.WireChannel`, and every message's serialized
size is logged.

Sizes here use the canonical binary encoding (not XML), so they are the
*cryptographically relevant* sizes — what the signatures hash — and land
somewhat below the XML-on-the-wire figures of a real deployment.
"""

from dataclasses import dataclass
from typing import Dict, Tuple

from ..drm.rel import play_count
from ..drm.roap.wire import MessageLog, WireChannel
from ..usecases.world import DRMWorld
from .common import DEFAULT_SEED
from .formatting import format_table

#: Message order of the modeled exchange, for stable rendering.
MESSAGE_ORDER = (
    "DeviceHello", "RIHello", "RegistrationRequest",
    "RegistrationResponse", "RORequest", "ROResponse",
)


@dataclass
class MessageSizeResult:
    """Measured sizes for one registration + acquisition exchange."""

    log: MessageLog

    def by_message(self) -> Dict[str, Tuple[int, int]]:
        """Message name -> (count, total octets)."""
        return self.log.by_message()

    def render(self) -> str:
        """ASCII table in protocol order."""
        totals = self.by_message()
        rows = []
        for name in MESSAGE_ORDER:
            count, octets = totals.get(name, (0, 0))
            rows.append((name, str(count), str(octets)))
        rows.append(("TOTAL", str(len(self.log.records)),
                     str(self.log.total_octets())))
        return format_table(
            ("ROAP message", "count", "octets"),
            rows, title="ROAP message sizes (registration + "
                        "RO acquisition, canonical encoding)")


def generate(seed: str = DEFAULT_SEED) -> MessageSizeResult:
    """Run registration + acquisition over a logged wire."""
    world = DRMWorld.create(seed=seed)
    channel = WireChannel(world.ri)
    world.ci.publish("cid:wire", "audio/mpeg", b"\x00" * 1024,
                     "http://ri.example/shop")
    world.ri.add_offer("ro:wire",
                       world.ci.negotiate_license("cid:wire"),
                       play_count(1))
    world.agent.register(channel)
    world.agent.acquire(channel, "ro:wire")
    return MessageSizeResult(log=channel.log)
