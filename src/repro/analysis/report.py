"""One-call reproduction report: every artifact, paper vs measured.

``generate()`` assembles the complete comparison — Table 1, Figures 5-7,
the in-text claims, message sizes — into a single Markdown document, and
``write()`` saves it. The CLI exposes this as ``python -m repro report``.
"""

from dataclasses import dataclass

from . import (adversary, claims, durability, figure5, figure6, figure7,
               fleet, messages, observability, overload, resilience,
               saturation, table1)
from .common import DEFAULT_SEED
from .formatting import deviation_pct

_HEADER = """# Reproduction report

Paper: Thull & Sannino, "Performance Considerations for an Embedded
Implementation of OMA DRM 2", DATE 2005.

Seed: `%s`. All modeled times are Table 1 cycle counts at 200 MHz; see
EXPERIMENTS.md for methodology and tolerances.
"""


def _figure_section(title: str, result, paper_ms) -> str:
    lines = ["## %s" % title, "",
             "| Variant | Paper [ms] | Measured [ms] | Deviation |",
             "|---|---|---|---|"]
    for name in result.labels():
        measured = result.measured_ms[name]
        reference = paper_ms[name]
        lines.append("| %s | %g | %.1f | %+.1f%% |" % (
            name, reference, measured,
            deviation_pct(measured, reference)))
    return "\n".join(lines)


@dataclass
class ReproductionReport:
    """The assembled Markdown report."""

    markdown: str

    def write(self, path: str) -> None:
        """Save the report to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.markdown)


def generate(seed: str = DEFAULT_SEED) -> ReproductionReport:
    """Build the full paper-vs-measured report."""
    sections = [_HEADER % seed]

    table = table1.generate()
    sections.append("## Table 1\n\n```\n%s\n```" % table.render())

    fig5 = figure5.generate(seed)
    sections.append("## Figure 5\n\n```\n%s\n```" % fig5.render())

    sections.append(_figure_section(
        "Figure 6 — Music Player", figure6.generate(seed),
        figure6.PAPER_MS))
    sections.append(_figure_section(
        "Figure 7 — Ringtone", figure7.generate(seed),
        figure7.PAPER_MS))

    claim = claims.generate(seed)
    sections.append("## In-text claims\n\n```\n%s\n```" % claim.render())

    sizes = messages.generate(seed)
    sections.append("## ROAP message sizes\n\n```\n%s\n```"
                    % sizes.render())

    resilient = resilience.generate(seed)
    sections.append("## Retry overhead under loss\n\n```\n%s\n```"
                    % resilient.render())

    durable = durability.generate(seed)
    sections.append("## Durability overhead and recovery\n\n```\n%s\n```"
                    % durable.render())

    population = fleet.generate(seed)
    sections.append("## Fleet-scale workload\n\n```\n%s\n```"
                    % population.render())

    saturated = saturation.generate(seed)
    sections.append("## Rights Issuer saturation\n\n```\n%s\n```"
                    % saturated.render())

    stormed = overload.generate(seed)
    sections.append("## Overload control and retry storms\n\n```\n%s"
                    "\n```" % stormed.render())

    attacked = adversary.generate(seed)
    sections.append("## Adversary and outage degradation\n\n```\n%s\n```"
                    % attacked.render())

    observed = observability.generate(seed)
    sections.append("## Observability\n\n```\n%s\n```"
                    % observed.render())

    verdicts = []
    verdicts.append("Table 1 matches the paper: %s"
                    % ("yes" if table.matches_paper else "NO"))
    worst6 = max(abs(v) for v in
                 figure6.generate(seed).deviations_pct().values())
    worst7 = max(abs(v) for v in
                 figure7.generate(seed).deviations_pct().values())
    verdicts.append("Worst Figure 6 deviation: %.1f%%" % worst6)
    verdicts.append("Worst Figure 7 deviation: %.1f%%" % worst7)
    verdicts.append("PKI ~600 ms claim: measured %.1f ms"
                    % claim.pki_ms_music)
    verdicts.append(
        "Zero-acceptance sweep: %d/%d attacks rejected"
        % (len(attacked.sweep.outcomes) - len(attacked.sweep.accepted),
           len(attacked.sweep.outcomes)))
    verdicts.append(
        "Forgery cut-off refund: %.0f%% of the attacked flow's "
        "crypto spend" % (100.0 * attacked.drains[0].saved_fraction))
    verdicts.append(
        "Retry-storm collapse without mitigation: %d service units "
        "after a %d-unit spike; %d/%d mitigated combos recovered "
        "inside the %d-unit window"
        % (stormed.sweep.baseline.collapse_duration,
           stormed.sweep.baseline.spec.spike_duration,
           len(stormed.sweep.recovered()),
           len(stormed.sweep.grid) - 1,
           stormed.sweep.recovery_window))
    sections.append("## Verdict\n\n" + "\n".join(
        "* " + v for v in verdicts))

    return ReproductionReport(markdown="\n\n".join(sections) + "\n")
