"""Shared plumbing for the per-experiment analysis modules.

Paper-scale traces are deterministic functions of (use case, seed,
options), and building one costs a few seconds of RSA key generation, so
they are memoized here. The cost-model evaluation itself is cheap and is
what the benchmarks time.
"""

from functools import lru_cache

from ..core.costs import CostOptions
from ..core.trace import OperationTrace
from ..usecases.catalog import music_player, ringtone
from ..usecases.workload import run_modeled

#: Seed every published experiment uses, for bit-reproducible artifacts.
DEFAULT_SEED = "repro-oma-drm-2005"


@lru_cache(maxsize=32)
def _cached_trace(use_case_name: str, seed: str,
                  count_mgf1: bool) -> OperationTrace:
    factories = {"music": music_player, "ringtone": ringtone}
    use_case = factories[use_case_name]()
    options = CostOptions(count_mgf1=count_mgf1)
    return run_modeled(use_case, seed=seed, options=options).trace


def music_trace(seed: str = DEFAULT_SEED,
                count_mgf1: bool = False) -> OperationTrace:
    """Paper-scale Music Player trace (memoized)."""
    return _cached_trace("music", seed, count_mgf1)


def ringtone_trace(seed: str = DEFAULT_SEED,
                   count_mgf1: bool = False) -> OperationTrace:
    """Paper-scale Ringtone trace (memoized)."""
    return _cached_trace("ringtone", seed, count_mgf1)
