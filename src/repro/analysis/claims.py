"""Experiment ``pki600``: the paper's in-text quantitative claims.

Beyond the figures, §4 makes checkable numeric statements:

* the PKI operations "total to roughly 600ms" in software, identically in
  both use cases (their execution time does not depend on the DCF size);
* Music Player: AES/SHA-1 hardware macros cut the total "to almost a
  tenth" of the pure-software value;
* PKI hardware acceleration "has only limited benefits ... from a
  performance point of view" once AES/SHA-1 are in hardware for the Music
  Player (the HW bar improves on SW/HW far less than SW/HW improved on SW).
"""

from dataclasses import dataclass

from ..core.architecture import SW_PROFILE
from ..core.model import PerformanceModel
from ..core.trace import Algorithm
from .common import DEFAULT_SEED, music_trace, ringtone_trace
from .figure6 import generate as generate_fig6
from .formatting import format_table

#: The paper's wording: PKI totals "roughly 600ms" in software.
PAPER_PKI_MS = 600.0


def pki_software_ms(trace, model: PerformanceModel = None) -> float:
    """Milliseconds of RSA (public + private) work in pure software."""
    if model is None:
        model = PerformanceModel()
    breakdown = model.evaluate(trace, SW_PROFILE)
    per_algorithm = breakdown.ms_by_algorithm()
    return (per_algorithm.get(Algorithm.RSA_PUBLIC, 0.0)
            + per_algorithm.get(Algorithm.RSA_PRIVATE, 0.0))


@dataclass
class ClaimsResult:
    """Measured values for each in-text claim."""

    pki_ms_music: float
    pki_ms_ringtone: float
    music_sw_over_swhw: float

    @property
    def pki_identical_across_use_cases(self) -> bool:
        """PKI time must not depend on the DCF size (paper §4)."""
        return abs(self.pki_ms_music - self.pki_ms_ringtone) < 1e-9

    def render(self) -> str:
        """ASCII table of claim vs measurement."""
        rows = [
            ("PKI total, software, Music Player",
             "~600 ms", "%.1f ms" % self.pki_ms_music),
            ("PKI total, software, Ringtone",
             "~600 ms", "%.1f ms" % self.pki_ms_ringtone),
            ("PKI identical across use cases",
             "yes", "yes" if self.pki_identical_across_use_cases
             else "NO"),
            ("Music Player SW / SW-HW speedup",
             "~10x (almost a tenth)",
             "%.1fx" % self.music_sw_over_swhw),
        ]
        return format_table(
            headers=("Claim", "Paper", "Measured"), rows=rows,
            title="In-text claims (paper section 4)",
        )


def generate(seed: str = DEFAULT_SEED) -> ClaimsResult:
    """Measure every in-text claim."""
    model = PerformanceModel()
    fig6 = generate_fig6(seed)
    return ClaimsResult(
        pki_ms_music=pki_software_ms(music_trace(seed), model),
        pki_ms_ringtone=pki_software_ms(ringtone_trace(seed), model),
        music_sw_over_swhw=(fig6.measured_ms["SW"]
                            / fig6.measured_ms["SW/HW"]),
    )
