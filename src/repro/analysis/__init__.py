"""Reproduction harness: one module per paper table/figure plus ablations.

* :mod:`~repro.analysis.table1` — Table 1 (algorithm cycle costs)
* :mod:`~repro.analysis.figure5` — Figure 5 (relative algorithm shares)
* :mod:`~repro.analysis.figure6` — Figure 6 (Music Player, three variants)
* :mod:`~repro.analysis.figure7` — Figure 7 (Ringtone, three variants)
* :mod:`~repro.analysis.claims` — in-text quantitative claims (PKI ~600 ms)
* :mod:`~repro.analysis.ablations` — design-choice studies
* :mod:`~repro.analysis.formatting` — ASCII table/chart rendering
"""

from . import (ablations, claims, durability, figure5, figure6, figure7,
               fleet, messages, report, table1)
from .common import DEFAULT_SEED, music_trace, ringtone_trace
from .formatting import (deviation_pct, format_log_bars, format_ms,
                         format_stacked_shares, format_table)

__all__ = [
    "ablations", "claims", "durability", "figure5", "figure6",
    "figure7", "fleet", "messages", "report", "table1",
    "DEFAULT_SEED", "music_trace", "ringtone_trace", "deviation_pct",
    "format_log_bars", "format_ms", "format_stacked_shares",
    "format_table",
]
