"""Experiment ``observability``: what a traced run looks like inside.

Runs the seeded ``registration`` trace scenario
(:mod:`repro.usecases.tracing`) under each paper architecture profile
and summarizes the tracer's view: spans and events recorded, cycles per
track (protocol phase), and — the layer's core guarantee — that the
per-algorithm cycle totals of the emitted operation spans reconcile
*exactly* with pricing the run's :class:`~repro.core.trace.
OperationTrace` through :class:`~repro.core.model.PerformanceModel`.
Everything is stamped on the virtual cycle timeline, so the rendered
artifact is a pure function of the seed.
"""

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.architecture import PAPER_PROFILES
from ..core.model import PerformanceModel
from ..obs.tracer import Tracer
from ..usecases.tracing import run_scenario
from .common import DEFAULT_SEED
from .formatting import format_table

#: The scenario the report section traces.
REPORT_SCENARIO = "registration"


@dataclass
class ProfileTraceSummary:
    """One traced scenario run under one architecture profile."""

    architecture: str
    clock_hz: int
    spans: int
    events: int
    operation_spans: int
    total_cycles: int
    cycles_by_track: Dict[str, int]
    cycles_by_algorithm: Dict[str, int]
    reconciles: bool

    @property
    def total_ms(self) -> float:
        """Scenario cycle total in milliseconds at this clock."""
        return self.total_cycles / self.clock_hz * 1000.0


@dataclass
class ObservabilityResult:
    """The rendered observability experiment."""

    seed: str
    scenario: str
    summaries: List[ProfileTraceSummary]

    def render(self) -> str:
        """Per-architecture tracer summaries plus the reconciliation."""
        rows: List[Tuple[str, ...]] = []
        for summary in self.summaries:
            rows.append((
                summary.architecture,
                "%d" % summary.spans,
                "%d" % summary.events,
                "%d" % summary.operation_spans,
                "%d" % summary.total_cycles,
                "%.1f" % summary.total_ms,
                "exact" if summary.reconciles else "MISMATCH",
            ))
        table = format_table(
            ("arch", "spans", "events", "op spans", "cycles", "ms",
             "vs cost model"),
            rows,
            title="Traced %r scenario (seed %r, cycle timebase)"
                  % (self.scenario, self.seed))

        algo_rows = []
        reference = self.summaries[0]
        for algorithm in sorted(reference.cycles_by_algorithm):
            algo_rows.append(tuple(
                [algorithm] + ["%d" % s.cycles_by_algorithm[algorithm]
                               for s in self.summaries]))
        algorithms = format_table(
            tuple(["algorithm"] + [s.architecture
                                   for s in self.summaries]),
            algo_rows,
            title="Operation-span cycles per algorithm")

        return "%s\n\n%s" % (table, algorithms)


def generate(seed: str = DEFAULT_SEED,
             scenario: str = REPORT_SCENARIO,
             rsa_bits: int = 1024) -> ObservabilityResult:
    """Trace ``scenario`` under every paper profile and summarize."""
    model = PerformanceModel()
    summaries = []
    for profile in PAPER_PROFILES:
        tracer = Tracer(profile=profile, actor="terminal")
        world = run_scenario(scenario, tracer, seed=seed + "/trace",
                             rsa_bits=rsa_bits)
        trace = world.agent_crypto.trace
        breakdown = model.evaluate(trace, profile)
        priced = {algorithm.value: cycles
                  for algorithm, cycles
                  in breakdown.cycles_by_algorithm().items()
                  if cycles}
        by_algorithm = tracer.cycles_by_algorithm()
        summaries.append(ProfileTraceSummary(
            architecture=profile.name,
            clock_hz=profile.clock_hz,
            spans=len(tracer.spans),
            events=len(tracer.events),
            operation_spans=len(tracer.operation_spans()),
            total_cycles=tracer.now,
            cycles_by_track=tracer.cycles_by_track(),
            cycles_by_algorithm=by_algorithm,
            reconciles=(by_algorithm == priced
                        and tracer.now == breakdown.total_cycles),
        ))
    return ObservabilityResult(seed=seed, scenario=scenario,
                               summaries=summaries)
