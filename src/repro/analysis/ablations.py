"""Ablation studies for the design choices the paper discusses.

Each function regenerates one study from DESIGN.md's ablation index:

* :func:`filesize_crossover` — where does AES/SHA-1 acceleration overtake
  PKI acceleration as the more valuable macro? (§4's closing argument
  about whether a PKI hardware cell's transistor cost is justified.)
* :func:`playback_sensitivity` — totals as a function of access count.
* :func:`kdev_ablation` — the §2.4.3 K_DEV re-wrap optimization versus
  re-running the PKI unwrap on every access.
* :func:`domain_overhead` — Domain RO (mandatory signature verification)
  versus Device RO.
* :func:`energy_comparison` — proportional-to-time energy (the paper's
  assumption) versus per-unit power weighting (its future-work remark
  that the hardware gap widens for energy).
* :func:`mgf1_sensitivity` — effect of the paper's one-hash EMSA-PSS
  approximation on every headline number.
"""

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.architecture import (HW_PROFILE, PAPER_PROFILES, SW_HW_PROFILE,
                                 SW_PROFILE, custom_profile)
from ..core.costs import CostOptions
from ..core.energy import ProportionalEnergyModel, WeightedEnergyModel
from ..core.model import PerformanceModel
from ..core.trace import Algorithm
from ..usecases.catalog import music_player, ringtone
from ..usecases.scenario import KIB, UseCase
from ..usecases.workload import WorkloadScaler, run_modeled
from .common import DEFAULT_SEED
from .formatting import format_table, format_ms

#: AES + SHA-1 macros only (the SW/HW variant's hardware set).
_AES_SHA_HW = {
    Algorithm.AES_ENCRYPT: True,
    Algorithm.AES_DECRYPT: True,
    Algorithm.SHA1: True,
    Algorithm.HMAC_SHA1: True,
}

#: RSA macros only — the complementary single-macro architecture.
_PKI_HW = {
    Algorithm.RSA_PUBLIC: True,
    Algorithm.RSA_PRIVATE: True,
}


@dataclass
class SweepResult:
    """A labelled table of sweep rows."""

    title: str
    headers: Tuple[str, ...]
    rows: List[Tuple]

    def render(self) -> str:
        """ASCII table rendering."""
        return format_table(self.headers,
                            [[str(c) for c in row] for row in self.rows],
                            title=self.title)


def filesize_crossover(sizes_octets: Sequence[int] = None,
                       seed: str = DEFAULT_SEED) -> SweepResult:
    """Sweep DCF size: AES/SHA-1-only macros vs PKI-only macros.

    The crossover point is where bulk-crypto acceleration starts beating
    PKI acceleration — small files (ringtones) favor the PKI macro, large
    files (music) the AES/SHA-1 macros.
    """
    if sizes_octets is None:
        sizes_octets = [4 * KIB, 16 * KIB, 30 * KIB, 64 * KIB, 128 * KIB,
                        512 * KIB, 1024 * KIB, 3584 * KIB]
    template = UseCase(name="sweep", content_octets=4 * KIB, accesses=5)
    scaler = WorkloadScaler(template, seed=seed)
    model = PerformanceModel()
    aes_sha = custom_profile("AES+SHA1 macros", _AES_SHA_HW)
    pki = custom_profile("PKI macros", _PKI_HW)
    rows = []
    for size in sizes_octets:
        trace = scaler.trace(content_octets=size)
        sw_ms = model.evaluate(trace, SW_PROFILE).total_ms
        aes_ms = model.evaluate(trace, aes_sha).total_ms
        pki_ms = model.evaluate(trace, pki).total_ms
        winner = "AES/SHA-1" if aes_ms < pki_ms else "PKI"
        rows.append((
            "%d KiB" % (size // KIB), format_ms(sw_ms),
            format_ms(aes_ms), format_ms(pki_ms), winner,
        ))
    return SweepResult(
        title="Ablation: which macro set helps more, by DCF size "
              "(5 accesses)",
        headers=("DCF size", "SW [ms]", "AES+SHA1 HW [ms]",
                 "PKI HW [ms]", "better macro"),
        rows=rows,
    )


def playback_sensitivity(accesses: Sequence[int] = (1, 5, 10, 25, 50, 100),
                         seed: str = DEFAULT_SEED) -> SweepResult:
    """Sweep access count for both paper use cases (SW architecture)."""
    model = PerformanceModel()
    music_scaler = WorkloadScaler(music_player(), seed=seed)
    ring_scaler = WorkloadScaler(ringtone(), seed=seed)
    rows = []
    for n in accesses:
        music_ms = model.evaluate(music_scaler.trace(accesses=n),
                                  SW_PROFILE).total_ms
        ring_ms = model.evaluate(ring_scaler.trace(accesses=n),
                                 SW_PROFILE).total_ms
        rows.append((str(n), format_ms(music_ms), format_ms(ring_ms)))
    return SweepResult(
        title="Ablation: sensitivity to access count (SW architecture)",
        headers=("accesses", "Music Player [ms]", "Ringtone [ms]"),
        rows=rows,
    )


def kdev_ablation(seed: str = DEFAULT_SEED) -> SweepResult:
    """The K_DEV re-wrap optimization vs per-access PKI unwrap."""
    model = PerformanceModel()
    rows = []
    for use_case in (ringtone(), music_player()):
        with_kdev = run_modeled(use_case, seed=seed,
                                kdev_optimization=True).trace
        without = run_modeled(use_case, seed=seed,
                              kdev_optimization=False).trace
        for profile in (SW_PROFILE, HW_PROFILE):
            ms_with = model.evaluate(with_kdev, profile).total_ms
            ms_without = model.evaluate(without, profile).total_ms
            rows.append((
                use_case.name, profile.name, format_ms(ms_with),
                format_ms(ms_without),
                "%.2fx" % (ms_without / ms_with),
            ))
    return SweepResult(
        title="Ablation: K_DEV re-wrap optimization (paper section 2.4.3)",
        headers=("use case", "arch", "with K_DEV [ms]",
                 "without [ms]", "slowdown"),
        rows=rows,
    )


def domain_overhead(seed: str = DEFAULT_SEED) -> SweepResult:
    """Domain RO versus Device RO for the Ringtone workload."""
    model = PerformanceModel()
    device_trace = run_modeled(ringtone(), seed=seed).trace
    domain_case = UseCase(
        name="Ringtone", content_octets=ringtone().content_octets,
        accesses=ringtone().accesses, content_type="audio/midi",
        domain=True,
    )
    domain_trace = run_modeled(domain_case, seed=seed).trace
    rows = []
    for profile in PAPER_PROFILES:
        device_ms = model.evaluate(device_trace, profile).total_ms
        domain_ms = model.evaluate(domain_trace, profile).total_ms
        rows.append((
            profile.name, format_ms(device_ms), format_ms(domain_ms),
            "%+.1f%%" % (100.0 * (domain_ms - device_ms) / device_ms),
        ))
    return SweepResult(
        title="Ablation: Domain RO overhead (Ringtone use case)",
        headers=("arch", "Device RO [ms]", "Domain RO [ms]", "overhead"),
        rows=rows,
    )


def energy_comparison(seed: str = DEFAULT_SEED) -> SweepResult:
    """Proportional vs per-unit energy models across architectures.

    The per-unit model realizes the paper's future-work observation: with
    hardware macros an order of magnitude more power-efficient than the
    CPU, the SW-to-HW *energy* ratio exceeds the *time* ratio.
    """
    model = PerformanceModel()
    proportional = ProportionalEnergyModel()
    weighted = WeightedEnergyModel()
    rows = []
    for use_case in (ringtone(), music_player()):
        trace = run_modeled(use_case, seed=seed).trace
        for profile in PAPER_PROFILES:
            breakdown = model.evaluate(trace, profile)
            rows.append((
                use_case.name, profile.name,
                format_ms(breakdown.total_ms),
                "%.3f" % (proportional.joules(breakdown) * 1000.0),
                "%.3f" % (weighted.joules(breakdown) * 1000.0),
            ))
    return SweepResult(
        title="Ablation: energy models (mJ per full use case)",
        headers=("use case", "arch", "time [ms]",
                 "proportional [mJ]", "per-unit [mJ]"),
        rows=rows,
    )


def mgf1_sensitivity(seed: str = DEFAULT_SEED) -> SweepResult:
    """Effect of counting the full EMSA-PSS hashing (MGF1 + H)."""
    model = PerformanceModel()
    rows = []
    for use_case in (ringtone(), music_player()):
        approx = run_modeled(use_case, seed=seed,
                             options=CostOptions(count_mgf1=False)).trace
        full = run_modeled(use_case, seed=seed,
                           options=CostOptions(count_mgf1=True)).trace
        for profile in (SW_PROFILE, HW_PROFILE):
            ms_approx = model.evaluate(approx, profile).total_ms
            ms_full = model.evaluate(full, profile).total_ms
            rows.append((
                use_case.name, profile.name, format_ms(ms_approx),
                format_ms(ms_full),
                "%+.4f%%" % (100.0 * (ms_full - ms_approx)
                             / ms_approx),
            ))
    return SweepResult(
        title="Ablation: EMSA-PSS one-hash approximation "
              "(paper section 2.4.5)",
        headers=("use case", "arch", "approx [ms]", "full PSS [ms]",
                 "difference"),
        rows=rows,
    )


def energy_gap_ratios(seed: str = DEFAULT_SEED) -> Dict[str, float]:
    """SW/HW gap for time vs energy — the future-work claim, quantified.

    Returns the Music Player's SW:HW ratio under the time metric and
    under the per-unit energy metric; the paper's remark predicts
    ``energy_ratio > time_ratio``.
    """
    model = PerformanceModel()
    weighted = WeightedEnergyModel()
    trace = run_modeled(music_player(), seed=seed).trace
    sw = model.evaluate(trace, SW_PROFILE)
    hw = model.evaluate(trace, HW_PROFILE)
    return {
        "time_ratio": sw.total_ms / hw.total_ms,
        "energy_ratio": weighted.joules(sw) / weighted.joules(hw),
    }
