"""Experiment ``fig5``: relative importance of the algorithms (Figure 5).

Figure 5 shows, for the pure-software architecture, the percentage of
total processing time spent in each cryptographic algorithm for both use
cases. The paper's qualitative claims, which this experiment verifies:

* the Music Player is dominated by AES decryption and SHA-1 (large file,
  five playbacks),
* the Ringtone is dominated by the PKI private-key operations of the
  registration/installation phases.
"""

from dataclasses import dataclass
from typing import Dict, List

from ..core.architecture import SW_PROFILE
from ..core.model import PerformanceModel
from ..core.report import FIGURE5_CATEGORIES, category_shares
from .common import DEFAULT_SEED, music_trace, ringtone_trace
from .formatting import format_stacked_shares

#: Percentages read off the paper's stacked bars (approximate by nature).
PAPER_SHARES: Dict[str, Dict[str, float]] = {
    "Ringtone": {
        "PKI Public Key Operation": 0.05,
        "PKI Private Key Operation": 0.62,
        "AES Decryption": 0.22,
        "SHA-1": 0.11,
    },
    "Music Player": {
        "PKI Public Key Operation": 0.01,
        "PKI Private Key Operation": 0.07,
        "AES Decryption": 0.62,
        "SHA-1": 0.30,
    },
}


@dataclass
class Figure5Result:
    """Measured per-category shares for both use cases (SW profile)."""

    shares: Dict[str, Dict[str, float]]

    def series(self, use_case: str) -> List[float]:
        """Category fractions in legend order for one use case."""
        return [self.shares[use_case][c] for c in FIGURE5_CATEGORIES]

    def render(self) -> str:
        """ASCII stacked-bar rendering in the figure's layout."""
        labels = list(self.shares)
        rows = [self.series(label) for label in labels]
        return format_stacked_shares(
            labels=labels, categories=list(FIGURE5_CATEGORIES),
            shares=rows,
            title="Figure 5 - Relative importance of cryptographic "
                  "algorithms (SW architecture)",
        )


def generate(seed: str = DEFAULT_SEED) -> Figure5Result:
    """Regenerate Figure 5's two stacked bars."""
    model = PerformanceModel()
    shares = {}
    for label, trace in (("Ringtone", ringtone_trace(seed)),
                         ("Music Player", music_trace(seed))):
        breakdown = model.evaluate(trace, SW_PROFILE)
        shares[label] = category_shares(breakdown)
    return Figure5Result(shares=shares)
