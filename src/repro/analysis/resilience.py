"""Priced retry overhead: what an unreliable bearer costs the terminal.

The paper prices each ROAP flow once, over a perfect channel. A cellular
bearer is not perfect, and the session layer
(:mod:`repro.drm.session`) cures losses by re-running the whole flow —
fresh nonce, fresh signature, fresh public-key operations. Every retry
therefore re-spends the per-attempt crypto budget, and the expected
overhead is a function of the loss rate and the architecture.

The expected overhead reported here is analytic, layered on a *measured*
clean attempt:

* One registration is run over a clean channel with a metered crypto
  provider, giving the per-attempt cost (cycles, time, energy per
  architecture profile; octets on the wire).
* With per-transmission loss ``p`` and ``m`` transmissions per attempt,
  an attempt succeeds with ``q = (1-p)^m``. Bounded at ``A`` attempts,
  the expected number of attempts started is
  ``E = sum_{k=1..A} (1-q)^(k-1)`` and the completion probability is
  ``1 - (1-q)^A``.
* Expected retry overhead is ``(E - 1)`` times the per-attempt cost —
  zero at ``p = 0`` and monotonically non-decreasing in ``p`` by
  construction, which a sampled simulation cannot guarantee.

The simulated path (:class:`~repro.drm.roap.faults.FaultyChannel` under
:class:`~repro.drm.session.RoapSession`) exercises the same costs
concretely; this module reports their expectation.
"""

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

from ..core.architecture import PAPER_PROFILES
from ..core.energy import ProportionalEnergyModel
from ..core.model import PerformanceModel
from ..core.trace import OperationTrace
from ..drm.roap.wire import WireChannel
from ..usecases.world import RSA_BITS, DRMWorld
from .common import DEFAULT_SEED
from .formatting import format_table

#: Transmissions per 4-pass registration attempt (two round trips, each
#: an uplink and a downlink — four independent loss opportunities).
REGISTRATION_TRANSMISSIONS = 4

#: Loss-rate columns the report sweeps.
DEFAULT_LOSS_RATES = (0.0, 0.05, 0.10, 0.20, 0.40)

#: Retry budget assumed by the expectation (matches RetryPolicy).
DEFAULT_MAX_ATTEMPTS = 5


def attempt_success_probability(loss_rate: float,
                                transmissions: int =
                                REGISTRATION_TRANSMISSIONS) -> float:
    """Probability one whole attempt survives every transmission."""
    if not 0.0 <= loss_rate <= 1.0:
        raise ValueError("loss rate must be within [0, 1]")
    return (1.0 - loss_rate) ** transmissions


def expected_attempts(loss_rate: float,
                      transmissions: int = REGISTRATION_TRANSMISSIONS,
                      max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> float:
    """Expected number of attempts started, bounded at ``max_attempts``.

    ``E[min(Geom(q), A)] = sum_{k=1..A} (1-q)^(k-1)`` — 1 on a clean
    channel, approaching ``A`` as the loss rate approaches 1.
    """
    if max_attempts < 1:
        raise ValueError("at least one attempt is required")
    q = attempt_success_probability(loss_rate, transmissions)
    return sum((1.0 - q) ** (k - 1) for k in range(1, max_attempts + 1))


def completion_probability(loss_rate: float,
                           transmissions: int =
                           REGISTRATION_TRANSMISSIONS,
                           max_attempts: int =
                           DEFAULT_MAX_ATTEMPTS) -> float:
    """Probability the flow completes within the retry budget."""
    q = attempt_success_probability(loss_rate, transmissions)
    return 1.0 - (1.0 - q) ** max_attempts


@lru_cache(maxsize=8)
def _clean_registration(seed: str,
                        rsa_bits: int) -> Tuple[OperationTrace, int]:
    """Measured trace and wire octets of one clean registration."""
    world = DRMWorld.create(seed, metered=True, rsa_bits=rsa_bits)
    channel = WireChannel(world.ri)
    world.agent_crypto.reset_trace()
    world.agent.register(channel)
    trace = world.agent_crypto.reset_trace()
    return trace, channel.log.total_octets()


@dataclass(frozen=True)
class RetryOverhead:
    """Expected retry overhead at one (architecture, loss rate) point."""

    architecture: str
    loss_rate: float
    expected_attempts: float
    completion_probability: float
    overhead_cycles: float
    overhead_ms: float
    overhead_millijoules: float
    overhead_octets: float


@dataclass
class ResilienceResult:
    """The priced retry-overhead sweep for registration."""

    seed: str
    rsa_bits: int
    transmissions: int
    max_attempts: int
    loss_rates: Tuple[float, ...]
    attempt_octets: int
    attempt_cycles: Dict[str, int]
    attempt_ms: Dict[str, float]
    attempt_millijoules: Dict[str, float]
    overheads: Tuple[RetryOverhead, ...]

    def architectures(self) -> List[str]:
        """Architecture names in profile order."""
        return list(self.attempt_cycles)

    def rows_for(self, architecture: str) -> List[RetryOverhead]:
        """Overheads for one architecture, in loss-rate order."""
        return [o for o in self.overheads
                if o.architecture == architecture]

    def render(self) -> str:
        """Aligned ASCII table, one row per (architecture, loss rate)."""
        rows = []
        for o in self.overheads:
            rows.append((
                o.architecture,
                "%.0f%%" % (100.0 * o.loss_rate),
                "%.2f" % o.expected_attempts,
                "%.4f" % o.completion_probability,
                "%.0f" % o.overhead_cycles,
                "%.2f" % o.overhead_ms,
                "%.3f" % o.overhead_millijoules,
                "%.0f" % o.overhead_octets,
            ))
        title = ("Registration retry overhead (%d transmissions/attempt, "
                 "<= %d attempts)" % (self.transmissions,
                                      self.max_attempts))
        return format_table(
            ("arch", "loss", "E[attempts]", "P(complete)",
             "overhead [cycles]", "overhead [ms]", "overhead [mJ]",
             "overhead [octets]"),
            rows, title=title)


def generate(seed: str = DEFAULT_SEED,
             loss_rates: Sequence[float] = DEFAULT_LOSS_RATES,
             max_attempts: int = DEFAULT_MAX_ATTEMPTS,
             rsa_bits: int = RSA_BITS) -> ResilienceResult:
    """Price the expected registration retry overhead per architecture."""
    trace, octets = _clean_registration(seed, rsa_bits)
    model = PerformanceModel()
    energy = ProportionalEnergyModel()

    attempt_cycles: Dict[str, int] = {}
    attempt_ms: Dict[str, float] = {}
    attempt_mj: Dict[str, float] = {}
    for profile in PAPER_PROFILES:
        breakdown = model.evaluate(trace, profile)
        attempt_cycles[profile.name] = breakdown.total_cycles
        attempt_ms[profile.name] = breakdown.total_ms
        attempt_mj[profile.name] = 1000.0 * energy.joules(breakdown)

    overheads: List[RetryOverhead] = []
    for profile in PAPER_PROFILES:
        for rate in loss_rates:
            attempts = expected_attempts(
                rate, REGISTRATION_TRANSMISSIONS, max_attempts)
            extra = attempts - 1.0
            overheads.append(RetryOverhead(
                architecture=profile.name,
                loss_rate=rate,
                expected_attempts=attempts,
                completion_probability=completion_probability(
                    rate, REGISTRATION_TRANSMISSIONS, max_attempts),
                overhead_cycles=extra * attempt_cycles[profile.name],
                overhead_ms=extra * attempt_ms[profile.name],
                overhead_millijoules=extra * attempt_mj[profile.name],
                overhead_octets=extra * octets,
            ))

    return ResilienceResult(
        seed=seed, rsa_bits=rsa_bits,
        transmissions=REGISTRATION_TRANSMISSIONS,
        max_attempts=max_attempts,
        loss_rates=tuple(loss_rates),
        attempt_octets=octets,
        attempt_cycles=attempt_cycles,
        attempt_ms=attempt_ms,
        attempt_millijoules=attempt_mj,
        overheads=tuple(overheads))
