"""Plain-text rendering for tables and figures.

The benchmarks print the same rows/series the paper reports; these helpers
render them as aligned ASCII tables and log-scale bar charts so a terminal
run of the harness is directly comparable with the paper's artwork.
"""

import math
from typing import List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    columns = len(headers)
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != columns:
            raise ValueError("row width does not match header width")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(str(c).ljust(widths[i])
                         for i, c in enumerate(cells)).rstrip()

    separator = "  ".join("-" * w for w in widths)
    parts = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(headers))
    parts.append(separator)
    parts.extend(line(row) for row in rows)
    return "\n".join(parts)


def format_log_bars(labels: Sequence[str], values_ms: Sequence[float],
                    title: str = "", width: int = 50,
                    paper_values: Optional[Sequence[float]] = None) -> str:
    """Render a horizontal log-scale bar chart (the Figure 6/7 style).

    Bars are proportional to log10 of the value, like the paper's
    log-scale y-axis; optional paper reference values print alongside.
    """
    if len(labels) != len(values_ms):
        raise ValueError("labels and values must align")
    positive = [v for v in values_ms if v > 0]
    if not positive:
        raise ValueError("log-scale bars need positive values")
    log_max = max(math.log10(max(v, 1.0)) for v in values_ms)
    log_max = max(log_max, 1.0)

    parts: List[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    label_width = max(len(label) for label in labels)
    for i, (label, value) in enumerate(zip(labels, values_ms)):
        bar_len = max(1, int(round(
            width * math.log10(max(value, 1.0)) / log_max)))
        suffix = ""
        if paper_values is not None:
            suffix = "  (paper: %g ms)" % paper_values[i]
        parts.append("%s | %s %.1f ms%s" % (
            label.ljust(label_width), "#" * bar_len, value, suffix))
    return "\n".join(parts)


def format_stacked_shares(labels: Sequence[str],
                          categories: Sequence[str],
                          shares: Sequence[Sequence[float]],
                          title: str = "", width: int = 60) -> str:
    """Render 100 %-stacked bars (the Figure 5 style).

    ``shares[i]`` are the per-category fractions for ``labels[i]`` and
    must sum to ~1.
    """
    symbols = "#=+*%@"
    parts: List[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    legend = "  ".join(
        "%s %s" % (symbols[i % len(symbols)], category)
        for i, category in enumerate(categories)
    )
    parts.append("legend: " + legend)
    label_width = max(len(label) for label in labels)
    for label, row in zip(labels, shares):
        total = sum(row)
        if total <= 0:
            raise ValueError("shares must have a positive sum")
        bar = ""
        for i, share in enumerate(row):
            bar += symbols[i % len(symbols)] * int(round(
                width * share / total))
        percentages = ", ".join(
            "%s %.1f%%" % (categories[i], 100.0 * row[i] / total)
            for i in range(len(categories))
        )
        parts.append("%s | %s" % (label.ljust(label_width), bar))
        parts.append("%s   %s" % (" " * label_width, percentages))
    return "\n".join(parts)


def format_ms(value: float) -> str:
    """Milliseconds with sensible precision for tables."""
    if value >= 100:
        return "%.0f" % value
    if value >= 1:
        return "%.1f" % value
    return "%.3f" % value


def deviation_pct(measured: float, reference: float) -> float:
    """Signed percentage deviation of ``measured`` from ``reference``."""
    if reference == 0:
        raise ValueError("reference value must be non-zero")
    return 100.0 * (measured - reference) / reference
