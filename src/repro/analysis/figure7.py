"""Experiment ``fig7``: Ringtone execution times (Figure 7).

Figure 7 plots total processing time for the Ringtone use case
(registration + acquisition + installation + 25 accesses of a 30 KB DCF)
under the three architecture variants on a log scale. The paper's bars:
SW 900 ms, SW/HW 620 ms, HW 12 ms — here "the significant step occurs when
providing PKI hardware support", the mirror image of Figure 6.
"""

from dataclasses import dataclass
from typing import Dict, List

from ..core.architecture import PAPER_PROFILES
from ..core.model import PerformanceModel
from ..core.report import compare_architectures
from .common import DEFAULT_SEED, ringtone_trace
from .formatting import deviation_pct, format_log_bars

#: The paper's Figure 7 bars, in milliseconds.
PAPER_MS: Dict[str, float] = {"SW": 900.0, "SW/HW": 620.0, "HW": 12.0}


@dataclass
class Figure7Result:
    """Measured totals for the three variants plus paper references."""

    measured_ms: Dict[str, float]
    paper_ms: Dict[str, float]

    def labels(self) -> List[str]:
        """Variant names in plotting order."""
        return list(self.measured_ms)

    def deviations_pct(self) -> Dict[str, float]:
        """Signed deviation from the paper per variant."""
        return {
            name: deviation_pct(self.measured_ms[name],
                                self.paper_ms[name])
            for name in self.measured_ms
        }

    def render(self) -> str:
        """ASCII log-bar rendering in the figure's layout."""
        labels = self.labels()
        chart = format_log_bars(
            labels=labels,
            values_ms=[self.measured_ms[k] for k in labels],
            paper_values=[self.paper_ms[k] for k in labels],
            title="Figure 7 - Ringtone use case, execution time "
                  "(log scale)",
        )
        deviations = ", ".join(
            "%s %+.1f%%" % (k, v) for k, v in self.deviations_pct().items()
        )
        return chart + "\ndeviation from paper: " + deviations


def generate(seed: str = DEFAULT_SEED) -> Figure7Result:
    """Regenerate Figure 7's three bars."""
    comparison = compare_architectures(
        ringtone_trace(seed), PAPER_PROFILES, PerformanceModel(),
        use_case="Ringtone",
    )
    measured = dict(zip(comparison.labels(), comparison.series_ms()))
    return Figure7Result(measured_ms=measured, paper_ms=dict(PAPER_MS))
