"""Experiment ``fleet``: Rights-Issuer-scale population costs.

The paper's figures price one terminal; this experiment prices an
operator's whole device population (see :mod:`repro.usecases.fleet`) and
summarizes, per architecture, what the fleet's DRM workload costs the
terminals (cycles/time/energy, mean and tail percentiles) and what it
costs the Rights Issuer (request rate, retry amplification, wire volume).

All statistics come from exact mergeable accumulators, so the numbers
are bit-identical for any worker count — the rendered artifact is a pure
function of the :class:`~repro.usecases.fleet.FleetConfig`.
"""

from dataclasses import dataclass
from typing import Optional

from ..sim.fleet import KernelFleetResult, run_fleet_kernel
from ..sim.ri import RICapacity
from ..usecases.fleet import FleetConfig, FleetResult, run_fleet
from .common import DEFAULT_SEED
from .formatting import format_table

#: Population used by the report section: big enough for stable tails,
#: small enough to keep report regeneration interactive.
REPORT_DEVICES = 20_000


@dataclass
class FleetAnalysis:
    """The rendered fleet experiment.

    ``kernel`` is present when the run used the event kernel's shared-RI
    mode (``--kernel``): the sequential accumulator in ``result`` is
    then exactly the kernel run's ``base`` — the kernel pass adds the
    contention view without perturbing any sequential statistic.
    """

    result: FleetResult
    kernel: Optional[KernelFleetResult] = None

    def render(self) -> str:
        """Two aligned tables: terminal-side costs, RI-side load."""
        result = self.result
        acc = result.accumulator

        arch_rows = []
        for summary in result.architecture_summaries():
            arch_rows.append((
                summary.architecture,
                "%.0f" % summary.cycles.mean,
                "%.2f" % summary.mean_ms,
                "%.2f" % summary.percentile_ms("p50"),
                "%.2f" % summary.percentile_ms("p95"),
                "%.2f" % summary.percentile_ms("p99"),
                "%.1f" % (summary.total_ms / 1000.0),
                "%.1f" % (summary.total_millijoules / 1000.0),
            ))
        config = result.config
        terminal = format_table(
            ("arch", "mean [cycles]", "mean [ms]", "p50 [ms]",
             "p95 [ms]", "p99 [ms]", "fleet total [s]",
             "fleet energy [J]"),
            arch_rows,
            title="Fleet of %d devices (seed %r, %.0f%% lossy at "
                  "loss %.0f%%)" % (config.devices, config.seed,
                                    100.0 * config.lossy_fraction,
                                    100.0 * config.loss_rate))

        families = ", ".join(
            "%s=%d" % (name, acc.family_devices[name])
            for name in sorted(acc.family_devices))
        octets = acc.octets.summary()
        ri_rows = [
            ("devices", "%d (%s)" % (acc.devices, families)),
            ("ROAP requests", str(acc.requests)),
            ("mean request rate", "%.2f req/s over %d s"
             % (result.mean_request_rate(), config.window_seconds)),
            ("peak request rate", "%.2f req/s (%s arrivals, %d bins)"
             % (result.peak_request_rate(), config.arrival_model,
                config.arrival_bins)),
            ("retry requests", "%d (%.1f%% of load)"
             % (acc.retries, 100.0 * result.retry_request_fraction())),
            ("failed registrations", str(acc.failed_registrations)),
            ("failed acquisitions", str(acc.failed_acquisitions)),
            ("wire volume", "%d octets total, %d mean/device"
             % (octets.total, round(octets.mean))),
            ("content accesses served", str(acc.accesses)),
        ]
        if config.crash_rate > 0.0:
            ri_rows.append(
                ("power-loss recoveries",
                 "%d devices, %d journal records replayed"
                 % (acc.recoveries, acc.recovery_records)))
        if config.adversary_fraction > 0.0:
            ri_rows.append(
                ("attacked devices",
                 "%d behind an active forger (cut off after %d "
                 "attempts each)"
                 % (acc.attacked_devices, config.breaker_cutoff)))
        ri_side = format_table(
            ("RI-side metric", "value"), ri_rows,
            title="Rights Issuer load")
        sections = [terminal, ri_side]
        if self.kernel is not None:
            sections.append(self._render_kernel())
        return "\n\n".join(sections)

    def _render_kernel(self) -> str:
        """The shared-RI contention table of a ``--kernel`` run."""
        assert self.kernel is not None
        rows = []
        for name in sorted(self.kernel.architectures):
            arch = self.kernel.architectures[name]
            rows.append((
                name, str(arch.served), str(arch.refused),
                "%.4f" % arch.utilization,
                "%.4f" % arch.mean_queue_depth,
                str(arch.peak_queue_depth),
                "%.2f" % arch.latency_ms("p50"),
                "%.2f" % arch.latency_ms("p95"),
                str(arch.ocsp_fetches),
            ))
        capacity = self.kernel.capacity
        bound = ("unbounded" if capacity.queue_limit is None
                 else "queue limit %d" % capacity.queue_limit)
        return format_table(
            ("arch", "served", "refused", "utilization", "mean queue",
             "peak queue", "p50 [ms]", "p95 [ms]", "OCSP fetches"),
            rows,
            title="Shared RI under the event kernel "
                  "(%d signing unit%s, %s)"
                  % (capacity.signing_units,
                     "" if capacity.signing_units == 1 else "s", bound))


def generate(seed: str = DEFAULT_SEED,
             devices: int = REPORT_DEVICES,
             workers: int = 1,
             kernel: bool = False,
             ri_capacity: RICapacity = RICapacity(),
             **config_overrides) -> FleetAnalysis:
    """Run the fleet experiment at report scale.

    ``kernel=True`` additionally replays the population against one
    shared :class:`~repro.sim.ri.RIServer` per architecture on the
    event kernel; the sequential statistics are unchanged.
    """
    config = FleetConfig(devices=devices, seed=seed + "/fleet",
                         **config_overrides)
    if kernel:
        contended = run_fleet_kernel(config, workers=workers,
                                     capacity=ri_capacity)
        return FleetAnalysis(result=contended.base, kernel=contended)
    return FleetAnalysis(result=run_fleet(config, workers=workers))
