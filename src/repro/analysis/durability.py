"""Priced durability overhead: what power-loss atomicity costs.

The paper prices the consumption process on storage that is simply
assumed to survive. :mod:`repro.store` drops that assumption — every
storage mutation is HMAC-SHA1-framed into a write-ahead journal, and a
reboot replays the committed transactions — and because both run
through the agent's metered crypto provider, the overhead is measured
the same way every other cost in this reproduction is:

* the same consumption process runs volatile and journaled from one
  seed; the per-phase cycle difference is the journal's price;
* a metered :meth:`~repro.drm.agent.DRMAgent.recover_storage` prices
  the reboot replay, and the per-record linear scaling projects it to
  any journal length.

The result complements :mod:`repro.analysis.resilience`: that module
prices surviving an unreliable *bearer*, this one prices surviving an
unreliable *battery*.
"""

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.architecture import PAPER_PROFILES
from ..usecases.durability import (DurabilityMeasurement,
                                   measure_durability)
from ..usecases.world import RSA_BITS
from .common import DEFAULT_SEED
from .formatting import format_table

#: Journal lengths (records) the recovery projection sweeps: a fresh
#: device, a moderate history, and a device that has never compacted.
DEFAULT_JOURNAL_LENGTHS = (8, 64, 512, 4096)


@dataclass(frozen=True)
class PhaseOverhead:
    """Journal overhead of one phase on one architecture."""

    architecture: str
    phase: str
    baseline_cycles: int
    overhead_cycles: int
    records: int
    journal_octets: int

    @property
    def overhead_fraction(self) -> float:
        """Overhead relative to the volatile baseline (0 when free)."""
        if self.baseline_cycles == 0:
            return 0.0
        return self.overhead_cycles / self.baseline_cycles


@dataclass(frozen=True)
class RecoveryProjection:
    """Projected reboot-replay cost at one journal length."""

    architecture: str
    records: int
    cycles: int
    ms: float


@dataclass
class DurabilityResult:
    """The priced durability overhead and recovery projections."""

    seed: str
    rsa_bits: int
    measurement: DurabilityMeasurement
    overheads: Tuple[PhaseOverhead, ...]
    projections: Tuple[RecoveryProjection, ...]

    def overheads_for(self, architecture: str) -> List[PhaseOverhead]:
        """Phase overheads of one architecture, in phase order."""
        return [o for o in self.overheads
                if o.architecture == architecture]

    def render(self) -> str:
        """Two aligned ASCII tables: journal overhead, recovery cost."""
        overhead_rows = []
        for o in self.overheads:
            overhead_rows.append((
                o.architecture, o.phase,
                "%d" % o.baseline_cycles,
                "%d" % o.overhead_cycles,
                "%.2f%%" % (100.0 * o.overhead_fraction),
                "%d" % o.records,
                "%d" % o.journal_octets,
            ))
        overhead_table = format_table(
            ("arch", "phase", "baseline [cycles]", "journal [cycles]",
             "overhead", "records", "flash [octets]"),
            overhead_rows,
            title="Write-ahead journal overhead per phase")

        projection_rows = [
            (p.architecture, "%d" % p.records, "%d" % p.cycles,
             "%.3f" % p.ms)
            for p in self.projections
        ]
        projection_table = format_table(
            ("arch", "journal [records]", "replay [cycles]",
             "replay [ms]"),
            projection_rows,
            title="Power-loss recovery replay cost vs journal length")
        return overhead_table + "\n\n" + projection_table


def generate(seed: str = DEFAULT_SEED,
             journal_lengths: Sequence[int] = DEFAULT_JOURNAL_LENGTHS,
             rsa_bits: int = RSA_BITS) -> DurabilityResult:
    """Measure and price durability overhead for every architecture."""
    measurement = measure_durability(seed, rsa_bits=rsa_bits)
    templates = measurement.templates

    phases = (
        ("registration", measurement.baseline_registration_cycles,
         templates.registration_overhead_cycles,
         templates.registration_records, templates.registration_octets),
        ("installation", measurement.baseline_installation_cycles,
         templates.installation_overhead_cycles,
         templates.install_records, templates.install_octets),
        ("access", measurement.baseline_access_cycles,
         templates.access_overhead_cycles,
         templates.access_records, templates.access_octets),
    )
    overheads: List[PhaseOverhead] = []
    for profile in PAPER_PROFILES:
        for phase, baseline, overhead, records, octets in phases:
            overheads.append(PhaseOverhead(
                architecture=profile.name, phase=phase,
                baseline_cycles=baseline[profile.name],
                overhead_cycles=overhead[profile.name],
                records=records, journal_octets=octets,
            ))

    projections: List[RecoveryProjection] = []
    for profile in PAPER_PROFILES:
        for records in journal_lengths:
            cycles = templates.recovery_cycles_for(profile.name,
                                                   records)
            projections.append(RecoveryProjection(
                architecture=profile.name, records=records,
                cycles=cycles, ms=profile.cycles_to_ms(cycles),
            ))

    return DurabilityResult(
        seed=seed, rsa_bits=rsa_bits, measurement=measurement,
        overheads=tuple(overheads), projections=tuple(projections))
