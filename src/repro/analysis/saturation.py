"""Experiment ``saturation``: Rights Issuer capacity per architecture.

The paper's Figures 6 and 7 price one terminal's latency; this
experiment asks the question an operator sizing an RI deployment asks:
at what request rate does each architecture's signing capacity
saturate, and what do queue depth and request latency look like on the
way there?

The kernel's open-load generator (:func:`repro.sim.fleet.run_open_load`)
drives one :class:`~repro.sim.ri.RIServer` per architecture with Poisson
request arrivals at a ladder of offered loads (fractions of the
architecture's nominal capacity ``clock_hz / mix-weighted service
demand``). Every point of the sweep shares one seed, so the arrival
draws are common random numbers across loads: the realized
utilization-vs-arrival-rate curve is monotone point-by-point, which is
what the CI smoke gate asserts.

The architecture story is stark and quantitative: a software RI
saturates below ten requests per second (one 37.74 Mcycle RSA signature
per response), the mixed profile is no better (RSA is still software),
while the hardware profile serves three orders of magnitude more —
until the OCSP refresh round-trip, not crypto, sets its latency floor.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.architecture import PAPER_PROFILES, ArchitectureProfile
from ..sim.fleet import (DEFAULT_REQUEST_MIX, OpenLoadResult,
                         nominal_service_ticks, run_open_load)
from ..sim.ri import RICapacity
from .common import DEFAULT_SEED
from .formatting import format_table

#: Offered-load ladder: fractions of each architecture's nominal
#: capacity the sweep measures.
DEFAULT_RHOS = (0.2, 0.4, 0.6, 0.8)

#: Requests per measurement point in the report; the CI smoke gate runs
#: far fewer.
REPORT_REQUESTS = 2_000


@dataclass
class SaturationPoint:
    """One (architecture, offered load) measurement."""

    architecture: str
    rho_nominal: float
    arrivals_per_second: float
    result: OpenLoadResult

    @property
    def utilization(self) -> float:
        """Realized signing-unit occupancy."""
        return self.result.load.utilization

    @property
    def mean_queue_depth(self) -> float:
        """Time-average signing-queue length."""
        return self.result.load.mean_queue_depth

    def latency_ms(self, which: str = "mean") -> float:
        """A sojourn-latency summary statistic in milliseconds."""
        return self.result.load.latency_ms(which)

    @property
    def slo_breached(self) -> Tuple[str, ...]:
        """Objectives whose lifetime compliance missed target here."""
        slo = self.result.load.slo
        return slo.breached if slo is not None else ()

    @property
    def slo_alerts(self) -> int:
        """Burn-rate alerts fired at this measurement point."""
        slo = self.result.load.slo
        return slo.alert_count if slo is not None else 0


@dataclass
class SaturationSweep:
    """The full ladder: per-architecture load curves, one shared seed."""

    seed: str
    requests: int
    capacity: RICapacity
    rhos: Tuple[float, ...]
    nominal_rate: Dict[str, float] = field(default_factory=dict)
    points: Dict[str, List[SaturationPoint]] = field(default_factory=dict)

    def assert_monotone_utilization(self) -> None:
        """Raise unless every curve's utilization rises with load.

        The sweep's common-random-numbers design makes this exact, not
        statistical: all points of one architecture replay the same
        arrival draws at scaled gaps, so higher offered load strictly
        means higher realized occupancy. CI runs this as the saturation
        smoke gate.
        """
        for architecture, curve in self.points.items():
            utilizations = [point.utilization for point in curve]
            for lower, higher in zip(utilizations, utilizations[1:]):
                if higher <= lower:
                    raise AssertionError(
                        "utilization not monotone for %s: %r"
                        % (architecture, utilizations))

    def assert_slo_contract(self) -> None:
        """Raise unless the ladder's SLO story holds.

        Two halves, both deterministic at a pinned seed:

        * the software-RSA architectures (SW, SW/HW) meet every default
          objective at the bottom of the ladder — an unloaded RI that
          breaches its own SLOs is misconfigured;
        * the HW architecture *breaches* at least one latency objective
          (with a burn-rate alert to show for it) at the top of the
          ladder: its service times are so short that the 50 ms OCSP
          refresh round-trip dominates sojourn latency — the paper's
          "crypto stops being the bottleneck" story, now stated as an
          operator-visible SLO breach.
        """
        for architecture in ("SW", "SW/HW"):
            curve = self.points.get(architecture)
            if not curve:
                continue
            bottom = curve[0]
            if bottom.slo_breached:
                raise AssertionError(
                    "%s breached %r at the bottom of the ladder"
                    % (architecture, bottom.slo_breached))
        curve = self.points.get("HW")
        if curve:
            top = curve[-1]
            if not top.slo_breached:
                raise AssertionError(
                    "expected the HW ladder top to breach a latency "
                    "objective (OCSP round-trip floor), but all "
                    "objectives held")
            if not top.slo_alerts:
                raise AssertionError(
                    "HW breached %r at the ladder top but no "
                    "burn-rate alert fired" % (top.slo_breached,))


def sweep(seed: str = DEFAULT_SEED,
          requests: int = REPORT_REQUESTS,
          rhos: Tuple[float, ...] = DEFAULT_RHOS,
          capacity: RICapacity = RICapacity(),
          profiles: Tuple[ArchitectureProfile, ...] = PAPER_PROFILES
          ) -> SaturationSweep:
    """Measure the offered-load ladder for every architecture."""
    if not rhos or any(rho <= 0 for rho in rhos):
        raise ValueError("offered loads must be positive")
    result = SaturationSweep(seed=seed, requests=requests,
                             capacity=capacity, rhos=tuple(rhos))
    for profile in profiles:
        service = nominal_service_ticks(profile, DEFAULT_REQUEST_MIX)
        nominal = (capacity.signing_units * profile.clock_hz / service)
        result.nominal_rate[profile.name] = nominal
        curve = []
        for rho in rhos:
            rate = rho * nominal
            point = run_open_load("%s/saturation" % seed, profile,
                                  arrivals_per_second=rate,
                                  requests=requests,
                                  capacity=capacity)
            curve.append(SaturationPoint(
                architecture=profile.name, rho_nominal=rho,
                arrivals_per_second=rate, result=point))
        result.points[profile.name] = curve
    return result


@dataclass
class SaturationAnalysis:
    """The rendered saturation experiment."""

    sweep: SaturationSweep

    def render(self) -> str:
        """One latency/utilization table per architecture."""
        tables = []
        for architecture, curve in self.sweep.points.items():
            rows = []
            for point in curve:
                load = point.result.load
                rows.append((
                    "%.0f%%" % (100.0 * point.rho_nominal),
                    "%.2f" % point.arrivals_per_second,
                    "%.3f" % point.utilization,
                    "%.3f" % point.mean_queue_depth,
                    "%.2f" % point.latency_ms("p50"),
                    "%.2f" % point.latency_ms("p95"),
                    "%d" % load.served,
                    "%d" % load.refused,
                    ",".join(point.slo_breached) or "-",
                    "%d" % point.slo_alerts,
                ))
            tables.append(format_table(
                ("offered", "req/s", "utilization", "mean queue",
                 "p50 [ms]", "p95 [ms]", "served", "refused",
                 "slo breached", "alerts"),
                rows,
                title="%s RI: nominal capacity %.2f req/s "
                      "(%d signing unit%s)"
                      % (architecture,
                         self.sweep.nominal_rate[architecture],
                         self.sweep.capacity.signing_units,
                         "" if self.sweep.capacity.signing_units == 1
                         else "s")))
        return "\n\n".join(tables)


def generate(seed: str = DEFAULT_SEED,
             requests: int = REPORT_REQUESTS,
             rhos: Tuple[float, ...] = DEFAULT_RHOS,
             capacity: RICapacity = RICapacity()) -> SaturationAnalysis:
    """Run the saturation experiment at report scale."""
    analysis = SaturationAnalysis(
        sweep=sweep(seed + "/saturation", requests=requests, rhos=rhos,
                    capacity=capacity))
    analysis.sweep.assert_monotone_utilization()
    analysis.sweep.assert_slo_contract()
    return analysis
