"""Experiment ``overload``: retry storms and what defuses them.

The saturation experiment (:mod:`repro.analysis.saturation`) shows
where each architecture's Rights Issuer runs out of capacity under
polite open load. This experiment asks the uglier operational
question: what happens when the fleet is *impolite* — when every
refused or slow request comes back as a retry — and which combination
of server-side admission control and client-side retry discipline
keeps goodput alive through a load spike.

The retry-storm engine (:mod:`repro.sim.overload`) drives one spike
scenario — baseline offered load, a spike of several multiples of
capacity, then baseline again — across the full (admission policy ×
retry discipline × deadline propagation) grid, plus a spike-severity
ladder and an architecture cross-check. Every run at one seed draws
the same arrival process (common random numbers), so differences
between cells are pure policy, not luck.

The headline is the *metastable* contract the CI smoke gate asserts:
with no admission control and naive fixed-delay retries, goodput
collapses and **stays** collapsed for at least five spike durations
after the overload has passed — the server is busy serving requests
whose clients already left, and those clients' retries keep it there.
At least one mitigated cell recovers to ≥90% of pre-spike goodput
within the same window. Everything is bit-deterministic per seed, for
any ``--jobs`` worker count.
"""

import multiprocessing
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..sim.admission import ADMISSION_POLICIES
from ..sim.overload import (RETRY_DISCIPLINES, StormResult, StormSpec,
                            run_storm)
from .common import DEFAULT_SEED
from .formatting import format_table

#: The full mitigation grid: every admission policy crossed with every
#: retry discipline, with and without deadline propagation.
DEFAULT_COMBOS: Tuple[Tuple[str, str, bool], ...] = tuple(
    (admission, retry, deadlines)
    for admission in ADMISSION_POLICIES
    for retry in RETRY_DISCIPLINES
    for deadlines in (False, True))

#: The unmitigated baseline: the storm every 1990s client stack brews.
BASELINE_COMBO = ("none", "naive", False)

#: The all-mitigations reference cell for the severity and
#: architecture tables.
MITIGATED_COMBO = ("token-bucket", "backoff-jitter", True)

#: Spike severities (multiples of nominal capacity) for the severity
#: ladder; the grid's own spike sits between them.
DEFAULT_SPIKE_RHOS = (2.0, 8.0)

#: Architectures for the cross-check table beyond the grid's own.
DEFAULT_ARCHITECTURES = ("SW/HW", "HW")


def _combo_spec(seed: str, architecture: str,
                combo: Tuple[str, str, bool],
                spike_rho: Optional[float] = None) -> StormSpec:
    admission, retry, deadlines = combo
    kwargs = {} if spike_rho is None else {"spike_rho": spike_rho}
    return StormSpec(seed=seed, architecture=architecture,
                     admission=admission, retry=retry,
                     deadlines=deadlines, **kwargs)


def _run_point(spec: StormSpec) -> StormResult:
    """Module-level worker so ``Pool.map`` can pickle it."""
    return run_storm(spec)


@dataclass
class OverloadSweep:
    """The full experiment: grid, severity ladder, architecture check.

    ``grid`` maps a :attr:`~repro.sim.overload.StormSpec.label` to its
    result on the primary architecture; ``severity`` maps
    ``(spike_rho, label)`` and ``architectures`` maps
    ``(architecture, label)`` for the two reference combos.
    """

    seed: str
    architecture: str
    grid: Dict[str, StormResult] = field(default_factory=dict)
    severity: Dict[Tuple[float, str], StormResult] = \
        field(default_factory=dict)
    architectures: Dict[Tuple[str, str], StormResult] = \
        field(default_factory=dict)

    @property
    def baseline(self) -> StormResult:
        """The unmitigated cell the metastable contract measures."""
        return self.grid[_combo_spec(self.seed, self.architecture,
                                     BASELINE_COMBO).label]

    @property
    def recovery_window(self) -> int:
        """Five spike durations, in service units — the contract bar."""
        return 5 * self.baseline.spec.spike_duration

    def recovered(self) -> List[StormResult]:
        """Grid cells back at ≥90% goodput inside the window."""
        return [result for result in self.grid.values()
                if result.recovered_within(self.recovery_window)]

    def assert_conservation(self) -> None:
        """Raise unless every cell's attempts are fully accounted for.

        Every attempt is exactly one of: served, refused by the queue
        bound, shed by admission, expired in-queue, or still pending
        when the horizon fell — the books must balance to the request.
        """
        results = ([*self.grid.values(), *self.severity.values(),
                    *self.architectures.values()])
        for result in results:
            resolved = (result.served + result.refused + result.shed
                        + result.timed_out)
            if resolved + result.pending != result.attempts:
                raise AssertionError(
                    "request conservation violated for %s: "
                    "%d attempts but %d resolved + %d pending"
                    % (result.spec.label, result.attempts, resolved,
                       result.pending))

    def assert_metastable_contract(self) -> None:
        """Raise unless the storm is metastable and escapable.

        The two halves of the experiment's headline, asserted exactly
        at the pinned seed: (1) the unmitigated baseline's goodput
        collapse outlives the spike by at least five spike durations;
        (2) at least one mitigated cell is back at ≥90% of pre-spike
        goodput within that same window. CI runs this as the overload
        smoke gate.
        """
        baseline = self.baseline
        window = self.recovery_window
        if baseline.collapse_duration < window:
            raise AssertionError(
                "no metastable collapse: %s recovered after %d "
                "service units (the contract requires ≥ %d)"
                % (baseline.spec.label, baseline.collapse_duration,
                   window))
        recovered = [result for result in self.recovered()
                     if result.spec.label != baseline.spec.label]
        if not recovered:
            raise AssertionError(
                "no mitigation recovered to ≥90%% of pre-spike "
                "goodput within %d service units" % window)

    def assert_slo_contract(self) -> None:
        """Raise unless burn-rate alerting tells the same story.

        The SLO monitor watches the storm from the operator's side;
        its alerts must agree with the goodput bins: (1) the
        unmitigated baseline opens an ``answered-in-patience`` alert
        at/after the spike start and the alert is *still open* at the
        horizon — alert-shaped metastability; (2) the all-mitigations
        reference cell's alert closes before the horizon — the escape,
        as the on-call engineer would see it.
        """
        baseline = self.baseline
        spec = baseline.spec
        report = baseline.slo.objective("answered-in-patience")
        if not report.alerts:
            raise AssertionError("the unmitigated baseline fired no "
                                 "burn-rate alert")
        first = report.alerts[0]
        if first.opened < spec.spike_start * baseline.slot_ticks:
            raise AssertionError(
                "baseline alert opened at tick %d, before the spike "
                "start" % first.opened)
        if report.alerts[-1].closed is not None:
            raise AssertionError(
                "baseline alert closed at tick %d — the collapse "
                "should outlive the horizon"
                % report.alerts[-1].closed)
        mitigated_label = _combo_spec(self.seed, self.architecture,
                                      MITIGATED_COMBO).label
        mitigated = self.grid[mitigated_label]
        report = mitigated.slo.objective("answered-in-patience")
        if not report.alerts:
            raise AssertionError("the mitigated reference cell fired "
                                 "no burn-rate alert during the spike")
        if report.alerts[0].closed is None:
            raise AssertionError(
                "the mitigated reference cell's alert never closed — "
                "burn-rate recovery should match goodput recovery")


def sweep(seed: str = DEFAULT_SEED, architecture: str = "SW",
          combos: Tuple[Tuple[str, str, bool], ...] = DEFAULT_COMBOS,
          spike_rhos: Tuple[float, ...] = DEFAULT_SPIKE_RHOS,
          architectures: Tuple[str, ...] = DEFAULT_ARCHITECTURES,
          jobs: int = 1) -> OverloadSweep:
    """Run the full overload experiment, optionally in parallel.

    Every measurement is a pure function of its :class:`StormSpec`,
    and the spec list is built in deterministic order before any
    worker runs — so results are bit-identical for every ``jobs``
    count (the ``--jobs`` invariance the tests pin via
    :meth:`~repro.sim.overload.StormResult.digest`).
    """
    if jobs < 1:
        raise ValueError("at least one worker is required")
    specs: List[StormSpec] = []
    specs.extend(_combo_spec(seed, architecture, combo)
                 for combo in combos)
    specs.extend(_combo_spec(seed, architecture, combo, spike_rho=rho)
                 for rho in spike_rhos
                 for combo in (BASELINE_COMBO, MITIGATED_COMBO))
    specs.extend(_combo_spec(seed, other, combo)
                 for other in architectures
                 for combo in (BASELINE_COMBO, MITIGATED_COMBO))

    if jobs == 1 or len(specs) == 1:
        results = [_run_point(spec) for spec in specs]
    else:
        with multiprocessing.Pool(processes=min(jobs,
                                                len(specs))) as pool:
            results = pool.map(_run_point, specs)

    out = OverloadSweep(seed=seed, architecture=architecture)
    cursor = iter(results)
    for combo in combos:
        result = next(cursor)
        out.grid[result.spec.label] = result
    for rho in spike_rhos:
        for _combo in (BASELINE_COMBO, MITIGATED_COMBO):
            result = next(cursor)
            out.severity[(rho, result.spec.label)] = result
    for other in architectures:
        for _combo in (BASELINE_COMBO, MITIGATED_COMBO):
            result = next(cursor)
            out.architectures[(other, result.spec.label)] = result
    return out


def _result_row(result: StormResult) -> Tuple[str, ...]:
    if result.pre_goodput_per_bin == 0:
        # No healthy pre-spike baseline to collapse from or recover
        # to (the HW RI's OCSP round-trip alone outlives patience).
        collapse, recovery = "n/a", "n/a"
    else:
        collapse = "%d" % result.collapse_duration
        recovery = ("never" if result.recovery_time is None
                    else "%d" % result.recovery_time)
    return ("%.2f" % result.goodput_ratio,
            collapse,
            recovery,
            "%.0f%%" % (100.0 * result.shed_rate),
            "%.0f%%" % (100.0 * result.wasted_share),
            "%d" % result.gave_up)


@dataclass
class OverloadAnalysis:
    """The rendered overload experiment."""

    sweep: OverloadSweep

    def render(self) -> str:
        """The grid, severity ladder and architecture cross-check."""
        spec = self.sweep.baseline.spec
        columns = ("goodput", "collapse [S]", "recovery [S]", "shed",
                   "wasted", "gave up")
        grid_rows = [(label,) + _result_row(result)
                     for label, result in self.sweep.grid.items()]
        tables = [format_table(
            ("admission/retry",) + columns, grid_rows,
            title="%s RI, spike %.0f%%→%.0f%% of nominal for %d "
                  "service units (horizon %d, patience %d; recovery "
                  "window %d)"
                  % (self.sweep.architecture,
                     100.0 * spec.baseline_rho,
                     100.0 * spec.spike_rho, spec.spike_duration,
                     spec.horizon, spec.patience,
                     self.sweep.recovery_window))]

        severity_rows = [("%.0f%%" % (100.0 * rho), label)
                         + _result_row(result)
                         for (rho, label), result
                         in self.sweep.severity.items()]
        tables.append(format_table(
            ("spike", "admission/retry") + columns, severity_rows,
            title="Spike severity ladder (%s RI)"
                  % self.sweep.architecture))

        architecture_rows = [(architecture, label)
                             + _result_row(result)
                             + ("%d" % result.slot_ticks,)
                             for (architecture, label), result
                             in self.sweep.architectures.items()]
        tables.append(format_table(
            ("arch", "admission/retry") + columns
            + ("service [ticks]",),
            architecture_rows,
            title="Architecture cross-check: same story in service "
                  "units, pure Table 1 scaling in ticks"))

        slo_rows = []
        for label, result in self.sweep.grid.items():
            report = result.slo.objective("answered-in-patience")
            if report.alerts:
                first = report.alerts[0]
                opened = "%d" % (first.opened // result.slot_ticks)
                closed = ("open at horizon" if report.alerts[-1].closed
                          is None else "%d" % (report.alerts[-1].closed
                                               // result.slot_ticks))
            else:
                opened, closed = "-", "-"
            exemplar = (report.exemplars[0].label
                        if report.exemplars else "-")
            slo_rows.append((label, "%d" % len(report.alerts), opened,
                             closed, "%.3f" % report.compliance,
                             exemplar))
        tables.append(format_table(
            ("admission/retry", "alerts", "opened [S]", "closed [S]",
             "compliance", "first exemplar"),
            slo_rows,
            title="SLO burn-rate alerts (answered-in-patience, "
                  "fast/slow windows %d/%d service units): the "
                  "baseline's alert never closes — metastability as "
                  "the on-call engineer sees it"
                  % (spec.bin_size, 4 * spec.bin_size)))
        return "\n\n".join(tables)


def generate(seed: str = DEFAULT_SEED, architecture: str = "SW",
             jobs: int = 1) -> OverloadAnalysis:
    """Run the overload experiment at report scale and validate it."""
    analysis = OverloadAnalysis(
        sweep=sweep(seed + "/overload", architecture=architecture,
                    jobs=jobs))
    analysis.sweep.assert_conservation()
    analysis.sweep.assert_metastable_contract()
    analysis.sweep.assert_slo_contract()
    return analysis
