"""Experiment ``adversary``: what active attacks and outages cost.

Three artifacts, all deterministic functions of the seed:

* **Attack matrix** — the zero-acceptance sweep
  (:mod:`repro.adversary.sweep`): every catalogued attack, the flow it
  targeted, the defense that rejected it, and the cycles the terminal
  spent *before* rejecting, per architecture profile. The sweep is also
  the report's standing proof that the invariant holds.
* **Forgery drain** — one registration driven against a 100%-forgery
  adversary (certificate substitution: the response re-verifies, the
  chain does not) twice: under the plain PR-1 retry policy, which burns
  the full retry budget, and under the circuit breaker's forgery
  cut-off, which aborts after two identical trust failures. The saving
  is the breaker's measured value, per architecture.
* **Outage degradation** — registrations driven across a scheduled RI
  downtime window with a breaker: attempts spent discovering the
  outage, fast-fails while open (zero crypto), and completion after
  restore; plus the OCSP cache's behaviour through a responder outage.
"""

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Tuple

from ..adversary.attacks import AdversaryChannel, AttackKind
from ..adversary.outage import (CachingOCSPResponder, OutageRIChannel,
                                OutageSchedule, OutageWindow)
from ..adversary.sweep import SweepResult, run_attack_sweep
from ..core.architecture import PAPER_PROFILES
from ..core.model import PerformanceModel
from ..drm.clock import DAY
from ..drm.errors import ServiceUnavailableError
from ..drm.session import BreakerPolicy, CircuitBreaker, RoapSession
from ..usecases.world import RSA_BITS, DRMWorld
from .common import DEFAULT_SEED
from .formatting import format_table

#: Cool-down the outage scenario's breaker uses (seconds).
OUTAGE_BREAKER_COOLDOWN = 300

#: Length of the scripted RI outage window (seconds).
OUTAGE_SECONDS = 3600


@dataclass(frozen=True)
class ForgeryDrain:
    """Retry-policy vs circuit-breaker cost under a 100%-forgery MITM."""

    architecture: str
    retry_attempts: int
    retry_cycles: int
    breaker_attempts: int
    breaker_cycles: int

    @property
    def saved_cycles(self) -> int:
        """Cycles the forgery cut-off refunds per attacked flow."""
        return self.retry_cycles - self.breaker_cycles

    @property
    def saved_fraction(self) -> float:
        """Saving as a fraction of the plain-retry spend."""
        if self.retry_cycles == 0:
            return 0.0
        return self.saved_cycles / self.retry_cycles


@dataclass(frozen=True)
class OutageStats:
    """One scripted RI-outage timeline under a circuit breaker."""

    outage_seconds: int
    discovery_attempts: int      # attempts spent before the breaker opened
    fast_fails: int              # flows refused at zero crypto while open
    completed_after_restore: bool
    ocsp_cache_hits: int
    ocsp_fresh_responses: int
    ocsp_unavailable: int


@lru_cache(maxsize=4)
def _forgery_drain(seed: str, rsa_bits: int) -> Tuple[ForgeryDrain, ...]:
    """Measure the drain comparison once per (seed, modulus size)."""
    model = PerformanceModel()
    measured: Dict[bool, Tuple[int, Dict[str, int]]] = {}
    for use_breaker in (False, True):
        world = DRMWorld.create("%s/drain/%d" % (seed, use_breaker),
                                metered=True, rsa_bits=rsa_bits)
        channel = AdversaryChannel(world.ri, seed=seed + "/drain")
        channel.arm(AttackKind.CERT_SUBSTITUTION)
        breaker = CircuitBreaker(world.clock) if use_breaker else None
        session = RoapSession(world.agent, channel, breaker=breaker)
        world.agent_crypto.reset_trace()
        outcome = session.register()
        trace = world.agent_crypto.reset_trace()
        if outcome.completed:
            raise AssertionError(
                "a fully forged registration must never complete")
        cycles = {profile.name: model.evaluate(trace,
                                               profile).total_cycles
                  for profile in PAPER_PROFILES}
        measured[use_breaker] = (outcome.attempts, cycles)

    retry_attempts, retry_cycles = measured[False]
    breaker_attempts, breaker_cycles = measured[True]
    return tuple(
        ForgeryDrain(
            architecture=profile.name,
            retry_attempts=retry_attempts,
            retry_cycles=retry_cycles[profile.name],
            breaker_attempts=breaker_attempts,
            breaker_cycles=breaker_cycles[profile.name],
        )
        for profile in PAPER_PROFILES)


def _outage_timeline(seed: str, rsa_bits: int) -> OutageStats:
    """Script one RI outage and one OCSP outage; collect the counters."""
    world = DRMWorld.create(seed + "/outage", metered=True,
                            rsa_bits=rsa_bits)
    start = world.clock.now
    schedule = OutageSchedule([OutageWindow(start,
                                            start + OUTAGE_SECONDS)])
    channel = OutageRIChannel(world.ri, schedule, world.clock)
    breaker = CircuitBreaker(
        world.clock, BreakerPolicy(open_seconds=OUTAGE_BREAKER_COOLDOWN))
    session = RoapSession(world.agent, channel, breaker=breaker)

    discovery = session.register()       # trips the breaker open
    fast_failed = session.register()     # refused at zero crypto
    assert not discovery.completed and not fast_failed.completed
    world.clock.advance(
        schedule.seconds_until_restore(world.clock.now))
    restored = session.register()        # half-open probe succeeds

    # OCSP responder outage on a separate world: the cache carries
    # registration through downtime inside the response validity window
    # and degrades to unavailable beyond it.
    ocsp_world = DRMWorld.create(seed + "/ocsp-outage", metered=True,
                                 rsa_bits=rsa_bits)
    ocsp_start = ocsp_world.clock.now + 100
    ocsp_schedule = OutageSchedule(
        [OutageWindow(ocsp_start, ocsp_start + 30 * DAY)])
    caching = CachingOCSPResponder(ocsp_world.ocsp, ocsp_schedule)
    ocsp_world.ri._ocsp = caching
    ocsp_world.agent.register(ocsp_world.ri)      # fresh, cached
    ocsp_world.clock.advance(DAY)
    ocsp_world.agent.register(ocsp_world.ri)      # served from cache
    ocsp_world.clock.advance(9 * DAY)             # cache validity over
    try:
        ocsp_world.agent.register(ocsp_world.ri)
    except ServiceUnavailableError:
        pass                                      # degraded to refusal

    return OutageStats(
        outage_seconds=OUTAGE_SECONDS,
        discovery_attempts=discovery.attempts,
        fast_fails=breaker.fast_fails,
        completed_after_restore=restored.completed,
        ocsp_cache_hits=caching.cache_hits,
        ocsp_fresh_responses=caching.fresh_responses,
        ocsp_unavailable=caching.unavailable,
    )


@dataclass
class AdversaryAnalysis:
    """The rendered adversary experiment."""

    seed: str
    rsa_bits: int
    sweep: SweepResult
    drains: Tuple[ForgeryDrain, ...]
    outage: OutageStats

    def render(self) -> str:
        """Three aligned tables: attack matrix, drain, degradation."""
        attack_rows = []
        for outcome in self.sweep.outcomes:
            wasted = " / ".join(
                "%d" % outcome.defender_cycles[profile.name]
                for profile in PAPER_PROFILES)
            attack_rows.append((
                outcome.attack.value,
                outcome.flow,
                str(outcome.mounted),
                "REJECTED" if outcome.rejected else "ACCEPTED",
                outcome.defense,
                wasted,
            ))
        arch_names = " / ".join(p.name for p in PAPER_PROFILES)
        matrix = format_table(
            ("attack", "flow", "mounted", "verdict", "defense",
             "defender cycles (%s)" % arch_names),
            attack_rows,
            title="Attack corpus, zero-acceptance sweep (seed %r, "
                  "%d-bit RSA)" % (self.sweep.seed, self.sweep.rsa_bits))

        drain_rows = []
        for drain in self.drains:
            drain_rows.append((
                drain.architecture,
                "%d" % drain.retry_attempts,
                "%d" % drain.retry_cycles,
                "%d" % drain.breaker_attempts,
                "%d" % drain.breaker_cycles,
                "%d" % drain.saved_cycles,
                "%.0f%%" % (100.0 * drain.saved_fraction),
            ))
        drain_table = format_table(
            ("arch", "retry attempts", "retry [cycles]",
             "breaker attempts", "breaker [cycles]", "saved [cycles]",
             "saved"),
            drain_rows,
            title="100%-forgery drain: plain retry vs forgery cut-off")

        outage = self.outage
        outage_rows = [
            ("RI outage window", "%d s" % outage.outage_seconds),
            ("attempts before breaker opened",
             str(outage.discovery_attempts)),
            ("fast-failed flows while open (zero crypto)",
             str(outage.fast_fails)),
            ("completed after restore",
             "yes" if outage.completed_after_restore else "NO"),
            ("OCSP responses served fresh",
             str(outage.ocsp_fresh_responses)),
            ("OCSP responses served from cache",
             str(outage.ocsp_cache_hits)),
            ("OCSP refusals beyond cache validity",
             str(outage.ocsp_unavailable)),
        ]
        outage_table = format_table(
            ("degradation metric", "value"), outage_rows,
            title="Outage degradation")

        return matrix + "\n\n" + drain_table + "\n\n" + outage_table


def generate(seed: str = DEFAULT_SEED,
             rsa_bits: int = RSA_BITS) -> AdversaryAnalysis:
    """Run the adversary experiment (sweep, drain, outage timeline)."""
    sweep = run_attack_sweep(seed=seed + "/adversary",
                             rsa_bits=rsa_bits)
    sweep.assert_zero_acceptance()
    return AdversaryAnalysis(
        seed=seed,
        rsa_bits=rsa_bits,
        sweep=sweep,
        drains=_forgery_drain(seed, rsa_bits),
        outage=_outage_timeline(seed, rsa_bits),
    )
