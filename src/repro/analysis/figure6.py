"""Experiment ``fig6``: Music Player execution times (Figure 6).

Figure 6 plots total processing time for the Music Player use case
(registration + acquisition + installation + five playbacks of a 3.5 MB
DCF) under the three architecture variants on a log scale. The paper's
bars: SW 7730 ms, SW/HW 800 ms, HW 190 ms — AES/SHA-1 hardware macros cut
the total "to almost a tenth" of the software value.
"""

from dataclasses import dataclass
from typing import Dict, List

from ..core.architecture import PAPER_PROFILES
from ..core.model import PerformanceModel
from ..core.report import compare_architectures
from .common import DEFAULT_SEED, music_trace
from .formatting import deviation_pct, format_log_bars

#: The paper's Figure 6 bars, in milliseconds.
PAPER_MS: Dict[str, float] = {"SW": 7730.0, "SW/HW": 800.0, "HW": 190.0}


@dataclass
class Figure6Result:
    """Measured totals for the three variants plus paper references."""

    measured_ms: Dict[str, float]
    paper_ms: Dict[str, float]

    def labels(self) -> List[str]:
        """Variant names in plotting order."""
        return list(self.measured_ms)

    def deviations_pct(self) -> Dict[str, float]:
        """Signed deviation from the paper per variant."""
        return {
            name: deviation_pct(self.measured_ms[name],
                                self.paper_ms[name])
            for name in self.measured_ms
        }

    def render(self) -> str:
        """ASCII log-bar rendering in the figure's layout."""
        labels = self.labels()
        chart = format_log_bars(
            labels=labels,
            values_ms=[self.measured_ms[k] for k in labels],
            paper_values=[self.paper_ms[k] for k in labels],
            title="Figure 6 - Music Player use case, execution time "
                  "(log scale)",
        )
        deviations = ", ".join(
            "%s %+.1f%%" % (k, v) for k, v in self.deviations_pct().items()
        )
        return chart + "\ndeviation from paper: " + deviations


def generate(seed: str = DEFAULT_SEED) -> Figure6Result:
    """Regenerate Figure 6's three bars."""
    comparison = compare_architectures(
        music_trace(seed), PAPER_PROFILES, PerformanceModel(),
        use_case="Music Player",
    )
    measured = dict(zip(comparison.labels(), comparison.series_ms()))
    return Figure6Result(measured_ms=measured, paper_ms=dict(PAPER_MS))
