"""Experiment ``table1``: regenerate the paper's Table 1.

Table 1 lists the per-algorithm execution costs in clock cycles for
software (ARM9-class core) and hardware (dedicated macros below 200 MHz).
Our cost database *is* this table, so the experiment renders the database
and cross-checks it against an independent statement of the paper's
values — guarding against accidental edits to the canonical constants.
"""

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.costs import CostTable, LinearCost, PAPER_TABLE1
from ..core.trace import Algorithm
from .formatting import format_table

#: Human-readable row names in the paper's order.
ROW_NAMES = {
    Algorithm.AES_ENCRYPT: "AES Encryption",
    Algorithm.AES_DECRYPT: "AES Decryption",
    Algorithm.SHA1: "SHA-1",
    Algorithm.HMAC_SHA1: "HMAC SHA-1",
    Algorithm.RSA_PUBLIC: "RSA 1024 Public Key Op",
    Algorithm.RSA_PRIVATE: "RSA 1024 Private Key Op",
}

#: The paper's Table 1, stated independently of the cost database:
#: (sw offset, sw per-block, hw offset, hw per-block).
PAPER_VALUES: Dict[Algorithm, Tuple[int, int, int, int]] = {
    Algorithm.AES_ENCRYPT: (360, 830, 0, 10),
    Algorithm.AES_DECRYPT: (950, 830, 10, 10),
    Algorithm.SHA1: (0, 400, 0, 20),
    Algorithm.HMAC_SHA1: (1200, 400, 240, 20),
    Algorithm.RSA_PUBLIC: (0, 2_160_000, 0, 10_000),
    # 37 740 000, correcting the paper's "3,774,0000" typesetting slip
    # (see repro.core.costs for the full argument).
    Algorithm.RSA_PRIVATE: (0, 37_740_000, 0, 260_000),
}


def _describe(cost: LinearCost) -> str:
    unit = "%d bit" % cost.block_bits
    if cost.offset_cycles:
        return "%d + %d/%s" % (cost.offset_cycles,
                               cost.cycles_per_block, unit)
    return "%d/%s" % (cost.cycles_per_block, unit)


@dataclass
class Table1Result:
    """The regenerated table plus the verification verdict."""

    rows: List[Tuple[str, str, str]]
    matches_paper: bool
    mismatches: List[str]

    def render(self) -> str:
        """ASCII rendering in the paper's layout."""
        table = format_table(
            headers=("Algorithm", "Software [cycles]", "Hardware [cycles]"),
            rows=self.rows,
            title="Table 1 - Execution times for cryptographic algorithms",
        )
        verdict = ("all entries match the paper"
                   if self.matches_paper
                   else "MISMATCHES: " + "; ".join(self.mismatches))
        return table + "\n" + verdict


def generate(cost_table: CostTable = PAPER_TABLE1) -> Table1Result:
    """Render ``cost_table`` and verify it against the paper's values."""
    rows = []
    mismatches = []
    for algorithm in (Algorithm.AES_ENCRYPT, Algorithm.AES_DECRYPT,
                      Algorithm.SHA1, Algorithm.HMAC_SHA1,
                      Algorithm.RSA_PUBLIC, Algorithm.RSA_PRIVATE):
        sw = cost_table.software[algorithm]
        hw = cost_table.hardware[algorithm]
        rows.append((ROW_NAMES[algorithm], _describe(sw), _describe(hw)))
        expected = PAPER_VALUES[algorithm]
        actual = (sw.offset_cycles, sw.cycles_per_block,
                  hw.offset_cycles, hw.cycles_per_block)
        if actual != expected:
            mismatches.append(
                "%s: expected %s, got %s"
                % (ROW_NAMES[algorithm], expected, actual)
            )
    return Table1Result(rows=rows, matches_paper=not mismatches,
                        mismatches=mismatches)
